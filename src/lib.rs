//! hec-suite — umbrella crate for the SC'05 "Leading Computational
//! Methods on Scalar and Vector HEC Platforms" reproduction.
//!
//! Re-exports the whole workspace so examples and integration tests can
//! reach every layer:
//!
//! * applications: [`lbmhd`], [`gtc`], [`paratec`], [`fvcam`];
//! * substrates: [`msim`] (simulated MPI), [`kernels`] (FFT/BLAS/solvers),
//!   [`hec_net`] + [`hec_arch`] (interconnect and processor models),
//!   [`hec_core`] (std-only RNG/JSON/sync/thread-pool support);
//! * service: [`hec_serve`] (prediction-as-a-service over HTTP/1.1);
//! * reporting: [`report`].
//!
//! Start with `examples/quickstart.rs`, print every table and figure
//! with `cargo run --release -p bench --bin repro report`, or regenerate
//! the full metadata-stamped artifact set (and diff it across commits)
//! with `repro all` / `repro diff` — see EXPERIMENTS.md.

pub use fvcam;
pub use gtc;
pub use hec_arch;
pub use hec_core;
pub use hec_net;
pub use hec_serve;
pub use kernels;
pub use lbmhd;
pub use msim;
pub use paratec;
pub use report;
