//! Quickstart: run each application for a few steps and evaluate the
//! Earth Simulator vs Opteron performance model on the resulting workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hec_arch::{predict, Platform, PlatformId};

fn main() {
    // --- 1. A real LBMHD3D run on 8 simulated MPI ranks.
    println!("== LBMHD3D: 16^3 lattice, 8 ranks, 10 steps ==");
    let diags = msim::run(8, |comm| {
        let params = lbmhd::SimParams { n: 16, ..Default::default() };
        let mut sim = lbmhd::Simulation::new(params, comm.rank(), comm.size());
        sim.run(comm, 10);
        sim.diagnostics(comm)
    })
    .expect("lbmhd run failed");
    let d = diags[0];
    println!(
        "mass {:.6}, kinetic energy {:.3e}, magnetic energy {:.3e}",
        d.mass, d.kinetic_energy, d.magnetic_energy
    );

    // --- 2. A real GTC run with the paper's two-level decomposition.
    println!("\n== GTC: 4 toroidal domains x 2-way particle decomposition ==");
    let stats = msim::run(8, |world| {
        let params = gtc::GtcParams { particles_per_domain: 2000, ..Default::default() };
        let mut sim = gtc::GtcSim::new(params, world);
        sim.run(world, 5);
        let (count, weight) = sim.global_particle_stats(world);
        (count, weight, sim.counters.shifted)
    })
    .expect("gtc run failed");
    println!(
        "particles {} (conserved), total weight {:.3}, markers shifted on rank 0: {}",
        stats[0].0, stats[0].1, stats[0].2
    );

    // --- 3. Evaluate the architectural model on the paper's Table 5
    // configuration: who wins LBMHD at 256 processors on a 512^3 grid?
    println!("\n== Performance model: LBMHD3D, P=256, 512^3 (paper Table 5) ==");
    let w = lbmhd::model::workload(512, 256);
    for id in [
        PlatformId::Power3,
        PlatformId::Opteron,
        PlatformId::X1Msp,
        PlatformId::Es,
        PlatformId::Sx8,
    ] {
        let p = Platform::get(id);
        let pred = predict(&p, &w);
        println!(
            "{:<10} {:>6.2} Gflop/P  ({:>5.1} % of peak)",
            id.label(),
            pred.gflops_per_proc,
            pred.percent_of_peak
        );
    }
    println!("\n(paper Table 5 row: Power3 0.14, Opteron 0.60, X1 5.26, ES 5.45, SX-8 9.52)");
}
