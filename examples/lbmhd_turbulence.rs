//! Reproduces the physics behind the paper's Figure 6: an LBMHD3D run from
//! well-defined vorticity tubes through the onset of turbulent structure,
//! rendered as ASCII contours of the z-vorticity on an xy-plane.
//!
//! ```sh
//! cargo run --release --example lbmhd_turbulence
//! ```

fn render(w: &[f64], nx: usize, ny: usize) -> String {
    let max = w.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-30);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    for j in (0..ny).step_by(1) {
        for i in 0..nx {
            let t = (w[j * nx + i].abs() / max * 9.0).round() as usize;
            let c = glyphs[t.min(9)];
            // Sign shown by case-ish distinction: negative vorticity dotted.
            out.push(if w[j * nx + i] < 0.0 && c != ' ' { '·' } else { c });
        }
        out.push('\n');
    }
    out
}

fn main() {
    let n = 32;
    let snapshots = msim::run(1, move |comm| {
        let params = lbmhd::SimParams {
            n,
            omega: 1.9, // low viscosity: structures distort quickly
            omega_m: 1.2,
            amplitude: 0.08,
            ..Default::default()
        };
        let mut sim = lbmhd::Simulation::new(params, comm.rank(), comm.size());
        let mut shots = Vec::new();
        for &t in &[0usize, 40, 160] {
            while sim.points_updated / (n as u64).pow(3) < t as u64 {
                sim.step(comm);
            }
            shots.push((t, sim.vorticity_z_plane(n / 2), sim.diagnostics(comm)));
        }
        shots
    })
    .expect("run failed");

    for (t, plane, d) in &snapshots[0] {
        println!(
            "t = {t}: kinetic energy {:.4e}, magnetic energy {:.4e}",
            d.kinetic_energy, d.magnetic_energy
        );
        println!("{}", render(plane, n, n));
    }
    println!(
        "Early frames show the well-defined vortex tubes of the initial\n\
         condition; later frames show them distorted toward turbulence —\n\
         the evolution contoured in the paper's Figure 6."
    );
}
