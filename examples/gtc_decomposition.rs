//! Demonstrates the paper's GTC contribution: the particle decomposition
//! that lifted GTC's concurrency past the 64-domain physics limit.
//!
//! The same plasma (same marker ensemble) is run with 4 toroidal domains ×
//! {1, 2, 4} processes per domain; the charge grids agree to round-off and
//! the extra `Allreduce` traffic of the decomposition is measured.
//!
//! ```sh
//! cargo run --release --example gtc_decomposition
//! ```

fn main() {
    let base = gtc::GtcParams {
        ndomains: 4,
        mzeta_total: 8,
        particles_per_domain: 4000,
        ..Default::default()
    };

    let mut reference_charge: Option<Vec<f64>> = None;
    for npe in [1usize, 2, 4] {
        let procs = base.ndomains * npe;
        let (results, traffic) = msim::run_with_traffic(procs, move |world| {
            let mut sim = gtc::GtcSim::new(base, world);
            // Synchronized reset: drop setup traffic once every rank is ready.
            world.barrier();
            if world.rank() == 0 {
                world.traffic().reset();
            }
            world.barrier();
            sim.step(world);
            // Domain 0's merged charge, flattened (replicated over npe).
            if sim.domain == 0 && sim.sub_rank == 0 {
                Some(sim.fields.charge.iter().flatten().copied().collect::<Vec<f64>>())
            } else {
                None
            }
        })
        .expect("gtc run failed");

        let charge = results.into_iter().flatten().next().expect("domain 0 charge");
        let drift = match &reference_charge {
            None => {
                reference_charge = Some(charge);
                0.0
            }
            Some(r) => r.iter().zip(&charge).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max),
        };
        println!(
            "npe = {npe}: {procs:>2} processes, step traffic {:>8.1} KB, \
             max charge deviation vs npe=1: {drift:.2e}",
            traffic.total_bytes() as f64 / 1e3,
        );
    }
    println!(
        "\nThe charge grid is identical under every particle decomposition\n\
         (the merge Allreduce reconstructs the single-process deposition),\n\
         while communication grows with npe — the trade the paper's new\n\
         algorithm accepts to reach 2048-way concurrency (Table 4)."
    );
}
