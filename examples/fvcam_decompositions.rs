//! FVCAM decomposition study in miniature: the same atmosphere stepped
//! under the 1D (latitude) and 2D (latitude × level) decompositions,
//! verifying bitwise-identical physics and comparing the captured
//! communication volumes — the paper's Figure 2 experiment.
//!
//! ```sh
//! cargo run --release --example fvcam_decompositions
//! ```

fn main() {
    let base =
        fvcam::FvParams { nlon: 72, nlat: 45, nlev: 8, pz: 1, courant: 0.4, ..Default::default() };
    let steps = 3;

    let mut reference_mass = None;
    for (label, pz, procs) in [("1D (8 bands)", 1usize, 8usize), ("2D (4 bands x 2 groups)", 2, 8)]
    {
        let params = fvcam::FvParams { pz, ..base };
        let (masses, traffic) = msim::run_with_traffic(procs, move |comm| {
            let mut sim = fvcam::FvSim::new(params, comm.rank(), comm.size());
            comm.barrier();
            if comm.rank() == 0 {
                comm.traffic().reset();
            }
            comm.barrier();
            sim.run(comm, steps);
            sim.global_mass(comm)
        })
        .expect("fvcam run failed");

        let mass = masses[0];
        let drift = match reference_mass {
            None => {
                reference_mass = Some(mass);
                0.0
            }
            Some(r) => (mass - r as f64).abs(),
        };
        println!(
            "{label:<24} total traffic {:>9.1} KB over {steps} steps, \
             global tracer mass {mass:.9} (Δ vs 1D: {drift:.2e})",
            traffic.total_bytes() as f64 / 1e3
        );
        println!("{}", traffic.ascii_heatmap());
    }
    println!(
        "The 1D matrix is pure nearest-neighbor (the two diagonals of the\n\
         paper's Figure 2a); the 2D matrix shows segmented diagonals plus\n\
         the tilted transpose lines of Figure 2b, with lower total volume —\n\
         the improved surface-to-volume ratio the paper measures."
    );
}
