//! PARATEC mini-app: converge Kohn–Sham-like bands for a periodic
//! potential well over the distributed plane-wave machinery — distributed
//! 3D FFTs (with their all-to-all transposes), ZGEMM projectors, and the
//! all-band minimizer.
//!
//! ```sh
//! cargo run --release --example paratec_bands
//! ```

use paratec::basis::GSphere;
use paratec::fftdist::DistFft;
use paratec::hamiltonian::Hamiltonian;
use paratec::solver::{initial_guess, minimize};

fn main() {
    let nbands = 4;
    let procs = 4;
    let results = msim::run_with_traffic(procs, move |comm| {
        let sphere = GSphere::build(12, 12, 12, 6.0);
        let fft = DistFft::new(sphere, comm.rank(), comm.size());
        let mut h = Hamiltonian::model(fft, 2, 2.0);
        let ng = h.ng();
        let mut psi = initial_guess(ng, nbands, comm.rank());
        let stats = minimize(comm, &mut h, &mut psi, nbands, 80, 0.5);
        (stats, h.fft.transpose_bytes, h.gemm_flops, h.fft.fft_flops)
    })
    .expect("run failed");
    let (traffic,) = (results.1,);
    let (stats, tbytes, gemm, fftf) = &results.0[0];

    println!("basis: G-sphere on a 12^3 grid, cutoff 6.0 (ng per rank varies)");
    println!("energy trajectory (sum of Rayleigh quotients):");
    for (i, e) in stats.energy_history.iter().enumerate().step_by(10) {
        println!("  iter {i:>3}: {e:+.6}");
    }
    println!("final band energies: {:?}", stats.band_energies);
    println!();
    println!("rank 0 instrumentation over the whole minimization:");
    println!("  FFT-stage flops:      {fftf:.3e}");
    println!("  ZGEMM flops:          {gemm:.3e}");
    println!("  transpose bytes sent: {tbytes}");
    println!("  total pt2pt traffic:  {:.1} KB", traffic.total_bytes() as f64 / 1e3);
    println!(
        "\nThe transposes inside every distributed FFT are the all-to-alls\n\
         whose cost caps PARATEC's scaling in the paper's Table 6."
    );
}
