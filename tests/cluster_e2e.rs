//! End-to-end tests for the cluster tier (ISSUE 5): a real router over
//! real replicas, and the three contracts — (i) killing a replica
//! mid-load is invisible: zero failed requests and byte-identical
//! responses, (ii) a seeded fault plan (kills, stalls, dropped
//! connections, slow replies) never surfaces an error or changes a
//! byte, (iii) the router's `/metrics` document records the down→up
//! transition of a killed-then-restarted replica.

use std::sync::Arc;
use std::time::Duration;

use hec_cluster::{ClusterConfig, FaultPlan, HealthConfig};
use hec_core::json::Json;
use hec_serve::client::{self, RetryPolicy};
use hec_serve::request::Point;
use hec_serve::server::{self, ServeConfig};

fn cluster_cfg(replicas: usize, faults: FaultPlan) -> ClusterConfig {
    ClusterConfig {
        replicas,
        replica: ServeConfig { port: 0, workers: 2, queue: 32, cache_capacity: 512 },
        retry: RetryPolicy {
            base_ms: 5,
            cap_ms: 50,
            max_retries: 4,
            timeout: Duration::from_secs(10),
        },
        health: HealthConfig {
            interval: Duration::from_millis(50),
            probe_timeout: Duration::from_millis(300),
        },
        faults,
        ..ClusterConfig::default()
    }
}

/// The byte-identity workload: eval queries spanning all four apps,
/// paired with the body the single-process engine produces for them.
fn expected_bodies() -> Vec<(String, String)> {
    [
        "app=gtc&platform=x1msp&procs=256",
        "app=gtc&platform=4ssp&procs=512",
        "app=lbmhd&platform=es&procs=1024&n=1024",
        "app=lbmhd&platform=sx8&procs=512&n=512",
        "app=paratec&platform=power3&procs=128",
        "app=paratec&platform=es&procs=512",
        "app=fvcam&platform=power3&procs=256&pz=4",
        "app=fvcam&platform=x1msp&procs=336&pz=7",
    ]
    .into_iter()
    .map(|q| {
        let p = Point::from_query(q).expect(q);
        (q.to_string(), server::point_response_body(&p, p.eval()))
    })
    .collect()
}

fn metric(base: &str, path: &[&str]) -> f64 {
    let body = client::http_get(&format!("{base}/metrics")).unwrap().body;
    let doc = Json::parse(&body).unwrap();
    let mut v = &doc;
    for p in path {
        v = v.get(p).unwrap_or_else(|| panic!("missing /metrics field {path:?}"));
    }
    v.as_f64().unwrap()
}

fn replica_field(base: &str, i: usize, field: &str) -> Json {
    let body = client::http_get(&format!("{base}/metrics")).unwrap().body;
    let doc = Json::parse(&body).unwrap();
    let arr = match doc.get("cluster").and_then(|c| c.get("replicas")) {
        Some(Json::Arr(v)) => v.clone(),
        other => panic!("cluster.replicas missing: {other:?}"),
    };
    arr[i].get(field).cloned().unwrap_or(Json::Null)
}

/// (i) Kill one replica while concurrent clients are mid-load: every
/// request still succeeds with the exact single-process bytes, and the
/// router records failovers and the down transition.
#[test]
fn killing_a_replica_mid_load_loses_nothing_and_changes_no_bytes() {
    let c = hec_cluster::start(cluster_cfg(3, FaultPlan::none())).unwrap();
    let base = format!("http://{}", c.addr());
    let cases = Arc::new(expected_bodies());
    // Kill the replica that primaries the first workload key, so
    // requests for that key *must* fail over after the kill.
    let ring = hec_cluster::Ring::new(3, hec_cluster::DEFAULT_VNODES, 2);
    let victim = ring.primary(&Point::from_query(&cases[0].0).unwrap().canonical_key());

    // Closed-loop clients re-request the workload until told to stop;
    // the kill lands while they are in flight, and they keep going
    // afterwards so post-kill traffic is guaranteed.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let (base, cases, stop) = (base.clone(), Arc::clone(&cases), Arc::clone(&stop));
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    base_ms: 5,
                    cap_ms: 50,
                    max_retries: 6,
                    timeout: Duration::from_secs(10),
                };
                let mut failures = 0u64;
                let mut round = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for (k, (query, want)) in cases.iter().enumerate() {
                        let url = format!("{base}/eval?{query}");
                        let seed = (t as u64) << 32 ^ (round * 100 + k as u64);
                        match client::get_with_retry(&url, &policy, seed) {
                            Ok(out) if out.response.status == 200 => {
                                assert_eq!(
                                    out.response.body, *want,
                                    "bytes drifted for {query} (thread {t}, round {round})"
                                );
                            }
                            _ => failures += 1,
                        }
                    }
                    round += 1;
                }
                failures
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    assert!(c.kill_replica(victim), "replica {victim} should have been up");
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let failures: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(failures, 0, "a kill under replication must lose zero requests");
    assert!(
        metric(&base, &["failovers"]) >= 1.0,
        "the router must have failed over off the dead replica"
    );
    assert_eq!(replica_field(&base, victim, "up"), Json::Bool(false));
    assert!(replica_field(&base, victim, "down_transitions").as_f64().unwrap() >= 1.0);
    assert_eq!(metric(&base, &["cluster", "up"]), 2.0);
    c.shutdown();
    c.join();
}

/// (ii) A seeded fault plan — stalls, dropped connections, slow
/// replies, and at most R−1 kills — injects its whole schedule without
/// one failed request or one changed byte. Same seed, same schedule.
#[test]
fn seeded_fault_plan_preserves_bytes_and_loses_nothing() {
    let plan = FaultPlan::seeded(42, 3, 2, 12, 40);
    assert!(!plan.is_empty());
    let c = hec_cluster::start(cluster_cfg(3, plan)).unwrap();
    let base = format!("http://{}", c.addr());
    let cases = expected_bodies();
    let policy =
        RetryPolicy { base_ms: 5, cap_ms: 50, max_retries: 6, timeout: Duration::from_secs(10) };

    // Sequential requests: admitted-request indices advance 0,1,2,… so
    // the plan's horizon (40) is fully crossed and every event fires.
    for i in 0..56u64 {
        let (query, want) = &cases[(i as usize) % cases.len()];
        let out = client::get_with_retry(&format!("{base}/eval?{query}"), &policy, i)
            .unwrap_or_else(|e| panic!("request {i} ({query}) failed in transport: {e}"));
        assert_eq!(out.response.status, 200, "request {i} ({query}) -> {}", out.response.status);
        assert_eq!(out.response.body, *want, "request {i}: bytes drifted under faults");
    }
    assert_eq!(
        metric(&base, &["faults", "remaining"]),
        0.0,
        "the whole fault schedule must have fired"
    );
    assert!(metric(&base, &["faults", "injected"]) >= 12.0);
    c.shutdown();
    c.join();
}

/// (iii) `/metrics` records the full down→up lifecycle around an admin
/// kill and restart, and restarted replicas serve identical bytes.
#[test]
fn metrics_record_the_down_then_up_transition() {
    let c = hec_cluster::start(cluster_cfg(2, FaultPlan::none())).unwrap();
    let base = format!("http://{}", c.addr());
    assert_eq!(metric(&base, &["cluster", "up"]), 2.0);

    let killed = client::http_post(&format!("{base}/admin/kill?replica=1"), "").unwrap();
    assert_eq!(killed.status, 200);
    assert_eq!(replica_field(&base, 1, "up"), Json::Bool(false));
    assert_eq!(replica_field(&base, 1, "down_transitions").as_f64().unwrap(), 1.0);
    assert_eq!(metric(&base, &["cluster", "up"]), 1.0);

    // Still serving through the survivor, bytes intact.
    let (query, want) = &expected_bodies()[0];
    let r = client::http_get(&format!("{base}/eval?{query}")).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.body, *want);

    let revived = client::http_post(&format!("{base}/admin/restart?replica=1"), "").unwrap();
    assert_eq!(revived.status, 200);
    assert_eq!(replica_field(&base, 1, "up"), Json::Bool(true));
    assert_eq!(replica_field(&base, 1, "up_transitions").as_f64().unwrap(), 1.0);
    assert_eq!(metric(&base, &["cluster", "up"]), 2.0);

    // The restarted replica answers directly with the same bytes.
    let addr = c.replica_addr(1).expect("replica 1 restarted");
    let direct = client::http_get(&format!("http://{addr}/eval?{query}")).unwrap();
    assert_eq!(direct.body, *want, "restarted replica must serve identical bytes");
    c.shutdown();
    c.join();
}

/// The ring assigns every key R distinct owners, so any single kill
/// leaves a live owner — checked against the routed workload itself.
#[test]
fn every_workload_key_survives_any_single_kill() {
    let ring = hec_cluster::Ring::new(3, hec_cluster::DEFAULT_VNODES, 2);
    for (query, _) in expected_bodies() {
        let p = Point::from_query(&query).unwrap();
        let owners = ring.owners(&p.canonical_key());
        assert_eq!(owners.len(), 2);
        assert_ne!(owners[0], owners[1], "{query} must have two distinct owners");
    }
}
