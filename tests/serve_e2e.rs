//! End-to-end tests for the serve subsystem (ISSUE 4): a real listener
//! on an ephemeral port, concurrent clients, and the three contracts —
//! (i) served responses are bytewise identical to direct
//! `bench::experiments` evaluation, (ii) repeated requests hit the
//! cache (observed through `/metrics`), (iii) queue-full yields 503
//! without dropping in-flight work.

use hec_core::json::Json;
use hec_serve::client;
use hec_serve::engine::{AppId, PlatformSel, PointSpec};
use hec_serve::request::Point;
use hec_serve::server::{self, ServeConfig, Server};

fn start(workers: usize, queue: usize) -> Server {
    server::start(ServeConfig { port: 0, workers, queue, cache_capacity: 1024 })
        .expect("bind ephemeral port")
}

fn metric(base: &str, path: &[&str]) -> f64 {
    let body = client::http_get(&format!("{base}/metrics")).unwrap().body;
    let doc = Json::parse(&body).unwrap();
    let mut v = &doc;
    for p in path {
        v = v.get(p).unwrap_or_else(|| panic!("missing /metrics field {path:?}"));
    }
    v.as_f64().unwrap()
}

/// (i) Single-point responses, GET and POST, under concurrent clients,
/// are bytewise identical to the in-process evaluation.
#[test]
fn served_points_match_in_process_evaluation_bytewise() {
    let s = start(4, 32);
    let base = format!("http://{}", s.addr());
    let cases: Vec<(String, Point)> = vec![
        (
            format!("{base}/eval?app=gtc&platform=x1msp&procs=256"),
            Point {
                app: AppId::Gtc,
                sel: PlatformSel::Direct(hec_arch::PlatformId::X1Msp),
                spec: PointSpec::procs(256),
            },
        ),
        (
            format!("{base}/eval?app=gtc&platform=4ssp&procs=512"),
            Point { app: AppId::Gtc, sel: PlatformSel::Agg4Ssp, spec: PointSpec::procs(512) },
        ),
        (
            format!("{base}/eval?app=lbmhd&platform=es&procs=1024&n=1024"),
            Point {
                app: AppId::Lbmhd,
                sel: PlatformSel::Direct(hec_arch::PlatformId::Es),
                spec: PointSpec { procs: 1024, pz: None, n: Some(1024) },
            },
        ),
        (
            format!("{base}/eval?app=paratec&platform=sx8&procs=128"),
            Point {
                app: AppId::Paratec,
                sel: PlatformSel::Direct(hec_arch::PlatformId::Sx8),
                spec: PointSpec::procs(128),
            },
        ),
        (
            format!("{base}/eval?app=fvcam&platform=power3&procs=256&pz=4"),
            Point {
                app: AppId::Fvcam,
                sel: PlatformSel::Direct(hec_arch::PlatformId::Power3),
                spec: PointSpec { procs: 256, pz: Some(4), n: None },
            },
        ),
    ];
    // Concurrent clients: every case requested from its own thread, both
    // GET and (second round, now cached) again — bytes must never move.
    let handles: Vec<_> = cases
        .into_iter()
        .map(|(url, point)| {
            std::thread::spawn(move || {
                let want = server::point_response_body(&point, point.eval());
                let first = client::http_get(&url).unwrap();
                assert_eq!(first.status, 200, "{url}");
                assert_eq!(first.body, want, "uncached response bytes for {url}");
                let second = client::http_get(&url).unwrap();
                assert_eq!(second.body, want, "cached response bytes for {url}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    s.shutdown();
    s.join();
}

/// (i) continued: a served sweep carries exactly the numbers of the
/// direct `bench::experiments` row set, cell for cell, bit for bit.
#[test]
fn served_sweep_matches_bench_experiments_rows_exactly() {
    let s = start(2, 32);
    let base = format!("http://{}", s.addr());
    let resp = client::http_get(&format!("{base}/sweep?app=gtc")).unwrap();
    assert_eq!(resp.status, 200);
    // Bytewise: the sweep body must equal the in-process rendering over
    // direct evaluation.
    let want = server::sweep_response_body(AppId::Gtc, |p| p.eval());
    assert_eq!(resp.body, want, "sweep bytes differ from in-process rendering");
    // And numerically: the JSON numbers round-trip to the exact f64s of
    // bench::experiments::gtc_rows() (shortest-form emission re-parses
    // to the identical bits).
    let rows = bench::experiments::gtc_rows();
    let doc = Json::parse(&resp.body).unwrap();
    let jrows = doc.get("rows").and_then(|r| r.as_arr()).unwrap();
    assert_eq!(jrows.len(), rows.len());
    for (jr, row) in jrows.iter().zip(&rows) {
        assert_eq!(jr.num_field("procs").unwrap() as usize, row.procs);
        let cells = jr.get("cells").and_then(|c| c.as_arr()).unwrap();
        assert_eq!(cells.len(), 7);
        for (jc, cell) in cells.iter().zip(&row.cells) {
            match cell {
                None => assert!(matches!(jc, Json::Null) || !jc.bool_field("feasible").unwrap()),
                Some(c) => {
                    assert_eq!(
                        jc.num_field("gflops_per_proc").unwrap().to_bits(),
                        c.gflops.to_bits(),
                        "gflops bits differ"
                    );
                    assert_eq!(
                        jc.num_field("percent_of_peak").unwrap().to_bits(),
                        c.pct_peak.to_bits()
                    );
                    assert_eq!(jc.num_field("step_secs").unwrap().to_bits(), c.step_secs.to_bits());
                }
            }
        }
    }
    s.shutdown();
    s.join();
}

/// (ii) Repeated requests hit the cache, observable via `/metrics`; a
/// sweep pre-warms the points its cells decompose into.
#[test]
fn repeated_requests_hit_the_cache_via_metrics() {
    let s = start(2, 32);
    let base = format!("http://{}", s.addr());
    let url = format!("{base}/eval?app=paratec&platform=es&procs=512");
    assert_eq!(client::http_get(&url).unwrap().status, 200);
    let hits0 = metric(&base, &["cache", "hits"]);
    assert_eq!(client::http_get(&url).unwrap().status, 200);
    let hits1 = metric(&base, &["cache", "hits"]);
    assert!(hits1 > hits0, "repeat request must raise cache hits ({hits0} -> {hits1})");

    // Sweep decomposition: a sweep touches paratec|es|procs=512 too, so
    // it must *hit* that warmed entry rather than re-evaluate it…
    let misses_before_sweep = metric(&base, &["cache", "misses"]);
    assert_eq!(client::http_get(&format!("{base}/sweep?app=paratec")).unwrap().status, 200);
    let hits2 = metric(&base, &["cache", "hits"]);
    assert!(hits2 > hits1, "sweep must reuse the warmed point entry");
    // …and the point request afterwards must hit the sweep-warmed cache.
    let other = format!("{base}/eval?app=paratec&platform=x1msp&procs=2048");
    let misses_after_sweep = metric(&base, &["cache", "misses"]);
    assert!(misses_after_sweep > misses_before_sweep, "cold sweep points must miss");
    assert_eq!(client::http_get(&other).unwrap().status, 200);
    let misses_final = metric(&base, &["cache", "misses"]);
    assert_eq!(misses_final, misses_after_sweep, "sweep-warmed point must not miss");
    s.shutdown();
    s.join();
}

/// (iii) With a single worker and a single-slot queue, slow in-flight
/// requests force queue-full 503s (with Retry-After) for newcomers —
/// while every admitted request still completes with 200.
#[test]
fn queue_full_returns_503_without_dropping_in_flight_work() {
    let s = start(1, 1);
    let base = format!("http://{}", s.addr());
    // Occupy the only worker, then the only queue slot, with slow
    // requests — staggered, so the first is already *running* (not
    // queued) when the second is admitted.
    let mut slow = Vec::new();
    for _ in 0..2 {
        let url = format!("{base}/debug/sleep?ms=1500");
        slow.push(std::thread::spawn(move || client::http_get(&url).unwrap()));
        std::thread::sleep(std::time::Duration::from_millis(300));
    }
    // Now the admission queue is full: fast requests must be rejected
    // with 503 + Retry-After (eventually — there is a small window while
    // the second slow request moves from queue to worker).
    let mut saw_503 = None;
    for _ in 0..20 {
        let r = client::http_get(&format!("{base}/healthz")).unwrap();
        if r.status == 503 {
            saw_503 = Some(r);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let rejected = saw_503.expect("a full admission queue must reject with 503");
    assert_eq!(rejected.header("Retry-After"), Some("1"));
    assert!(rejected.body.contains("admission queue full"));
    // The in-flight slow requests still complete successfully.
    for h in slow {
        let r = h.join().unwrap();
        assert_eq!(r.status, 200, "admitted request was dropped");
        assert!(r.body.contains("1500"));
    }
    // After the burst drains, service resumes.
    let mut recovered = false;
    for _ in 0..50 {
        if client::http_get(&format!("{base}/healthz")).unwrap().status == 200 {
            recovered = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(recovered, "server must recover after the queue drains");
    s.shutdown();
    s.join();
}

/// Graceful shutdown: requests admitted before the stop complete with
/// 200; the acceptor drains and joins.
#[test]
fn graceful_shutdown_drains_admitted_requests() {
    let s = start(2, 16);
    let base = format!("http://{}", s.addr());
    let slow = {
        let url = format!("{base}/debug/sleep?ms=800");
        std::thread::spawn(move || client::http_get(&url).unwrap())
    };
    std::thread::sleep(std::time::Duration::from_millis(200));
    s.shutdown();
    s.join(); // join returns only after the pool drained
    let r = slow.join().unwrap();
    assert_eq!(r.status, 200, "in-flight request must complete through shutdown");
}
