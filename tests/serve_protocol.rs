//! HTTP/1.1 keep-alive protocol conformance for the reactor core
//! (ISSUE 8), table-driven against a live listener with raw sockets:
//! `Connection` negotiation across HTTP versions, pipelined-request
//! ordering, slow byte-at-a-time writers, oversized-header rejection,
//! and a mid-request abort that must not hurt the listener.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use hec_serve::engine::{self, AppId, PlatformSel, PointSpec};
use hec_serve::request::Point;
use hec_serve::server::{self, point_response_body, ServeConfig, Server};

fn start() -> Server {
    server::start(ServeConfig { port: 0, workers: 2, queue: 32, cache_capacity: 64 })
        .expect("bind ephemeral port")
}

fn connect(s: &Server) -> (TcpStream, BufReader<TcpStream>) {
    let w = TcpStream::connect(s.addr()).unwrap();
    w.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    w.set_nodelay(true).unwrap();
    let r = BufReader::new(w.try_clone().unwrap());
    (w, r)
}

struct Response {
    status: u16,
    connection: String,
    body: String,
}

/// Reads one framed response; returns `None` on clean EOF before the
/// status line (the server closed the connection).
fn read_response(r: &mut BufReader<TcpStream>) -> Option<Response> {
    let mut status_line = String::new();
    if r.read_line(&mut status_line).unwrap() == 0 {
        return None;
    }
    let status = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let (mut len, mut connection) = (0usize, String::new());
    loop {
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
        if let Some(v) = lower.strip_prefix("connection:") {
            connection = v.trim().to_string();
        }
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).unwrap();
    Some(Response { status, connection, body: String::from_utf8(body).unwrap() })
}

#[test]
fn connection_negotiation_follows_the_http_version_defaults() {
    // (request version, Connection request header, server must keep).
    let table: &[(&str, Option<&str>, bool)] = &[
        ("HTTP/1.1", None, true),               // 1.1 defaults to keep-alive
        ("HTTP/1.1", Some("keep-alive"), true), // explicit keep
        ("HTTP/1.1", Some("close"), false),     // 1.1 opts out
        ("HTTP/1.0", None, false),              // 1.0 defaults to close
        ("HTTP/1.0", Some("keep-alive"), true), // 1.0 opts in
        ("HTTP/1.0", Some("close"), false),
    ];
    let s = start();
    for &(version, header, keep) in table {
        let label = format!("{version} / {header:?}");
        let (mut w, mut r) = connect(&s);
        let hdr = header.map(|h| format!("Connection: {h}\r\n")).unwrap_or_default();
        let req = format!("GET /healthz {version}\r\n{hdr}\r\n");
        w.write_all(req.as_bytes()).unwrap();
        let resp = read_response(&mut r).unwrap_or_else(|| panic!("{label}: no response"));
        assert_eq!(resp.status, 200, "{label}");
        assert_eq!(
            resp.connection,
            if keep { "keep-alive" } else { "close" },
            "{label}: response header must state the negotiated outcome"
        );
        if keep {
            // The connection must survive a second request.
            w.write_all(format!("GET /healthz {version}\r\n{hdr}\r\n").as_bytes()).unwrap();
            let again = read_response(&mut r).unwrap_or_else(|| panic!("{label}: conn was closed"));
            assert_eq!(again.status, 200, "{label}: second request on kept connection");
        } else {
            // The server must actively close: next read sees EOF.
            assert!(read_response(&mut r).is_none(), "{label}: connection should be closed");
        }
    }
    s.shutdown();
    s.join();
}

#[test]
fn pipelined_requests_answer_in_order_with_exact_bytes() {
    let s = start();
    let expect = |app: AppId, sel, spec: PointSpec| {
        point_response_body(
            &Point { app, sel, spec: spec.clone() },
            engine::eval_cell(app, sel, &spec),
        )
    };
    let first =
        expect(AppId::Gtc, PlatformSel::Direct(hec_arch::PlatformId::X1Msp), PointSpec::procs(256));
    let second = expect(
        AppId::Gtc,
        PlatformSel::Direct(hec_arch::PlatformId::Power3),
        PointSpec::procs(256),
    );
    assert_ne!(first, second, "the two pipelined responses must be distinguishable");

    let (mut w, mut r) = connect(&s);
    w.write_all(
        b"GET /eval?app=gtc&platform=x1msp&procs=256 HTTP/1.1\r\n\r\n\
          GET /eval?app=gtc&platform=power3&procs=256 HTTP/1.1\r\n\r\n",
    )
    .unwrap();
    let a = read_response(&mut r).expect("first pipelined response");
    let b = read_response(&mut r).expect("second pipelined response");
    assert_eq!((a.status, b.status), (200, 200));
    assert_eq!(a.body, first, "pipelined responses out of order or drifted");
    assert_eq!(b.body, second, "pipelined responses out of order or drifted");
    s.shutdown();
    s.join();
}

#[test]
fn byte_at_a_time_writer_is_served() {
    // A slow client trickling one byte per write exercises every
    // partial-parse resumption path in the reactor's read state.
    let s = start();
    let (mut w, mut r) = connect(&s);
    for b in b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n" {
        w.write_all(&[*b]).unwrap();
        w.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let resp = read_response(&mut r).expect("slow request still answered");
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("ok"));
    s.shutdown();
    s.join();
}

#[test]
fn oversized_header_is_rejected_with_400_and_close() {
    let s = start();
    let (mut w, mut r) = connect(&s);
    let prefix = b"GET /healthz HTTP/1.1\r\nX-Flood: ";
    w.write_all(prefix).unwrap();
    // Fill the head to exactly MAX_REQUEST_BYTES without ever
    // terminating it: the cap trips the moment the last byte lands,
    // and the server has consumed every byte we sent — so its close
    // is a clean FIN, not an RST that would discard our queued 400.
    let flood = vec![b'a'; server::MAX_REQUEST_BYTES - prefix.len()];
    w.write_all(&flood).unwrap();
    let resp = read_response(&mut r).expect("oversized head earns a response, not a hang");
    assert_eq!(resp.status, 400);
    assert_eq!(resp.connection, "close");
    assert!(read_response(&mut r).is_none(), "connection must close after the 400");

    // The listener survives the abuse.
    let (mut w2, mut r2) = connect(&s);
    w2.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_response(&mut r2).unwrap().status, 200);
    s.shutdown();
    s.join();
}

#[test]
fn aborted_partial_request_leaves_the_listener_healthy() {
    let s = start();
    {
        let (mut w, _r) = connect(&s);
        // Half a request line, then a hard close.
        w.write_all(b"GET /eval?app=gt").unwrap();
    }
    // And a half-read body abort too.
    {
        let (mut w, _r) = connect(&s);
        w.write_all(b"POST /eval HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"app\"").unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    let (mut w, mut r) = connect(&s);
    w.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    match read_response(&mut r) {
        Some(resp) => assert_eq!(resp.status, 200),
        None => panic!("listener died after aborted partial requests"),
    }
    s.shutdown();
    s.join();
}

#[test]
fn read_timeout_errors_are_not_mistaken_for_eof() {
    // Guard on the test helper itself: a stuck server must surface as
    // a timeout error, not be misread as "server closed". Exercised
    // against a socket that never answers.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    let mut r = BufReader::new(stream);
    let mut line = String::new();
    let err = r.read_line(&mut line).unwrap_err();
    assert!(matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut));
}
