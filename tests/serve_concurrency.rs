//! Concurrency soak for the reactor serving core (ISSUE 8): one
//! `hec-serve` instance, ≥1000 *simultaneous* keep-alive connections
//! issuing pipelined requests, and three contracts —
//!
//! 1. zero errors: every request on every connection answers 200, and
//!    `/eval` bodies stay bytewise identical to in-process evaluation;
//! 2. connections are not threads: the process thread count during the
//!    soak grows by the client threads alone — the server multiplexes
//!    all 1000 sockets on its fixed reactor + worker-pool threads;
//! 3. the core's own gauges agree: `connections.max_open` ≥ 1000, and
//!    `connections.open` drains back to zero after the clients leave.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use hec_core::json::Json;
use hec_serve::client;
use hec_serve::engine::{self, AppId, PlatformSel, PointSpec};
use hec_serve::request::Point;
use hec_serve::server::{self, point_response_body, ServeConfig};

const CLIENT_THREADS: usize = 8;
const CONNS_PER_THREAD: usize = 125; // 8 * 125 = 1000 concurrent connections
const PIPELINE_DEPTH: usize = 3;

/// One keep-alive connection: writes go to `w`, framed responses come
/// back through the buffered reader half.
struct Conn {
    w: TcpStream,
    r: BufReader<TcpStream>,
}

fn open_conn(addr: &std::net::SocketAddr) -> Conn {
    let w = TcpStream::connect(addr).expect("connect");
    w.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    w.set_nodelay(true).unwrap();
    let r = BufReader::new(w.try_clone().unwrap());
    Conn { w, r }
}

/// Reads one `Content-Length`-framed response; returns (status, body).
fn read_response(r: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    assert!(r.read_line(&mut status_line).unwrap() > 0, "unexpected EOF before status line");
    let status: u16 = status_line.split_whitespace().nth(1).expect("status code").parse().unwrap();
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap())
}

fn os_threads() -> usize {
    match std::fs::read_dir("/proc/self/task") {
        Ok(dir) => dir.count(),
        // No procfs (non-Linux): the thread-bound assertion degrades
        // to vacuous, the functional assertions still run.
        Err(_) => 0,
    }
}

fn metric(base: &str, path: &[&str]) -> f64 {
    let body = client::http_get(&format!("{base}/metrics")).unwrap().body;
    let mut v = Json::parse(&body).unwrap();
    for p in path {
        v = v.get(p).unwrap_or_else(|| panic!("missing /metrics field {path:?}")).clone();
    }
    v.as_f64().unwrap()
}

#[test]
fn thousand_keepalive_connections_zero_errors_bounded_threads() {
    let s = server::start(ServeConfig { port: 0, workers: 4, queue: 2048, cache_capacity: 1024 })
        .expect("bind ephemeral port");
    let addr = s.addr();
    let base = format!("http://{addr}");

    // The byte-identity witness: one canonical /eval point, evaluated
    // in-process, pipelined on every connection.
    let point = Point {
        app: AppId::Gtc,
        sel: PlatformSel::Direct(hec_arch::PlatformId::X1Msp),
        spec: PointSpec::procs(256),
    };
    let expect_eval =
        point_response_body(&point, engine::eval_cell(point.app, point.sel, &point.spec));
    let eval_path = "/eval?app=gtc&platform=x1msp&procs=256";

    let threads_before = os_threads();
    // Two barriers bracket the window in which all 1000 connections
    // are simultaneously open: [all connected] .. [all batches done].
    let connected = Arc::new(Barrier::new(CLIENT_THREADS + 1));
    let done = Arc::new(Barrier::new(CLIENT_THREADS + 1));

    let workers: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            let (connected, done) = (Arc::clone(&connected), Arc::clone(&done));
            let expect_eval = expect_eval.clone();
            std::thread::spawn(move || {
                let mut conns: Vec<Conn> = (0..CONNS_PER_THREAD).map(|_| open_conn(&addr)).collect();
                connected.wait();
                // Pipeline a batch on every connection first, then
                // collect: the server sees 1000 connections with
                // buffered pipelined requests at once.
                let batch = format!(
                    "GET /healthz HTTP/1.1\r\n\r\nGET {eval_path} HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n"
                );
                for c in &mut conns {
                    c.w.write_all(batch.as_bytes()).unwrap();
                }
                for c in &mut conns {
                    for k in 0..PIPELINE_DEPTH {
                        let (status, body) = read_response(&mut c.r);
                        assert_eq!(status, 200, "pipelined response {k} failed");
                        if k == 1 {
                            assert_eq!(body, expect_eval, "served /eval bytes drifted");
                        }
                    }
                }
                done.wait();
                drop(conns);
            })
        })
        .collect();

    connected.wait();
    // All 1000 connections are open from here until `done`. Sample the
    // process thread count while the soak is in flight.
    let mut peak_threads = 0usize;
    for _ in 0..5 {
        peak_threads = peak_threads.max(os_threads());
        std::thread::sleep(Duration::from_millis(20));
    }
    done.wait();
    for w in workers {
        w.join().unwrap();
    }

    // (2) Connections are not threads: the only growth over the
    // pre-soak count is the client threads themselves (plus a small
    // allowance for transient runtime threads).
    if threads_before > 0 {
        assert!(
            peak_threads <= threads_before + CLIENT_THREADS + 4,
            "thread count grew with connections: {threads_before} -> {peak_threads}"
        );
    }

    // (3) The reactor saw all 1000 at once, and they drain to zero.
    assert!(
        metric(&base, &["connections", "max_open"]) >= (CLIENT_THREADS * CONNS_PER_THREAD) as f64,
        "max_open never reached 1000"
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let open = metric(&base, &["connections", "open"]);
        if open == 0.0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "{open} connections still open after soak");
        std::thread::sleep(Duration::from_millis(25));
    }
    // Keep-alive did its job: 3 requests per connection, one accept.
    let accepted = metric(&base, &["connections", "accepted"]);
    assert!(
        (1000.0..1010.0).contains(&accepted),
        "expected ~1000 accepts (+ the metrics observer), got {accepted}"
    );
    assert!(
        metric(&base, &["connections", "keepalive_requests"])
            >= (CLIENT_THREADS * CONNS_PER_THREAD * (PIPELINE_DEPTH - 1)) as f64,
        "pipelined requests beyond the first per connection are keep-alive wins"
    );

    s.shutdown();
    s.join();
}
