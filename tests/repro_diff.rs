//! Golden-fixture tests for `repro diff` — the cross-commit gate.
//!
//! The committed `baseline/` directory is the golden fixture. Each test
//! copies it, applies one synthetic mutation (counter drift, a 20%
//! throughput drop, a missing artifact, an extra artifact), runs the
//! same `run_cli` entry point the `repro diff` subcommand uses, and
//! asserts the exact exit code plus that the report names the offending
//! file and field. Because both directories are copies of the same
//! baseline, their metadata stamps agree and the thresholded
//! performance comparisons are always active, regardless of which
//! machine the tests run on.

use std::path::{Path, PathBuf};

use bench::diff::{diff_dirs, run_cli, DiffOptions, EXIT_FINDINGS, EXIT_OK, EXIT_USAGE};
use hec_core::json::Json;
use report::diff::{findings_table, FindingKind};

const BASELINE: &str = "baseline";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hec-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Copies the committed baseline into a fresh temp dir.
fn copy_baseline(tag: &str) -> PathBuf {
    let dst = tmpdir(tag);
    for entry in std::fs::read_dir(BASELINE).expect("committed baseline/ must exist") {
        let path = entry.unwrap().path();
        std::fs::copy(&path, dst.join(path.file_name().unwrap())).unwrap();
    }
    dst
}

/// Rewrites one artifact in `dir` through an in-memory JSON edit.
fn mutate(dir: &Path, file: &str, edit: impl FnOnce(&mut Json)) {
    let path = dir.join(file);
    let mut doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    edit(&mut doc);
    std::fs::write(&path, doc.emit_pretty()).unwrap();
}

/// Nudges the first numeric leaf under the given top-level field by
/// `delta`, skipping `timing` subtrees (those are tolerated noise, so
/// mutating them would not produce a finding).
fn bump_first_num(doc: &mut Json, field: &str, delta: f64) {
    fn walk(v: &mut Json, delta: f64) -> bool {
        match v {
            Json::Num(n) => {
                *n += delta;
                true
            }
            Json::Obj(fields) => fields.iter_mut().any(|(k, v)| k != "timing" && walk(v, delta)),
            Json::Arr(items) => items.iter_mut().any(|v| walk(v, delta)),
            _ => false,
        }
    }
    let target = match doc {
        Json::Obj(fields) => {
            &mut fields.iter_mut().find(|(k, _)| k == field).expect("field exists").1
        }
        _ => panic!("artifact root must be an object"),
    };
    assert!(walk(target, delta), "no numeric leaf under {field}");
}

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

#[test]
fn identical_copies_diff_clean() {
    let a = copy_baseline("clean-a");
    let b = copy_baseline("clean-b");
    assert_eq!(run_cli(&args(&[a.to_str().unwrap(), b.to_str().unwrap()])), EXIT_OK);
    std::fs::remove_dir_all(&a).unwrap();
    std::fs::remove_dir_all(&b).unwrap();
}

#[test]
fn baseline_diffs_clean_against_itself_in_place() {
    assert_eq!(run_cli(&args(&[BASELINE, BASELINE])), EXIT_OK);
}

#[test]
fn counter_drift_fails_and_names_the_field() {
    let dir = copy_baseline("drift");
    // A phase counter in a profile is exact-deterministic: nudge one.
    mutate(&dir, "PROFILE_gtc.json", |doc| bump_first_num(doc, "profile", 1.0));
    assert_eq!(run_cli(&args(&[BASELINE, dir.to_str().unwrap()])), EXIT_FINDINGS);

    // The report must carry the offending file and field, not just a
    // pass/fail bit: check through the same engine the CLI prints from.
    let old = bench::artifact::load_dir(Path::new(BASELINE)).unwrap();
    let new = bench::artifact::load_dir(&dir).unwrap();
    let report = diff_dirs(&old, &new, DiffOptions::default());
    let drift: Vec<_> = report.findings.iter().filter(|f| f.kind == FindingKind::Drift).collect();
    assert!(!drift.is_empty());
    assert!(drift.iter().all(|f| f.file == "PROFILE_gtc.json"), "{drift:?}");
    assert!(drift[0].path.starts_with("profile."), "{}", drift[0].path);
    let rendered = findings_table("t", &report.findings).render();
    assert!(rendered.contains("PROFILE_gtc.json"));
    assert!(rendered.contains(&drift[0].path));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn table_cell_drift_fails() {
    let dir = copy_baseline("cell");
    mutate(&dir, "TABLE_lbmhd3d.json", |doc| bump_first_num(doc, "table", 0.5));
    assert_eq!(run_cli(&args(&[BASELINE, dir.to_str().unwrap()])), EXIT_FINDINGS);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn canonical_response_byte_drift_fails() {
    let dir = copy_baseline("canon");
    mutate(&dir, "CANON_eval.json", |doc| {
        // Flip one byte of one snapshotted response body.
        fn first_body(v: &mut Json) -> Option<&mut String> {
            match v {
                Json::Obj(fields) => fields.iter_mut().find_map(|(k, v)| {
                    if k == "body" {
                        match v {
                            Json::Str(s) => Some(s),
                            _ => None,
                        }
                    } else {
                        first_body(v)
                    }
                }),
                Json::Arr(items) => items.iter_mut().find_map(first_body),
                _ => None,
            }
        }
        first_body(doc).expect("a response body").push(' ');
    });
    assert_eq!(run_cli(&args(&[BASELINE, dir.to_str().unwrap()])), EXIT_FINDINGS);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn twenty_percent_throughput_drop_fails_at_default_threshold() {
    let dir = copy_baseline("reg");
    mutate(&dir, "BENCH_serve.json", |doc| {
        let Json::Obj(fields) = doc else { panic!() };
        let tput = &mut fields.iter_mut().find(|(k, _)| k == "throughput_rps").unwrap().1;
        let Json::Num(n) = tput else { panic!() };
        *n *= 0.8; // a 20% drop beats the 15% default tolerance
    });
    let d = dir.to_str().unwrap();
    assert_eq!(run_cli(&args(&[BASELINE, d])), EXIT_FINDINGS);
    // The same drop passes a loosened gate (regression, not drift).
    assert_eq!(run_cli(&args(&[BASELINE, d, "--threshold=0.3"])), EXIT_OK);
    // And the finding is classified as a regression on the right field.
    let old = bench::artifact::load_dir(Path::new(BASELINE)).unwrap();
    let new = bench::artifact::load_dir(&dir).unwrap();
    let report = diff_dirs(&old, &new, DiffOptions::default());
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].kind, FindingKind::Regression);
    assert_eq!(report.findings[0].file, "BENCH_serve.json");
    assert_eq!(report.findings[0].path, "throughput_rps");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_artifact_fails_and_is_named() {
    let dir = copy_baseline("missing");
    std::fs::remove_file(dir.join("PROFILE_paratec.json")).unwrap();
    assert_eq!(run_cli(&args(&[BASELINE, dir.to_str().unwrap()])), EXIT_FINDINGS);
    let old = bench::artifact::load_dir(Path::new(BASELINE)).unwrap();
    let new = bench::artifact::load_dir(&dir).unwrap();
    let report = diff_dirs(&old, &new, DiffOptions::default());
    assert!(report
        .findings
        .iter()
        .any(|f| f.kind == FindingKind::Missing && f.file == "PROFILE_paratec.json"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn extra_artifact_fails_and_is_named() {
    let dir = copy_baseline("extra");
    std::fs::write(
        dir.join("TABLE_surprise.json"),
        Json::obj([("note", Json::Str("synthetic".into()))]).emit_pretty(),
    )
    .unwrap();
    assert_eq!(run_cli(&args(&[BASELINE, dir.to_str().unwrap()])), EXIT_FINDINGS);
    let old = bench::artifact::load_dir(Path::new(BASELINE)).unwrap();
    let new = bench::artifact::load_dir(&dir).unwrap();
    let report = diff_dirs(&old, &new, DiffOptions::default());
    assert!(report
        .findings
        .iter()
        .any(|f| f.kind == FindingKind::Extra && f.file == "TABLE_surprise.json"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unreadable_directories_and_bad_flags_are_usage_errors() {
    assert_eq!(run_cli(&args(&["/nonexistent/old", BASELINE])), EXIT_USAGE);
    assert_eq!(run_cli(&args(&[BASELINE, "/nonexistent/new"])), EXIT_USAGE);
    assert_eq!(run_cli(&args(&[])), EXIT_USAGE);
    assert_eq!(run_cli(&args(&["a", "b", "c"])), EXIT_USAGE);
    assert_eq!(run_cli(&args(&[BASELINE, BASELINE, "--threshold=-1"])), EXIT_USAGE);
    assert_eq!(run_cli(&args(&[BASELINE, BASELINE, "--threshold=zero"])), EXIT_USAGE);
}

#[test]
fn wall_clock_and_sample_count_changes_are_tolerated() {
    let dir = copy_baseline("noise");
    // Simulated nondeterminism: a later creation stamp, a different
    // commit, different sample counts, shifted latency means.
    mutate(&dir, "BENCH_serve.json", |doc| {
        let Json::Obj(fields) = doc else { panic!() };
        for (k, v) in fields.iter_mut() {
            match k.as_str() {
                "meta" => {
                    let Json::Obj(meta) = v else { panic!() };
                    for (mk, mv) in meta.iter_mut() {
                        match mk.as_str() {
                            "created_unix" => *mv = Json::Num(4e9),
                            "git_commit" => *mv = Json::Str("deadbeef0000".into()),
                            "samples" => *mv = Json::Num(99.0),
                            _ => {}
                        }
                    }
                }
                "requests" => *v = Json::Num(123456.0),
                _ => {}
            }
        }
    });
    assert_eq!(run_cli(&args(&[BASELINE, dir.to_str().unwrap()])), EXIT_OK);
    std::fs::remove_dir_all(&dir).unwrap();
}
