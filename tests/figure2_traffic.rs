//! Integration test for the Figure 2 reproduction: the communication
//! topology of FVCAM's two decompositions, captured from real runs.

/// Runs FVCAM on a reduced mesh with 16 ranks and returns the traffic
/// matrix of one steady-state step.
fn capture(pz: usize) -> (Vec<u64>, usize) {
    let ranks = 16;
    let params =
        fvcam::FvParams { nlon: 72, nlat: 49, nlev: 8, pz, courant: 0.3, ..Default::default() };
    let (_, traffic) = msim::run_with_traffic(ranks, move |comm| {
        let mut sim = fvcam::FvSim::new(params, comm.rank(), comm.size());
        sim.step(comm);
        // One synchronized reset: all ranks must be past step 1 before the
        // matrix is cleared, and none may start step 2 before it happens.
        comm.barrier();
        if comm.rank() == 0 {
            comm.traffic().reset();
        }
        comm.barrier();
        sim.step(comm);
    })
    .unwrap();
    (traffic.snapshot(), ranks)
}

#[test]
fn one_d_decomposition_is_nearest_neighbor_only() {
    let (m, p) = capture(1);
    for src in 0..p {
        for dst in 0..p {
            let v = m[src * p + dst];
            let d = (src as i64 - dst as i64).abs();
            if v > 0 {
                assert_eq!(d, 1, "1D traffic at rank distance {d}");
            }
            // The two band-edge pairs must actually communicate.
            if d == 1 {
                assert!(v > 0, "missing neighbor traffic {src}->{dst}");
            }
        }
    }
}

#[test]
fn two_d_decomposition_shows_transpose_lines() {
    // pz=2, py=8: latitude neighbors are rank±1 within a level group;
    // transposes connect rank and rank±py.
    let (m, p) = capture(2);
    let py = 8;
    let mut has_transpose = false;
    for src in 0..p {
        for dst in 0..p {
            let v = m[src * p + dst];
            if v == 0 {
                continue;
            }
            let d = (src as i64 - dst as i64).abs();
            assert!(
                d == 1 || d == py as i64,
                "2D traffic at unexpected rank distance {d} ({src}->{dst})"
            );
            if d == py as i64 {
                has_transpose = true;
            }
        }
    }
    assert!(has_transpose, "the 2D run must show the transpose lines");
}

#[test]
fn two_d_total_volume_is_less_than_one_d() {
    // The paper's Figure 2 observation: the 2D decomposition's total
    // communication volume is significantly reduced versus 1D at the same
    // process count (better surface-to-volume ratio).
    let (m1, _) = capture(1);
    let (m2, _) = capture(2);
    let v1: u64 = m1.iter().sum();
    let v2: u64 = m2.iter().sum();
    assert!((v2 as f64) < (v1 as f64) * 1.05, "2D volume {v2} should not exceed 1D volume {v1}");
}

#[test]
fn traffic_matrix_is_symmetric_for_symmetric_algorithms() {
    // Halo exchanges and transposes are symmetric pair-wise patterns.
    let (m, p) = capture(2);
    for src in 0..p {
        for dst in 0..p {
            assert_eq!(m[src * p + dst], m[dst * p + src], "asymmetric traffic {src}<->{dst}");
        }
    }
}
