//! Cross-crate property tests: invariants that span the runtime, the
//! kernels, and the applications, checked over randomized inputs.

use kernels::fft::{dft_reference, Direction, FftPlan};
use kernels::Complex64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FFT of arbitrary length (1–200) matches the O(n²) DFT.
    #[test]
    fn fft_matches_dft_for_arbitrary_lengths(
        n in 1usize..200,
        seed in 0u64..1000,
    ) {
        let input: Vec<Complex64> = (0..n)
            .map(|i| {
                let t = (i as f64 + 1.0) * (seed as f64 + 1.0) * 0.013;
                Complex64::new(t.sin(), (t * 1.7).cos())
            })
            .collect();
        let mut out = input.clone();
        FftPlan::new(n).execute(&mut out, Direction::Forward);
        let want = dft_reference(&input, Direction::Forward);
        for (a, b) in out.iter().zip(&want) {
            prop_assert!((*a - *b).abs() < 1e-7 * (n as f64), "n={n}");
        }
    }

    /// Allreduce over any rank count and payload equals the sequential fold.
    #[test]
    fn allreduce_equals_sequential_fold(
        procs in 1usize..9,
        len in 1usize..20,
        seed in 0u64..100,
    ) {
        let outs = msim::run(procs, move |comm| {
            let mut v: Vec<f64> = (0..len)
                .map(|i| ((comm.rank() * 31 + i * 7 + seed as usize) % 17) as f64)
                .collect();
            comm.allreduce_f64(msim::ReduceOp::Sum, &mut v);
            v
        })
        .unwrap();
        let want: Vec<f64> = (0..len)
            .map(|i| {
                (0..procs)
                    .map(|r| ((r * 31 + i * 7 + seed as usize) % 17) as f64)
                    .sum()
            })
            .collect();
        for out in outs {
            prop_assert_eq!(&out, &want);
        }
    }

    /// The vertical remap conserves column mass for arbitrary monotone
    /// destination edges.
    #[test]
    fn remap_conserves_mass_for_random_edges(
        splits in proptest::collection::vec(0.05f64..1.0, 2..12),
        values in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        // Build a monotone destination edge set on [0, 1].
        let total: f64 = splits.iter().sum();
        let mut dst = vec![0.0];
        let mut acc = 0.0;
        for s in &splits {
            acc += s / total;
            dst.push(acc.min(1.0));
        }
        *dst.last_mut().unwrap() = 1.0;
        // Degenerate zero-width intervals are rejected by the kernel; keep
        // them strictly increasing.
        for k in 1..dst.len() {
            if dst[k] <= dst[k - 1] {
                dst[k] = dst[k - 1] + 1e-9;
            }
        }
        let n = dst.len() - 1;
        if dst[n] <= dst[n - 1] { return Ok(()); }

        let src: Vec<f64> = (0..=6).map(|k| k as f64 / 6.0).collect();
        let out = fvcam::vertical::remap_column(&src, &values, &dst);
        let m_in = fvcam::vertical::column_mass(&src, &values);
        let m_out = fvcam::vertical::column_mass(&dst, &out);
        prop_assert!((m_in - m_out).abs() < 1e-9, "{m_in} vs {m_out}");
    }

    /// LBMHD equilibrium moments are exact for arbitrary physical states.
    #[test]
    fn lbmhd_equilibrium_moments_exact(
        rho in 0.5f64..2.0,
        ux in -0.1f64..0.1,
        uy in -0.1f64..0.1,
        uz in -0.1f64..0.1,
        bx in -0.2f64..0.2,
        by in -0.2f64..0.2,
        bz in -0.2f64..0.2,
    ) {
        let (feq, geq) = lbmhd::collide::equilibrium(rho, [ux, uy, uz], [bx, by, bz]);
        let s: f64 = feq.iter().sum();
        prop_assert!((s - rho).abs() < 1e-12);
        for a in 0..3 {
            let b: f64 = geq.iter().map(|g| g[a]).sum();
            let want = [bx, by, bz][a];
            prop_assert!((b - want).abs() < 1e-12);
        }
    }

    /// GTC deposition conserves charge for arbitrary ensembles.
    #[test]
    fn gtc_deposition_conserves_charge(seed in 0u64..500, count in 10usize..200) {
        let grid = gtc::geometry::PoloidalGrid {
            mpsi: 10,
            mtheta: 16,
            r_inner: 0.1,
            r_outer: 0.9,
        };
        let parts = gtc::particles::load_uniform(count, 0.15, 0.85, 0.0, 1.0, seed);
        let mut charge: Vec<Vec<f64>> = (0..=3).map(|_| vec![0.0; grid.len()]).collect();
        gtc::deposit::deposit(&grid, &parts, &mut charge, 0.0, 1.0 / 3.0);
        let total: f64 = charge.iter().flatten().sum();
        prop_assert!((total - parts.total_weight()).abs() < 1e-9 * parts.total_weight());
    }

    /// The performance model is monotone in peak rate: scaling a platform's
    /// peak up never slows a compute-bound workload down.
    #[test]
    fn model_is_monotone_in_peak(scale in 1.0f64..4.0) {
        let w = lbmhd::model::workload(64, 16);
        let base = hec_arch::Platform::get(hec_arch::PlatformId::Es);
        let mut faster = base;
        faster.peak_gflops *= scale;
        faster.stream_bw_gbps *= scale;
        let g0 = hec_arch::predict(&base, &w).gflops_per_proc;
        let g1 = hec_arch::predict(&faster, &w).gflops_per_proc;
        prop_assert!(g1 >= g0 * 0.999);
    }
}

/// The sphere basis is inversion-symmetric and the balance covers it for
/// arbitrary processor counts (plain test with a loop: cheaper than a
/// proptest for this size).
#[test]
fn gsphere_balance_covers_for_many_proc_counts() {
    let s = paratec::basis::GSphere::build(10, 10, 10, 6.0);
    for nprocs in 1..=12 {
        let bins = s.balance(nprocs);
        let total: usize = bins.iter().map(|b| s.local_ng(b)).sum();
        assert_eq!(total, s.ng, "nprocs={nprocs}");
    }
}
