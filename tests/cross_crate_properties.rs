//! Cross-crate property tests: invariants that span the runtime, the
//! kernels, and the applications, checked over randomized inputs.
//!
//! Randomization uses `hec_core::Rng` with fixed seeds: every case is a
//! plain `for` loop over derived seeds, so failures are reproducible from
//! the printed seed without a shrinker.

use hec_core::pool::Threads;
use hec_core::Rng;
use kernels::blas::{dgemm, dgemm_reference};
use kernels::fft::{dft_reference, Direction, FftPlan};
use kernels::Complex64;

/// Number of randomized cases per property (matches the former proptest
/// configuration).
const CASES: u64 = 24;

fn random_signal(rng: &mut Rng, n: usize) -> Vec<Complex64> {
    (0..n).map(|_| Complex64::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0))).collect()
}

/// FFT of arbitrary length (1–200) matches the O(n²) DFT.
#[test]
fn fft_matches_dft_for_arbitrary_lengths() {
    let mut rng = Rng::new(0xFF7_D0D);
    for case in 0..CASES {
        let n = 1 + rng.below(199) as usize;
        let input = random_signal(&mut rng, n);
        let mut out = input.clone();
        FftPlan::new(n).execute(&mut out, Direction::Forward);
        let want = dft_reference(&input, Direction::Forward);
        for (a, b) in out.iter().zip(&want) {
            assert!((*a - *b).abs() < 1e-7 * (n as f64), "case {case}, n={n}");
        }
    }
}

/// Inverse(Forward(x)) returns x for arbitrary lengths and signals.
#[test]
fn fft_round_trip_is_identity() {
    let mut rng = Rng::new(0x1D3A_77);
    for case in 0..CASES {
        let n = 1 + rng.below(300) as usize;
        let input = random_signal(&mut rng, n);
        let plan = FftPlan::new(n);
        let mut data = input.clone();
        plan.execute(&mut data, Direction::Forward);
        plan.execute(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(&input) {
            assert!((*a - *b).abs() < 1e-9 * (n as f64), "case {case}, n={n}");
        }
    }
}

/// Parseval: the forward transform preserves Σ|x|² up to the 1/n
/// normalization convention (energy in frequency domain is n × energy in
/// time domain for an unnormalized forward FFT).
#[test]
fn fft_satisfies_parseval() {
    let mut rng = Rng::new(0x9A55E7A1);
    for case in 0..CASES {
        let n = 1 + rng.below(256) as usize;
        let input = random_signal(&mut rng, n);
        let mut out = input.clone();
        FftPlan::new(n).execute(&mut out, Direction::Forward);
        let time_energy: f64 = input.iter().map(|z| z.abs() * z.abs()).sum();
        let freq_energy: f64 = out.iter().map(|z| z.abs() * z.abs()).sum();
        let want = time_energy * n as f64;
        assert!(
            (freq_energy - want).abs() <= 1e-8 * want.max(1.0),
            "case {case}, n={n}: {freq_energy} vs {want}"
        );
    }
}

/// FFT(αx + βy) = α·FFT(x) + β·FFT(y).
#[test]
fn fft_is_linear() {
    let mut rng = Rng::new(0x11EA4);
    for case in 0..CASES {
        let n = 1 + rng.below(128) as usize;
        let plan = FftPlan::new(n);
        let x = random_signal(&mut rng, n);
        let y = random_signal(&mut rng, n);
        let alpha = Complex64::new(rng.range(-2.0, 2.0), rng.range(-2.0, 2.0));
        let beta = Complex64::new(rng.range(-2.0, 2.0), rng.range(-2.0, 2.0));
        let mut combined: Vec<Complex64> =
            x.iter().zip(&y).map(|(a, b)| alpha * *a + beta * *b).collect();
        plan.execute(&mut combined, Direction::Forward);
        let mut fx = x.clone();
        plan.execute(&mut fx, Direction::Forward);
        let mut fy = y.clone();
        plan.execute(&mut fy, Direction::Forward);
        for i in 0..n {
            let want = alpha * fx[i] + beta * fy[i];
            assert!((combined[i] - want).abs() < 1e-8 * (n as f64), "case {case}, n={n}, bin {i}");
        }
    }
}

/// The blocked/unrolled dgemm agrees with the naive triple loop for
/// arbitrary shapes, alpha/beta, and contents.
#[test]
fn dgemm_matches_reference() {
    let mut rng = Rng::new(0xD6E33);
    for case in 0..CASES {
        let m = 1 + rng.below(24) as usize;
        let n = 1 + rng.below(24) as usize;
        let k = 1 + rng.below(24) as usize;
        let alpha = rng.range(-2.0, 2.0);
        let beta = if case % 3 == 0 { 0.0 } else { rng.range(-1.0, 1.0) };
        let a: Vec<f64> = (0..m * k).map(|_| rng.range(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.range(-1.0, 1.0)).collect();
        let c0: Vec<f64> = (0..m * n).map(|_| rng.range(-1.0, 1.0)).collect();
        let mut fast = c0.clone();
        let mut slow = c0.clone();
        dgemm(m, n, k, alpha, &a, &b, beta, &mut fast);
        dgemm_reference(m, n, k, alpha, &a, &b, beta, &mut slow);
        for (i, (x, y)) in fast.iter().zip(&slow).enumerate() {
            assert!(
                (x - y).abs() < 1e-11 * (k as f64),
                "case {case}, ({m}x{n}x{k}) element {i}: {x} vs {y}"
            );
        }
    }
}

/// Allreduce over any rank count and payload equals the sequential fold.
#[test]
fn allreduce_equals_sequential_fold() {
    let mut rng = Rng::new(0xA11_4ED);
    for case in 0..CASES {
        let procs = 1 + rng.below(8) as usize;
        let len = 1 + rng.below(19) as usize;
        let seed = rng.below(100) as usize;
        let outs = msim::run(procs, move |comm| {
            let mut v: Vec<f64> =
                (0..len).map(|i| ((comm.rank() * 31 + i * 7 + seed) % 17) as f64).collect();
            comm.allreduce_f64(msim::ReduceOp::Sum, &mut v);
            v
        })
        .unwrap();
        let want: Vec<f64> = (0..len)
            .map(|i| (0..procs).map(|r| ((r * 31 + i * 7 + seed) % 17) as f64).sum())
            .collect();
        for out in outs {
            assert_eq!(out, want, "case {case}, procs={procs}, len={len}");
        }
    }
}

/// The vertical remap conserves column mass for arbitrary monotone
/// destination edges.
#[test]
fn remap_conserves_mass_for_random_edges() {
    let mut rng = Rng::new(0x4E3A_9);
    for case in 0..CASES {
        // Build a monotone destination edge set on [0, 1].
        let nsplit = 2 + rng.below(10) as usize;
        let splits: Vec<f64> = (0..nsplit).map(|_| rng.range(0.05, 1.0)).collect();
        let values: Vec<f64> = (0..6).map(|_| rng.range(-5.0, 5.0)).collect();
        let total: f64 = splits.iter().sum();
        let mut dst = vec![0.0];
        let mut acc = 0.0;
        for s in &splits {
            acc += s / total;
            dst.push(acc.min(1.0));
        }
        *dst.last_mut().unwrap() = 1.0;
        // Degenerate zero-width intervals are rejected by the kernel; keep
        // them strictly increasing.
        for k in 1..dst.len() {
            if dst[k] <= dst[k - 1] {
                dst[k] = dst[k - 1] + 1e-9;
            }
        }
        let n = dst.len() - 1;
        if dst[n] <= dst[n - 1] {
            continue;
        }

        let src: Vec<f64> = (0..=6).map(|k| k as f64 / 6.0).collect();
        let out = fvcam::vertical::remap_column(&src, &values, &dst);
        let m_in = fvcam::vertical::column_mass(&src, &values);
        let m_out = fvcam::vertical::column_mass(&dst, &out);
        assert!((m_in - m_out).abs() < 1e-9, "case {case}: {m_in} vs {m_out}");
    }
}

/// LBMHD equilibrium moments are exact for arbitrary physical states.
#[test]
fn lbmhd_equilibrium_moments_exact() {
    let mut rng = Rng::new(0x1BE0);
    for case in 0..CASES {
        let rho = rng.range(0.5, 2.0);
        let u = [rng.range(-0.1, 0.1), rng.range(-0.1, 0.1), rng.range(-0.1, 0.1)];
        let b = [rng.range(-0.2, 0.2), rng.range(-0.2, 0.2), rng.range(-0.2, 0.2)];
        let (feq, geq) = lbmhd::collide::equilibrium(rho, u, b);
        let s: f64 = feq.iter().sum();
        assert!((s - rho).abs() < 1e-12, "case {case}");
        for a in 0..3 {
            let got: f64 = geq.iter().map(|g| g[a]).sum();
            assert!((got - b[a]).abs() < 1e-12, "case {case}, component {a}");
        }
    }
}

/// With relaxation switched off (ω = 0) the fused collide+stream step is a
/// pure upwind gather: under a periodic halo every per-direction interior
/// multiset of values is exactly permuted, never changed.
#[test]
fn lbmhd_stream_is_a_permutation_when_collision_is_off() {
    use lbmhd::lattice::Q;
    use lbmhd::state::Block;

    /// Fill the halo by periodic wrap from the block's own interior.
    fn wrap_halo(b: &mut Block) {
        let (px, py, pz) = (b.px(), b.py(), b.pz());
        let (nx, ny, nz) = (b.nx, b.ny, b.nz);
        let wrap = |v: usize, n: usize| -> usize {
            if v == 0 {
                n
            } else if v == n + 1 {
                1
            } else {
                v
            }
        };
        let lane = b.padded_len();
        for arr_ix in 0..(Q + Q * 3) {
            for k in 0..pz {
                for j in 0..py {
                    for i in 0..px {
                        let (wi, wj, wk) = (wrap(i, nx), wrap(j, ny), wrap(k, nz));
                        if (wi, wj, wk) != (i, j, k) {
                            let (s, d) = (wi + px * (wj + py * wk), i + px * (j + py * k));
                            if arr_ix < Q {
                                b.f[arr_ix * lane + d] = b.f[arr_ix * lane + s];
                            } else {
                                let qa = arr_ix - Q;
                                b.g[qa * lane + d] = b.g[qa * lane + s];
                            }
                        }
                    }
                }
            }
        }
    }

    fn sorted_interior(b: &Block, arr: &[f64]) -> Vec<f64> {
        let mut v: Vec<f64> = (0..b.nz)
            .flat_map(|k| {
                (0..b.ny).flat_map(move |j| (0..b.nx).map(move |i| arr[b.interior_idx(i, j, k)]))
            })
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    let mut rng = Rng::new(0x57E3A);
    for case in 0..4 {
        let n = 4 + case; // 4..8 per axis keeps this fast
        let mut src = Block::zeros(n, n, n);
        for q in 0..Q {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let ix = src.interior_idx(i, j, k);
                        src.f_lane_mut(q)[ix] = rng.range(-1.0, 1.0);
                        for a in 0..3 {
                            src.g_lane_mut(q, a)[ix] = rng.range(-1.0, 1.0);
                        }
                    }
                }
            }
        }
        wrap_halo(&mut src);
        let mut dst = Block::zeros(n, n, n);
        let updated = lbmhd::collide::step(&src, &mut dst, 0.0, 0.0);
        assert_eq!(updated, n * n * n);
        for q in 0..Q {
            assert_eq!(
                sorted_interior(&src, src.f_lane(q)),
                sorted_interior(&dst, dst.f_lane(q)),
                "case {case}: f[{q}] multiset changed under pure streaming"
            );
            for a in 0..3 {
                assert_eq!(
                    sorted_interior(&src, src.g_lane(q, a)),
                    sorted_interior(&dst, dst.g_lane(q, a)),
                    "case {case}: g[{q}][{a}] multiset changed under pure streaming"
                );
            }
        }
    }
}

/// GTC deposition conserves charge for arbitrary ensembles.
#[test]
fn gtc_deposition_conserves_charge() {
    let mut rng = Rng::new(0x67CDE9);
    for case in 0..CASES {
        let seed = rng.below(500);
        let count = 10 + rng.below(190) as usize;
        let grid = gtc::geometry::PoloidalGrid { mpsi: 10, mtheta: 16, r_inner: 0.1, r_outer: 0.9 };
        let parts = gtc::particles::load_uniform(count, 0.15, 0.85, 0.0, 1.0, seed as u64);
        let mut charge: Vec<Vec<f64>> = (0..=3).map(|_| vec![0.0; grid.len()]).collect();
        gtc::deposit::deposit(&grid, &parts, &mut charge, 0.0, 1.0 / 3.0);
        let total: f64 = charge.iter().flatten().sum();
        assert!(
            (total - parts.total_weight()).abs() < 1e-9 * parts.total_weight(),
            "case {case}, count={count}"
        );
    }
}

/// The performance model is monotone in peak rate: scaling a platform's
/// peak up never slows a compute-bound workload down.
#[test]
fn model_is_monotone_in_peak() {
    let mut rng = Rng::new(0x30DE1);
    for case in 0..CASES {
        let scale = rng.range(1.0, 4.0);
        let w = lbmhd::model::workload(64, 16);
        let base = hec_arch::Platform::get(hec_arch::PlatformId::Es);
        let mut faster = base;
        faster.peak_gflops *= scale;
        faster.stream_bw_gbps *= scale;
        let g0 = hec_arch::predict(&base, &w).gflops_per_proc;
        let g1 = hec_arch::predict(&faster, &w).gflops_per_proc;
        assert!(g1 >= g0 * 0.999, "case {case}, scale={scale}");
    }
}

/// Threaded charge deposition is bitwise invariant across worker counts:
/// the chunk decomposition depends only on the particle count, and the
/// per-chunk partial grids are reduced in fixed chunk order.
#[test]
fn gtc_threaded_deposit_is_bitwise_invariant_across_workers() {
    let grid = gtc::geometry::PoloidalGrid { mpsi: 16, mtheta: 32, r_inner: 0.1, r_outer: 0.9 };
    let count = 3 * gtc::deposit::DEPOSIT_CHUNK + 11;
    let parts = gtc::particles::load_uniform(count, 0.15, 0.85, 0.0, 1.0, 99);
    let run = |threads: Threads| -> Vec<Vec<u64>> {
        let mut charge: Vec<Vec<f64>> = (0..=2).map(|_| vec![0.0; grid.len()]).collect();
        gtc::deposit::deposit_threaded(&grid, &parts, &mut charge, 0.0, 0.5, &threads);
        charge.iter().map(|p| p.iter().map(|v| v.to_bits()).collect()).collect()
    };
    let reference = run(Threads::serial());
    for workers in [1usize, 2, 4] {
        assert_eq!(run(Threads::new(workers)), reference, "workers={workers}");
    }
    // And the threaded result still conserves total charge.
    let total: f64 = reference.iter().flatten().map(|&b| f64::from_bits(b)).sum();
    assert!((total - parts.total_weight()).abs() < 1e-9 * parts.total_weight());
}

/// Row-banded parallel GEMM is bitwise identical to the serial kernel for
/// any worker count: each output row's update order never changes, only
/// which worker owns it.
#[test]
fn parallel_gemm_is_bitwise_identical_to_serial() {
    use kernels::blas::{par_dgemm, par_zgemm, zgemm, Trans};
    let mut rng = Rng::new(0xBAD_9E33);
    let (m, n, k) = (37usize, 29, 23);
    let a: Vec<f64> = (0..m * k).map(|_| rng.range(-1.0, 1.0)).collect();
    let b: Vec<f64> = (0..k * n).map(|_| rng.range(-1.0, 1.0)).collect();
    let c0: Vec<f64> = (0..m * n).map(|_| rng.range(-1.0, 1.0)).collect();
    let mut serial = c0.clone();
    dgemm(m, n, k, 0.75, &a, &b, 0.5, &mut serial);
    for workers in [1usize, 2, 4] {
        let mut par = c0.clone();
        par_dgemm(&Threads::new(workers), m, n, k, 0.75, &a, &b, 0.5, &mut par);
        let same = serial.iter().zip(&par).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "par_dgemm workers={workers} diverged from serial");
    }

    let az: Vec<Complex64> =
        (0..m * k).map(|_| Complex64::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0))).collect();
    let bz: Vec<Complex64> =
        (0..k * n).map(|_| Complex64::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0))).collect();
    let alpha = Complex64::new(0.9, -0.2);
    let beta = Complex64::new(0.1, 0.3);
    for ta in [Trans::None, Trans::ConjTrans] {
        let mut serial: Vec<Complex64> = vec![Complex64::ZERO; m * n];
        zgemm(ta, m, n, k, alpha, &az, &bz, beta, &mut serial);
        for workers in [1usize, 2, 4] {
            let mut par: Vec<Complex64> = vec![Complex64::ZERO; m * n];
            par_zgemm(&Threads::new(workers), ta, m, n, k, alpha, &az, &bz, beta, &mut par);
            let same = serial
                .iter()
                .zip(&par)
                .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits());
            assert!(same, "par_zgemm {ta:?} workers={workers} diverged from serial");
        }
    }
}

/// The distributed FFT's forward∘inverse round trip is unchanged by the
/// worker count: every stage either owns disjoint output or reduces in a
/// fixed order, so 1, 2, and 4 workers produce the same bits.
#[test]
fn distfft_round_trip_is_bitwise_stable_across_threads() {
    let sphere = paratec::basis::GSphere::build(8, 8, 8, 5.0);
    let run = |workers: usize| -> Vec<(Vec<u64>, Vec<u64>)> {
        let s = sphere.clone();
        msim::run(2, move |comm| {
            let mut fft = paratec::fftdist::DistFft::with_threads(
                s.clone(),
                comm.rank(),
                comm.size(),
                Threads::new(workers),
            );
            let coeffs: Vec<Complex64> = (0..fft.local_ng())
                .map(|i| {
                    let t = (i as f64 + 100.0 * comm.rank() as f64) * 0.7;
                    Complex64::new(t.sin(), (t * 1.3).cos() * 0.5)
                })
                .collect();
            let slab = fft.to_real_space(comm, &coeffs);
            let back = fft.to_fourier_space(comm, &slab);
            for (orig, got) in coeffs.iter().zip(&back) {
                assert!((*orig - *got).abs() < 1e-10, "round trip drifted");
            }
            let bits = |v: &[Complex64]| -> Vec<u64> {
                v.iter().flat_map(|z| [z.re.to_bits(), z.im.to_bits()]).collect()
            };
            (bits(&slab), bits(&back))
        })
        .unwrap()
    };
    let reference = run(1);
    for workers in [2usize, 4] {
        assert_eq!(run(workers), reference, "workers={workers}");
    }
}

/// Collective cost models are monotone: more bytes or more processors
/// never make an allreduce / bcast / alltoall / transpose cheaper, for
/// randomized but physical network parameters over every topology.
#[test]
fn collective_costs_are_monotone_in_bytes_and_procs() {
    use hec_net::collectives::{allreduce_secs, alltoall_secs, bcast_secs, transpose_secs};
    use hec_net::{NetworkModel, NetworkParams, Topology};

    let mut rng = Rng::new(0xC0117EC);
    for case in 0..CASES {
        let params = NetworkParams {
            latency_us: rng.range(0.5, 20.0),
            bw_gbps: rng.range(0.1, 16.0),
            cpus_per_node: 1 << rng.below(5),
            intranode_bw_gbps: rng.range(1.0, 40.0),
            topology: Topology::ALL[rng.below(Topology::ALL.len())],
        };

        // Monotone in bytes at a fixed processor count.
        let procs = 2 + rng.below(510) as usize;
        let net = NetworkModel::new(params, procs);
        let mut bytes = 8usize;
        let mut prev = [0.0f64; 4];
        while bytes <= 1 << 22 {
            let cur = [
                allreduce_secs(&net, procs, bytes),
                bcast_secs(&net, procs, bytes),
                alltoall_secs(&net, procs, bytes),
                transpose_secs(&net, procs, bytes * procs),
            ];
            for (i, (c, p)) in cur.iter().zip(&prev).enumerate() {
                assert!(c.is_finite() && *c >= 0.0, "case {case}: cost {i} not physical");
                assert!(c >= p, "case {case}: cost {i} fell {p} -> {c} at {bytes} B, P={procs}");
            }
            prev = cur;
            bytes <<= 2;
        }

        // Monotone in processors at a fixed payload. Power-of-two sizes
        // keep the transpose's per-pair integer division exact.
        let bytes = 1usize << (10 + rng.below(12));
        let mut prev = [0.0f64; 4];
        for procs in [1usize, 2, 4, 16, 64, 256, 1024] {
            let net = NetworkModel::new(params, procs);
            let cur = [
                allreduce_secs(&net, procs, bytes),
                bcast_secs(&net, procs, bytes),
                alltoall_secs(&net, procs, bytes),
                transpose_secs(&net, procs, bytes),
            ];
            for (i, (c, p)) in cur.iter().zip(&prev).enumerate() {
                assert!(c >= p, "case {case}: cost {i} fell {p} -> {c} at P={procs}, {bytes} B");
            }
            prev = cur;
        }
    }
}

/// The traffic matrix of a halo exchange is symmetric: neighboring ranks
/// trade faces of equal cross-section, so bytes and message counts match
/// in both directions for every pair.
#[test]
fn lbmhd_halo_traffic_matrix_is_symmetric() {
    use lbmhd::sim::{SimParams, Simulation};

    for (n, procs) in [(12usize, 8usize), (10, 4)] {
        let (_, traffic) = msim::run_with_traffic(procs, move |comm| {
            let mut sim =
                Simulation::new(SimParams { n, ..Default::default() }, comm.rank(), comm.size());
            sim.step(comm);
        })
        .unwrap();
        assert!(traffic.total_bytes() > 0, "n={n}, procs={procs}: no halo traffic captured");
        for a in 0..procs {
            for b in 0..a {
                assert_eq!(
                    traffic.pair(a, b),
                    traffic.pair(b, a),
                    "n={n}, procs={procs}: bytes {a}<->{b} asymmetric"
                );
                assert_eq!(
                    traffic.pair_msgs(a, b),
                    traffic.pair_msgs(b, a),
                    "n={n}, procs={procs}: messages {a}<->{b} asymmetric"
                );
            }
            assert_eq!(traffic.pair(a, a), 0, "rank {a} sent bytes to itself");
        }
    }
}

/// Probes are inert outside a capture: instrumented applications run with
/// probes disabled leave no counter state behind, and a capture sees only
/// the events of its own closure.
#[test]
fn probe_counters_do_not_leak_outside_a_capture() {
    use hec_core::probe;

    assert!(!probe::enabled());
    // Instrumented work with no capture in flight: every probe is a no-op.
    let params =
        gtc::sim::GtcParams { particles_per_domain: 200, ndomains: 2, ..Default::default() };
    msim::run(2, move |world| {
        let mut sim = gtc::sim::GtcSim::new(params, world);
        sim.step(world);
    })
    .unwrap();
    assert!(!probe::enabled());

    // A subsequent capture sees only its own closure's events — nothing
    // from the uninstrumented run above leaks in.
    let ((), cap) = probe::capture(|| {
        msim::run(2, |comm| {
            let p = lbmhd::sim::SimParams { n: 6, ..Default::default() };
            let mut sim = lbmhd::sim::Simulation::new(p, comm.rank(), comm.size());
            sim.step(comm);
        })
        .unwrap();
    });
    assert!(!cap.is_empty());
    for phase in cap.counters.keys() {
        assert!(!phase.starts_with("gtc/"), "phase '{phase}' leaked from outside the capture");
    }

    // And a capture over nothing is empty.
    let ((), empty) = probe::capture(|| {});
    assert!(empty.is_empty());
    assert!(!probe::enabled());
}

/// Captured counters are bitwise invariant across shared-memory worker
/// counts: a composite GTC + LBMHD run records identical per-phase event
/// totals with 1, 2, or 4 workers per rank (timings differ; counters
/// never do).
#[test]
fn captures_are_bitwise_invariant_across_worker_counts() {
    use hec_core::probe;

    let run = |workers: usize| {
        let ((), cap) = probe::capture(|| {
            let params = gtc::sim::GtcParams {
                particles_per_domain: 300,
                ndomains: 2,
                threads: workers,
                ..Default::default()
            };
            msim::run(2, move |world| {
                let mut sim = gtc::sim::GtcSim::new(params, world);
                sim.step(world);
            })
            .unwrap();
            msim::run(2, move |comm| {
                let p = lbmhd::sim::SimParams { n: 6, threads: workers, ..Default::default() };
                let mut sim = lbmhd::sim::Simulation::new(p, comm.rank(), comm.size());
                sim.step(comm);
            })
            .unwrap();
        });
        cap.deterministic().clone()
    };
    let reference = run(1);
    assert!(!reference.is_empty());
    for workers in [2usize, 4] {
        assert_eq!(run(workers), reference, "counters changed with {workers} workers");
    }
}

/// The sphere basis is inversion-symmetric and the balance covers it for
/// arbitrary processor counts.
#[test]
fn gsphere_balance_covers_for_many_proc_counts() {
    let s = paratec::basis::GSphere::build(10, 10, 10, 6.0);
    for nprocs in 1..=12 {
        let bins = s.balance(nprocs);
        let total: usize = bins.iter().map(|b| s.local_ng(b)).sum();
        assert_eq!(total, s.ng, "nprocs={nprocs}");
    }
}
