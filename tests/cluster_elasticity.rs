//! End-to-end tests for cluster elasticity (ISSUE 10): live membership
//! under load. The contracts: (i) a seeded churn plan — scale-ups and a
//! drain pinned to admitted-request indices — loses zero requests and
//! changes zero bytes, and the number of rerouted keys is *exactly* the
//! ring-predicted set; (ii) the admin scale/drain endpoints round-trip
//! with hard input validation; (iii) the autoscaler makes deterministic
//! up and down decisions from the routed load alone, bounded by
//! min/max, and a drained replica retires with zero open connections.

use std::time::Duration;

use hec_cluster::{
    owners_diff, stable_hash, AutoscaleConfig, ClusterConfig, FaultPlan, HealthConfig, Ring,
    DEFAULT_VNODES,
};
use hec_core::json::Json;
use hec_serve::client::{self, RetryPolicy};
use hec_serve::request::Point;
use hec_serve::server::{self, ServeConfig};

fn cluster_cfg(replicas: usize, faults: FaultPlan) -> ClusterConfig {
    ClusterConfig {
        replicas,
        replica: ServeConfig { port: 0, workers: 2, queue: 32, cache_capacity: 512 },
        retry: RetryPolicy {
            base_ms: 5,
            cap_ms: 50,
            max_retries: 4,
            timeout: Duration::from_secs(10),
        },
        health: HealthConfig {
            interval: Duration::from_millis(50),
            probe_timeout: Duration::from_millis(300),
        },
        faults,
        ..ClusterConfig::default()
    }
}

/// The byte-identity workload: the same eight queries the static
/// cluster e2e uses, paired with the single-process oracle bytes.
fn expected_bodies() -> Vec<(String, String)> {
    [
        "app=gtc&platform=x1msp&procs=256",
        "app=gtc&platform=4ssp&procs=512",
        "app=lbmhd&platform=es&procs=1024&n=1024",
        "app=lbmhd&platform=sx8&procs=512&n=512",
        "app=paratec&platform=power3&procs=128",
        "app=paratec&platform=es&procs=512",
        "app=fvcam&platform=power3&procs=256&pz=4",
        "app=fvcam&platform=x1msp&procs=336&pz=7",
    ]
    .into_iter()
    .map(|q| {
        let p = Point::from_query(q).expect(q);
        (q.to_string(), server::point_response_body(&p, p.eval()))
    })
    .collect()
}

fn metrics(base: &str) -> Json {
    let body = client::http_get(&format!("{base}/metrics")).unwrap().body;
    Json::parse(&body).unwrap()
}

fn metric(base: &str, path: &[&str]) -> f64 {
    let doc = metrics(base);
    let mut v = &doc;
    for p in path {
        v = v.get(p).unwrap_or_else(|| panic!("missing /metrics field {path:?}"));
    }
    v.as_f64().unwrap()
}

/// Member IDs listed in `cluster.replicas` (current epoch only).
fn member_ids(base: &str) -> Vec<usize> {
    match metrics(base).get("cluster").and_then(|c| c.get("replicas")) {
        Some(Json::Arr(v)) => {
            v.iter().map(|r| r.get("index").and_then(|i| i.as_f64()).unwrap() as usize).collect()
        }
        other => panic!("cluster.replicas missing: {other:?}"),
    }
}

/// `connections_open_after_drain` for retired member `i`.
fn retired_connections(base: &str, i: usize) -> Option<f64> {
    match metrics(base).get("cluster").and_then(|c| c.get("retired")) {
        Some(Json::Arr(v)) => v
            .iter()
            .find(|r| r.get("index").and_then(|x| x.as_f64()) == Some(i as f64))
            .and_then(|r| r.get("connections_open_after_drain").and_then(|c| c.as_f64())),
        other => panic!("cluster.retired missing: {other:?}"),
    }
}

/// The exact number of workload keys whose owner set changes across
/// one membership transition — the ring-theoretic oracle the router's
/// `handoff.keys_moved` counter must match.
fn predicted_moves(old_members: &[usize], new_members: &[usize], r: usize) -> u64 {
    let old = Ring::over(old_members, DEFAULT_VNODES, r);
    let new = Ring::over(new_members, DEFAULT_VNODES, r);
    let diff = owners_diff(&old, &new);
    expected_bodies()
        .iter()
        .filter(|(q, _)| {
            let key = Point::from_query(q).unwrap().canonical_key();
            diff.covers(stable_hash(key.as_bytes()))
        })
        .count() as u64
}

/// (i) Churn pinned to the admitted clock — two scale-ups and a drain
/// mid-load — is invisible to clients: every request answers 200 with
/// the oracle bytes, and the rebalance moves exactly the keys the ring
/// diff predicts, no more.
#[test]
fn seeded_churn_plan_loses_nothing_and_moves_exactly_the_predicted_keys() {
    let plan =
        FaultPlan::add_at(24).merged(FaultPlan::add_at(32)).merged(FaultPlan::drain_at(1, 44));
    let c = hec_cluster::start(cluster_cfg(2, plan)).unwrap();
    let base = format!("http://{}", c.addr());
    let cases = expected_bodies();
    let policy =
        RetryPolicy { base_ms: 5, cap_ms: 50, max_retries: 6, timeout: Duration::from_secs(10) };

    // Sequential requests advance the admitted index 0,1,2,…: the whole
    // workload is tracked by index 8, well before the first flip at 24.
    for i in 0..64u64 {
        let (query, want) = &cases[(i as usize) % cases.len()];
        let out = client::get_with_retry(&format!("{base}/eval?{query}"), &policy, i)
            .unwrap_or_else(|e| panic!("request {i} ({query}) failed in transport: {e}"));
        assert_eq!(out.response.status, 200, "request {i} ({query})");
        assert_eq!(out.response.body, *want, "request {i}: bytes drifted under churn");
    }

    assert_eq!(metric(&base, &["errors"]), 0.0, "churn must admit zero errors");
    assert_eq!(metric(&base, &["faults", "remaining"]), 0.0);
    assert_eq!(metric(&base, &["membership", "events"]), 3.0);
    assert_eq!(metric(&base, &["membership", "members", "current"]), 3.0);
    assert_eq!(metric(&base, &["membership", "members", "added_total"]), 2.0);
    assert_eq!(metric(&base, &["membership", "members", "removed_total"]), 1.0);
    assert_eq!(metric(&base, &["cluster", "epoch"]), 3.0);
    assert_eq!(member_ids(&base), vec![0, 2, 3], "epoch 3 members");

    // The drained replica completed its graceful drain: zero open
    // connections at reactor exit, and it left the live table.
    assert_eq!(retired_connections(&base, 1), Some(0.0));

    // keys_moved is exact: {0,1} -> {0,1,2} -> {0,1,2,3} -> {0,2,3},
    // R=2, summed over the workload keys the ring diff covers.
    let want_moved = predicted_moves(&[0, 1], &[0, 1, 2], 2)
        + predicted_moves(&[0, 1, 2], &[0, 1, 2, 3], 2)
        + predicted_moves(&[0, 1, 2, 3], &[0, 2, 3], 2);
    assert_eq!(metric(&base, &["membership", "handoff", "keys_moved"]), want_moved as f64);
    assert!(
        metric(&base, &["membership", "handoff", "warm_hits"]) >= 1.0,
        "at least one moved key must have been warmed onto its new primary"
    );
    c.shutdown();
    c.join();
}

/// (ii) The admin surface round-trips: scale-up adds a member and
/// reports the handoff, drain retires one, and malformed or illegal
/// targets are rejected without touching membership.
#[test]
fn admin_scale_up_and_drain_round_trip_with_validation() {
    let c = hec_cluster::start(cluster_cfg(2, FaultPlan::none())).unwrap();
    let base = format!("http://{}", c.addr());

    let up = client::http_post(&format!("{base}/admin/scale-up"), "").unwrap();
    assert_eq!(up.status, 200);
    let doc = Json::parse(&up.body).unwrap();
    assert_eq!(doc.get("added").and_then(|v| v.as_f64()), Some(2.0));
    assert_eq!(doc.get("epoch").and_then(|v| v.as_f64()), Some(1.0));
    assert_eq!(member_ids(&base), vec![0, 1, 2]);

    let drained = client::http_post(&format!("{base}/admin/drain/1"), "").unwrap();
    assert_eq!(drained.status, 200);
    let doc = Json::parse(&drained.body).unwrap();
    assert_eq!(doc.get("connections_open_after_drain").and_then(|v| v.as_f64()), Some(0.0));
    assert_eq!(member_ids(&base), vec![0, 2]);

    // A drained member cannot drain again, restart, or be made up.
    assert_eq!(client::http_post(&format!("{base}/admin/drain/1"), "").unwrap().status, 400);
    assert_eq!(
        client::http_post(&format!("{base}/admin/restart?replica=1"), "").unwrap().status,
        400,
        "retired replicas must not restart"
    );
    assert_eq!(client::http_post(&format!("{base}/admin/drain/99"), "").unwrap().status, 400);
    assert_eq!(client::http_post(&format!("{base}/admin/drain/xyz"), "").unwrap().status, 400);
    assert_eq!(
        client::http_get(&format!("{base}/metrics")).unwrap().status,
        200,
        "metrics still serving after rejected admin calls"
    );

    // Requests still route and answer the oracle bytes on {0, 2}.
    let (query, want) = &expected_bodies()[0];
    let r = client::http_get(&format!("{base}/eval?{query}")).unwrap();
    assert_eq!((r.status, r.body.as_str()), (200, want.as_str()));
    c.shutdown();
    c.join();
}

/// (iii-up) With an every-request tick and a 1µs p99 threshold, any
/// routed traffic reads as sustained load: the autoscaler scales up
/// once and is then pinned by `max`.
#[test]
fn autoscaler_scales_up_under_load_and_respects_max() {
    let mut cfg = cluster_cfg(2, FaultPlan::none());
    cfg.autoscale = Some(AutoscaleConfig {
        tick_every: 1,
        up_queue_depth: 1000, // never triggers; the p99 signal drives it
        up_p99_us: 1,
        up_ticks: 2,
        down_queue_depth: 0,
        down_ticks: 10_000, // never triggers
        cooldown_ticks: 2,
        min: 2,
        max: 3,
    });
    let c = hec_cluster::start(cfg).unwrap();
    let base = format!("http://{}", c.addr());
    let cases = expected_bodies();
    for i in 0..20usize {
        let (query, want) = &cases[i % cases.len()];
        let r = client::http_get(&format!("{base}/eval?{query}")).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(&r.body, want, "bytes must not drift across an autoscale flip");
    }
    assert_eq!(metric(&base, &["membership", "autoscale", "up"]), 1.0, "max bounds the ups");
    assert_eq!(metric(&base, &["membership", "autoscale", "down"]), 0.0);
    assert_eq!(metric(&base, &["membership", "members", "current"]), 3.0);
    assert_eq!(metric(&base, &["errors"]), 0.0);
    c.shutdown();
    c.join();
}

/// (iii-down) With an unreachable busy threshold every tick reads as
/// idle: the autoscaler drains the highest member after `down_ticks`
/// and is then pinned by `min`; the victim retires cleanly.
#[test]
fn autoscaler_drains_idle_capacity_down_to_min() {
    let mut cfg = cluster_cfg(3, FaultPlan::none());
    cfg.autoscale = Some(AutoscaleConfig {
        tick_every: 1,
        up_queue_depth: 1000,
        up_p99_us: 1 << 40, // unreachably slow: every tick is idle
        up_ticks: 2,
        down_queue_depth: 1000,
        down_ticks: 4,
        cooldown_ticks: 0,
        min: 2,
        max: 3,
    });
    let c = hec_cluster::start(cfg).unwrap();
    let base = format!("http://{}", c.addr());
    let cases = expected_bodies();
    for i in 0..16usize {
        let (query, want) = &cases[i % cases.len()];
        let r = client::http_get(&format!("{base}/eval?{query}")).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(&r.body, want, "bytes must not drift across an autoscale drain");
    }
    assert_eq!(metric(&base, &["membership", "autoscale", "down"]), 1.0, "min bounds the downs");
    assert_eq!(metric(&base, &["membership", "autoscale", "up"]), 0.0);
    assert_eq!(member_ids(&base), vec![0, 1], "down drains the highest member");
    assert_eq!(retired_connections(&base, 2), Some(0.0), "victim drains to zero connections");
    assert_eq!(metric(&base, &["errors"]), 0.0);
    c.shutdown();
    c.join();
}
