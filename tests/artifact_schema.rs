//! `hec_core::json` round-trip coverage over every artifact schema
//! `repro all` emits.
//!
//! The diff gate compares parsed values, but the canonical-bytes
//! contract (CANON_eval.json) and the committed baseline both depend on
//! the JSON layer being a fixed point: parse → emit → parse must
//! reproduce the same document, and emit must be deterministic. The
//! committed `baseline/` directory supplies one real instance of every
//! schema (TABLE_*, CANON_*, PROFILE_*, BENCH_*), so this test covers
//! exactly what the pipeline writes, not a synthetic approximation.

use hec_core::json::Json;

fn baseline_files() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::fs::read_dir("baseline")
        .expect("committed baseline/ must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).unwrap(),
            )
        })
        .collect();
    out.sort();
    assert!(out.len() >= 13, "expected every artifact family, got {}", out.len());
    out
}

#[test]
fn every_artifact_schema_round_trips_exactly() {
    for (name, text) in baseline_files() {
        let first = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let emitted = first.emit();
        let second = Json::parse(&emitted).unwrap_or_else(|e| panic!("{name} re-parse: {e}"));
        assert_eq!(first, second, "{name}: parse → emit → parse drifted");
        // Emit is a fixed point from the first round on: the bytes the
        // baseline stores and the bytes a re-emit produces agree.
        assert_eq!(emitted, second.emit(), "{name}: emit is not deterministic");
        // Pretty form parses back to the same document too.
        assert_eq!(first, Json::parse(&first.emit_pretty()).unwrap(), "{name}: pretty drifted");
    }
}

#[test]
fn every_artifact_keeps_key_order_and_meta_first() {
    // The artifact writer puts the meta stamp first; order preservation
    // is what makes the emitted files stable enough to diff as text.
    for (name, text) in baseline_files() {
        let doc = Json::parse(&text).unwrap();
        let Json::Obj(fields) = &doc else { panic!("{name}: root must be an object") };
        assert_eq!(fields[0].0, "meta", "{name}: meta stamp must lead the document");
    }
}

#[test]
fn embedded_response_bodies_are_themselves_canonical_json() {
    // CANON_eval.json snapshots response *bytes*; each body must parse
    // and re-emit to the identical string, or the byte contract could
    // never survive a round trip through the artifact layer.
    let text = std::fs::read_to_string("baseline/CANON_eval.json").unwrap();
    let doc = Json::parse(&text).unwrap();
    let responses = doc.get("responses").and_then(|r| r.as_arr()).expect("responses array");
    assert!(!responses.is_empty());
    for r in responses {
        let query = r.str_field("query").unwrap();
        let body = r.str_field("body").unwrap();
        let parsed = Json::parse(body).unwrap_or_else(|e| panic!("{query}: {e}"));
        assert_eq!(body, parsed.emit_pretty(), "{query}: body is not in canonical form");
    }
}

#[test]
fn depth_and_non_finite_rejections_still_hold() {
    // Guardrails the artifact reader depends on: deeply nested and
    // non-finite inputs are rejected, not silently mangled.
    let mut deep = String::new();
    for _ in 0..200 {
        deep.push('[');
    }
    for _ in 0..200 {
        deep.push(']');
    }
    assert!(Json::parse(&deep).is_err(), "200-deep nesting must exceed MAX_PARSE_DEPTH");
    for bad in ["NaN", "Infinity", "-Infinity", "{\"x\": NaN}", "[1e999]"] {
        assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
    }
}
