//! Central measured-vs-analytic counter validation.
//!
//! Every instrumented phase of every application is checked here: the
//! counters a `hec_core::probe` capture records for a real run must equal
//! counts derived independently from the work that run executed (particle
//! totals, lattice extents, grid decompositions, matrix dimensions) and
//! the audited per-unit constants. Integer events must match exactly;
//! flop totals that involve per-rank rounding are reproduced with the
//! same rounding and must still match exactly.
//!
//! This is the contract that licenses the measured Table 3–6 path: the
//! `measured_workload` constructors are only trustworthy because the
//! counters they consume are pinned, phase by phase, to these analytic
//! oracles.

use hec_core::probe;

// ---------------------------------------------------------------- GTC

#[test]
fn gtc_counters_match_analytic_counts_for_every_phase() {
    use gtc::deposit::{FLOPS_PER_PARTICLE as DEPOSIT_FLOPS, SCATTER_POINTS};
    use gtc::particles::ATTRS;
    use gtc::push::{GATHER_FLOPS_PER_PARTICLE, PUSH_FLOPS_PER_PARTICLE};
    use gtc::sim::{GtcParams, GtcSim};

    let params = GtcParams { particles_per_domain: 400, ..Default::default() };
    let (per_rank, cap) = probe::capture(|| {
        msim::run(4, move |world| {
            let mut sim = GtcSim::new(params, world);
            sim.step(world);
            (sim.counters, sim.fields.grid)
        })
        .unwrap()
    });

    let deposited: u64 = per_rank.iter().map(|(c, _)| c.deposited).sum();
    let pushed: u64 = per_rank.iter().map(|(c, _)| c.pushed).sum();
    let cg: u64 = per_rank.iter().map(|(c, _)| c.cg_iterations).sum();
    let ranks = per_rank.len() as u64;
    // Every domain solves on the same global poloidal grid.
    let grid = per_rank[0].1;
    let plane_len = grid.len() as u64;

    // Deposition happens before the shift, so the first step deposits
    // exactly the loaded markers.
    assert_eq!(deposited, 4 * 400);
    assert_eq!(pushed, deposited);

    let dep = cap.get("gtc/charge deposition");
    assert_eq!(dep.flops, deposited * DEPOSIT_FLOPS as u64, "deposition flops");
    assert_eq!(dep.unit_stride_bytes, deposited * ATTRS as u64 * 8);
    assert_eq!(dep.gather_scatter_bytes, deposited * SCATTER_POINTS as u64 * 16);
    assert_eq!(dep.gather_scatter_ops, deposited * SCATTER_POINTS as u64);
    assert_eq!(dep.vector_iters, deposited);
    assert_eq!(dep.vector_loops, ranks);

    let poi = cap.get("gtc/poisson solve");
    let per_cg = gtc::poisson::operator_flops(&grid) as u64 + 10 * plane_len;
    assert_eq!(poi.flops, cg * per_cg, "poisson flops");
    assert_eq!(poi.unit_stride_bytes, cg * 40 * plane_len);
    assert_eq!(poi.vector_iters, cg * plane_len);
    assert_eq!(poi.vector_loops, cg);

    let gat = cap.get("gtc/field gather");
    assert_eq!(gat.flops, pushed * GATHER_FLOPS_PER_PARTICLE as u64, "gather flops");
    assert_eq!(gat.unit_stride_bytes, pushed * ATTRS as u64 * 8);
    assert_eq!(gat.gather_scatter_bytes, pushed * 64 * 8);
    assert_eq!(gat.gather_scatter_ops, pushed * 64);
    assert_eq!(gat.vector_iters, pushed);
    assert_eq!(gat.vector_loops, ranks);

    let push = cap.get("gtc/particle push");
    assert_eq!(push.flops, pushed * PUSH_FLOPS_PER_PARTICLE as u64, "push flops");
    assert_eq!(push.unit_stride_bytes, pushed * ATTRS as u64 * 16);
    assert_eq!(push.vector_iters, pushed);
    assert_eq!(push.vector_loops, ranks);
}

// -------------------------------------------------------------- LBMHD

#[test]
fn lbmhd_counters_match_analytic_counts() {
    use lbmhd::collide::{BYTES_PER_POINT, FLOPS_PER_POINT};
    use lbmhd::decomp::{local_extent, processor_grid};
    use lbmhd::sim::{SimParams, Simulation};

    let (n, procs) = (8usize, 4usize);
    let ((), cap) = probe::capture(|| {
        msim::run(procs, move |comm| {
            let mut sim =
                Simulation::new(SimParams { n, ..Default::default() }, comm.rank(), comm.size());
            sim.step(comm);
        })
        .unwrap();
    });

    // Summed over all ranks, the local blocks tile the global lattice and
    // the per-rank (j, k) line loops cover dims[0] copies of each (y, z).
    let points = (n * n * n) as u64;
    let dims = processor_grid(procs);
    let mut lines = 0u64;
    for ry in 0..dims[1] {
        for rz in 0..dims[2] {
            lines += (local_extent(n, dims[1], ry) * local_extent(n, dims[2], rz)) as u64;
        }
    }
    lines *= dims[0] as u64;

    let c = cap.get("lbmhd/collide+stream");
    assert_eq!(c.flops, points * FLOPS_PER_POINT as u64, "collide+stream flops");
    assert_eq!(c.unit_stride_bytes, points * BYTES_PER_POINT as u64);
    assert_eq!(c.vector_iters, points);
    assert_eq!(c.vector_loops, lines);
}

// -------------------------------------------------------------- FVCAM

#[test]
fn fvcam_counters_match_analytic_counts_for_every_phase() {
    use fvcam::advect::FLOPS_PER_CELL;
    use fvcam::polar::PolarFilter;
    use fvcam::sim::{FvParams, FvSim, PHYSICS_FLOPS_PER_POINT};
    use fvcam::vertical::remap_flops;

    let params =
        FvParams { nlon: 24, nlat: 19, nlev: 8, pz: 2, courant: 0.2, ..Default::default() };
    let (per_rank, cap) = probe::capture(|| {
        msim::run(4, move |comm| {
            let mut sim = FvSim::new(params, comm.rank(), comm.size());
            sim.step(comm);
            sim.counters
        })
        .unwrap()
    });

    let cells: u64 = per_rank.iter().map(|c| c.cells_advected).sum();
    let rows: u64 = per_rank.iter().map(|c| c.rows_filtered).sum();
    let cols: u64 = per_rank.iter().map(|c| c.columns_remapped).sum();
    let nlon = params.nlon as u64;
    let nlev = params.nlev as u64;
    assert!(rows > 0, "calibration-shaped run must filter polar rows");

    let dynamics = cap.get("fvcam/fv dynamics");
    assert_eq!(dynamics.flops, cells * FLOPS_PER_CELL as u64, "dynamics flops");
    assert_eq!(dynamics.unit_stride_bytes, cells * 48);
    assert_eq!(dynamics.gather_scatter_bytes, cells * 2);
    assert_eq!(dynamics.vector_iters, cells);
    let line_loops: u64 = per_rank.iter().map(|c| c.cells_advected / nlon).sum();
    assert_eq!(dynamics.vector_loops, line_loops);

    // The filter flop count is rounded once per rank per step; reproduce
    // the same rounding and require exact agreement.
    let filter = cap.get("fvcam/polar filter FFTs");
    let fpr = PolarFilter::new(params.nlon).flops_per_row();
    let want: u64 = per_rank.iter().map(|c| (c.rows_filtered as f64 * fpr).round() as u64).sum();
    assert_eq!(filter.flops, want, "filter flops");
    assert_eq!(filter.unit_stride_bytes, rows * nlon * 64);
    assert_eq!(filter.vector_iters, rows * nlon);
    assert_eq!(filter.vector_loops, rows);

    let remap = cap.get("fvcam/remap + physics");
    let per_col = remap_flops(params.nlev) + PHYSICS_FLOPS_PER_POINT * nlev as f64;
    let want: u64 =
        per_rank.iter().map(|c| (c.columns_remapped as f64 * per_col).round() as u64).sum();
    assert_eq!(remap.flops, want, "remap flops");
    assert_eq!(remap.unit_stride_bytes, cols * nlev * 32);
    assert_eq!(remap.vector_iters, cols * nlev);
    assert_eq!(remap.vector_loops, cols);
}

// ------------------------------------------------------------ PARATEC

#[test]
fn paratec_fft_counters_match_analytic_counts() {
    use kernels::fft::FftPlan;
    use kernels::Complex64;
    use paratec::basis::GSphere;
    use paratec::fftdist::{slab_len, DistFft};

    let sphere = GSphere::build(8, 8, 8, 5.0);
    let nprocs = 2usize;
    let s = sphere.clone();
    let ((), cap) = probe::capture(|| {
        msim::run(nprocs, move |comm| {
            let mut fft = DistFft::new(s.clone(), comm.rank(), comm.size());
            let coeffs = vec![Complex64::ONE; fft.local_ng()];
            let slab = fft.to_real_space(comm, &coeffs);
            let _ = fft.to_fourier_space(comm, &slab);
        })
        .unwrap();
    });

    let (nx, ny, nz) = (sphere.nx as u64, sphere.ny as u64, sphere.nz as u64);
    let ncols = sphere.columns.len() as u64;
    let plan = FftPlan::new(sphere.nz);
    // One forward + one inverse transform: each direction runs the sparse
    // z-stage over the sphere's columns (spread over ranks) and the dense
    // x/y plane stage over every z-plane (spread over slabs).
    let assignment = sphere.balance(nprocs);
    let z_flops: u64 = 2 * assignment
        .iter()
        .map(|cols| (cols.len() as f64 * plan.flops()).round() as u64)
        .sum::<u64>();
    let per_plane = ny as f64 * plan.flops() + nx as f64 * plan.flops();
    let plane_flops: u64 = 2
        * (0..nprocs)
            .map(|p| (slab_len(sphere.nz, nprocs, p) as f64 * per_plane).round() as u64)
            .sum::<u64>();

    let f = cap.get("paratec/3D FFTs");
    assert_eq!(f.flops, z_flops + plane_flops, "3D FFT flops");
    assert_eq!(f.unit_stride_bytes, 2 * (ncols * nz * 32 + nz * nx * ny * 64));
    assert_eq!(f.vector_iters, 2 * (ncols * nz + nz * nx * ny * 2));
    assert_eq!(f.vector_loops, 2 * (ncols + nz * (nx + ny)));
}

#[test]
fn paratec_zgemm_counters_match_analytic_counts() {
    use paratec::basis::GSphere;
    use paratec::fftdist::DistFft;
    use paratec::hamiltonian::Hamiltonian;
    use paratec::solver::{initial_guess, overlap_matrix};

    let (nprocs, nproj, nbands) = (2usize, 4usize, 3usize);
    let (ngs, cap) = probe::capture(|| {
        msim::run(nprocs, move |comm| {
            let sphere = GSphere::build(8, 8, 8, 5.0);
            let fft = DistFft::new(sphere, comm.rank(), comm.size());
            let mut h = Hamiltonian::model(fft, nproj, 1.0);
            let ng = h.ng();
            let psi = initial_guess(ng, nbands, comm.rank());
            let _ = h.apply(comm, &psi, nbands);
            let _ = overlap_matrix(comm, &psi, nbands, ng);
            ng as u64
        })
        .unwrap()
    });
    let (p, b) = (nproj as u64, nbands as u64);

    // Nonlocal: projection + back-projection ZGEMM per rank on its local
    // sphere slice — all counts close over Σ ng.
    let nl = cap.get("paratec/nonlocal zgemm");
    let pbg: u64 = ngs.iter().map(|&g| p * b * g).sum();
    let pg: u64 = ngs.iter().map(|&g| p * g).sum();
    assert_eq!(nl.flops, 16 * pbg, "nonlocal flops");
    assert_eq!(nl.unit_stride_bytes, 2 * (pbg * 48 + pg * 16));
    assert_eq!(nl.vector_iters, 2 * pbg);
    assert_eq!(nl.vector_loops, 2 * nprocs as u64);

    // Subspace: one overlap ZGEMM per rank.
    let sub = cap.get("paratec/subspace zgemm");
    let bbg: u64 = ngs.iter().map(|&g| b * b * g).sum();
    let bg: u64 = ngs.iter().map(|&g| b * g).sum();
    assert_eq!(sub.flops, 8 * bbg, "subspace flops");
    assert_eq!(sub.unit_stride_bytes, bbg * 48 + bg * 16);
    assert_eq!(sub.vector_iters, bbg);
    assert_eq!(sub.vector_loops, nprocs as u64);
}

// ---------------------------------------------------- msim communication

#[test]
fn msim_pt2pt_counters_match_an_exact_exchange() {
    // A pure sendrecv pattern with no collectives: each of 4 ranks sends
    // exactly one 24-byte message to its XOR partner.
    let (_, cap) = probe::capture(|| {
        msim::run(4, |comm| {
            let peer = comm.rank() ^ 1;
            let _ = comm.sendrecv_f64(peer, peer, 7, &[1.0, 2.0, 3.0]);
        })
        .unwrap()
    });
    let pt2pt = cap.get("comm/pt2pt");
    assert_eq!(pt2pt.messages, 4, "one pt2pt message per rank");
    assert_eq!(pt2pt.message_bytes, 4 * 3 * 8);
    assert!(cap.get("comm/collectives").is_zero());
}

#[test]
fn msim_comm_counters_match_the_traffic_matrix_bookkeeping() {
    // With collectives in play, the pt2pt counters must equal the traffic
    // matrix's independent per-pair accounting (collective-internal
    // messages included, as in IPM captures), and the collective counters
    // must equal its operation log.
    let (traffics, cap) = probe::capture(|| {
        let (_, traffic) = msim::run_with_traffic(4, |comm| {
            let peer = comm.rank() ^ 1;
            let _ = comm.sendrecv_f64(peer, peer, 7, &[1.0, 2.0, 3.0]);
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_f64(msim::ReduceOp::Sum, &mut v);
            comm.barrier();
        })
        .unwrap();
        let msgs: u64 = (0..4)
            .flat_map(|s| (0..4).map(move |d| (s, d)))
            .fold(0, |acc, (s, d)| acc + traffic.pair_msgs(s, d));
        (msgs, traffic.total_bytes(), traffic.collectives())
    });
    let (msgs, bytes, log) = traffics;
    let pt2pt = cap.get("comm/pt2pt");
    assert!(pt2pt.messages > 4, "collectives add internal messages");
    assert_eq!(pt2pt.messages, msgs);
    assert_eq!(pt2pt.message_bytes, bytes);
    let coll = cap.get("comm/collectives");
    assert_eq!(coll.collectives, log.len() as u64);
    assert_eq!(coll.collective_bytes, log.iter().map(|r| r.bytes as u64).sum::<u64>());
}
