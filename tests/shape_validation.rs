//! The headline reproduction criterion: for every performance table of the
//! paper, our model must reproduce the *shape* of the published results —
//! platform ordering and bounded multiplicative error — plus the paper's
//! qualitative claims.

use bench::{experiments, validate};
use report::paper;

#[test]
fn table3_fvcam_shape_holds() {
    let shape = validate::compare(&experiments::fvcam_rows(), &paper::table3());
    assert!(shape.rows >= 12, "rows matched: {}", shape.rows);
    assert!(shape.ordering >= 0.9, "ordering agreement {:.2}", shape.ordering);
    assert!(shape.factor < 2.5, "typical factor {:.2}", shape.factor);
}

#[test]
fn table4_gtc_shape_holds() {
    let shape = validate::compare(&experiments::gtc_rows(), &paper::table4());
    assert_eq!(shape.rows, 6);
    assert!(shape.ordering >= 0.9, "ordering agreement {:.2}", shape.ordering);
    assert!(shape.factor < 2.0, "typical factor {:.2}", shape.factor);
}

#[test]
fn table5_lbmhd_shape_holds() {
    let shape = validate::compare(&experiments::lbmhd_rows(), &paper::table5());
    assert_eq!(shape.rows, 6);
    assert!(shape.ordering >= 0.9, "ordering agreement {:.2}", shape.ordering);
    assert!(shape.factor < 2.0, "typical factor {:.2}", shape.factor);
}

#[test]
fn table6_paratec_shape_holds() {
    let shape = validate::compare(&experiments::paratec_rows(), &paper::table6());
    assert_eq!(shape.rows, 6);
    assert!(shape.ordering >= 0.9, "ordering agreement {:.2}", shape.ordering);
    assert!(shape.factor < 2.0, "typical factor {:.2}", shape.factor);
}

#[test]
fn headline_claims_hold() {
    // "the vector architectures attain unprecedented aggregate performance
    // across our application suite."
    let idx = |name: &str| paper::PLATFORMS.iter().position(|p| *p == name).unwrap();
    let (es, sx8, power3, itanium2, opteron) =
        (idx("ES"), idx("SX-8"), idx("Power3"), idx("Itanium2"), idx("Opteron"));
    for rows in [experiments::gtc_rows(), experiments::lbmhd_rows()] {
        for r in &rows {
            let g = |i: usize| r.cells[i].map(|c| c.gflops).unwrap_or(0.0);
            for scalar in [power3, itanium2, opteron] {
                assert!(
                    g(es) > g(scalar) && g(sx8) > g(scalar),
                    "vector platforms must lead at P={}",
                    r.procs
                );
            }
        }
    }

    // "The SX-8 does achieve the highest per-processor performance for
    // LBMHD3D, GTC, and PARATEC."
    for rows in [experiments::lbmhd_rows(), experiments::gtc_rows(), experiments::paratec_rows()] {
        let r = &rows[0];
        let sx8_g = r.cells[sx8].unwrap().gflops;
        for (i, c) in r.cells.iter().enumerate() {
            if i == idx("X1 (4-SSP)") {
                continue; // aggregate-of-4 column, not per-processor
            }
            if let Some(c) = c {
                assert!(sx8_g >= c.gflops, "SX-8 must lead column {i}");
            }
        }
    }

    // "the ES sustains the highest fraction of peak" (LBMHD, GTC). The
    // X1 4-SSP column is excluded: our model overestimates SSP-mode
    // efficiency (a documented deviation — see EXPERIMENTS.md), and the
    // paper's claim concerns whole machines.
    for rows in [experiments::lbmhd_rows(), experiments::gtc_rows()] {
        let r = &rows[0];
        let es_pct = r.cells[es].unwrap().pct_peak;
        for (i, c) in r.cells.iter().enumerate() {
            if i == idx("X1 (4-SSP)") {
                continue;
            }
            if let Some(c) = c {
                assert!(es_pct >= c.pct_peak - 1e-9, "ES leads %peak (col {i})");
            }
        }
    }

    // Opteron dramatically outperforms Itanium2 for GTC and LBMHD3D
    // (paper §7), while the situation reverses for PARATEC.
    let gtc = &experiments::gtc_rows()[0];
    assert!(gtc.cells[opteron].unwrap().gflops > gtc.cells[itanium2].unwrap().gflops);
    let lb = &experiments::lbmhd_rows()[0];
    assert!(lb.cells[opteron].unwrap().gflops > lb.cells[itanium2].unwrap().gflops);
    let pt = &experiments::paratec_rows()[2];
    assert!(pt.cells[itanium2].unwrap().gflops > pt.cells[opteron].unwrap().gflops);
}

#[test]
fn fixed_size_problems_lose_percent_of_peak_with_concurrency() {
    // FVCAM (fixed D mesh) and PARATEC (fixed cell): %peak declines as P
    // grows on every platform with data at both ends.
    let fv = experiments::fvcam_rows();
    let first = fv.iter().find(|r| r.procs == 128 && r.label.contains("Pz=4")).unwrap();
    let last = fv.iter().find(|r| r.procs == 512 && r.label.contains("Pz=4")).unwrap();
    for i in 0..7 {
        if let (Some(a), Some(b)) = (first.cells[i], last.cells[i]) {
            assert!(b.pct_peak < a.pct_peak * 1.05, "FVCAM %peak must fall (col {i})");
        }
    }
    let pt = experiments::paratec_rows();
    for i in [0usize, 1, 5] {
        let a = pt[1].cells[i].unwrap().pct_peak; // P=128
        let b = pt[5].cells[i].unwrap().pct_peak; // P=2048
        assert!(b < a, "PARATEC %peak must fall from 128 to 2048 (col {i})");
    }
}

#[test]
fn fig4_speedup_reaches_thousands_of_simulated_days() {
    // The paper: >4200 simulated days/day on 672 X1E processors.
    let rows = experiments::fvcam_rows();
    let r = rows.iter().find(|r| r.procs == 672).unwrap();
    let x1e = r.cells[4].unwrap(); // X1E sits in the 4-SSP slot for FVCAM
    let sim_days =
        fvcam::model::simulated_days_per_day(x1e.step_secs, fvcam::model::D_MESH_STEPS_PER_DAY);
    assert!(
        sim_days > 1000.0 && sim_days < 40_000.0,
        "simulated days/day out of range: {sim_days}"
    );
}
