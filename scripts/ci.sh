#!/usr/bin/env sh
# Hermetic CI gate: everything runs offline against the lockfile (which
# contains only workspace crates — see DESIGN.md §6).
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace --examples
cargo test -q --offline --workspace
cargo fmt --check

# Regenerate every artifact (tables, canonical responses, profiles,
# bench JSONs) in one run, then hold it against the committed baseline.
# Exact-deterministic fields (phase counters, table cells, response
# bytes) must match bit for bit. Thresholded performance fields get a
# deliberately loose 10x tolerance: a shared CI box cannot resolve the
# 15% default (that path is pinned by the golden-fixture tests in
# tests/repro_diff.rs), but an order-of-magnitude collapse still fails
# the gate. Perf comparison auto-skips when the host fingerprint in the
# baseline's metadata does not match this machine.
ART_DIR=$(mktemp -d)
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$ART_DIR" "$SMOKE_DIR"' EXIT
HEC_THREADS=2 ./target/release/repro all "$ART_DIR"
./target/release/repro diff baseline "$ART_DIR" --threshold=10

# Loose parallel-sanity gate on the fresh artifacts: the 2-worker legs of
# the lbmhd and dgemm harness cases must beat their serial legs at all
# (speedup > 1.0). The gate self-skips with a note on 1-core machines,
# where a 2-worker speedup above 1.0 is physically unattainable.
./target/release/repro gate "$ART_DIR"

# Smoke the serve subsystem end to end: ephemeral port, short open-loop
# load at a fixed seeded rate (coordinated-omission-free latency), zero
# error responses required, then a graceful stop (drains in-flight
# requests before the process exits). The BENCH artifact must be
# stamped open-loop, and the reactor's connection gauge must read zero
# once the load generator's keep-alive connections have drained.
SERVE_LOG=$(mktemp)
HEC_THREADS=2 ./target/release/repro serve > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    SERVE_URL=$(sed -n 's/^listening on /http:\/\//p' "$SERVE_LOG")
    [ -n "$SERVE_URL" ] && break
    sleep 1
done
[ -n "$SERVE_URL" ] || { echo "ci: serve did not come up"; cat "$SERVE_LOG"; exit 1; }
# loadgen itself exits nonzero on any error response (after retries).
( cd "$SMOKE_DIR" && HEC_THREADS=2 "$OLDPWD/target/release/repro" loadgen "$SERVE_URL" 2 4 --rate=400 )
grep -q '"open_loop": true' "$SMOKE_DIR/BENCH_serve.json" \
    || { echo "ci: serve smoke was not open-loop"; exit 1; }
grep -q '"connections_open_after_drain": 0' "$SMOKE_DIR/BENCH_serve.json" \
    || { echo "ci: serve connections did not drain to zero"; exit 1; }
./target/release/repro stop "$SERVE_URL"
wait "$SERVE_PID"
grep -q "drained and stopped" "$SERVE_LOG" || { echo "ci: serve did not stop gracefully"; exit 1; }
rm -f "$SERVE_LOG"

# Smoke the cluster tier end to end: 3 replicas behind the router, load
# through the one frontend URL, kill a replica mid-run, and require zero
# error responses anyway (replication + failover must absorb the kill),
# then a graceful stop of router and replicas together.
CLUSTER_LOG=$(mktemp)
HEC_THREADS=2 ./target/release/repro cluster 3 > "$CLUSTER_LOG" 2>&1 &
CLUSTER_PID=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    CLUSTER_URL=$(sed -n 's/^listening on /http:\/\//p' "$CLUSTER_LOG")
    [ -n "$CLUSTER_URL" ] && break
    sleep 1
done
[ -n "$CLUSTER_URL" ] || { echo "ci: cluster did not come up"; cat "$CLUSTER_LOG"; exit 1; }
( sleep 1; ./target/release/repro kill "$CLUSTER_URL" 0 ) &
KILL_PID=$!
( cd "$SMOKE_DIR" && HEC_THREADS=2 "$OLDPWD/target/release/repro" loadgen "$CLUSTER_URL" 3 4 --rate=400 )
grep -q '"open_loop": true' "$SMOKE_DIR/BENCH_cluster.json" \
    || { echo "ci: cluster smoke was not open-loop"; exit 1; }
grep -q '"connections_open_after_drain": 0' "$SMOKE_DIR/BENCH_cluster.json" \
    || { echo "ci: cluster connections did not drain to zero"; exit 1; }
wait "$KILL_PID"
./target/release/repro stop "$CLUSTER_URL"
wait "$CLUSTER_PID"
grep -q "drained and stopped" "$CLUSTER_LOG" || { echo "ci: cluster did not stop gracefully"; exit 1; }
rm -f "$CLUSTER_LOG"

# Smoke cluster elasticity end to end: a 2-replica cluster scales up to
# 3 and drains one member back out while the open-loop load runs, and
# still every admitted request must succeed (bounded rebalancing plus
# cache handoff must make the churn invisible to clients). The BENCH
# artifact must record the membership events it lived through.
ELASTIC_DIR=$(mktemp -d)
ELASTIC_LOG=$(mktemp)
trap 'rm -rf "$ART_DIR" "$SMOKE_DIR" "$ELASTIC_DIR"' EXIT
HEC_THREADS=2 ./target/release/repro cluster 2 > "$ELASTIC_LOG" 2>&1 &
ELASTIC_PID=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    ELASTIC_URL=$(sed -n 's/^listening on /http:\/\//p' "$ELASTIC_LOG")
    [ -n "$ELASTIC_URL" ] && break
    sleep 1
done
[ -n "$ELASTIC_URL" ] || { echo "ci: elastic cluster did not come up"; cat "$ELASTIC_LOG"; exit 1; }
( sleep 1; ./target/release/repro scale "$ELASTIC_URL" up; \
  sleep 1; ./target/release/repro scale "$ELASTIC_URL" down ) &
SCALE_PID=$!
( cd "$ELASTIC_DIR" && HEC_THREADS=2 "$OLDPWD/target/release/repro" loadgen "$ELASTIC_URL" 3 4 --rate=400 )
grep -q '"errors": 0' "$ELASTIC_DIR/BENCH_cluster.json" \
    || { echo "ci: elasticity churn produced error responses"; exit 1; }
grep -q '"membership_events"' "$ELASTIC_DIR/BENCH_cluster.json" \
    || { echo "ci: elasticity smoke recorded no membership events"; exit 1; }
wait "$SCALE_PID"
./target/release/repro stop "$ELASTIC_URL"
wait "$ELASTIC_PID"
grep -q "drained and stopped" "$ELASTIC_LOG" || { echo "ci: elastic cluster did not stop gracefully"; exit 1; }
rm -f "$ELASTIC_LOG"

echo "ci: ok"
