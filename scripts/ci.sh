#!/usr/bin/env sh
# Hermetic CI gate: everything runs offline against the lockfile (which
# contains only workspace crates — see DESIGN.md §6).
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace --examples
cargo test -q --offline --workspace
cargo fmt --check

# Smoke the bench harness under shared-memory threading: one timed
# sample per case, two workers, scaling fields written to the JSONs.
HEC_THREADS=2 cargo run --release --offline -q -p bench --bin repro -- harness 1

# Smoke the instrumented profile captures under threading: the counters
# must be thread-invariant, so the PROFILE_*.json artifacts this writes
# are identical to a serial run's.
HEC_THREADS=2 cargo run --release --offline -q -p bench --bin repro -- profile

# Smoke the serve subsystem end to end: ephemeral port, short closed-loop
# load, zero error responses required, then a graceful stop (drains
# in-flight requests before the process exits).
HEC_THREADS=2 ./target/release/repro serve > serve_ci.log 2>&1 &
SERVE_PID=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    SERVE_URL=$(sed -n 's/^listening on /http:\/\//p' serve_ci.log)
    [ -n "$SERVE_URL" ] && break
    sleep 1
done
[ -n "$SERVE_URL" ] || { echo "ci: serve did not come up"; cat serve_ci.log; exit 1; }
HEC_THREADS=2 ./target/release/repro loadgen "$SERVE_URL" 2 4
grep -q '"errors": 0,' BENCH_serve.json || { echo "ci: loadgen saw error responses"; exit 1; }
./target/release/repro stop "$SERVE_URL"
wait "$SERVE_PID"
grep -q "drained and stopped" serve_ci.log || { echo "ci: serve did not stop gracefully"; exit 1; }
rm -f serve_ci.log

echo "ci: ok"
