#!/usr/bin/env sh
# Hermetic CI gate: everything runs offline against the lockfile (which
# contains only workspace crates — see DESIGN.md §6).
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check

echo "ci: ok"
