#!/usr/bin/env sh
# Hermetic CI gate: everything runs offline against the lockfile (which
# contains only workspace crates — see DESIGN.md §6).
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace --examples
cargo test -q --offline --workspace
cargo fmt --check

# Smoke the bench harness under shared-memory threading: one timed
# sample per case, two workers, scaling fields written to the JSONs.
HEC_THREADS=2 cargo run --release --offline -q -p bench --bin repro -- harness 1

# Smoke the instrumented profile captures under threading: the counters
# must be thread-invariant, so the PROFILE_*.json artifacts this writes
# are identical to a serial run's.
HEC_THREADS=2 cargo run --release --offline -q -p bench --bin repro -- profile

# Smoke the serve subsystem end to end: ephemeral port, short closed-loop
# load, zero error responses required, then a graceful stop (drains
# in-flight requests before the process exits).
HEC_THREADS=2 ./target/release/repro serve > serve_ci.log 2>&1 &
SERVE_PID=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    SERVE_URL=$(sed -n 's/^listening on /http:\/\//p' serve_ci.log)
    [ -n "$SERVE_URL" ] && break
    sleep 1
done
[ -n "$SERVE_URL" ] || { echo "ci: serve did not come up"; cat serve_ci.log; exit 1; }
# loadgen itself exits nonzero on any error response (after retries), so
# no artifact grep is needed here.
HEC_THREADS=2 ./target/release/repro loadgen "$SERVE_URL" 2 4
./target/release/repro stop "$SERVE_URL"
wait "$SERVE_PID"
grep -q "drained and stopped" serve_ci.log || { echo "ci: serve did not stop gracefully"; exit 1; }
rm -f serve_ci.log

# Smoke the cluster tier end to end: 3 replicas behind the router, load
# through the one frontend URL, kill a replica mid-run, and require zero
# error responses anyway (replication + failover must absorb the kill),
# then a graceful stop of router and replicas together.
HEC_THREADS=2 ./target/release/repro cluster 3 > cluster_ci.log 2>&1 &
CLUSTER_PID=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    CLUSTER_URL=$(sed -n 's/^listening on /http:\/\//p' cluster_ci.log)
    [ -n "$CLUSTER_URL" ] && break
    sleep 1
done
[ -n "$CLUSTER_URL" ] || { echo "ci: cluster did not come up"; cat cluster_ci.log; exit 1; }
( sleep 1; ./target/release/repro kill "$CLUSTER_URL" 0 ) &
KILL_PID=$!
HEC_THREADS=2 ./target/release/repro loadgen "$CLUSTER_URL" 3 4
wait "$KILL_PID"
./target/release/repro stop "$CLUSTER_URL"
wait "$CLUSTER_PID"
grep -q "drained and stopped" cluster_ci.log || { echo "ci: cluster did not stop gracefully"; exit 1; }
rm -f cluster_ci.log

echo "ci: ok"
