#!/usr/bin/env sh
# Hermetic CI gate: everything runs offline against the lockfile (which
# contains only workspace crates — see DESIGN.md §6).
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check

# Smoke the bench harness under shared-memory threading: one timed
# sample per case, two workers, scaling fields written to the JSONs.
HEC_THREADS=2 cargo run --release --offline -q -p bench --bin repro -- harness 1

# Smoke the instrumented profile captures under threading: the counters
# must be thread-invariant, so the PROFILE_*.json artifacts this writes
# are identical to a serial run's.
HEC_THREADS=2 cargo run --release --offline -q -p bench --bin repro -- profile

echo "ci: ok"
