//! Minimal double-precision complex arithmetic.
//!
//! The suite deliberately avoids external numeric crates; PARATEC and the
//! FFTs only need the handful of operations defined here.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number, layout-compatible with `[f64; 2]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a pure-real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit phasor with the given angle in radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex64 { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiply by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Complex64 { re: self.re * s, im: self.im * s }
    }

    /// Fused multiply-add: `self + a * b`, the inner-loop primitive of the
    /// ZGEMM kernels.
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        Complex64 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// Multiplicative inverse; `None` at the origin.
    #[inline]
    pub fn recip(self) -> Option<Self> {
        let d = self.norm_sqr();
        if d == 0.0 {
            None
        } else {
            Some(Complex64 { re: self.re / d, im: -self.im / d })
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, o: Complex64) -> Complex64 {
        Complex64 { re: self.re + o.re, im: self.im + o.im }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64 { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64 { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, s: f64) -> Complex64 {
        self.scale(s)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, o: Complex64) -> Complex64 {
        let d = o.norm_sqr();
        Complex64 {
            re: (self.re * o.re + self.im * o.im) / d,
            im: (self.im * o.re - self.re * o.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        Complex64 { re: -self.re, im: -self.im }
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, o: Complex64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: Complex64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: Complex64) {
        *self = *self * o;
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert!(close(z * Complex64::I, Complex64::new(4.0, 3.0)));
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), Complex64::real(25.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, 2.5);
        let b = Complex64::new(-0.5, 4.0);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn recip_matches_division() {
        let z = Complex64::new(2.0, -1.0);
        let r = z.recip().unwrap();
        assert!(close(z * r, Complex64::ONE));
        assert!(Complex64::ZERO.recip().is_none());
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex64::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = Complex64::new(0.5, 0.25);
        let a = Complex64::new(1.0, -2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!(close(acc.mul_add(a, b), acc + a * b));
    }
}
