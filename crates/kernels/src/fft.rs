//! One-dimensional complex-to-complex FFT.
//!
//! PARATEC and the FVCAM polar filters both need FFTs over lengths that are
//! not powers of two (FVCAM's D mesh has 576 = 2⁶·3² longitudes), so the
//! planner combines:
//!
//! * an iterative, in-place radix-2 Cooley–Tukey transform for power-of-two
//!   lengths, and
//! * Bluestein's chirp-z algorithm (built on the radix-2 core) for every
//!   other length.
//!
//! A [`FftPlan`] precomputes twiddle factors once and can be reused across
//! many transforms of the same length — the usage pattern of both
//! applications (many FFTs of one fixed length per timestep, vectorized
//! *across* transforms on the vector machines, as §3.1 of the paper
//! describes for the polar filters).

use crate::complex::Complex64;
use hec_core::probe::{self, Counters};

/// Minimum flops per worker before [`FftPlan::execute_batch_with`]
/// spawns threads: small batches (the `fft/batch_256x64` regression in
/// BENCH_kernels.json) run serial because the spawn cost exceeds the
/// per-line transform work.
pub const FFT_MIN_FLOPS_PER_WORKER: f64 = 8.0 * 1024.0 * 1024.0;

/// Direction of the transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// e^{-2πi jk/n} convention.
    Forward,
    /// e^{+2πi jk/n} convention, scaled by 1/n in [`FftPlan::execute`].
    Inverse,
}

/// A reusable FFT plan for a fixed transform length.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// Per-stage forward twiddle tables for the radix-2 core: stage `s`
    /// (butterfly span `2^{s+1}`) holds its `2^s` twiddles contiguously,
    /// so the butterfly loop reads them unit-stride instead of striding
    /// a shared master table. The entries are exact copies of the master
    /// `e^{-2πik/n}` values — caching changes no bits.
    stages_fwd: Vec<Vec<Complex64>>,
    /// The same tables conjugated at plan time (conjugation is exact — it
    /// flips a sign bit), so the inverse pass carries no per-butterfly
    /// direction branch.
    stages_inv: Vec<Vec<Complex64>>,
    /// Bit-reversal permutation for the radix-2 core.
    bitrev: Vec<u32>,
    /// Bluestein machinery for non-power-of-two lengths.
    bluestein: Option<Bluestein>,
}

#[derive(Clone, Debug)]
struct Bluestein {
    /// Padded power-of-two convolution length (≥ 2n-1).
    m: usize,
    /// Chirp `w_k = e^{-iπ k²/n}` for k in 0..n.
    chirp: Vec<Complex64>,
    /// Forward FFT (length m) of the zero-padded conjugate chirp.
    kernel_hat: Vec<Complex64>,
    /// Plan for the length-m power-of-two transforms.
    inner: Box<FftPlan>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        if n.is_power_of_two() {
            let (stages_fwd, stages_inv) = make_stage_tables(n);
            FftPlan { n, stages_fwd, stages_inv, bitrev: make_bitrev(n), bluestein: None }
        } else {
            let m = (2 * n - 1).next_power_of_two();
            let inner = Box::new(FftPlan::new(m));
            // Chirp sequence w_k = exp(-i π k² / n). Computing k² mod 2n keeps
            // the argument small so the phase stays accurate for large n.
            let chirp: Vec<Complex64> = (0..n)
                .map(|k| {
                    let kk = ((k as u128 * k as u128) % (2 * n as u128)) as f64;
                    Complex64::cis(-std::f64::consts::PI * kk / n as f64)
                })
                .collect();
            // Convolution kernel b_k = conj(chirp)[|k|] padded to length m,
            // wrapped so negative indices land at the tail.
            let mut kernel = vec![Complex64::ZERO; m];
            kernel[0] = chirp[0].conj();
            for k in 1..n {
                kernel[k] = chirp[k].conj();
                kernel[m - k] = chirp[k].conj();
            }
            inner.execute(&mut kernel, Direction::Forward);
            FftPlan {
                n,
                stages_fwd: Vec::new(),
                stages_inv: Vec::new(),
                bitrev: Vec::new(),
                bluestein: Some(Bluestein { m, chirp, kernel_hat: kernel, inner }),
            }
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true for the degenerate length-0 plan (never constructed).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Executes the transform in place.
    ///
    /// The inverse transform is scaled by `1/n`, so
    /// `execute(Forward)` followed by `execute(Inverse)` is the identity.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn execute(&self, data: &mut [Complex64], dir: Direction) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        match &self.bluestein {
            None => {
                self.radix2(data, dir);
                if dir == Direction::Inverse {
                    let s = 1.0 / self.n as f64;
                    for z in data.iter_mut() {
                        *z = z.scale(s);
                    }
                }
            }
            Some(b) => self.bluestein_execute(b, data, dir),
        }
    }

    /// Executes `count` contiguous transforms stored back to back in `data`.
    ///
    /// This mirrors the "vectorize across FFTs" strategy the paper uses for
    /// the FVCAM polar filters: the caller batches many independent lines.
    pub fn execute_batch(&self, data: &mut [Complex64], count: usize, dir: Direction) {
        assert_eq!(data.len(), self.n * count, "batch buffer length mismatch");
        for chunk in data.chunks_exact_mut(self.n) {
            self.execute(chunk, dir);
        }
    }

    /// [`FftPlan::execute_batch`] with the lines split across workers —
    /// the paper's "parallelize across the FFTs, not within one"
    /// strategy. Each line transforms independently in its own slice, so
    /// the result is **bitwise identical** to the serial batch for any
    /// worker count.
    pub fn execute_batch_with(
        &self,
        threads: &hec_core::pool::Threads,
        data: &mut [Complex64],
        count: usize,
        dir: Direction,
    ) {
        assert_eq!(data.len(), self.n * count, "batch buffer length mismatch");
        if self.n == 0 {
            return;
        }
        let min_lines = (FFT_MIN_FLOPS_PER_WORKER / self.flops_actual().max(1.0)).ceil() as usize;
        let threads = threads.clamp_for(count, min_lines);
        threads.par_chunks_mut(data, self.n, |_, line| self.execute(line, dir));
    }

    /// In-place iterative radix-2 Cooley–Tukey; `self.n` must be a power of 2.
    fn radix2(&self, data: &mut [Complex64], dir: Direction) {
        let n = data.len();
        debug_assert!(n.is_power_of_two());
        if probe::enabled() && n > 1 {
            // (n/2)·log₂n butterflies at 10 flops each — 5n·log₂n, the
            // baseline count, which the radix-2 core executes exactly.
            // Each butterfly streams two points (read+write) and one
            // twiddle; the bit-reversal pass touches each point once.
            let (nu, stages) = (n as u64, n.trailing_zeros() as u64);
            probe::count(
                "kernels/fft",
                Counters {
                    flops: 5 * nu * stages,
                    unit_stride_bytes: 40 * nu * stages + 32 * nu,
                    vector_iters: (nu / 2) * stages,
                    vector_loops: stages,
                    ..Default::default()
                },
            );
        }
        // Bit-reversal permutation.
        for (i, &r) in self.bitrev.iter().enumerate() {
            let r = r as usize;
            if i < r {
                data.swap(i, r);
            }
        }
        // Butterfly passes. Each stage reads its own contiguous twiddle
        // table (pre-conjugated for the inverse), so the inner loop is
        // three unit-stride streams with no branch.
        let tables = match dir {
            Direction::Forward => &self.stages_fwd,
            Direction::Inverse => &self.stages_inv,
        };
        for (stage, tw) in tables.iter().enumerate() {
            let half = 1usize << stage;
            let len = half * 2;
            let tw = &tw[..half];
            let mut base = 0;
            while base < n {
                let (los, his) = data[base..base + len].split_at_mut(half);
                for k in 0..half {
                    let w = tw[k];
                    let lo = los[k];
                    let hi = his[k] * w;
                    los[k] = lo + hi;
                    his[k] = lo - hi;
                }
                base += len;
            }
        }
    }

    fn bluestein_execute(&self, b: &Bluestein, data: &mut [Complex64], dir: Direction) {
        let n = self.n;
        if probe::enabled() {
            // Chirp-z overhead beyond the two inner radix-2 transforms
            // (those count themselves): three complex multiply passes —
            // input chirp (n), pointwise kernel (m), output chirp (n).
            let (nu, mu) = (n as u64, b.m as u64);
            probe::count(
                "kernels/fft bluestein",
                Counters {
                    flops: 12 * nu + 6 * mu,
                    unit_stride_bytes: 48 * (2 * nu + mu),
                    vector_iters: 2 * nu + mu,
                    vector_loops: 3,
                    ..Default::default()
                },
            );
        }
        // x'_k = x_k * chirp_k  (conjugate chirp for the inverse transform).
        let mut a = vec![Complex64::ZERO; b.m];
        for k in 0..n {
            let c = if dir == Direction::Forward { b.chirp[k] } else { b.chirp[k].conj() };
            a[k] = data[k] * c;
        }
        // Convolve with the precomputed kernel via the power-of-two FFT.
        b.inner.execute(&mut a, Direction::Forward);
        match dir {
            Direction::Forward => {
                for (z, k) in a.iter_mut().zip(b.kernel_hat.iter()) {
                    *z = *z * *k;
                }
            }
            Direction::Inverse => {
                // The inverse chirp kernel is the conjugate of the forward
                // kernel's time series; in frequency space that is a
                // conjugate + index reversal identity. Rather than store a
                // second kernel we exploit conj(FFT(x)) = IFFT(conj(x))·m.
                for (z, k) in a.iter_mut().zip(b.kernel_hat.iter()) {
                    *z = (z.conj() * *k).conj();
                }
            }
        }
        b.inner.execute(&mut a, Direction::Inverse);
        // y_k = chirp_k * conv_k, plus 1/n scaling for the inverse.
        let scale = if dir == Direction::Inverse { 1.0 / n as f64 } else { 1.0 };
        for k in 0..n {
            let c = if dir == Direction::Forward { b.chirp[k] } else { b.chirp[k].conj() };
            data[k] = (a[k] * c).scale(scale);
        }
    }

    /// *Baseline* floating-point operation count of one execution:
    /// `5 n log₂ n` for every length. This is the "valid baseline
    /// flop-count" convention of the paper (§2.1) — rates are computed
    /// from the canonical operation count of the algorithm, not from
    /// whatever a particular implementation (here: Bluestein for
    /// non-power-of-two lengths) happens to execute.
    pub fn flops(&self) -> f64 {
        5.0 * self.n as f64 * (self.n as f64).log2()
    }

    /// Operations the chosen algorithm actually executes (Bluestein pays
    /// three padded power-of-two transforms plus the chirp multiplies).
    pub fn flops_actual(&self) -> f64 {
        match &self.bluestein {
            None => 5.0 * self.n as f64 * (self.n as f64).log2(),
            Some(b) => 3.0 * 5.0 * b.m as f64 * (b.m as f64).log2() + 6.0 * 3.0 * self.n as f64,
        }
    }
}

fn make_twiddles(n: usize) -> Vec<Complex64> {
    let half = (n / 2).max(1);
    (0..half).map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64)).collect()
}

/// Builds the per-stage (forward, inverse) twiddle tables: stage `s` gets
/// the master table's entries at stride `n / 2^{s+1}` — exact copies, and
/// exact conjugates for the inverse.
fn make_stage_tables(n: usize) -> (Vec<Vec<Complex64>>, Vec<Vec<Complex64>>) {
    let master = make_twiddles(n);
    let stages = n.trailing_zeros() as usize;
    let mut fwd = Vec::with_capacity(stages);
    let mut inv = Vec::with_capacity(stages);
    for s in 0..stages {
        let half = 1usize << s;
        let stride = n / (half * 2);
        let table: Vec<Complex64> = (0..half).map(|k| master[k * stride]).collect();
        inv.push(table.iter().map(|w| w.conj()).collect());
        fwd.push(table);
    }
    (fwd, inv)
}

fn make_bitrev(n: usize) -> Vec<u32> {
    let bits = n.trailing_zeros();
    (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits.max(1)) as u32).collect()
}

/// Convenience one-shot forward transform (plans and executes).
pub fn fft(data: &mut [Complex64]) {
    FftPlan::new(data.len()).execute(data, Direction::Forward);
}

/// Convenience one-shot inverse transform (plans and executes).
pub fn ifft(data: &mut [Complex64]) {
    FftPlan::new(data.len()).execute(data, Direction::Inverse);
}

/// Naive O(n²) DFT used as the correctness oracle in tests.
pub fn dft_reference(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let scale = match dir {
        Direction::Forward => 1.0,
        Direction::Inverse => 1.0 / n as f64,
    };
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                acc += x * Complex64::cis(theta);
            }
            acc.scale(scale)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n).map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos())).collect()
    }

    #[test]
    fn radix2_matches_reference() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let input = ramp(n);
            let mut out = input.clone();
            fft(&mut out);
            let want = dft_reference(&input, Direction::Forward);
            assert!(max_err(&out, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn bluestein_matches_reference() {
        for &n in &[3usize, 5, 6, 7, 12, 27, 100, 360, 576] {
            let input = ramp(n);
            let mut out = input.clone();
            fft(&mut out);
            let want = dft_reference(&input, Direction::Forward);
            assert!(max_err(&out, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for &n in &[8usize, 27, 576, 1024] {
            let input = ramp(n);
            let mut buf = input.clone();
            let plan = FftPlan::new(n);
            plan.execute(&mut buf, Direction::Forward);
            plan.execute(&mut buf, Direction::Inverse);
            assert!(max_err(&buf, &input) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn inverse_matches_reference() {
        for &n in &[4usize, 9, 30] {
            let input = ramp(n);
            let mut out = input.clone();
            ifft(&mut out);
            let want = dft_reference(&input, Direction::Inverse);
            assert!(max_err(&out, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut data = vec![Complex64::ZERO; 64];
        data[0] = Complex64::ONE;
        fft(&mut data);
        for z in &data {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 576;
        let input = ramp(n);
        let mut out = input.clone();
        fft(&mut out);
        let e_time: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = out.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() < 1e-8 * e_time);
    }

    #[test]
    fn batch_matches_individual() {
        let n = 48;
        let count = 7;
        let plan = FftPlan::new(n);
        let mut batch: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new(i as f64 * 0.01, (i as f64 * 0.02).sin()))
            .collect();
        let mut singles = batch.clone();
        plan.execute_batch(&mut batch, count, Direction::Forward);
        for chunk in singles.chunks_exact_mut(n) {
            plan.execute(chunk, Direction::Forward);
        }
        assert!(max_err(&batch, &singles) == 0.0);
    }

    #[test]
    fn linearity() {
        let n = 96;
        let a = ramp(n);
        let b: Vec<Complex64> = (0..n).map(|i| Complex64::new(0.3 * i as f64, -0.2)).collect();
        let alpha = Complex64::new(1.5, -0.5);
        let mut combo: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x * alpha + *y).collect();
        fft(&mut combo);
        let mut fa = a.clone();
        fft(&mut fa);
        let mut fb = b.clone();
        fft(&mut fb);
        let want: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x * alpha + *y).collect();
        assert!(max_err(&combo, &want) < 1e-8);
    }

    #[test]
    fn radix2_probe_counts_match_the_baseline_formula() {
        use hec_core::probe;
        let n = 256usize;
        let plan = FftPlan::new(n);
        let ((), cap) = probe::capture(|| {
            let mut data = ramp(n);
            plan.execute(&mut data, Direction::Forward);
        });
        let c = cap.get("kernels/fft");
        let (nu, stages) = (n as u64, n.trailing_zeros() as u64);
        assert_eq!(c.flops, 5 * nu * stages);
        assert_eq!(c.flops as f64, plan.flops(), "baseline formula must agree");
        assert_eq!(c.vector_iters, (nu / 2) * stages);
        assert_eq!(c.vector_loops, stages);
    }

    #[test]
    fn small_fft_batches_take_the_serial_path() {
        use hec_core::pool::Threads;
        let plan = FftPlan::new(256);
        // The regressed bench case: 64 lines of length 256 is far below
        // the flop floor, so the clamped handle is serial.
        let min_lines = (FFT_MIN_FLOPS_PER_WORKER / plan.flops_actual().max(1.0)).ceil() as usize;
        let t = Threads::new(4);
        assert!(t.clamp_for(64, min_lines).is_serial());
        // And the clamped batch still matches the serial batch exactly.
        let count = 64;
        let mut batch: Vec<Complex64> = (0..256 * count)
            .map(|i| Complex64::new((i as f64 * 0.013).sin(), (i as f64 * 0.007).cos()))
            .collect();
        let mut serial = batch.clone();
        plan.execute_batch(&mut serial, count, Direction::Forward);
        plan.execute_batch_with(&t, &mut batch, count, Direction::Forward);
        assert!(max_err(&batch, &serial) == 0.0);
    }

    #[test]
    fn stage_tables_are_exact_strided_copies_of_the_master() {
        // The caching optimization must change no bits: stage s of the
        // per-stage tables holds master[k * n/2^{s+1}], and the inverse
        // table its exact conjugate.
        let n = 1024usize;
        let plan = FftPlan::new(n);
        let master = make_twiddles(n);
        assert_eq!(plan.stages_fwd.len(), n.trailing_zeros() as usize);
        for (s, (fw, iv)) in plan.stages_fwd.iter().zip(&plan.stages_inv).enumerate() {
            let half = 1usize << s;
            let stride = n / (half * 2);
            assert_eq!(fw.len(), half);
            for k in 0..half {
                let w = master[k * stride];
                assert_eq!(fw[k].re.to_bits(), w.re.to_bits(), "stage {s} k {k}");
                assert_eq!(fw[k].im.to_bits(), w.im.to_bits(), "stage {s} k {k}");
                assert_eq!(iv[k].re.to_bits(), w.conj().re.to_bits(), "inv stage {s} k {k}");
                assert_eq!(iv[k].im.to_bits(), w.conj().im.to_bits(), "inv stage {s} k {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex64::ZERO; 7];
        plan.execute(&mut data, Direction::Forward);
    }
}
