//! Iterative and direct solvers shared by the applications.
//!
//! GTC's Poisson solve on each poloidal plane and PARATEC's Kohn–Sham
//! minimization are both built on conjugate-gradient iterations; FVCAM's
//! vertical remap uses tridiagonal solves.

use crate::blas::{axpy, dot, nrm2};

/// Outcome of a conjugate-gradient solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CgResult {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// True when the residual tolerance was met.
    pub converged: bool,
}

/// Solves `A x = b` for a symmetric positive-definite operator given as a
/// matrix-free closure `apply(x, y)` computing `y = A x`.
///
/// `x` holds the initial guess on entry and the solution on exit.
pub fn conjugate_gradient<F>(
    mut apply: F,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> CgResult
where
    F: FnMut(&[f64], &mut [f64]),
{
    let n = b.len();
    assert_eq!(x.len(), n, "solution/rhs length mismatch");
    let mut r = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut ap = vec![0.0; n];

    apply(x, &mut ap);
    for i in 0..n {
        r[i] = b[i] - ap[i];
    }
    p.copy_from_slice(&r);
    let mut rr = dot(&r, &r);
    let b_norm = nrm2(b).max(f64::MIN_POSITIVE);
    let target = tol * b_norm;

    for it in 0..max_iter {
        let res = rr.sqrt();
        if res <= target {
            return CgResult { iterations: it, residual: res, converged: true };
        }
        apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Operator is not SPD along p (or p vanished); bail out.
            return CgResult { iterations: it, residual: res, converged: false };
        }
        let alpha = rr / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    CgResult { iterations: max_iter, residual: rr.sqrt(), converged: rr.sqrt() <= target }
}

/// Solves a tridiagonal system with the Thomas algorithm.
///
/// `lower[0]` and `upper[n-1]` are ignored. Returns `None` when a pivot
/// vanishes (system not diagonally dominant enough).
pub fn thomas(lower: &[f64], diag: &[f64], upper: &[f64], rhs: &[f64]) -> Option<Vec<f64>> {
    let n = diag.len();
    assert_eq!(lower.len(), n);
    assert_eq!(upper.len(), n);
    assert_eq!(rhs.len(), n);
    if n == 0 {
        return Some(Vec::new());
    }
    let mut c = vec![0.0; n];
    let mut d = vec![0.0; n];
    if diag[0] == 0.0 {
        return None;
    }
    c[0] = upper[0] / diag[0];
    d[0] = rhs[0] / diag[0];
    for i in 1..n {
        let m = diag[i] - lower[i] * c[i - 1];
        if m == 0.0 {
            return None;
        }
        c[i] = upper[i] / m;
        d[i] = (rhs[i] - lower[i] * d[i - 1]) / m;
    }
    let mut x = d;
    for i in (0..n - 1).rev() {
        let xi = x[i] - c[i] * x[i + 1];
        x[i] = xi;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense SPD apply for testing.
    fn dense_apply(a: &[f64], n: usize) -> impl Fn(&[f64], &mut [f64]) + '_ {
        move |x: &[f64], y: &mut [f64]| {
            for i in 0..n {
                y[i] = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            }
        }
    }

    #[test]
    fn cg_solves_diagonal_system_exactly() {
        let n = 16;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = (i + 1) as f64;
        }
        let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64 * 2.0).collect();
        let mut x = vec![0.0; n];
        let res = conjugate_gradient(dense_apply(&a, n), &b, &mut x, 1e-12, 100);
        assert!(res.converged);
        for xi in &x {
            assert!((xi - 2.0).abs() < 1e-10);
        }
    }

    #[test]
    fn cg_solves_laplacian() {
        // 1D Laplacian with Dirichlet ends: classic SPD test problem.
        let n = 64;
        let apply = |x: &[f64], y: &mut [f64]| {
            for i in 0..n {
                let left = if i > 0 { x[i - 1] } else { 0.0 };
                let right = if i + 1 < n { x[i + 1] } else { 0.0 };
                y[i] = 2.0 * x[i] - left - right;
            }
        };
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = conjugate_gradient(apply, &b, &mut x, 1e-10, 500);
        assert!(res.converged, "residual {}", res.residual);
        // Verify A x = b directly.
        let mut ax = vec![0.0; n];
        apply(&x, &mut ax);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn cg_converges_in_at_most_n_iterations_exact_arithmetic() {
        // CG on an n-dim SPD system converges in ≤ n steps (up to rounding).
        let n = 8;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = if i == j { 4.0 } else { 1.0 / (1.0 + (i as f64 - j as f64).abs()) };
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut x = vec![0.0; n];
        let res = conjugate_gradient(dense_apply(&a, n), &b, &mut x, 1e-10, n + 2);
        assert!(res.converged);
    }

    #[test]
    fn thomas_matches_direct_solution() {
        let n = 10;
        let lower = vec![-1.0; n];
        let diag = vec![2.5; n];
        let upper = vec![-1.0; n];
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        // rhs = A x_true
        let mut rhs = vec![0.0; n];
        for i in 0..n {
            rhs[i] = diag[i] * x_true[i];
            if i > 0 {
                rhs[i] += lower[i] * x_true[i - 1];
            }
            if i + 1 < n {
                rhs[i] += upper[i] * x_true[i + 1];
            }
        }
        let x = thomas(&lower, &diag, &upper, &rhs).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn thomas_rejects_singular_pivot() {
        assert!(thomas(&[0.0, 1.0], &[0.0, 1.0], &[0.0, 0.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn thomas_empty_system() {
        assert_eq!(thomas(&[], &[], &[], &[]), Some(vec![]));
    }
}
