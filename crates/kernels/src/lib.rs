//! Shared numerical kernels for the HEC application suite.
//!
//! Everything here is written from scratch — the paper's applications rely on
//! hand-written FFTs (PARATEC explicitly uses its own 3D FFT because its
//! Fourier-space data layout is a load-balanced sphere, not a dense cube) and
//! vendor BLAS; this crate provides the Rust equivalents used by all four
//! mini-apps:
//!
//! * [`complex`] — a minimal `Complex64` type (no external num crate).
//! * [`fft`] — 1D complex FFT: iterative radix-2 plus Bluestein's algorithm
//!   for arbitrary lengths.
//! * [`fft3d`] — local (single address space) 3D FFT over a dense cube,
//!   pencil-at-a-time, used as the reference for the distributed transforms.
//! * [`blas`] — blocked `dgemm`/`zgemm`, `dot`/`axpy`/`norm` level-1 helpers.
//! * [`solve`] — conjugate-gradient and tridiagonal (Thomas) solvers.
//! * [`stream`] — STREAM-style triad/copy microkernels used to sanity-check
//!   the memory-bandwidth terms of the architectural model.

pub mod blas;
pub mod complex;
pub mod fft;
pub mod fft3d;
pub mod solve;
pub mod stream;

pub use complex::Complex64;
