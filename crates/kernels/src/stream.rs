//! STREAM-style memory microkernels.
//!
//! Table 1 of the paper characterizes every platform by its measured
//! EP-STREAM triad bandwidth; the architectural model's memory terms are
//! expressed in the same units. These kernels let the test-suite measure the
//! *host* machine's triad bandwidth and verify that the model's
//! bytes-per-iteration accounting is exact.

use hec_core::probe::{self, Counters};

/// Bytes moved per triad iteration (`a[i] = b[i] + q*c[i]`):
/// two 8-byte loads plus one 8-byte store.
pub const TRIAD_BYTES_PER_ELEM: usize = 24;

/// Flops per triad iteration (one multiply, one add).
pub const TRIAD_FLOPS_PER_ELEM: usize = 2;

/// Minimum triad elements per worker before [`triad_with`] spawns: below
/// this the per-thread spawn cost exceeds the streamed work (the
/// `triad_4096/t4` regression), so the handle is clamped serial.
pub const TRIAD_MIN_ELEMS_PER_WORKER: usize = 64 * 1024;

/// STREAM triad: `a[i] = b[i] + q * c[i]`.
pub fn triad(a: &mut [f64], b: &[f64], c: &[f64], q: f64) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    for ((ai, bi), ci) in a.iter_mut().zip(b).zip(c) {
        *ai = *bi + q * *ci;
    }
}

/// [`triad`] with the arrays split across workers — the EP-STREAM
/// configuration the paper's Table 1 measures (independent triads per
/// processor). Element-wise and disjoint, so bitwise identical to the
/// serial triad.
pub fn triad_with(threads: &hec_core::pool::Threads, a: &mut [f64], b: &[f64], c: &[f64], q: f64) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    if a.is_empty() {
        return;
    }
    let n = a.len() as u64;
    probe::count(
        "kernels/stream triad",
        Counters {
            flops: n * TRIAD_FLOPS_PER_ELEM as u64,
            unit_stride_bytes: n * TRIAD_BYTES_PER_ELEM as u64,
            vector_iters: n,
            vector_loops: 1,
            ..Default::default()
        },
    );
    let threads = threads.clamp_for(a.len(), TRIAD_MIN_ELEMS_PER_WORKER);
    let chunk = a.len().div_ceil(threads.workers()).max(1);
    threads.par_chunks_mut(a, chunk, |ci, ca| {
        let lo = ci * chunk;
        triad(ca, &b[lo..lo + ca.len()], &c[lo..lo + ca.len()], q);
    });
}

/// STREAM copy: `a[i] = b[i]`.
pub fn copy(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    a.copy_from_slice(b);
}

/// STREAM scale: `a[i] = q * b[i]`.
pub fn scale(a: &mut [f64], b: &[f64], q: f64) {
    assert_eq!(a.len(), b.len());
    for (ai, bi) in a.iter_mut().zip(b) {
        *ai = q * *bi;
    }
}

/// STREAM sum: `a[i] = b[i] + c[i]`.
pub fn add(a: &mut [f64], b: &[f64], c: &[f64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    for ((ai, bi), ci) in a.iter_mut().zip(b).zip(c) {
        *ai = *bi + *ci;
    }
}

/// Gather kernel `a[i] = b[idx[i]]` — the random-access pattern of GTC's
/// field interpolation. Returns the number of gathered elements.
pub fn gather(a: &mut [f64], b: &[f64], idx: &[usize]) -> usize {
    assert_eq!(a.len(), idx.len());
    for (ai, &j) in a.iter_mut().zip(idx) {
        *ai = b[j];
    }
    let n = idx.len() as u64;
    probe::count(
        "kernels/gather",
        Counters {
            // Index read + destination write stream; source reads are random.
            unit_stride_bytes: n * 16,
            gather_scatter_bytes: n * 8,
            gather_scatter_ops: n,
            vector_iters: n,
            vector_loops: 1,
            ..Default::default()
        },
    );
    idx.len()
}

/// Scatter-add kernel `b[idx[i]] += a[i]` — the charge-deposition pattern.
/// Returns the number of scattered elements.
pub fn scatter_add(a: &[f64], b: &mut [f64], idx: &[usize]) -> usize {
    assert_eq!(a.len(), idx.len());
    for (ai, &j) in a.iter().zip(idx) {
        b[j] += *ai;
    }
    let n = idx.len() as u64;
    probe::count(
        "kernels/scatter-add",
        Counters {
            flops: n,
            // Value + index read streams; grid points are read-modify-write
            // at random addresses.
            unit_stride_bytes: n * 16,
            gather_scatter_bytes: n * 16,
            gather_scatter_ops: n,
            vector_iters: n,
            vector_loops: 1,
            ..Default::default()
        },
    );
    idx.len()
}

/// Measures triad bandwidth on the host in GB/s over `n` elements and
/// `reps` repetitions. Used only for reporting, never for model input.
pub fn measure_triad_gbps(n: usize, reps: usize) -> f64 {
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    // Warm-up pass so page faults don't pollute the timing.
    triad(&mut a, &b, &c, 3.0);
    let start = std::time::Instant::now();
    for _ in 0..reps {
        triad(&mut a, &b, &c, 3.0);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    // The checksum keeps the optimizer from discarding the loop.
    std::hint::black_box(a[n / 2]);
    (n * reps * TRIAD_BYTES_PER_ELEM) as f64 / secs / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_computes_expected_values() {
        let b = vec![1.0, 2.0, 3.0];
        let c = vec![10.0, 20.0, 30.0];
        let mut a = vec![0.0; 3];
        triad(&mut a, &b, &c, 0.5);
        assert_eq!(a, vec![6.0, 12.0, 18.0]);
    }

    #[test]
    fn copy_scale_add() {
        let b = vec![1.0, -2.0, 4.0];
        let c = vec![0.5, 0.5, 0.5];
        let mut a = vec![0.0; 3];
        copy(&mut a, &b);
        assert_eq!(a, b);
        scale(&mut a, &b, -1.0);
        assert_eq!(a, vec![-1.0, 2.0, -4.0]);
        add(&mut a, &b, &c);
        assert_eq!(a, vec![1.5, -1.5, 4.5]);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let src = vec![10.0, 20.0, 30.0, 40.0];
        let idx = vec![3, 0, 2, 1];
        let mut dst = vec![0.0; 4];
        assert_eq!(gather(&mut dst, &src, &idx), 4);
        assert_eq!(dst, vec![40.0, 10.0, 30.0, 20.0]);

        let mut acc = vec![0.0; 4];
        assert_eq!(scatter_add(&dst, &mut acc, &idx), 4);
        // Scatter through the same permutation restores the original order.
        assert_eq!(acc, src);
    }

    #[test]
    fn scatter_add_accumulates_collisions() {
        // Two particles deposit on the same grid point — the memory-conflict
        // case the work-vector method exists to avoid on vector hardware.
        let vals = vec![1.0, 2.0, 3.0];
        let idx = vec![1, 1, 1];
        let mut grid = vec![0.0; 2];
        scatter_add(&vals, &mut grid, &idx);
        assert_eq!(grid, vec![0.0, 6.0]);
    }

    #[test]
    fn measured_bandwidth_is_finite_and_positive() {
        let gbps = measure_triad_gbps(1 << 12, 4);
        assert!(gbps.is_finite() && gbps > 0.0);
    }

    #[test]
    fn small_triads_take_the_serial_path() {
        use hec_core::pool::Threads;
        // The dispatch rule triad_with applies: below the cutoff the
        // clamped handle is serial, so no threads are spawned for the
        // bench's 4096-element case that regressed 45× under /t4.
        let t = Threads::new(4);
        assert!(t.clamp_for(4096, TRIAD_MIN_ELEMS_PER_WORKER).is_serial());
        assert!(t.clamp_for(65536, TRIAD_MIN_ELEMS_PER_WORKER).is_serial());
        assert_eq!(t.clamp_for(1 << 20, TRIAD_MIN_ELEMS_PER_WORKER).workers(), 4);
        // And the clamped path still computes the same values.
        let n = 4096;
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
        let mut a1 = vec![0.0; n];
        let mut a4 = vec![0.0; n];
        triad(&mut a1, &b, &c, 1.5);
        triad_with(&t, &mut a4, &b, &c, 1.5);
        assert_eq!(a1, a4);
    }

    #[test]
    fn triad_probe_counts_match_the_documented_constants() {
        use hec_core::pool::Threads;
        use hec_core::probe;
        let n = 1000u64;
        let b = vec![1.0; n as usize];
        let c = vec![2.0; n as usize];
        let ((), cap) = probe::capture(|| {
            let mut a = vec![0.0; n as usize];
            triad_with(&Threads::new(2), &mut a, &b, &c, 3.0);
        });
        let t = cap.get("kernels/stream triad");
        assert_eq!(t.flops, n * TRIAD_FLOPS_PER_ELEM as u64);
        assert_eq!(t.unit_stride_bytes, n * TRIAD_BYTES_PER_ELEM as u64);
        assert_eq!(t.avg_vector_length(), n as f64);
    }
}
