//! Local (single address space) 3D complex FFT over a dense cube.
//!
//! The distributed transforms in `paratec` decompose into exactly these
//! pencil sweeps separated by data transposes; this module is both the
//! building block for the per-rank work and the whole-problem oracle the
//! distributed version is tested against.

use crate::complex::Complex64;
use crate::fft::{Direction, FftPlan};
use hec_core::pool::Threads;

/// Pencils gathered per transpose block. Gathering `TB` neighboring
/// pencils at once turns the strided y/z sweeps into copies of
/// `TB`-element contiguous runs (a blocked transpose), instead of
/// touching one element per cache line. Pure data movement — the
/// transformed values are bitwise unchanged.
const TB: usize = 16;

/// Gathers pencils `i0..i0+tb` of length `len` and stride `stride` from
/// `data[base..]` into `buf` (line-major: pencil `it` at `buf[it*len..]`),
/// transforms each line, and scatters them back.
fn transform_pencil_block(
    plan: &FftPlan,
    dir: Direction,
    data: &mut [Complex64],
    base: usize,
    i0: usize,
    tb: usize,
    len: usize,
    stride: usize,
    buf: &mut [Complex64],
) {
    for e in 0..len {
        let row = &data[base + i0 + stride * e..][..tb];
        for (it, v) in row.iter().enumerate() {
            buf[it * len + e] = *v;
        }
    }
    for line in buf[..tb * len].chunks_exact_mut(len) {
        plan.execute(line, dir);
    }
    for e in 0..len {
        let row = &mut data[base + i0 + stride * e..][..tb];
        for (it, v) in row.iter_mut().enumerate() {
            *v = buf[it * len + e];
        }
    }
}

/// Dense 3D complex array with `x` fastest (Fortran-like `(nx, ny, nz)`
/// indexing, matching the layout the F90 applications use).
#[derive(Clone, Debug)]
pub struct Grid3 {
    /// Extent in x (fastest-varying).
    pub nx: usize,
    /// Extent in y.
    pub ny: usize,
    /// Extent in z (slowest-varying).
    pub nz: usize,
    /// `nx * ny * nz` values, x fastest.
    pub data: Vec<Complex64>,
}

impl Grid3 {
    /// Allocates a zero-filled grid.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Grid3 { nx, ny, nz, data: vec![Complex64::ZERO; nx * ny * nz] }
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear index of `(i, j, k)`.
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Value at `(i, j, k)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize, k: usize) -> Complex64 {
        self.data[self.idx(i, j, k)]
    }

    /// Mutable value at `(i, j, k)`.
    #[inline(always)]
    pub fn get_mut(&mut self, i: usize, j: usize, k: usize) -> &mut Complex64 {
        let ix = self.idx(i, j, k);
        &mut self.data[ix]
    }
}

/// Reusable 3D FFT plan for a fixed grid shape.
#[derive(Clone, Debug)]
pub struct Fft3Plan {
    plan_x: FftPlan,
    plan_y: FftPlan,
    plan_z: FftPlan,
}

impl Fft3Plan {
    /// Builds plans for all three pencil directions of an
    /// `(nx, ny, nz)` grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Fft3Plan { plan_x: FftPlan::new(nx), plan_y: FftPlan::new(ny), plan_z: FftPlan::new(nz) }
    }

    /// Transforms the grid in place: x pencils, then y, then z.
    ///
    /// # Panics
    /// Panics if the grid shape does not match the plan.
    pub fn execute(&self, g: &mut Grid3, dir: Direction) {
        assert_eq!(g.nx, self.plan_x.len());
        assert_eq!(g.ny, self.plan_y.len());
        assert_eq!(g.nz, self.plan_z.len());
        let (nx, ny, nz) = (g.nx, g.ny, g.nz);

        // x pencils are contiguous.
        for line in g.data.chunks_exact_mut(nx) {
            self.plan_x.execute(line, dir);
        }

        // y pencils: blocked transpose — TB neighboring pencils per
        // gather, so every copy is a contiguous TB-element run.
        let mut buf = vec![Complex64::ZERO; TB * ny.max(nz)];
        for k in 0..nz {
            for i0 in (0..nx).step_by(TB) {
                let tb = TB.min(nx - i0);
                transform_pencil_block(
                    &self.plan_y,
                    dir,
                    &mut g.data,
                    nx * ny * k,
                    i0,
                    tb,
                    ny,
                    nx,
                    &mut buf,
                );
            }
        }

        // z pencils: same blocked transpose with stride nx·ny.
        for j in 0..ny {
            for i0 in (0..nx).step_by(TB) {
                let tb = TB.min(nx - i0);
                transform_pencil_block(
                    &self.plan_z,
                    dir,
                    &mut g.data,
                    nx * j,
                    i0,
                    tb,
                    nz,
                    nx * ny,
                    &mut buf,
                );
            }
        }
    }

    /// [`Fft3Plan::execute`] with the pencil sweeps split across
    /// workers: x lines and whole z-planes of y lines are disjoint
    /// slices of the grid; z pencils (stride `nx·ny`) are gathered and
    /// transformed in parallel, then scattered back in line order. Every
    /// pencil transforms independently, so the result is **bitwise
    /// identical** to the serial sweep for any worker count.
    pub fn execute_with(&self, threads: &Threads, g: &mut Grid3, dir: Direction) {
        if threads.is_serial() {
            return self.execute(g, dir);
        }
        assert_eq!(g.nx, self.plan_x.len());
        assert_eq!(g.ny, self.plan_y.len());
        assert_eq!(g.nz, self.plan_z.len());
        let (nx, ny, nz) = (g.nx, g.ny, g.nz);

        // x pencils are contiguous lines.
        threads.par_chunks_mut(&mut g.data, nx, |_, line| self.plan_x.execute(line, dir));

        // y pencils: each z-plane is a contiguous nx·ny slice holding
        // nx complete strided lines; blocked transpose within the plane.
        threads.par_chunks_mut(&mut g.data, nx * ny, |_, plane| {
            let mut buf = vec![Complex64::ZERO; TB * ny];
            for i0 in (0..nx).step_by(TB) {
                let tb = TB.min(nx - i0);
                transform_pencil_block(&self.plan_y, dir, plane, 0, i0, tb, ny, nx, &mut buf);
            }
        });

        // z pencils cross every plane: gather + transform whole TB-blocks
        // in parallel (pure reads of disjoint strided lines), scatter
        // back serially in block order.
        let blocks: Vec<(usize, usize)> =
            (0..ny).flat_map(|j| (0..nx).step_by(TB).map(move |i0| (j, i0))).collect();
        let data = &g.data;
        let lines: Vec<Vec<Complex64>> = threads.par_map(&blocks, |&(j, i0)| {
            let tb = TB.min(nx - i0);
            let mut buf = vec![Complex64::ZERO; tb * nz];
            for k in 0..nz {
                let row = &data[nx * j + i0 + nx * ny * k..][..tb];
                for (it, v) in row.iter().enumerate() {
                    buf[it * nz + k] = *v;
                }
            }
            for line in buf.chunks_exact_mut(nz) {
                self.plan_z.execute(line, dir);
            }
            buf
        });
        for (&(j, i0), buf) in blocks.iter().zip(&lines) {
            let tb = TB.min(nx - i0);
            for k in 0..nz {
                let row = &mut g.data[nx * j + i0 + nx * ny * k..][..tb];
                for (it, v) in row.iter_mut().enumerate() {
                    *v = buf[it * nz + k];
                }
            }
        }
    }

    /// Total flop count of one 3D transform.
    pub fn flops(&self) -> f64 {
        let nx = self.plan_x.len() as f64;
        let ny = self.plan_y.len() as f64;
        let nz = self.plan_z.len() as f64;
        ny * nz * self.plan_x.flops()
            + nx * nz * self.plan_y.flops()
            + nx * ny * self.plan_z.flops()
    }
}

/// One-shot forward 3D FFT.
pub fn fft3(g: &mut Grid3) {
    Fft3Plan::new(g.nx, g.ny, g.nz).execute(g, Direction::Forward);
}

/// One-shot inverse 3D FFT.
pub fn ifft3(g: &mut Grid3) {
    Fft3Plan::new(g.nx, g.ny, g.nz).execute(g, Direction::Inverse);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(g: &mut Grid3) {
        for k in 0..g.nz {
            for j in 0..g.ny {
                for i in 0..g.nx {
                    *g.get_mut(i, j, k) = Complex64::new(
                        ((i * 3 + j * 7 + k * 11) as f64 * 0.1).sin(),
                        ((i + 2 * j + 5 * k) as f64 * 0.05).cos(),
                    );
                }
            }
        }
    }

    #[test]
    fn round_trip_identity() {
        let mut g = Grid3::zeros(8, 6, 10);
        fill(&mut g);
        let orig = g.clone();
        fft3(&mut g);
        ifft3(&mut g);
        for (a, b) in g.data.iter().zip(&orig.data) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn single_mode_transforms_to_delta() {
        // A pure plane wave e^{2πi(ax/nx + by/ny + cz/nz)} must transform to a
        // single spike at (a, b, c) with amplitude nx*ny*nz (forward,
        // negative-exponent convention picks out k = +mode).
        let (nx, ny, nz) = (8, 4, 4);
        let (a, b, c) = (3usize, 1usize, 2usize);
        let mut g = Grid3::zeros(nx, ny, nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let phase = 2.0
                        * std::f64::consts::PI
                        * (a as f64 * i as f64 / nx as f64
                            + b as f64 * j as f64 / ny as f64
                            + c as f64 * k as f64 / nz as f64);
                    *g.get_mut(i, j, k) = Complex64::cis(phase);
                }
            }
        }
        fft3(&mut g);
        let total = (nx * ny * nz) as f64;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let want = if (i, j, k) == (a, b, c) { total } else { 0.0 };
                    let got = g.get(i, j, k);
                    assert!(
                        (got - Complex64::real(want)).abs() < 1e-8 * total,
                        "at ({i},{j},{k}): {got:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parseval_3d() {
        let mut g = Grid3::zeros(6, 9, 5); // mixed radix via Bluestein
        fill(&mut g);
        let e_time: f64 = g.data.iter().map(|z| z.norm_sqr()).sum();
        fft3(&mut g);
        let e_freq: f64 = g.data.iter().map(|z| z.norm_sqr()).sum::<f64>() / g.len() as f64;
        assert!((e_time - e_freq).abs() < 1e-8 * e_time.max(1.0));
    }

    #[test]
    fn threaded_execute_is_bitwise_serial() {
        let plan = Fft3Plan::new(12, 10, 9); // mixed radix, Bluestein in y/z
        for dir in [Direction::Forward, Direction::Inverse] {
            let mut serial = Grid3::zeros(12, 10, 9);
            fill(&mut serial);
            let mut reference = serial.clone();
            plan.execute(&mut reference, dir);
            for workers in [1usize, 2, 4] {
                let mut g = serial.clone();
                plan.execute_with(&Threads::new(workers), &mut g, dir);
                for (a, b) in g.data.iter().zip(&reference.data) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "workers={workers}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn flops_positive_and_scales() {
        let small = Fft3Plan::new(8, 8, 8).flops();
        let big = Fft3Plan::new(16, 16, 16).flops();
        assert!(small > 0.0);
        assert!(big > 8.0 * small); // superlinear in total points
    }
}
