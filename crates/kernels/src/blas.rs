//! Blocked BLAS-style kernels.
//!
//! PARATEC spends most of its time in ZGEMM (nonlocal pseudopotential and
//! subspace products) and the paper attributes its high %-of-peak on every
//! platform to exactly these cache-friendly kernels. The implementations
//! here use register-tiled blocking; they are not meant to beat vendor BLAS,
//! but they have the same arithmetic-intensity profile, which is what the
//! architectural model consumes.

use crate::complex::Complex64;

/// Cache block edge for the tiled matrix kernels.
const BLOCK: usize = 48;

/// `C ← alpha · A·B + beta · C` for row-major `f64` matrices.
///
/// `a` is `m×k`, `b` is `k×n`, `c` is `m×n`, all dense row-major.
///
/// # Panics
/// Panics if the slice lengths do not match the given dimensions.
pub fn dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "A dimension mismatch");
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert_eq!(c.len(), m * n, "C dimension mismatch");
    if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    for i0 in (0..m).step_by(BLOCK) {
        let imax = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let pmax = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let jmax = (j0 + BLOCK).min(n);
                for i in i0..imax {
                    for p in p0..pmax {
                        let aip = alpha * a[i * k + p];
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = &b[p * n + j0..p * n + jmax];
                        let crow = &mut c[i * n + j0..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aip * *bv;
                        }
                    }
                }
            }
        }
    }
}

/// `C ← alpha · op(A)·op(B) + beta · C` for row-major complex matrices with
/// optional conjugate-transpose on `A` (the projector applications in
/// PARATEC need `Aᴴ·B`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the matrix as stored.
    None,
    /// Use the conjugate transpose.
    ConjTrans,
}

/// Complex GEMM. `a` is `m×k` (or `k×m` when `ta == ConjTrans`), `b` is
/// `k×n`, `c` is `m×n`, all dense row-major.
pub fn zgemm(
    ta: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex64,
    a: &[Complex64],
    b: &[Complex64],
    beta: Complex64,
    c: &mut [Complex64],
) {
    match ta {
        Trans::None => assert_eq!(a.len(), m * k, "A dimension mismatch"),
        Trans::ConjTrans => assert_eq!(a.len(), k * m, "A dimension mismatch"),
    }
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert_eq!(c.len(), m * n, "C dimension mismatch");
    if beta != Complex64::ONE {
        for x in c.iter_mut() {
            *x = *x * beta;
        }
    }
    let fetch_a = |i: usize, p: usize| -> Complex64 {
        match ta {
            Trans::None => a[i * k + p],
            Trans::ConjTrans => a[p * m + i].conj(),
        }
    };
    for i0 in (0..m).step_by(BLOCK) {
        let imax = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let pmax = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let jmax = (j0 + BLOCK).min(n);
                for i in i0..imax {
                    for p in p0..pmax {
                        let aip = alpha * fetch_a(i, p);
                        let brow = &b[p * n + j0..p * n + jmax];
                        let crow = &mut c[i * n + j0..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv = cv.mul_add(aip, *bv);
                        }
                    }
                }
            }
        }
    }
}

/// Naive reference GEMM used by the tests and property checks.
pub fn dgemm_reference(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Real dot product.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Complex inner product `⟨x, y⟩ = Σ conj(x_i) y_i`.
#[inline]
pub fn zdotc(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).fold(Complex64::ZERO, |acc, (a, b)| acc.mul_add(a.conj(), *b))
}

/// `y ← y + alpha x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// Complex `y ← y + alpha x`.
#[inline]
pub fn zaxpy(alpha: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = yi.mul_add(alpha, *xi);
    }
}

/// Euclidean norm.
#[inline]
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Euclidean norm of a complex vector.
#[inline]
pub fn znrm2(x: &[Complex64]) -> f64 {
    x.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Flop count of a real GEMM (used by the architectural model).
pub fn dgemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flop count of a complex GEMM (4 mul + 4 add per term).
pub fn zgemm_flops(m: usize, n: usize, k: usize) -> f64 {
    8.0 * m as f64 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(m: usize, n: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        (0..m * n).map(|ix| f(ix / n, ix % n)).collect()
    }

    #[test]
    fn dgemm_matches_reference_on_odd_shapes() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (50, 49, 51), (97, 13, 64)] {
            let a = mat(m, k, |i, j| (i as f64 - j as f64) * 0.25 + 1.0);
            let b = mat(k, n, |i, j| (i * 31 + j) as f64 * 0.01 - 0.7);
            let mut c1 = mat(m, n, |i, j| (i + j) as f64 * 0.1);
            let mut c2 = c1.clone();
            dgemm(m, n, k, 1.3, &a, &b, 0.5, &mut c1);
            dgemm_reference(m, n, k, 1.3, &a, &b, 0.5, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-9, "({m},{n},{k})");
            }
        }
    }

    #[test]
    fn dgemm_identity_is_noop() {
        let n = 17;
        let ident = mat(n, n, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = mat(n, n, |i, j| (i * n + j) as f64);
        let mut c = vec![0.0; n * n];
        dgemm(n, n, n, 1.0, &ident, &b, 0.0, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn zgemm_conj_trans_matches_manual() {
        let (m, n, k) = (4, 3, 5);
        // A stored k×m, used as Aᴴ (m×k).
        let a: Vec<Complex64> =
            (0..k * m).map(|i| Complex64::new(i as f64 * 0.1, -(i as f64) * 0.05)).collect();
        let b: Vec<Complex64> =
            (0..k * n).map(|i| Complex64::new((i as f64 * 0.3).sin(), 0.2)).collect();
        let mut c = vec![Complex64::ZERO; m * n];
        zgemm(Trans::ConjTrans, m, n, k, Complex64::ONE, &a, &b, Complex64::ZERO, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut want = Complex64::ZERO;
                for p in 0..k {
                    want += a[p * m + i].conj() * b[p * n + j];
                }
                assert!((c[i * n + j] - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn zgemm_none_matches_dgemm_on_real_data() {
        let (m, n, k) = (6, 7, 8);
        let ar = mat(m, k, |i, j| (i + 2 * j) as f64 * 0.5);
        let br = mat(k, n, |i, j| (3 * i + j) as f64 * 0.25);
        let az: Vec<Complex64> = ar.iter().map(|&x| Complex64::real(x)).collect();
        let bz: Vec<Complex64> = br.iter().map(|&x| Complex64::real(x)).collect();
        let mut cr = vec![0.0; m * n];
        let mut cz = vec![Complex64::ZERO; m * n];
        dgemm(m, n, k, 1.0, &ar, &br, 0.0, &mut cr);
        zgemm(Trans::None, m, n, k, Complex64::ONE, &az, &bz, Complex64::ZERO, &mut cz);
        for (r, z) in cr.iter().zip(&cz) {
            assert!((r - z.re).abs() < 1e-10 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn level1_helpers() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn zdotc_is_conjugate_linear_in_first_arg() {
        let x = vec![Complex64::new(1.0, 2.0), Complex64::new(-0.5, 0.25)];
        let y = vec![Complex64::new(0.5, -1.0), Complex64::new(2.0, 2.0)];
        let d = zdotc(&x, &y);
        let manual = x[0].conj() * y[0] + x[1].conj() * y[1];
        assert!((d - manual).abs() < 1e-12);
        // ⟨x, x⟩ is real and equals ‖x‖².
        let xx = zdotc(&x, &x);
        assert!(xx.im.abs() < 1e-12);
        assert!((xx.re - znrm2(&x).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn flop_counters() {
        assert_eq!(dgemm_flops(2, 3, 4), 48.0);
        assert_eq!(zgemm_flops(2, 3, 4), 192.0);
    }
}
