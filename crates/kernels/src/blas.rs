//! Blocked BLAS-style kernels.
//!
//! PARATEC spends most of its time in ZGEMM (nonlocal pseudopotential and
//! subspace products) and the paper attributes its high %-of-peak on every
//! platform to exactly these cache-friendly kernels. The implementations
//! here follow the classic packed-panel design (Goto-style): B is packed
//! once into `NR`-wide column panels, each band of A into `MR`-tall row
//! micro-panels, and an `MR×NR` register-tile microkernel accumulates the
//! full-`k` dot products in registers before a single writeback. They are
//! not meant to beat vendor BLAS, but they have the same
//! arithmetic-intensity profile, which is what the architectural model
//! consumes.
//!
//! Determinism: the microkernel accumulates each output element's products
//! in `p = 0..k` order starting from zero and writes back
//! `alpha·acc + beta·c`, which is *exactly* the chain
//! [`dgemm_reference`] computes — so the blocked [`dgemm`] is bitwise
//! identical to the naive reference, and (because each element's chain is
//! independent of row banding) [`par_dgemm`] is bitwise identical at every
//! worker count.

use crate::complex::Complex64;
use hec_core::pool::Threads;
use hec_core::probe::{self, Counters};

/// Microkernel register-tile rows (real kernel). At 6×8 the accumulator
/// tile is 12 256-bit registers; with two B loads and one A broadcast it
/// fills a 16-register SIMD file without spilling.
const MR: usize = 6;
/// Microkernel register-tile columns (real kernel): one packed B panel is
/// `NR` doubles wide, the unit-stride width of the innermost loop.
const NR: usize = 8;
/// Column-block width (in output columns): the group of packed B panels a
/// sweep of A micro-panels re-reads while it stays cache-resident.
const NC: usize = 256;
/// Microkernel register-tile rows (complex kernel).
const ZMR: usize = 2;
/// Microkernel register-tile columns (complex kernel): 4 complex = 8
/// doubles of unit-stride width.
const ZNR: usize = 4;

/// Minimum flops per worker before the `par_*` GEMMs spawn threads:
/// below this the spawn cost exceeds the banded work (the small-size
/// dispatch regression in BENCH_kernels.json), so the handle is clamped
/// toward serial.
pub const GEMM_MIN_FLOPS_PER_WORKER: u64 = 8 * 1024 * 1024;

/// Records the probe events of one `m×n×k` real GEMM. Counted once per
/// API call (never per band), so captures are identical for any worker
/// count. The innermost vectorizable loop is the `NR`-wide accumulator
/// update; it runs once per `(i, p, j-panel)` triple.
fn count_dgemm(m: usize, n: usize, k: usize) {
    if !probe::enabled() {
        return;
    }
    let (m, n, k) = (m as u64, n as u64, k as u64);
    probe::count(
        "kernels/dgemm",
        Counters {
            flops: 2 * m * n * k,
            // Each inner iteration streams B (read) and C (read+write);
            // A is re-read once per (i, p) pair.
            unit_stride_bytes: m * n * k * 24 + m * k * 8,
            vector_iters: m * n * k,
            vector_loops: m * k * n.div_ceil(NR as u64),
            ..Default::default()
        },
    );
}

/// Records the probe events of one `m×n×k` complex GEMM (8 flops per
/// multiply-add term). Counted once per API call — see [`count_dgemm`].
fn count_zgemm(m: usize, n: usize, k: usize) {
    if !probe::enabled() {
        return;
    }
    let (m, n, k) = (m as u64, n as u64, k as u64);
    probe::count(
        "kernels/zgemm",
        Counters {
            flops: 8 * m * n * k,
            unit_stride_bytes: m * n * k * 48 + m * k * 16,
            vector_iters: m * n * k,
            vector_loops: m * k * n.div_ceil(ZNR as u64),
            ..Default::default()
        },
    );
}

/// Packs row-major `k×n` B into `n.div_ceil(NR)` contiguous panels, panel
/// `jp` holding columns `jp·NR..` as `k` rows of `NR` doubles
/// (zero-padded past column `n`). Pure copies — no rounding.
fn pack_b(n: usize, k: usize, b: &[f64]) -> Vec<f64> {
    let ntiles = n.div_ceil(NR);
    let mut out = vec![0.0f64; ntiles * k * NR];
    for jp in 0..ntiles {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let panel = &mut out[jp * k * NR..][..k * NR];
        for p in 0..k {
            panel[p * NR..p * NR + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
        }
    }
    out
}

/// Packs `rows` rows of A starting at `row0` into `MR`-tall micro-panels,
/// panel `ip` holding rows `row0 + ip·MR..` as `k` columns of `MR`
/// doubles (zero-padded past the last row). Pure copies — no rounding.
fn pack_a(row0: usize, rows: usize, k: usize, a: &[f64]) -> Vec<f64> {
    let mtiles = rows.div_ceil(MR);
    let mut out = vec![0.0f64; mtiles * k * MR];
    for ip in 0..mtiles {
        let i0 = ip * MR;
        let h = MR.min(rows - i0);
        let panel = &mut out[ip * k * MR..][..k * MR];
        for ir in 0..h {
            let arow = &a[(row0 + i0 + ir) * k..][..k];
            for p in 0..k {
                panel[p * MR + ir] = arow[p];
            }
        }
    }
    out
}

/// The `MR×NR` register-tile microkernel: `acc[ir][jr] += Σ_p a·b` with
/// the sum taken in `p = 0..k` order (the reference chain). Both operands
/// are packed, so every load is unit-stride.
#[inline(always)]
fn dgemm_microkernel(k: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    for p in 0..k {
        let av = &ap[p * MR..p * MR + MR];
        let bv = &bp[p * NR..p * NR + NR];
        for ir in 0..MR {
            let a_ir = av[ir];
            for jr in 0..NR {
                acc[ir][jr] += a_ir * bv[jr];
            }
        }
    }
}

/// `C ← alpha · A·B + beta · C` for row-major `f64` matrices.
///
/// `a` is `m×k`, `b` is `k×n`, `c` is `m×n`, all dense row-major.
///
/// # Panics
/// Panics if the slice lengths do not match the given dimensions.
pub fn dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "A dimension mismatch");
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert_eq!(c.len(), m * n, "C dimension mismatch");
    if m == 0 || n == 0 {
        return;
    }
    count_dgemm(m, n, k);
    let bp = pack_b(n, k, b);
    dgemm_band(0, n, k, alpha, a, &bp, beta, c);
}

/// The packed GEMM body on a band of C rows starting at global row
/// `row0`; `bp` is the output of [`pack_b`] (shared across bands). Each
/// output element's chain (`p = 0..k` accumulation, then
/// `alpha·acc + beta·c`) is independent of how rows are banded, so
/// splitting C into row bands — at any boundaries — is bitwise identical
/// to the full serial kernel *and* to [`dgemm_reference`].
#[allow(clippy::too_many_arguments)]
fn dgemm_band(
    row0: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    bp: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    let rows = c.len() / n.max(1);
    let ap = pack_a(row0, rows, k, a);
    let mtiles = rows.div_ceil(MR);
    let ntiles = n.div_ceil(NR);
    let nc_tiles = NC / NR;
    // Column blocks keep a `k × NC` chunk of packed B cache-resident
    // while every A micro-panel sweeps over it.
    for jc in (0..ntiles).step_by(nc_tiles) {
        let jc_max = (jc + nc_tiles).min(ntiles);
        for ip in 0..mtiles {
            let a_panel = &ap[ip * k * MR..][..k * MR];
            let h = MR.min(rows - ip * MR);
            for jp in jc..jc_max {
                let b_panel = &bp[jp * k * NR..][..k * NR];
                let w = NR.min(n - jp * NR);
                let mut acc = [[0.0f64; NR]; MR];
                dgemm_microkernel(k, a_panel, b_panel, &mut acc);
                for ir in 0..h {
                    let crow = &mut c[(ip * MR + ir) * n + jp * NR..][..w];
                    for (jr, cv) in crow.iter_mut().enumerate() {
                        *cv = alpha * acc[ir][jr] + beta * *cv;
                    }
                }
            }
        }
    }
}

/// [`dgemm`] with C's rows banded across workers. Each worker owns a
/// disjoint band of output rows and runs the unchanged blocked kernel on
/// it, so the result is **bitwise identical** to serial [`dgemm`] for
/// any worker count.
#[allow(clippy::too_many_arguments)]
pub fn par_dgemm(
    threads: &Threads,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "A dimension mismatch");
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert_eq!(c.len(), m * n, "C dimension mismatch");
    if m == 0 || n == 0 {
        return;
    }
    count_dgemm(m, n, k);
    let bp = pack_b(n, k, b);
    let min_rows = (GEMM_MIN_FLOPS_PER_WORKER / (2 * (n * k).max(1)) as u64).max(1) as usize;
    let threads = threads.clamp_for(m, min_rows);
    let band = m.div_ceil(threads.workers()).max(1);
    threads.par_chunks_mut(c, band * n, |band_idx, c_band| {
        dgemm_band(band_idx * band, n, k, alpha, a, &bp, beta, c_band);
    });
}

/// `C ← alpha · op(A)·op(B) + beta · C` for row-major complex matrices with
/// optional conjugate-transpose on `A` (the projector applications in
/// PARATEC need `Aᴴ·B`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the matrix as stored.
    None,
    /// Use the conjugate transpose.
    ConjTrans,
}

/// Complex GEMM. `a` is `m×k` (or `k×m` when `ta == ConjTrans`), `b` is
/// `k×n`, `c` is `m×n`, all dense row-major.
pub fn zgemm(
    ta: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex64,
    a: &[Complex64],
    b: &[Complex64],
    beta: Complex64,
    c: &mut [Complex64],
) {
    match ta {
        Trans::None => assert_eq!(a.len(), m * k, "A dimension mismatch"),
        Trans::ConjTrans => assert_eq!(a.len(), k * m, "A dimension mismatch"),
    }
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert_eq!(c.len(), m * n, "C dimension mismatch");
    if m == 0 || n == 0 {
        return;
    }
    count_zgemm(m, n, k);
    let bp = pack_zb(n, k, b);
    zgemm_band(ta, 0, m, n, k, alpha, a, &bp, beta, c);
}

/// Packs complex `k×n` B into `ZNR`-wide panels — the complex analog of
/// [`pack_b`]. Pure copies.
fn pack_zb(n: usize, k: usize, b: &[Complex64]) -> Vec<Complex64> {
    let ntiles = n.div_ceil(ZNR);
    let mut out = vec![Complex64::ZERO; ntiles * k * ZNR];
    for jp in 0..ntiles {
        let j0 = jp * ZNR;
        let w = ZNR.min(n - j0);
        let panel = &mut out[jp * k * ZNR..][..k * ZNR];
        for p in 0..k {
            panel[p * ZNR..p * ZNR + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
        }
    }
    out
}

/// Packs `rows` rows of op(A) starting at `row0` into `ZMR`-tall
/// micro-panels; the conjugate (exact — it only flips a sign bit) is
/// applied at pack time so the microkernel reads both transposes the
/// same unit-stride way.
fn pack_za(
    ta: Trans,
    row0: usize,
    rows: usize,
    m: usize,
    k: usize,
    a: &[Complex64],
) -> Vec<Complex64> {
    let mtiles = rows.div_ceil(ZMR);
    let mut out = vec![Complex64::ZERO; mtiles * k * ZMR];
    for ip in 0..mtiles {
        let i0 = ip * ZMR;
        let h = ZMR.min(rows - i0);
        let panel = &mut out[ip * k * ZMR..][..k * ZMR];
        for ir in 0..h {
            let i = row0 + i0 + ir;
            for p in 0..k {
                panel[p * ZMR + ir] = match ta {
                    Trans::None => a[i * k + p],
                    Trans::ConjTrans => a[p * m + i].conj(),
                };
            }
        }
    }
    out
}

/// The packed complex GEMM body on a band of C rows starting at global
/// row `row0` of an `m×n` product (A indexing needs the global `m` for
/// the conjugate-transpose layout). Each element accumulates
/// `Σ_p op(A)·B` in `p` order in registers, then writes back
/// `alpha·acc + beta·c` — banding-invariant, so bitwise identical to the
/// full serial kernel for any worker count.
#[allow(clippy::too_many_arguments)]
fn zgemm_band(
    ta: Trans,
    row0: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex64,
    a: &[Complex64],
    bp: &[Complex64],
    beta: Complex64,
    c: &mut [Complex64],
) {
    let rows = c.len() / n.max(1);
    let ap = pack_za(ta, row0, rows, m, k, a);
    let mtiles = rows.div_ceil(ZMR);
    let ntiles = n.div_ceil(ZNR);
    let nc_tiles = NC / ZNR;
    for jc in (0..ntiles).step_by(nc_tiles) {
        let jc_max = (jc + nc_tiles).min(ntiles);
        for ip in 0..mtiles {
            let a_panel = &ap[ip * k * ZMR..][..k * ZMR];
            let h = ZMR.min(rows - ip * ZMR);
            for jp in jc..jc_max {
                let b_panel = &bp[jp * k * ZNR..][..k * ZNR];
                let w = ZNR.min(n - jp * ZNR);
                let mut acc = [[Complex64::ZERO; ZNR]; ZMR];
                for p in 0..k {
                    let av = &a_panel[p * ZMR..p * ZMR + ZMR];
                    let bv = &b_panel[p * ZNR..p * ZNR + ZNR];
                    for ir in 0..ZMR {
                        let a_ir = av[ir];
                        for jr in 0..ZNR {
                            acc[ir][jr] = acc[ir][jr].mul_add(a_ir, bv[jr]);
                        }
                    }
                }
                for ir in 0..h {
                    let crow = &mut c[(ip * ZMR + ir) * n + jp * ZNR..][..w];
                    for (jr, cv) in crow.iter_mut().enumerate() {
                        *cv = alpha * acc[ir][jr] + beta * *cv;
                    }
                }
            }
        }
    }
}

/// [`zgemm`] with C's rows banded across workers — disjoint output
/// bands, so **bitwise identical** to serial [`zgemm`] for any worker
/// count.
#[allow(clippy::too_many_arguments)]
pub fn par_zgemm(
    threads: &Threads,
    ta: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex64,
    a: &[Complex64],
    b: &[Complex64],
    beta: Complex64,
    c: &mut [Complex64],
) {
    match ta {
        Trans::None => assert_eq!(a.len(), m * k, "A dimension mismatch"),
        Trans::ConjTrans => assert_eq!(a.len(), k * m, "A dimension mismatch"),
    }
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert_eq!(c.len(), m * n, "C dimension mismatch");
    if m == 0 || n == 0 {
        return;
    }
    count_zgemm(m, n, k);
    let bp = pack_zb(n, k, b);
    let min_rows = (GEMM_MIN_FLOPS_PER_WORKER / (8 * (n * k).max(1)) as u64).max(1) as usize;
    let threads = threads.clamp_for(m, min_rows);
    let band = m.div_ceil(threads.workers()).max(1);
    threads.par_chunks_mut(c, band * n, |band_idx, c_band| {
        zgemm_band(ta, band_idx * band, m, n, k, alpha, a, &bp, beta, c_band);
    });
}

/// Naive reference GEMM used by the tests and property checks.
pub fn dgemm_reference(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Real dot product.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Complex inner product `⟨x, y⟩ = Σ conj(x_i) y_i`.
#[inline]
pub fn zdotc(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).fold(Complex64::ZERO, |acc, (a, b)| acc.mul_add(a.conj(), *b))
}

/// `y ← y + alpha x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// Complex `y ← y + alpha x`.
#[inline]
pub fn zaxpy(alpha: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = yi.mul_add(alpha, *xi);
    }
}

/// Euclidean norm.
#[inline]
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Euclidean norm of a complex vector.
#[inline]
pub fn znrm2(x: &[Complex64]) -> f64 {
    x.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Flop count of a real GEMM (used by the architectural model).
pub fn dgemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flop count of a complex GEMM (4 mul + 4 add per term).
pub fn zgemm_flops(m: usize, n: usize, k: usize) -> f64 {
    8.0 * m as f64 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(m: usize, n: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        (0..m * n).map(|ix| f(ix / n, ix % n)).collect()
    }

    #[test]
    fn dgemm_is_bitwise_identical_to_the_scalar_reference() {
        // The packed register-tile kernel replicates the reference's exact
        // chain (p-ordered accumulation from zero, alpha·acc + beta·c), so
        // serial and banded runs must match the naive loop bit for bit.
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (50, 49, 51), (97, 13, 64)] {
            let a = mat(m, k, |i, j| (i as f64 - j as f64) * 0.25 + 1.0);
            let b = mat(k, n, |i, j| (i * 31 + j) as f64 * 0.01 - 0.7);
            let c0 = mat(m, n, |i, j| (i + j) as f64 * 0.1);
            let mut want = c0.clone();
            dgemm_reference(m, n, k, 1.3, &a, &b, 0.5, &mut want);
            let mut c1 = c0.clone();
            dgemm(m, n, k, 1.3, &a, &b, 0.5, &mut c1);
            for (x, y) in c1.iter().zip(&want) {
                assert_eq!(x.to_bits(), y.to_bits(), "serial ({m},{n},{k})");
            }
            for workers in [1usize, 2, 4] {
                let mut cp = c0.clone();
                par_dgemm(&Threads::new(workers), m, n, k, 1.3, &a, &b, 0.5, &mut cp);
                for (x, y) in cp.iter().zip(&want) {
                    assert_eq!(x.to_bits(), y.to_bits(), "({m},{n},{k}) workers={workers}");
                }
            }
        }
    }

    #[test]
    fn dgemm_identity_is_noop() {
        let n = 17;
        let ident = mat(n, n, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = mat(n, n, |i, j| (i * n + j) as f64);
        let mut c = vec![0.0; n * n];
        dgemm(n, n, n, 1.0, &ident, &b, 0.0, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn zgemm_conj_trans_matches_manual() {
        let (m, n, k) = (4, 3, 5);
        // A stored k×m, used as Aᴴ (m×k).
        let a: Vec<Complex64> =
            (0..k * m).map(|i| Complex64::new(i as f64 * 0.1, -(i as f64) * 0.05)).collect();
        let b: Vec<Complex64> =
            (0..k * n).map(|i| Complex64::new((i as f64 * 0.3).sin(), 0.2)).collect();
        let mut c = vec![Complex64::ZERO; m * n];
        zgemm(Trans::ConjTrans, m, n, k, Complex64::ONE, &a, &b, Complex64::ZERO, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut want = Complex64::ZERO;
                for p in 0..k {
                    want += a[p * m + i].conj() * b[p * n + j];
                }
                assert!((c[i * n + j] - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn zgemm_none_matches_dgemm_on_real_data() {
        let (m, n, k) = (6, 7, 8);
        let ar = mat(m, k, |i, j| (i + 2 * j) as f64 * 0.5);
        let br = mat(k, n, |i, j| (3 * i + j) as f64 * 0.25);
        let az: Vec<Complex64> = ar.iter().map(|&x| Complex64::real(x)).collect();
        let bz: Vec<Complex64> = br.iter().map(|&x| Complex64::real(x)).collect();
        let mut cr = vec![0.0; m * n];
        let mut cz = vec![Complex64::ZERO; m * n];
        dgemm(m, n, k, 1.0, &ar, &br, 0.0, &mut cr);
        zgemm(Trans::None, m, n, k, Complex64::ONE, &az, &bz, Complex64::ZERO, &mut cz);
        for (r, z) in cr.iter().zip(&cz) {
            assert!((r - z.re).abs() < 1e-10 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn level1_helpers() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn zdotc_is_conjugate_linear_in_first_arg() {
        let x = vec![Complex64::new(1.0, 2.0), Complex64::new(-0.5, 0.25)];
        let y = vec![Complex64::new(0.5, -1.0), Complex64::new(2.0, 2.0)];
        let d = zdotc(&x, &y);
        let manual = x[0].conj() * y[0] + x[1].conj() * y[1];
        assert!((d - manual).abs() < 1e-12);
        // ⟨x, x⟩ is real and equals ‖x‖².
        let xx = zdotc(&x, &x);
        assert!(xx.im.abs() < 1e-12);
        assert!((xx.re - znrm2(&x).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn flop_counters() {
        assert_eq!(dgemm_flops(2, 3, 4), 48.0);
        assert_eq!(zgemm_flops(2, 3, 4), 192.0);
    }

    #[test]
    fn par_dgemm_is_bitwise_serial() {
        for &(m, n, k) in &[(1, 1, 1), (7, 5, 3), (97, 53, 61), (128, 64, 96)] {
            let a = mat(m, k, |i, j| ((i * 13 + j * 7) % 23) as f64 * 0.37 - 2.1);
            let b = mat(k, n, |i, j| ((i * 5 + j * 11) % 19) as f64 * 0.23 - 1.3);
            let c0 = mat(m, n, |i, j| (i as f64 - j as f64) * 0.11);
            let mut serial = c0.clone();
            dgemm(m, n, k, 1.7, &a, &b, 0.6, &mut serial);
            for workers in [1usize, 2, 4] {
                let mut par = c0.clone();
                par_dgemm(&Threads::new(workers), m, n, k, 1.7, &a, &b, 0.6, &mut par);
                for (x, y) in serial.iter().zip(&par) {
                    assert_eq!(x.to_bits(), y.to_bits(), "({m},{n},{k}) workers={workers}");
                }
            }
        }
    }

    #[test]
    fn par_gemms_clamp_small_problems_serial() {
        // BENCH_kernels.json showed dgemm_64..128 slower under /t4 than
        // /t1: below the flop floor the clamped handle must be serial.
        let t = Threads::new(4);
        let min_rows_128 = (GEMM_MIN_FLOPS_PER_WORKER / (2 * 128 * 128)) as usize;
        assert!(t.clamp_for(128, min_rows_128).is_serial());
        let min_rows_512 = (GEMM_MIN_FLOPS_PER_WORKER / (2 * 512 * 512)) as usize;
        assert_eq!(t.clamp_for(512, min_rows_512).workers(), 4);
    }

    #[test]
    fn gemm_probe_counts_match_the_documented_constants() {
        use hec_core::probe;
        let (m, n, k) = (7usize, 50, 9);
        let a = mat(m, k, |i, j| (i + j) as f64 + 1.0);
        let b = mat(k, n, |i, j| (i * 2 + j) as f64 * 0.5);
        let az: Vec<Complex64> = a.iter().map(|&x| Complex64::real(x)).collect();
        let bz: Vec<Complex64> = b.iter().map(|&x| Complex64::real(x)).collect();
        let ((), cap) = probe::capture(|| {
            let mut c = vec![0.0; m * n];
            dgemm(m, n, k, 1.0, &a, &b, 0.0, &mut c);
            let mut cz = vec![Complex64::ZERO; m * n];
            par_zgemm(
                &Threads::new(2),
                Trans::None,
                m,
                n,
                k,
                Complex64::ONE,
                &az,
                &bz,
                Complex64::ZERO,
                &mut cz,
            );
        });
        let (mu, nu, ku) = (m as u64, n as u64, k as u64);
        let d = cap.get("kernels/dgemm");
        assert_eq!(d.flops, 2 * mu * nu * ku);
        assert_eq!(d.unit_stride_bytes, mu * nu * ku * 24 + mu * ku * 8);
        assert_eq!(d.vector_iters, mu * nu * ku);
        assert_eq!(d.vector_loops, mu * ku * nu.div_ceil(NR as u64));
        let z = cap.get("kernels/zgemm");
        assert_eq!(z.flops, 8 * mu * nu * ku);
        assert_eq!(z.vector_loops, mu * ku * nu.div_ceil(ZNR as u64));
    }

    #[test]
    fn par_zgemm_is_bitwise_serial_both_transposes() {
        let (m, n, k) = (61, 33, 47);
        let mk: Vec<Complex64> = (0..m * k)
            .map(|i| Complex64::new((i % 17) as f64 * 0.3, (i % 11) as f64 * -0.2))
            .collect();
        let km: Vec<Complex64> = (0..k * m)
            .map(|i| Complex64::new((i % 13) as f64 * 0.25, (i % 7) as f64 * 0.4))
            .collect();
        let b: Vec<Complex64> = (0..k * n)
            .map(|i| Complex64::new((i % 9) as f64 * -0.15, (i % 5) as f64 * 0.6))
            .collect();
        let c0: Vec<Complex64> =
            (0..m * n).map(|i| Complex64::new(i as f64 * 1e-3, -(i as f64) * 2e-3)).collect();
        let alpha = Complex64::new(0.8, -0.3);
        let beta = Complex64::new(0.2, 0.1);
        for (ta, a) in [(Trans::None, &mk), (Trans::ConjTrans, &km)] {
            let mut serial = c0.clone();
            zgemm(ta, m, n, k, alpha, a, &b, beta, &mut serial);
            for workers in [2usize, 3, 4] {
                let mut par = c0.clone();
                par_zgemm(&Threads::new(workers), ta, m, n, k, alpha, a, &b, beta, &mut par);
                for (x, y) in serial.iter().zip(&par) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits(), "{ta:?} workers={workers}");
                    assert_eq!(x.im.to_bits(), y.im.to_bits(), "{ta:?} workers={workers}");
                }
            }
        }
    }
}
