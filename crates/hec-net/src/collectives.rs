//! Analytic cost models for the collective operations the applications use.
//!
//! * GTC's particle decomposition adds `Allreduce` calls over
//!   sub-communicators (paper §4.2);
//! * PARATEC's 3D FFT is a sequence of all-to-all transposes (paper §6);
//! * FVCAM's 2D decomposition performs transposes between the
//!   (latitude, level) and (longitude, latitude) decompositions (paper §3.2).
//!
//! All models are built from the pt2pt Hockney terms in [`crate::cost`] with
//! the standard algorithm shapes (recursive doubling / ring / pairwise
//! exchange), matching 2005-era MPI implementations.

use crate::cost::NetworkModel;

/// Cost of an `MPI_Allreduce` of `bytes` over `procs` ranks
/// (recursive-doubling: ⌈log₂ p⌉ rounds, each a pairwise exchange plus a
/// local reduction that we charge to the network model's bandwidth term).
pub fn allreduce_secs(net: &NetworkModel, procs: usize, bytes: usize) -> f64 {
    if procs <= 1 {
        return 0.0;
    }
    let rounds = (procs as f64).log2().ceil();
    let per_round = net.latency_secs() + bytes as f64 / (net.params.bw_gbps * 1e9);
    rounds * per_round
}

/// Cost of an `MPI_Barrier` over `procs` ranks (dissemination algorithm).
pub fn barrier_secs(net: &NetworkModel, procs: usize) -> f64 {
    if procs <= 1 {
        return 0.0;
    }
    (procs as f64).log2().ceil() * net.latency_secs()
}

/// Cost of an `MPI_Bcast` of `bytes` over `procs` ranks (binomial tree).
pub fn bcast_secs(net: &NetworkModel, procs: usize, bytes: usize) -> f64 {
    if procs <= 1 {
        return 0.0;
    }
    let rounds = (procs as f64).log2().ceil();
    rounds * (net.latency_secs() + bytes as f64 / (net.params.bw_gbps * 1e9))
}

/// Cost of an `MPI_Alltoall` where each rank sends `bytes_per_pair` to every
/// other rank (pairwise-exchange algorithm, p−1 rounds, with topology
/// contention applied to the bandwidth term).
pub fn alltoall_secs(net: &NetworkModel, procs: usize, bytes_per_pair: usize) -> f64 {
    if procs <= 1 {
        return 0.0;
    }
    let rounds = (procs - 1) as f64;
    let bw = net.alltoall_bw();
    rounds * (net.latency_secs() + bytes_per_pair as f64 / bw)
}

/// Cost of the distributed transpose moving `total_bytes_per_rank` of data
/// from each rank, redistributed over `procs` ranks — the FFT transpose and
/// the FVCAM decomposition switch both have this shape. Equivalent to an
/// all-to-all with `total_bytes_per_rank / procs` per pair.
pub fn transpose_secs(net: &NetworkModel, procs: usize, total_bytes_per_rank: usize) -> f64 {
    if procs <= 1 {
        return 0.0;
    }
    alltoall_secs(net, procs, total_bytes_per_rank / procs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::NetworkParams;
    use crate::topology::Topology;

    fn model(procs: usize) -> NetworkModel {
        NetworkModel::new(
            NetworkParams {
                latency_us: 5.0,
                bw_gbps: 2.0,
                cpus_per_node: 8,
                intranode_bw_gbps: 40.0,
                topology: Topology::Ixs,
            },
            procs,
        )
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = model(1);
        assert_eq!(allreduce_secs(&m, 1, 1024), 0.0);
        assert_eq!(barrier_secs(&m, 1), 0.0);
        assert_eq!(bcast_secs(&m, 1, 1024), 0.0);
        assert_eq!(alltoall_secs(&m, 1, 1024), 0.0);
        assert_eq!(transpose_secs(&m, 1, 1024), 0.0);
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        let m = model(1024);
        let t16 = allreduce_secs(&m, 16, 8);
        let t256 = allreduce_secs(&m, 256, 8);
        // log2(256)/log2(16) = 2 exactly.
        assert!((t256 / t16 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn alltoall_scales_linearly_in_ranks() {
        let m = model(1024);
        let t64 = alltoall_secs(&m, 64, 1024);
        let t128 = alltoall_secs(&m, 128, 1024);
        assert!(t128 / t64 > 1.9);
    }

    #[test]
    fn transpose_volume_is_conserved() {
        // Same total volume per rank, spread over more ranks → per-pair
        // messages shrink; the total cost should grow only via latency.
        let m = model(1024);
        let t_small = transpose_secs(&m, 16, 1 << 24);
        let t_large = transpose_secs(&m, 256, 1 << 24);
        // More ranks means more rounds (latency) but same bandwidth volume.
        assert!(t_large > t_small * 0.5);
        assert!(t_large < t_small * 40.0);
    }

    #[test]
    fn barrier_is_cheaper_than_allreduce() {
        let m = model(512);
        assert!(barrier_secs(&m, 512) <= allreduce_secs(&m, 512, 8));
    }
}
