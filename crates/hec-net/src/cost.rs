//! Latency–bandwidth (Hockney) message cost model.
//!
//! Parameters come straight from the measured columns of paper Table 1:
//! internode MPI latency (µs) and per-CPU bidirectional MPI bandwidth
//! (GB/s). Intranode messages use the STREAM memory system instead of the
//! network, which matters for the 8- and 16-way SMP nodes.

use hec_core::json::{FromJson, Json, JsonError, ToJson};

use crate::topology::Topology;

/// Measured network parameters of one platform (paper Table 1).
#[derive(Clone, Copy, Debug)]
pub struct NetworkParams {
    /// Internode MPI latency in microseconds.
    pub latency_us: f64,
    /// Per-CPU bidirectional MPI bandwidth in GB/s.
    pub bw_gbps: f64,
    /// Processors per SMP node.
    pub cpus_per_node: usize,
    /// Intra-node (shared-memory) bandwidth in GB/s, per CPU.
    pub intranode_bw_gbps: f64,
    /// Interconnect topology.
    pub topology: Topology,
}

impl ToJson for NetworkParams {
    fn to_json(&self) -> Json {
        Json::obj([
            ("latency_us", Json::Num(self.latency_us)),
            ("bw_gbps", Json::Num(self.bw_gbps)),
            ("cpus_per_node", Json::Num(self.cpus_per_node as f64)),
            ("intranode_bw_gbps", Json::Num(self.intranode_bw_gbps)),
            ("topology", self.topology.to_json()),
        ])
    }
}

impl FromJson for NetworkParams {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(NetworkParams {
            latency_us: v.num_field("latency_us")?,
            bw_gbps: v.num_field("bw_gbps")?,
            cpus_per_node: usize::from_json(v.field("cpus_per_node")?)?,
            intranode_bw_gbps: v.num_field("intranode_bw_gbps")?,
            topology: Topology::from_json(v.field("topology")?)?,
        })
    }
}

/// Evaluates message and pattern costs for one platform.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// The raw measured parameters.
    pub params: NetworkParams,
    /// Total processors in the job (fixes hop counts and contention).
    pub job_procs: usize,
}

impl NetworkModel {
    /// Creates a model for a job of `job_procs` processors.
    pub fn new(params: NetworkParams, job_procs: usize) -> Self {
        NetworkModel { params, job_procs: job_procs.max(1) }
    }

    /// Number of SMP nodes the job spans.
    pub fn nodes(&self) -> usize {
        self.job_procs.div_ceil(self.params.cpus_per_node)
    }

    /// True when ranks `a` and `b` share an SMP node under block placement.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        a / self.params.cpus_per_node == b / self.params.cpus_per_node
    }

    /// Time in seconds for one point-to-point message of `bytes` between
    /// ranks `src` and `dst`, assuming no competing traffic.
    pub fn pt2pt_secs(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        if src == dst {
            return 0.0;
        }
        if self.same_node(src, dst) {
            // Shared-memory copy: negligible latency, memory-system bandwidth.
            let lat = 0.5e-6;
            lat + bytes as f64 / (self.params.intranode_bw_gbps * 1e9)
        } else {
            let hops = self.params.topology.avg_hops(self.nodes());
            // Per-hop increment is small on all these networks (~50 ns).
            let lat = self.params.latency_us * 1e-6 + (hops - 1.0).max(0.0) * 50e-9;
            lat + bytes as f64 / (self.params.bw_gbps * 1e9)
        }
    }

    /// Time for a nearest-neighbor halo exchange where every rank sends
    /// `bytes` to `neighbors` peers (overlapped bidirectional links).
    pub fn halo_secs(&self, bytes: usize, neighbors: usize) -> f64 {
        let contention = self.params.topology.neighbor_contention();
        let lat = self.params.latency_us * 1e-6;
        neighbors as f64 * (lat + bytes as f64 * contention / (self.params.bw_gbps * 1e9))
    }

    /// Effective per-processor bandwidth (bytes/sec) under a global
    /// all-to-all pattern, after topology contention.
    pub fn alltoall_bw(&self) -> f64 {
        self.params.bw_gbps * 1e9 / self.params.topology.alltoall_contention(self.nodes())
    }

    /// The latency term in seconds.
    pub fn latency_secs(&self) -> f64 {
        self.params.latency_us * 1e-6
    }
}

impl ToJson for NetworkModel {
    fn to_json(&self) -> Json {
        Json::obj([
            ("params", self.params.to_json()),
            ("job_procs", Json::Num(self.job_procs as f64)),
        ])
    }
}

impl FromJson for NetworkModel {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(NetworkModel {
            params: NetworkParams::from_json(v.field("params")?)?,
            job_procs: usize::from_json(v.field("job_procs")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fat_tree() -> NetworkParams {
        NetworkParams {
            latency_us: 6.0,
            bw_gbps: 0.59,
            cpus_per_node: 2,
            intranode_bw_gbps: 2.3,
            topology: Topology::FatTree,
        }
    }

    #[test]
    fn self_message_is_free() {
        let m = NetworkModel::new(fat_tree(), 64);
        assert_eq!(m.pt2pt_secs(5, 5, 1 << 20), 0.0);
    }

    #[test]
    fn intranode_beats_internode() {
        let m = NetworkModel::new(fat_tree(), 64);
        let intra = m.pt2pt_secs(0, 1, 1 << 20); // same 2-way node
        let inter = m.pt2pt_secs(0, 2, 1 << 20); // different nodes
        assert!(intra < inter, "{intra} vs {inter}");
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let m = NetworkModel::new(fat_tree(), 64);
        let t1 = m.pt2pt_secs(0, 2, 1 << 20);
        let t2 = m.pt2pt_secs(0, 2, 1 << 21);
        // Doubling the size should nearly double the time for 1 MB messages.
        let ratio = t2 / t1;
        assert!(ratio > 1.8 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn latency_dominates_small_messages() {
        let m = NetworkModel::new(fat_tree(), 64);
        let t8 = m.pt2pt_secs(0, 2, 8);
        let t64 = m.pt2pt_secs(0, 2, 64);
        // Both are essentially one latency.
        assert!((t64 - t8) / t8 < 0.05);
    }

    #[test]
    fn node_count_rounds_up() {
        let m = NetworkModel::new(fat_tree(), 65);
        assert_eq!(m.nodes(), 33);
    }

    #[test]
    fn crossbar_alltoall_keeps_full_bandwidth() {
        let es = NetworkParams {
            latency_us: 5.6,
            bw_gbps: 1.5,
            cpus_per_node: 8,
            intranode_bw_gbps: 26.3,
            topology: Topology::Crossbar,
        };
        let m = NetworkModel::new(es, 4096);
        assert!((m.alltoall_bw() - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn halo_cost_scales_with_neighbor_count() {
        let m = NetworkModel::new(fat_tree(), 64);
        let t2 = m.halo_secs(4096, 2);
        let t6 = m.halo_secs(4096, 6);
        assert!((t6 / t2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn network_model_json_round_trips() {
        let m = NetworkModel::new(fat_tree(), 64);
        let text = m.to_json().emit();
        let back = NetworkModel::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.job_procs, m.job_procs);
        assert_eq!(back.params.latency_us, m.params.latency_us);
        assert_eq!(back.params.bw_gbps, m.params.bw_gbps);
        assert_eq!(back.params.cpus_per_node, m.params.cpus_per_node);
        assert_eq!(back.params.intranode_bw_gbps, m.params.intranode_bw_gbps);
        assert_eq!(back.params.topology, m.params.topology);
    }
}
