//! Topology models for the evaluated interconnects.
//!
//! Each topology answers two questions the cost model needs:
//! the average hop count between two processors (latency grows mildly with
//! hops on these networks) and the *bisection contention factor* — how much
//! a global pattern (all-to-all) oversubscribes the narrowest cut relative
//! to a nearest-neighbor pattern.

use hec_core::json::{FromJson, Json, JsonError, ToJson};

/// Interconnect topology of a platform (paper Table 1, last column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Full-bisection fat-tree (SP Switch2, Quadrics Elan4, InfiniBand).
    FatTree,
    /// Cray X1/X1E: modules in a 4D hypercube up to 512 MSPs, 2D torus above.
    Hypercube4D,
    /// Earth Simulator: 640×640 single-stage crossbar — every node one hop.
    Crossbar,
    /// NEC IXS multi-stage crossbar (SX-8).
    Ixs,
    /// 2D torus (X1 beyond 512 MSPs).
    Torus2D,
}

impl Topology {
    /// Average switch hops between two distinct processors in a `nodes`-node
    /// system. Used for the (small) per-hop latency increment.
    pub fn avg_hops(self, nodes: usize) -> f64 {
        let n = nodes.max(2) as f64;
        match self {
            // Up-down routing in a complete tree of radix ~16.
            Topology::FatTree => 2.0 * n.log(16.0).max(1.0),
            // Random pair in a d-dim hypercube differs in d/2 dims on average.
            Topology::Hypercube4D => (n.log2() / 2.0).max(1.0),
            Topology::Crossbar => 1.0,
            Topology::Ixs => 2.0,
            // Mean Manhattan distance on a √n × √n torus.
            Topology::Torus2D => n.sqrt() / 2.0,
        }
    }

    /// Contention multiplier for a global all-to-all over `nodes` nodes:
    /// the factor by which effective per-processor bandwidth is reduced
    /// relative to a pairwise exchange.
    ///
    /// Full-bisection networks (fat-tree, crossbar) ideally sustain 1.0;
    /// practical fat-trees lose some to static routing collisions. The
    /// hypercube/torus lose bandwidth once the pattern exceeds the
    /// bisection.
    pub fn alltoall_contention(self, nodes: usize) -> f64 {
        let n = nodes.max(2) as f64;
        match self {
            Topology::FatTree => 1.3,                        // static-routing hot spots
            Topology::Crossbar => 1.0,                       // single-stage, non-blocking
            Topology::Ixs => 1.1,                            // multi-stage, near-full bisection
            Topology::Hypercube4D => 1.0 + (n.log2() / 8.0), // dim-ordered routing
            Topology::Torus2D => (n.sqrt() / 4.0).max(1.0),
        }
    }

    /// Contention multiplier for nearest-neighbor halo exchanges — all the
    /// evaluated networks handle these at full link rate.
    pub fn neighbor_contention(self) -> f64 {
        1.0
    }

    /// Human-readable name matching the paper's Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Topology::FatTree => "Fat-tree",
            Topology::Hypercube4D => "4D-Hypercube",
            Topology::Crossbar => "Crossbar",
            Topology::Ixs => "IXS Crossbar",
            Topology::Torus2D => "2D-Torus",
        }
    }

    /// Every topology variant, for exhaustive iteration in tests and JSON.
    pub const ALL: [Topology; 5] = [
        Topology::FatTree,
        Topology::Hypercube4D,
        Topology::Crossbar,
        Topology::Ixs,
        Topology::Torus2D,
    ];
}

impl ToJson for Topology {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

impl FromJson for Topology {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = v.as_str().ok_or_else(|| JsonError::new("topology must be a string"))?;
        Topology::ALL
            .into_iter()
            .find(|t| t.label() == s)
            .ok_or_else(|| JsonError::new(format!("unknown topology '{s}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_is_always_one_hop() {
        for &n in &[2usize, 64, 640] {
            assert_eq!(Topology::Crossbar.avg_hops(n), 1.0);
        }
    }

    #[test]
    fn hop_counts_grow_with_system_size() {
        for topo in [Topology::FatTree, Topology::Hypercube4D, Topology::Torus2D] {
            assert!(
                topo.avg_hops(1024) >= topo.avg_hops(16),
                "{topo:?} hops should not shrink with size"
            );
        }
    }

    #[test]
    fn crossbar_alltoall_is_contention_free() {
        assert_eq!(Topology::Crossbar.alltoall_contention(640), 1.0);
    }

    #[test]
    fn torus_contention_exceeds_fat_tree_at_scale() {
        assert!(
            Topology::Torus2D.alltoall_contention(1024)
                > Topology::FatTree.alltoall_contention(1024)
        );
    }

    #[test]
    fn neighbor_patterns_are_uncontended_everywhere() {
        for topo in [
            Topology::FatTree,
            Topology::Hypercube4D,
            Topology::Crossbar,
            Topology::Ixs,
            Topology::Torus2D,
        ] {
            assert_eq!(topo.neighbor_contention(), 1.0);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Topology::FatTree.label(),
            Topology::Hypercube4D.label(),
            Topology::Crossbar.label(),
            Topology::Ixs.label(),
            Topology::Torus2D.label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn json_round_trips_every_variant() {
        for t in Topology::ALL {
            let j = t.to_json();
            let parsed = Json::parse(&j.emit()).unwrap();
            assert_eq!(Topology::from_json(&parsed).unwrap(), t);
        }
        assert!(Topology::from_json(&Json::Str("Mesh".into())).is_err());
        assert!(Topology::from_json(&Json::Num(1.0)).is_err());
    }

    #[test]
    fn degenerate_small_systems_do_not_panic() {
        for topo in [Topology::FatTree, Topology::Hypercube4D, Topology::Torus2D] {
            assert!(topo.avg_hops(1) >= 0.0);
            assert!(topo.alltoall_contention(1) >= 1.0);
        }
    }
}
