//! Interconnect models for the seven evaluated HEC platforms.
//!
//! Table 1 of the paper characterizes each network by measured MPI latency,
//! measured per-CPU bidirectional bandwidth, and topology (fat-tree for the
//! commodity clusters, 4D hypercube for the X1/X1E, single-stage crossbar
//! for the Earth Simulator, and the NEC IXS for the SX-8). This crate turns
//! those numbers into a cost model:
//!
//! * [`topology`] — hop-count/diameter/bisection models for each topology;
//! * [`cost`] — the latency–bandwidth (Hockney) message model, with
//!   contention factors derived from the topology and communication pattern;
//! * [`collectives`] — analytic cost of allreduce / alltoall / transpose
//!   built from the pt2pt model.
//!
//! The *patterns* fed into these models come from the real applications via
//! `msim`'s traffic capture; this crate never invents traffic.

pub mod collectives;
pub mod cost;
pub mod topology;

pub use cost::{NetworkModel, NetworkParams};
pub use topology::Topology;
