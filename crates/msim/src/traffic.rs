//! Communication-volume capture.
//!
//! The paper's Figure 2 was produced with the IPM profiling tool: a matrix
//! of point-to-point bytes between every pair of MPI processes. msim
//! records the same matrix (plus a log of collective operations) as a side
//! effect of every `send`.

use hec_core::probe::{self, Counters};
use hec_core::sync::Mutex;

/// Which collective produced a [`CollectiveRecord`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// `Comm::barrier`
    Barrier,
    /// `Comm::bcast`
    Bcast,
    /// `Comm::allreduce_*`
    Allreduce,
    /// `Comm::alltoall`(v)
    Alltoall,
    /// `Comm::allgather`
    Allgather,
}

/// One collective operation performed by some communicator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollectiveRecord {
    /// The operation.
    pub kind: CollectiveKind,
    /// Size of the communicator that performed it.
    pub comm_size: usize,
    /// Payload bytes per rank (0 for barrier).
    pub bytes: usize,
}

/// Point-to-point volume matrix plus the collective log for one run.
#[derive(Debug)]
pub struct TrafficMatrix {
    nprocs: usize,
    /// Row-major `nprocs × nprocs` byte counts (src-major).
    bytes: Mutex<Vec<u64>>,
    /// Number of messages per (src, dst) pair.
    msgs: Mutex<Vec<u64>>,
    collectives: Mutex<Vec<CollectiveRecord>>,
}

impl TrafficMatrix {
    /// Creates an empty matrix for `nprocs` ranks.
    pub fn new(nprocs: usize) -> Self {
        TrafficMatrix {
            nprocs,
            bytes: Mutex::new(vec![0; nprocs * nprocs]),
            msgs: Mutex::new(vec![0; nprocs * nprocs]),
            collectives: Mutex::new(Vec::new()),
        }
    }

    /// Number of ranks this matrix covers.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Records one point-to-point message. Doubles as the probe hook for
    /// `comm/pt2pt` events (collective-internal messages included, as in
    /// IPM captures).
    pub fn record(&self, src: usize, dst: usize, bytes: usize) {
        debug_assert!(src < self.nprocs && dst < self.nprocs);
        self.bytes.lock()[src * self.nprocs + dst] += bytes as u64;
        self.msgs.lock()[src * self.nprocs + dst] += 1;
        probe::count(
            "comm/pt2pt",
            Counters { messages: 1, message_bytes: bytes as u64, ..Default::default() },
        );
    }

    /// Records one collective operation (logged once by communicator root).
    pub fn record_collective(&self, rec: CollectiveRecord) {
        probe::count(
            "comm/collectives",
            Counters { collectives: 1, collective_bytes: rec.bytes as u64, ..Default::default() },
        );
        self.collectives.lock().push(rec);
    }

    /// Returns a snapshot of the byte matrix, row-major by source rank.
    pub fn snapshot(&self) -> Vec<u64> {
        self.bytes.lock().clone()
    }

    /// Bytes sent from `src` to `dst` so far.
    pub fn pair(&self, src: usize, dst: usize) -> u64 {
        self.bytes.lock()[src * self.nprocs + dst]
    }

    /// Message count from `src` to `dst` so far.
    pub fn pair_msgs(&self, src: usize, dst: usize) -> u64 {
        self.msgs.lock()[src * self.nprocs + dst]
    }

    /// Total bytes across all pairs.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.lock().iter().sum()
    }

    /// Snapshot of the collective log.
    pub fn collectives(&self) -> Vec<CollectiveRecord> {
        self.collectives.lock().clone()
    }

    /// Clears all recorded traffic — used to drop setup-phase communication
    /// (communicator splits, initial distribution) so a capture covers only
    /// the timestepped region, as the paper's IPM captures do.
    pub fn reset(&self) {
        self.bytes.lock().iter_mut().for_each(|b| *b = 0);
        self.msgs.lock().iter_mut().for_each(|m| *m = 0);
        self.collectives.lock().clear();
    }

    /// Renders the matrix as an ASCII heat map (Figure 2 style): one
    /// character per (src, dst) cell, log-scaled from '.' (zero) to '9'.
    pub fn ascii_heatmap(&self) -> String {
        let m = self.snapshot();
        let max = m.iter().copied().max().unwrap_or(0).max(1) as f64;
        let mut out = String::with_capacity((self.nprocs + 1) * self.nprocs);
        for src in 0..self.nprocs {
            for dst in 0..self.nprocs {
                let v = m[src * self.nprocs + dst] as f64;
                let c = if v == 0.0 {
                    '.'
                } else {
                    // Log scale over 4 decades onto '1'..='9'.
                    let t = 1.0 + 8.0 * (1.0 + (v / max).log10() / 4.0).clamp(0.0, 1.0);
                    char::from_digit(t as u32, 10).unwrap_or('9')
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let t = TrafficMatrix::new(4);
        t.record(0, 1, 100);
        t.record(0, 1, 50);
        t.record(3, 2, 7);
        assert_eq!(t.pair(0, 1), 150);
        assert_eq!(t.pair_msgs(0, 1), 2);
        assert_eq!(t.pair(3, 2), 7);
        assert_eq!(t.pair(1, 0), 0);
        assert_eq!(t.total_bytes(), 157);
    }

    #[test]
    fn heatmap_shape_and_content() {
        let t = TrafficMatrix::new(3);
        t.record(0, 1, 1000);
        t.record(2, 0, 1);
        let map = t.ascii_heatmap();
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 3));
        // Zero cells are dots; the max cell is '9'.
        assert_eq!(lines[0].as_bytes()[0], b'.');
        assert_eq!(lines[0].as_bytes()[1], b'9');
        assert_ne!(lines[2].as_bytes()[0], b'.');
    }

    #[test]
    fn collective_log_preserves_order() {
        let t = TrafficMatrix::new(2);
        t.record_collective(CollectiveRecord {
            kind: CollectiveKind::Barrier,
            comm_size: 2,
            bytes: 0,
        });
        t.record_collective(CollectiveRecord {
            kind: CollectiveKind::Allreduce,
            comm_size: 2,
            bytes: 8,
        });
        let log = t.collectives();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].kind, CollectiveKind::Barrier);
        assert_eq!(log[1].kind, CollectiveKind::Allreduce);
    }
}
