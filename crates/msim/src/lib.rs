//! msim — a simulated SPMD message-passing runtime.
//!
//! The four applications in this suite are *real* MPI codes in miniature:
//! each rank runs the same program on its block of the domain and exchanges
//! halos, transposes, and reductions. msim provides that programming model
//! inside one process:
//!
//! * [`run`] launches `P` ranks, each on its own OS thread, and joins them;
//! * [`Comm`] is the communicator handle: point-to-point `send`/`recv`,
//!   `sendrecv`, and the collectives the paper's applications use
//!   (`barrier`, `bcast`, `allreduce`, `alltoall`, `allgather`), plus
//!   `split` for the sub-communicators GTC's particle decomposition needs;
//! * every byte that crosses ranks is recorded in a [`TrafficMatrix`] —
//!   this is how Figure 2's communication-volume plots are regenerated, in
//!   the same spirit as the IPM profiling tool the authors used.
//!
//! The runtime is *functional*, not timed: simulated wall-clock comes from
//! `hec-arch`'s analytic models, fed by the traffic volumes captured here.

mod collectives;
mod comm;
mod traffic;

pub use collectives::ReduceOp;
pub use comm::{run, run_with_traffic, Comm, RunError};
pub use traffic::{CollectiveKind, CollectiveRecord, TrafficMatrix};
