//! The SPMD runtime: rank threads, mailboxes, and the communicator handle.
//!
//! Sends are buffered (the sender never blocks), which makes every exchange
//! pattern in the applications deadlock-free regardless of ordering; `recv`
//! blocks until a matching message arrives. Message matching is exact on
//! `(source, communicator, tag)` — there is no wildcard receive, which keeps
//! the applications' communication deterministic and capturable.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hec_core::sync::{Condvar, Mutex};

use crate::traffic::TrafficMatrix;

/// Message payload. The applications exchange dense `f64` blocks almost
/// exclusively; a raw byte variant covers everything else.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Dense doubles (grid blocks, particle coordinates, spectral columns).
    F64(Vec<f64>),
    /// Raw bytes (headers, counts, serialized metadata).
    Bytes(Vec<u8>),
}

impl Payload {
    fn size_bytes(&self) -> usize {
        match self {
            Payload::F64(v) => v.len() * 8,
            Payload::Bytes(v) => v.len(),
        }
    }
}

/// Matching key: (source world rank, communicator id, tag).
type Key = (usize, u64, u64);

#[derive(Default)]
struct Mailbox {
    queues: Mutex<HashMap<Key, VecDeque<Payload>>>,
    cv: Condvar,
}

impl Mailbox {
    fn push(&self, key: Key, payload: Payload) {
        self.queues.lock().entry(key).or_default().push_back(payload);
        self.cv.notify_all();
    }

    /// Blocks until a matching message arrives. If the world is poisoned
    /// (another rank panicked), panics instead of waiting forever — this is
    /// what turns one rank's failure into a clean whole-job [`RunError`]
    /// rather than a deadlock.
    fn pop_blocking(&self, key: Key, poisoned: &AtomicBool) -> Payload {
        let mut q = self.queues.lock();
        loop {
            if let Some(dq) = q.get_mut(&key) {
                if let Some(p) = dq.pop_front() {
                    return p;
                }
            }
            if poisoned.load(Ordering::Acquire) {
                panic!("peer rank panicked; aborting receive");
            }
            q = self.cv.wait(q);
        }
    }

    fn wake_all(&self) {
        let _guard = self.queues.lock();
        self.cv.notify_all();
    }
}

/// Shared state of one simulated job.
struct World {
    mailboxes: Vec<Mailbox>,
    traffic: Arc<TrafficMatrix>,
    comm_seq: AtomicU64,
    /// Set when any rank panics; wakes every blocked receive.
    poisoned: AtomicBool,
}

/// Error from [`run`]: one or more ranks panicked.
#[derive(Debug)]
pub struct RunError {
    /// World ranks that panicked.
    pub failed_ranks: Vec<usize>,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ranks {:?} panicked", self.failed_ranks)
    }
}

impl std::error::Error for RunError {}

/// Communicator handle owned by one rank. Not `Send` across ranks — each
/// rank gets its own in the closure passed to [`run`].
pub struct Comm {
    world: Arc<World>,
    /// Unique id of this communicator (shared by all members).
    id: u64,
    /// This rank's index within the communicator.
    rank: usize,
    /// World ranks of all members, ordered by communicator rank.
    members: Arc<Vec<usize>>,
    /// Per-rank sequence counter for collective tags (SPMD-consistent).
    coll_seq: u64,
    /// Per-rank sequence counter for splits (SPMD-consistent).
    split_seq: u64,
}

/// Reserved tag bit separating user tags from collective-internal tags.
const COLL_TAG_BIT: u64 = 1 << 63;

impl Comm {
    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The world rank behind communicator rank `r`.
    pub fn world_rank(&self, r: usize) -> usize {
        self.members[r]
    }

    /// The traffic matrix shared by the whole job.
    pub fn traffic(&self) -> &TrafficMatrix {
        &self.world.traffic
    }

    fn send_payload(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(tag & COLL_TAG_BIT == 0, "tag {tag:#x} collides with reserved space");
        self.send_internal(dst, tag, payload);
    }

    pub(crate) fn send_internal(&self, dst: usize, tag: u64, payload: Payload) {
        let src_w = self.members[self.rank];
        let dst_w = self.members[dst];
        // Zero-byte control tokens (barrier rounds) carry no data volume
        // and are excluded from the traffic matrix, as in IPM captures.
        if src_w != dst_w && payload.size_bytes() > 0 {
            self.world.traffic.record(src_w, dst_w, payload.size_bytes());
        }
        self.world.mailboxes[dst_w].push((src_w, self.id, tag), payload);
    }

    pub(crate) fn recv_internal(&self, src: usize, tag: u64) -> Payload {
        let src_w = self.members[src];
        let me_w = self.members[self.rank];
        self.world.mailboxes[me_w].pop_blocking((src_w, self.id, tag), &self.world.poisoned)
    }

    /// Buffered send of a block of doubles to communicator rank `dst`.
    pub fn send_f64(&self, dst: usize, tag: u64, data: &[f64]) {
        self.send_payload(dst, tag, Payload::F64(data.to_vec()));
    }

    /// Buffered send of raw bytes to communicator rank `dst`.
    pub fn send_bytes(&self, dst: usize, tag: u64, data: &[u8]) {
        self.send_payload(dst, tag, Payload::Bytes(data.to_vec()));
    }

    /// Blocking receive of a block of doubles from communicator rank `src`.
    ///
    /// # Panics
    /// Panics if the matching message holds bytes instead of doubles.
    pub fn recv_f64(&self, src: usize, tag: u64) -> Vec<f64> {
        match self.recv_internal(src, tag) {
            Payload::F64(v) => v,
            Payload::Bytes(_) => panic!("type mismatch: expected F64 from {src} tag {tag}"),
        }
    }

    /// Blocking receive of raw bytes from communicator rank `src`.
    ///
    /// # Panics
    /// Panics if the matching message holds doubles instead of bytes.
    pub fn recv_bytes(&self, src: usize, tag: u64) -> Vec<u8> {
        match self.recv_internal(src, tag) {
            Payload::Bytes(v) => v,
            Payload::F64(_) => panic!("type mismatch: expected Bytes from {src} tag {tag}"),
        }
    }

    /// Combined exchange: send `data` to `dst` and receive from `src` with
    /// the same tag (the halo-exchange primitive).
    pub fn sendrecv_f64(&self, dst: usize, src: usize, tag: u64, data: &[f64]) -> Vec<f64> {
        self.send_f64(dst, tag, data);
        self.recv_f64(src, tag)
    }

    /// Next collective-internal tag (monotone per rank, SPMD-consistent).
    pub(crate) fn next_coll_tag(&mut self) -> u64 {
        let t = COLL_TAG_BIT | self.coll_seq;
        self.coll_seq += 1;
        t
    }

    pub(crate) fn send_coll(&self, dst: usize, tag: u64, payload: Payload) {
        self.send_internal(dst, tag, payload);
    }

    /// Splits the communicator: ranks supplying the same `color` form a new
    /// communicator, ordered by `(key, parent rank)`. Mirrors
    /// `MPI_Comm_split`. Every member of the parent must call this.
    pub fn split(&mut self, color: u64, key: u64) -> Comm {
        // Exchange (color, key) with everyone via the parent communicator.
        let tag = COLL_TAG_BIT | (1 << 62) | self.split_seq;
        self.split_seq += 1;
        let my = [color as f64, key as f64];
        for r in 0..self.size() {
            if r != self.rank {
                self.send_internal(r, tag, Payload::F64(my.to_vec()));
            }
        }
        let mut entries: Vec<(u64, u64, usize)> = Vec::with_capacity(self.size());
        entries.push((color, key, self.rank));
        for r in 0..self.size() {
            if r != self.rank {
                let Payload::F64(v) = self.recv_internal(r, tag) else {
                    panic!("split metadata type mismatch")
                };
                entries.push((v[0] as u64, v[1] as u64, r));
            }
        }
        // My group, ordered by (key, parent rank).
        let mut group: Vec<(u64, usize)> =
            entries.iter().filter(|(c, _, _)| *c == color).map(|&(_, k, r)| (k, r)).collect();
        group.sort_unstable();
        let members: Vec<usize> = group.iter().map(|&(_, r)| self.members[r]).collect();
        let new_rank = members
            .iter()
            .position(|&w| w == self.members[self.rank])
            .expect("caller must be in its own split group");
        // Deterministic id: every member computes the same mix of parent id,
        // split sequence, and color.
        let id = splitmix(self.id ^ splitmix((self.split_seq << 32) ^ color));
        Comm {
            world: Arc::clone(&self.world),
            id,
            rank: new_rank,
            members: Arc::new(members),
            coll_seq: 0,
            split_seq: 0,
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Runs `f` as an SPMD program over `nprocs` ranks, returning each rank's
/// result in rank order.
///
/// # Errors
/// Returns [`RunError`] listing the ranks whose closures panicked.
pub fn run<T, F>(nprocs: usize, f: F) -> Result<Vec<T>, RunError>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_with_traffic(nprocs, f).map(|(r, _)| r)
}

/// Like [`run`], but also returns the captured [`TrafficMatrix`].
pub fn run_with_traffic<T, F>(nprocs: usize, f: F) -> Result<(Vec<T>, Arc<TrafficMatrix>), RunError>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(nprocs > 0, "need at least one rank");
    let traffic = Arc::new(TrafficMatrix::new(nprocs));
    let world = Arc::new(World {
        mailboxes: (0..nprocs).map(|_| Mailbox::default()).collect(),
        traffic: Arc::clone(&traffic),
        comm_seq: AtomicU64::new(1),
        poisoned: AtomicBool::new(false),
    });
    // Id 0 is the world communicator for every run.
    let _ = world.comm_seq.fetch_add(1, Ordering::Relaxed);

    let members = Arc::new((0..nprocs).collect::<Vec<_>>());
    let mut results: Vec<Option<T>> = (0..nprocs).map(|_| None).collect();
    let mut failed = Vec::new();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nprocs)
            .map(|rank| {
                let world = Arc::clone(&world);
                let members = Arc::clone(&members);
                let f = &f;
                scope.spawn(move || {
                    let mut comm = Comm {
                        world: Arc::clone(&world),
                        id: 0,
                        rank,
                        members,
                        coll_seq: 0,
                        split_seq: 0,
                    };
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm)));
                    if result.is_err() {
                        // Poison the world and wake every blocked receive so
                        // sibling ranks unwind instead of deadlocking.
                        world.poisoned.store(true, Ordering::Release);
                        for mb in &world.mailboxes {
                            mb.wake_all();
                        }
                    }
                    result
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(v)) => results[rank] = Some(v),
                Ok(Err(_)) | Err(_) => failed.push(rank),
            }
        }
    });

    if failed.is_empty() {
        Ok((results.into_iter().map(|r| r.unwrap()).collect(), traffic))
    } else {
        Err(RunError { failed_ranks: failed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pt2pt_ring_passes_rank_sums() {
        let n = 8;
        let out = run(n, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            let got = c.sendrecv_f64(next, prev, 7, &[c.rank() as f64]);
            got[0]
        })
        .unwrap();
        for (rank, v) in out.iter().enumerate() {
            let prev = (rank + n - 1) % n;
            assert_eq!(*v, prev as f64);
        }
    }

    #[test]
    fn traffic_matrix_sees_every_message() {
        let (_, traffic) = run_with_traffic(4, |c| {
            if c.rank() == 0 {
                c.send_f64(3, 1, &[1.0; 100]);
            }
            if c.rank() == 3 {
                let v = c.recv_f64(0, 1);
                assert_eq!(v.len(), 100);
            }
        })
        .unwrap();
        assert_eq!(traffic.pair(0, 3), 800);
        assert_eq!(traffic.total_bytes(), 800);
    }

    #[test]
    fn messages_with_same_tag_preserve_order() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..10 {
                    c.send_f64(1, 5, &[i as f64]);
                }
                0.0
            } else {
                let mut last = -1.0;
                for _ in 0..10 {
                    let v = c.recv_f64(0, 5);
                    assert!(v[0] > last, "FIFO order violated");
                    last = v[0];
                }
                last
            }
        })
        .unwrap();
        assert_eq!(out[1], 9.0);
    }

    #[test]
    fn tags_do_not_cross_match() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 1, &[1.0]);
                c.send_f64(1, 2, &[2.0]);
                0.0
            } else {
                // Receive in reverse tag order.
                let b = c.recv_f64(0, 2);
                let a = c.recv_f64(0, 1);
                a[0] * 10.0 + b[0]
            }
        })
        .unwrap();
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn bytes_payloads_round_trip() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 3, b"hello");
                Vec::new()
            } else {
                c.recv_bytes(0, 3)
            }
        })
        .unwrap();
        assert_eq!(out[1], b"hello");
    }

    #[test]
    fn rank_panic_is_reported() {
        let err = run(3, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        })
        .unwrap_err();
        assert_eq!(err.failed_ranks, vec![1]);
    }

    #[test]
    fn rank_panic_unblocks_receivers_into_run_error() {
        // The poisoning path under the std Condvar mailbox: every other
        // rank is parked in a receive that will never be satisfied when
        // rank 1 dies. Poisoning must wake them all and convert the whole
        // job into a clean RunError instead of a deadlock.
        let err = run(4, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
            // No one ever sends this message.
            let _ = c.recv_f64((c.rank() + 1) % c.size(), 999);
        })
        .unwrap_err();
        assert!(err.failed_ranks.contains(&1));
        assert_eq!(err.failed_ranks.len(), 4, "blocked ranks must unwind too");
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn split_forms_correct_subgroups() {
        let out = run(6, |c| {
            let color = (c.rank() % 2) as u64;
            let sub = c.split(color, c.rank() as u64);
            // Even ranks form one comm of 3, odd the other.
            assert_eq!(sub.size(), 3);
            // Sub-rank ordering follows world rank via key.
            (sub.rank(), sub.world_rank(0))
        })
        .unwrap();
        assert_eq!(out[0], (0, 0));
        assert_eq!(out[2], (1, 0));
        assert_eq!(out[4], (2, 0));
        assert_eq!(out[1], (0, 1));
        assert_eq!(out[3], (1, 1));
        assert_eq!(out[5], (2, 1));
    }

    #[test]
    fn split_comms_are_isolated() {
        // Messages in a sub-communicator never match the parent's tags.
        let out = run(4, |c| {
            let mut sub = c.split((c.rank() / 2) as u64, 0);
            let peer = 1 - sub.rank();
            let tag = sub.next_coll_tag() & !(1 << 63); // user-space tag
            sub.send_f64(peer, tag, &[c.rank() as f64]);
            let got = sub.recv_f64(peer, tag);
            got[0]
        })
        .unwrap();
        assert_eq!(out, vec![1.0, 0.0, 3.0, 2.0]);
    }

    #[test]
    fn intra_rank_send_is_not_counted_as_traffic() {
        let (_, traffic) = run_with_traffic(2, |c| {
            let me = c.rank();
            c.send_f64(me, 9, &[1.0, 2.0]);
            let v = c.recv_f64(me, 9);
            assert_eq!(v, vec![1.0, 2.0]);
        })
        .unwrap();
        assert_eq!(traffic.total_bytes(), 0);
    }
}
