//! Collective operations, built on the buffered point-to-point layer.
//!
//! The algorithm shapes match 2005-era MPI implementations: dissemination
//! barrier, binomial-tree broadcast, recursive reduce-to-root + broadcast
//! for allreduce, and direct pairwise exchange for alltoall. Because sends
//! are buffered, no ordering discipline is needed for deadlock freedom; the
//! shapes matter only because the captured traffic volumes should look like
//! real MPI traffic.

use crate::comm::{Comm, Payload};
use crate::traffic::{CollectiveKind, CollectiveRecord};

/// Element-wise reduction operators for `allreduce`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    fn apply(self, acc: &mut [f64], other: &[f64]) {
        debug_assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::Sum => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a += *b;
                }
            }
            ReduceOp::Max => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.max(*b);
                }
            }
            ReduceOp::Min => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.min(*b);
                }
            }
        }
    }
}

impl Comm {
    /// Dissemination barrier: ⌈log₂ p⌉ rounds of token exchange.
    pub fn barrier(&mut self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let tag = self.next_coll_tag();
        let mut dist = 1;
        while dist < p {
            let to = (self.rank() + dist) % p;
            let from = (self.rank() + p - dist) % p;
            self.send_coll(to, tag, Payload::Bytes(Vec::new()));
            let _ = self.recv_internal(from, tag);
            dist *= 2;
        }
        if self.rank() == 0 {
            self.traffic().record_collective(CollectiveRecord {
                kind: CollectiveKind::Barrier,
                comm_size: p,
                bytes: 0,
            });
        }
    }

    /// Binomial-tree broadcast from `root`.
    pub fn bcast_f64(&mut self, root: usize, data: &mut Vec<f64>) {
        let p = self.size();
        let tag = self.next_coll_tag();
        if p == 1 {
            return;
        }
        // Rotate so the root is virtual rank 0.
        let vrank = (self.rank() + p - root) % p;
        // Receive from parent (highest set bit), then forward down the tree.
        if vrank != 0 {
            // Binomial tree: parent is vrank with its lowest set bit cleared.
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % p;
            let Payload::F64(v) = self.recv_internal(parent, tag) else {
                panic!("bcast type mismatch")
            };
            *data = v;
        }
        // Children: vrank + 2^k for k above vrank's lowest set bit range.
        let mut mask = 1usize;
        while mask < p {
            if vrank & (mask - 1) == 0 && vrank & mask == 0 {
                let child_v = vrank | mask;
                if child_v < p {
                    let child = (child_v + root) % p;
                    self.send_coll(child, tag, Payload::F64(data.clone()));
                }
            }
            mask <<= 1;
        }
        if self.rank() == root {
            self.traffic().record_collective(CollectiveRecord {
                kind: CollectiveKind::Bcast,
                comm_size: p,
                bytes: data.len() * 8,
            });
        }
    }

    /// Allreduce over doubles: binary-tree reduce to rank 0, then broadcast.
    pub fn allreduce_f64(&mut self, op: ReduceOp, data: &mut Vec<f64>) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let tag = self.next_coll_tag();
        // Reduce to rank 0 over a binomial tree.
        let mut mask = 1usize;
        while mask < p {
            if self.rank() & mask != 0 {
                let dst = self.rank() & !mask;
                self.send_coll(dst, tag, Payload::F64(data.clone()));
                break;
            } else {
                let src = self.rank() | mask;
                if src < p {
                    let Payload::F64(v) = self.recv_internal(src, tag) else {
                        panic!("allreduce type mismatch")
                    };
                    op.apply(data, &v);
                }
            }
            mask <<= 1;
        }
        if self.rank() == 0 {
            self.traffic().record_collective(CollectiveRecord {
                kind: CollectiveKind::Allreduce,
                comm_size: p,
                bytes: data.len() * 8,
            });
        }
        self.bcast_f64(0, data);
    }

    /// Scalar-sum convenience wrapper over [`Comm::allreduce_f64`].
    pub fn allreduce_sum_scalar(&mut self, x: f64) -> f64 {
        let mut v = vec![x];
        self.allreduce_f64(ReduceOp::Sum, &mut v);
        v[0]
    }

    /// Personalized all-to-all: `send[i]` goes to rank `i`; returns the
    /// blocks received from every rank, in rank order.
    ///
    /// # Panics
    /// Panics if `send.len() != self.size()`.
    pub fn alltoall_f64(&mut self, send: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let p = self.size();
        assert_eq!(send.len(), p, "alltoall needs one block per rank");
        let tag = self.next_coll_tag();
        for dst in 0..p {
            if dst != self.rank() {
                self.send_coll(dst, tag, Payload::F64(send[dst].clone()));
            }
        }
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
        out[self.rank()] = send[self.rank()].clone();
        for src in 0..p {
            if src != self.rank() {
                let Payload::F64(v) = self.recv_internal(src, tag) else {
                    panic!("alltoall type mismatch")
                };
                out[src] = v;
            }
        }
        if self.rank() == 0 {
            let bytes: usize = send.iter().map(|b| b.len() * 8).sum();
            self.traffic().record_collective(CollectiveRecord {
                kind: CollectiveKind::Alltoall,
                comm_size: p,
                bytes,
            });
        }
        out
    }

    /// Allgather: every rank contributes `mine`, every rank receives all
    /// contributions in rank order.
    pub fn allgather_f64(&mut self, mine: &[f64]) -> Vec<Vec<f64>> {
        let p = self.size();
        let tag = self.next_coll_tag();
        for dst in 0..p {
            if dst != self.rank() {
                self.send_coll(dst, tag, Payload::F64(mine.to_vec()));
            }
        }
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
        out[self.rank()] = mine.to_vec();
        for src in 0..p {
            if src != self.rank() {
                let Payload::F64(v) = self.recv_internal(src, tag) else {
                    panic!("allgather type mismatch")
                };
                out[src] = v;
            }
        }
        if self.rank() == 0 {
            self.traffic().record_collective(CollectiveRecord {
                kind: CollectiveKind::Allgather,
                comm_size: p,
                bytes: mine.len() * 8,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run;

    #[test]
    fn barrier_completes_for_odd_sizes() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            run(p, |c| {
                c.barrier();
                c.barrier();
            })
            .unwrap();
        }
    }

    #[test]
    fn bcast_delivers_root_data_everywhere() {
        for p in [1usize, 2, 4, 7] {
            for root in [0, p - 1] {
                let out = run(p, move |c| {
                    let mut data =
                        if c.rank() == root { vec![3.25, -1.5, 42.0] } else { Vec::new() };
                    c.bcast_f64(root, &mut data);
                    data
                })
                .unwrap();
                for v in out {
                    assert_eq!(v, vec![3.25, -1.5, 42.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn allreduce_sum_matches_sequential_fold() {
        for p in [1usize, 2, 3, 6, 9] {
            let out = run(p, |c| {
                let mut v = vec![c.rank() as f64, 1.0];
                c.allreduce_f64(ReduceOp::Sum, &mut v);
                v
            })
            .unwrap();
            let want0: f64 = (0..p).map(|r| r as f64).sum();
            for v in out {
                assert_eq!(v, vec![want0, p as f64], "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let out = run(5, |c| {
            let mut mx = vec![c.rank() as f64];
            c.allreduce_f64(ReduceOp::Max, &mut mx);
            let mut mn = vec![c.rank() as f64];
            c.allreduce_f64(ReduceOp::Min, &mut mn);
            (mx[0], mn[0])
        })
        .unwrap();
        for (mx, mn) in out {
            assert_eq!(mx, 4.0);
            assert_eq!(mn, 0.0);
        }
    }

    #[test]
    fn alltoall_is_a_global_transpose() {
        let p = 4;
        let out = run(p, |c| {
            // Rank r sends value 100*r + d to rank d.
            let send: Vec<Vec<f64>> =
                (0..c.size()).map(|d| vec![(100 * c.rank() + d) as f64]).collect();
            c.alltoall_f64(&send)
        })
        .unwrap();
        for (d, recv) in out.iter().enumerate() {
            for (r, block) in recv.iter().enumerate() {
                assert_eq!(block, &vec![(100 * r + d) as f64]);
            }
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let out = run(6, |c| {
            let mine = vec![c.rank() as f64 * 2.0];
            c.allgather_f64(&mine)
        })
        .unwrap();
        for recv in out {
            for (r, block) in recv.iter().enumerate() {
                assert_eq!(block, &vec![r as f64 * 2.0]);
            }
        }
    }

    #[test]
    fn collectives_on_split_subcomms() {
        let out = run(8, |c| {
            let mut sub = c.split((c.rank() % 2) as u64, c.rank() as u64);
            sub.allreduce_sum_scalar(c.rank() as f64)
        })
        .unwrap();
        // Evens: 0+2+4+6 = 12; odds: 1+3+5+7 = 16.
        for (rank, v) in out.iter().enumerate() {
            let want = if rank % 2 == 0 { 12.0 } else { 16.0 };
            assert_eq!(*v, want);
        }
    }

    #[test]
    fn interleaved_collectives_and_pt2pt_do_not_cross() {
        let out = run(4, |c| {
            let sum1 = c.allreduce_sum_scalar(1.0);
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            let halo = c.sendrecv_f64(next, prev, 11, &[c.rank() as f64]);
            let sum2 = c.allreduce_sum_scalar(halo[0]);
            (sum1, sum2)
        })
        .unwrap();
        for (s1, s2) in out {
            assert_eq!(s1, 4.0);
            assert_eq!(s2, 6.0); // 0+1+2+3
        }
    }

    #[test]
    fn collective_log_records_operations() {
        let (_, traffic) = crate::comm::run_with_traffic(4, |c| {
            c.barrier();
            let _ = c.allreduce_sum_scalar(1.0);
        })
        .unwrap();
        let log = traffic.collectives();
        assert!(log.iter().any(|r| r.kind == CollectiveKind::Barrier));
        assert!(log.iter().any(|r| r.kind == CollectiveKind::Allreduce));
    }
}
