//! Platform descriptors: paper Table 1 plus the §2 microarchitecture notes.
//!
//! Measured quantities (peak, STREAM triad, MPI latency/bandwidth) are taken
//! verbatim from Table 1. Microarchitectural constants (vector register
//! length, scalar-unit ratio, stripmine startup, gather/scatter bandwidth
//! fractions, cache sizes, sustained-ILP fractions) come from the paper's
//! prose and the cited references; they are fixed here once, globally, for
//! all experiments.

use hec_core::json::{FromJson, Json, JsonError, ToJson};
use hec_net::{NetworkParams, Topology};

/// Identifies one evaluated machine (X1 appears twice: MSP and SSP modes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// IBM Power3 (Seaborg, LBNL): 16-way Nighthawk II nodes, SP Switch2.
    Power3,
    /// Intel Itanium2 (Thunder, LLNL): 4-way nodes, Quadrics Elan4.
    Itanium2,
    /// AMD Opteron (Jacquard, LBNL): 2-way nodes, InfiniBand.
    Opteron,
    /// Cray X1 in multi-streaming (MSP) mode: 12.8 Gflop/s logical CPU.
    X1Msp,
    /// Cray X1 in single-streaming (SSP) mode: 3.2 Gflop/s physical SSP.
    X1Ssp,
    /// Cray X1E (MSP mode): doubled module density, 1.13 GHz.
    X1e,
    /// Earth Simulator: 8-way SX-6-derived nodes, FPLRAM, 640-way crossbar.
    Es,
    /// NEC SX-8: 8-way nodes, DDR2-SDRAM, IXS network.
    Sx8,
}

impl PlatformId {
    /// All platforms in the order the paper's tables list them.
    pub const ALL: [PlatformId; 8] = [
        PlatformId::Power3,
        PlatformId::Itanium2,
        PlatformId::Opteron,
        PlatformId::X1Msp,
        PlatformId::X1Ssp,
        PlatformId::X1e,
        PlatformId::Es,
        PlatformId::Sx8,
    ];

    /// Display label matching the paper's table headers.
    pub fn label(self) -> &'static str {
        match self {
            PlatformId::Power3 => "Power3",
            PlatformId::Itanium2 => "Itanium2",
            PlatformId::Opteron => "Opteron",
            PlatformId::X1Msp => "X1 (MSP)",
            PlatformId::X1Ssp => "X1 (SSP)",
            PlatformId::X1e => "X1E (MSP)",
            PlatformId::Es => "ES",
            PlatformId::Sx8 => "SX-8",
        }
    }

    /// Parses a platform name as service input. Accepts the exact paper
    /// label and any spelling that matches it after dropping case and
    /// non-alphanumerics — `"x1msp"`, `"X1-MSP"`, and `"X1 (MSP)"` are the
    /// same platform; `"sx8"` is the SX-8.
    pub fn parse(s: &str) -> Option<PlatformId> {
        fn fold(s: &str) -> String {
            s.chars().filter(char::is_ascii_alphanumeric).map(|c| c.to_ascii_lowercase()).collect()
        }
        let want = fold(s);
        if want.is_empty() {
            return None;
        }
        PlatformId::ALL.into_iter().find(|id| fold(id.label()) == want)
    }
}

impl ToJson for PlatformId {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

impl FromJson for PlatformId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = v.as_str().ok_or_else(|| JsonError::new("platform id must be a string"))?;
        PlatformId::ALL
            .into_iter()
            .find(|id| id.label() == s)
            .ok_or_else(|| JsonError::new(format!("unknown platform '{s}'")))
    }
}

/// Microarchitecture class with its model parameters.
#[derive(Clone, Copy, Debug)]
pub enum Arch {
    /// Cache-based out-of-order (or EPIC) commodity processor.
    Superscalar(SuperscalarParams),
    /// Pipelined vector processor.
    Vector(VectorParams),
}

/// Model constants for a superscalar processor.
#[derive(Clone, Copy, Debug)]
pub struct SuperscalarParams {
    /// Sustained fraction of peak on cache-resident dense kernels
    /// (BLAS3-class code). Power3's ESSL reaches ~0.7; Itanium2 needs
    /// software pipelining, Opteron lacks FMA and relies on SSE pairing.
    pub dense_ilp: f64,
    /// Sustained fraction of peak on loop-and-branch stencil/particle code
    /// where the compiler cannot keep the functional units busy.
    pub sparse_ilp: f64,
    /// Combined cache capacity per CPU in bytes (the level that matters for
    /// blocking: 8 MB L2 on Power3, 4 MB L3 on Itanium2, 1 MB L2 on
    /// Opteron).
    pub cache_bytes: f64,
    /// Fraction of STREAM bandwidth sustained on randomly indexed accesses
    /// (one cache line fetched per 8-byte datum ≈ 1/8, better with some
    /// locality).
    pub gather_bw_frac: f64,
    /// Number of concurrent unit-stride streams the prefetch engines track
    /// before bandwidth degrades (LBMHD touches 100+ streams).
    pub prefetch_streams: f64,
    /// Whether the FPU executes fused multiply-add (the Opteron does not;
    /// the paper calls this out for PARATEC's dense algebra).
    pub has_fma: bool,
    /// Average cost (ns) of one gathered element that hits in cache —
    /// dependent loads pipeline only partially even out of L2/L3.
    pub cached_gather_ns: f64,
}

/// Model constants for a vector processor.
#[derive(Clone, Copy, Debug)]
pub struct VectorParams {
    /// Hardware vector register length in 64-bit words (64 on X1 SSPs, 256
    /// on ES/SX-8).
    pub vreg_len: f64,
    /// Effective startup (dead cycles) per stripmined vector loop chunk,
    /// expressed in element-slots; drives short-vector efficiency.
    pub startup_slots: f64,
    /// Scalar unit peak as a fraction of vector peak (1/8 on ES/SX-8; the
    /// X1's 400 MHz 2-way scalar core is ~1/16 of MSP peak, 1/4 of SSP).
    pub scalar_frac: f64,
    /// Gather/scatter bandwidth as a fraction of STREAM bandwidth
    /// (ES FPLRAM ≈ 0.5; SX-8 DDR2-SDRAM ≈ 0.25 — the paper blames exactly
    /// this for GTC's modest SX-8 speedup; X1 ≈ 0.33 helped by the E-cache).
    pub gather_bw_frac: f64,
    /// Cache capacity in bytes (X1/X1E 2 MB E-cache; 0 on ES/SX-8).
    pub cache_bytes: f64,
    /// Number of independent streams the MSP must extract: in MSP mode the
    /// compiler splits the vector loop across 4 SSPs, so very short loops
    /// lose efficiency twice. 4.0 for MSP-mode platforms, 1.0 otherwise.
    pub msp_ways: f64,
    /// Fraction of nominally vectorizable work that the multi-streaming
    /// compiler serializes (X1-specific; near zero on ES/SX-8 whose
    /// compilers only vectorize).
    pub stream_serial_frac: f64,
    /// Sustained fraction of the scalar unit's peak on the non-vectorized
    /// remainder (simple in-order scalar cores on ES/SX-8 sustain ~12 %;
    /// the X1's out-of-order 2-way core with caches does better).
    pub scalar_ilp: f64,
}

/// One evaluated machine: Table 1 measurements plus model constants.
#[derive(Clone, Copy, Debug)]
pub struct Platform {
    /// Which machine this is.
    pub id: PlatformId,
    /// Processor clock in MHz (Table 1).
    pub clock_mhz: f64,
    /// Peak double-precision rate per processor in Gflop/s (Table 1).
    pub peak_gflops: f64,
    /// Measured EP-STREAM triad bandwidth per CPU in GB/s (Table 1).
    pub stream_bw_gbps: f64,
    /// Processors per SMP node (Table 1).
    pub cpus_per_node: usize,
    /// Network measurements and topology (Table 1).
    pub net: NetworkParams,
    /// Microarchitecture model.
    pub arch: Arch,
}

impl Platform {
    /// Looks up the descriptor for `id`.
    pub fn get(id: PlatformId) -> Platform {
        match id {
            PlatformId::Power3 => POWER3,
            PlatformId::Itanium2 => ITANIUM2,
            PlatformId::Opteron => OPTERON,
            PlatformId::X1Msp => X1_MSP,
            PlatformId::X1Ssp => X1_SSP,
            PlatformId::X1e => X1E,
            PlatformId::Es => ES,
            PlatformId::Sx8 => SX8,
        }
    }

    /// All platform descriptors in table order.
    pub fn all() -> Vec<Platform> {
        PlatformId::ALL.iter().map(|&id| Platform::get(id)).collect()
    }

    /// Bytes/flop balance (the "Peak Stream" column of Table 1).
    pub fn bytes_per_flop(&self) -> f64 {
        self.stream_bw_gbps / self.peak_gflops
    }

    /// True for the vector machines.
    pub fn is_vector(&self) -> bool {
        matches!(self.arch, Arch::Vector(_))
    }
}

impl ToJson for SuperscalarParams {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dense_ilp", Json::Num(self.dense_ilp)),
            ("sparse_ilp", Json::Num(self.sparse_ilp)),
            ("cache_bytes", Json::Num(self.cache_bytes)),
            ("gather_bw_frac", Json::Num(self.gather_bw_frac)),
            ("prefetch_streams", Json::Num(self.prefetch_streams)),
            ("has_fma", Json::Bool(self.has_fma)),
            ("cached_gather_ns", Json::Num(self.cached_gather_ns)),
        ])
    }
}

impl FromJson for SuperscalarParams {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SuperscalarParams {
            dense_ilp: v.num_field("dense_ilp")?,
            sparse_ilp: v.num_field("sparse_ilp")?,
            cache_bytes: v.num_field("cache_bytes")?,
            gather_bw_frac: v.num_field("gather_bw_frac")?,
            prefetch_streams: v.num_field("prefetch_streams")?,
            has_fma: v.bool_field("has_fma")?,
            cached_gather_ns: v.num_field("cached_gather_ns")?,
        })
    }
}

impl ToJson for VectorParams {
    fn to_json(&self) -> Json {
        Json::obj([
            ("vreg_len", Json::Num(self.vreg_len)),
            ("startup_slots", Json::Num(self.startup_slots)),
            ("scalar_frac", Json::Num(self.scalar_frac)),
            ("gather_bw_frac", Json::Num(self.gather_bw_frac)),
            ("cache_bytes", Json::Num(self.cache_bytes)),
            ("msp_ways", Json::Num(self.msp_ways)),
            ("stream_serial_frac", Json::Num(self.stream_serial_frac)),
            ("scalar_ilp", Json::Num(self.scalar_ilp)),
        ])
    }
}

impl FromJson for VectorParams {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(VectorParams {
            vreg_len: v.num_field("vreg_len")?,
            startup_slots: v.num_field("startup_slots")?,
            scalar_frac: v.num_field("scalar_frac")?,
            gather_bw_frac: v.num_field("gather_bw_frac")?,
            cache_bytes: v.num_field("cache_bytes")?,
            msp_ways: v.num_field("msp_ways")?,
            stream_serial_frac: v.num_field("stream_serial_frac")?,
            scalar_ilp: v.num_field("scalar_ilp")?,
        })
    }
}

impl ToJson for Arch {
    fn to_json(&self) -> Json {
        match self {
            Arch::Superscalar(p) => {
                Json::obj([("class", Json::Str("superscalar".into())), ("params", p.to_json())])
            }
            Arch::Vector(p) => {
                Json::obj([("class", Json::Str("vector".into())), ("params", p.to_json())])
            }
        }
    }
}

impl FromJson for Arch {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let params = v.field("params")?;
        match v.str_field("class")? {
            "superscalar" => Ok(Arch::Superscalar(SuperscalarParams::from_json(params)?)),
            "vector" => Ok(Arch::Vector(VectorParams::from_json(params)?)),
            other => Err(JsonError::new(format!("unknown arch class '{other}'"))),
        }
    }
}

impl ToJson for Platform {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("clock_mhz", Json::Num(self.clock_mhz)),
            ("peak_gflops", Json::Num(self.peak_gflops)),
            ("stream_bw_gbps", Json::Num(self.stream_bw_gbps)),
            ("cpus_per_node", Json::Num(self.cpus_per_node as f64)),
            ("net", self.net.to_json()),
            ("arch", self.arch.to_json()),
        ])
    }
}

impl FromJson for Platform {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Platform {
            id: PlatformId::from_json(v.field("id")?)?,
            clock_mhz: v.num_field("clock_mhz")?,
            peak_gflops: v.num_field("peak_gflops")?,
            stream_bw_gbps: v.num_field("stream_bw_gbps")?,
            cpus_per_node: usize::from_json(v.field("cpus_per_node")?)?,
            net: NetworkParams::from_json(v.field("net")?)?,
            arch: Arch::from_json(v.field("arch")?)?,
        })
    }
}

/// IBM Power3 (Seaborg). Table 1 row 1. 375 MHz × 4 flops/cycle = 1.5
/// Gflop/s peak; 0.4 GB/s STREAM per CPU when all 16 CPUs compete.
pub const POWER3: Platform = Platform {
    id: PlatformId::Power3,
    clock_mhz: 375.0,
    peak_gflops: 1.5,
    stream_bw_gbps: 0.4,
    cpus_per_node: 16,
    net: NetworkParams {
        latency_us: 16.3,
        bw_gbps: 0.13,
        cpus_per_node: 16,
        intranode_bw_gbps: 0.4,
        topology: Topology::FatTree,
    },
    arch: Arch::Superscalar(SuperscalarParams {
        dense_ilp: 0.72,
        sparse_ilp: 0.11,
        cache_bytes: 8.0e6,
        gather_bw_frac: 0.35,
        prefetch_streams: 8.0,
        has_fma: true,
        cached_gather_ns: 18.0,
    }),
};

/// Intel Itanium2 (Thunder). 1.4 GHz × 4 = 5.6 Gflop/s.
pub const ITANIUM2: Platform = Platform {
    id: PlatformId::Itanium2,
    clock_mhz: 1400.0,
    peak_gflops: 5.6,
    stream_bw_gbps: 1.1,
    cpus_per_node: 4,
    net: NetworkParams {
        latency_us: 3.0,
        bw_gbps: 0.25,
        cpus_per_node: 4,
        intranode_bw_gbps: 1.1,
        topology: Topology::FatTree,
    },
    arch: Arch::Superscalar(SuperscalarParams {
        dense_ilp: 0.60,
        sparse_ilp: 0.075,
        cache_bytes: 4.0e6,
        // FP loads bypass L1 on Itanium2 — register spills and irregular
        // accesses hit L2/L3, degrading gathers more than on the others.
        gather_bw_frac: 0.25,
        prefetch_streams: 8.0,
        has_fma: true,
        cached_gather_ns: 6.8,
    }),
};

/// AMD Opteron (Jacquard). 2.2 GHz × 2 (SSE2) = 4.4 Gflop/s.
pub const OPTERON: Platform = Platform {
    id: PlatformId::Opteron,
    clock_mhz: 2200.0,
    peak_gflops: 4.4,
    stream_bw_gbps: 2.3,
    cpus_per_node: 2,
    net: NetworkParams {
        latency_us: 6.0,
        bw_gbps: 0.59,
        cpus_per_node: 2,
        intranode_bw_gbps: 2.3,
        topology: Topology::FatTree,
    },
    arch: Arch::Superscalar(SuperscalarParams {
        // No FMA and SSE pairing constraints cap dense kernels lower than
        // the FMA machines (paper §6.1).
        dense_ilp: 0.50,
        sparse_ilp: 0.145,
        cache_bytes: 1.0e6,
        // On-chip memory controller: low-latency random access.
        gather_bw_frac: 0.45,
        prefetch_streams: 16.0,
        has_fma: false,
        cached_gather_ns: 4.0,
    }),
};

/// Cray X1, MSP mode: 4 SSPs ganged by the multistreaming compiler.
pub const X1_MSP: Platform = Platform {
    id: PlatformId::X1Msp,
    clock_mhz: 800.0,
    peak_gflops: 12.8,
    stream_bw_gbps: 14.9,
    cpus_per_node: 4,
    net: NetworkParams {
        latency_us: 7.1,
        bw_gbps: 6.3,
        cpus_per_node: 4,
        intranode_bw_gbps: 14.9,
        topology: Topology::Hypercube4D,
    },
    arch: Arch::Vector(VectorParams {
        vreg_len: 64.0,
        startup_slots: 40.0,
        // One 400 MHz 2-way scalar core serves the whole 12.8 Gflop/s MSP.
        scalar_frac: 0.0625,
        gather_bw_frac: 0.33,
        cache_bytes: 2.0e6,
        msp_ways: 4.0,
        stream_serial_frac: 0.05,
        scalar_ilp: 0.4,
    }),
};

/// Cray X1, SSP mode: each 3.2 Gflop/s SSP is an MPI rank; all four scalar
/// cores participate.
pub const X1_SSP: Platform = Platform {
    id: PlatformId::X1Ssp,
    clock_mhz: 800.0,
    peak_gflops: 3.2,
    stream_bw_gbps: 3.725, // quarter of the node's 14.9 GB/s
    cpus_per_node: 16,
    net: NetworkParams {
        latency_us: 7.1,
        bw_gbps: 1.575,
        cpus_per_node: 16,
        intranode_bw_gbps: 3.725,
        topology: Topology::Hypercube4D,
    },
    arch: Arch::Vector(VectorParams {
        vreg_len: 64.0,
        startup_slots: 40.0,
        scalar_frac: 0.25,
        gather_bw_frac: 0.33,
        cache_bytes: 0.5e6,
        msp_ways: 1.0,
        stream_serial_frac: 0.0,
        scalar_ilp: 0.4,
    }),
};

/// Cray X1E (MSP mode). 41% higher clock, halved per-MSP memory and network
/// bandwidth shares (two MSPs per MCM, nodes share ports).
pub const X1E: Platform = Platform {
    id: PlatformId::X1e,
    clock_mhz: 1130.0,
    peak_gflops: 18.0,
    stream_bw_gbps: 9.7,
    cpus_per_node: 4,
    net: NetworkParams {
        latency_us: 5.0,
        bw_gbps: 2.9,
        cpus_per_node: 4,
        intranode_bw_gbps: 9.7,
        topology: Topology::Hypercube4D,
    },
    arch: Arch::Vector(VectorParams {
        vreg_len: 64.0,
        startup_slots: 40.0,
        scalar_frac: 0.0625,
        gather_bw_frac: 0.33,
        cache_bytes: 2.0e6,
        msp_ways: 4.0,
        stream_serial_frac: 0.05,
        scalar_ilp: 0.4,
    }),
};

/// Earth Simulator: 8 Gflop/s SX-6-derived CPUs, FPLRAM main memory,
/// single-stage 640×640 crossbar.
pub const ES: Platform = Platform {
    id: PlatformId::Es,
    clock_mhz: 1000.0,
    peak_gflops: 8.0,
    stream_bw_gbps: 26.3,
    cpus_per_node: 8,
    net: NetworkParams {
        latency_us: 5.6,
        bw_gbps: 1.5,
        cpus_per_node: 8,
        intranode_bw_gbps: 26.3,
        topology: Topology::Crossbar,
    },
    arch: Arch::Vector(VectorParams {
        vreg_len: 256.0,
        startup_slots: 25.0,
        scalar_frac: 0.125,
        // Specialized FPLRAM keeps bank-conflict overhead low on random
        // access — the paper credits exactly this for GTC's 24 % of peak.
        gather_bw_frac: 0.20,
        cache_bytes: 0.0,
        msp_ways: 1.0,
        stream_serial_frac: 0.0,
        scalar_ilp: 0.12,
    }),
};

/// NEC SX-8: 16 Gflop/s CPUs, commodity DDR2-SDRAM, IXS network.
pub const SX8: Platform = Platform {
    id: PlatformId::Sx8,
    clock_mhz: 2000.0,
    peak_gflops: 16.0,
    stream_bw_gbps: 41.0,
    cpus_per_node: 8,
    net: NetworkParams {
        latency_us: 5.0,
        bw_gbps: 2.0,
        cpus_per_node: 8,
        intranode_bw_gbps: 41.0,
        topology: Topology::Ixs,
    },
    arch: Arch::Vector(VectorParams {
        vreg_len: 256.0,
        startup_slots: 25.0,
        scalar_frac: 0.125,
        // DDR2-SDRAM: random-access speed did not scale with peak
        // (paper §4.2 — "the speed for random memory accesses has not been
        // scaled accordingly").
        gather_bw_frac: 0.17,
        cache_bytes: 0.0,
        msp_ways: 1.0,
        stream_serial_frac: 0.0,
        scalar_ilp: 0.12,
    }),
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_parse_accepts_labels_and_aliases() {
        for id in PlatformId::ALL {
            assert_eq!(PlatformId::parse(id.label()), Some(id), "{}", id.label());
        }
        assert_eq!(PlatformId::parse("x1msp"), Some(PlatformId::X1Msp));
        assert_eq!(PlatformId::parse("X1-SSP"), Some(PlatformId::X1Ssp));
        assert_eq!(PlatformId::parse("x1e (msp)"), Some(PlatformId::X1e));
        assert_eq!(PlatformId::parse("sx8"), Some(PlatformId::Sx8));
        assert_eq!(PlatformId::parse("es"), Some(PlatformId::Es));
        assert_eq!(PlatformId::parse("POWER3"), Some(PlatformId::Power3));
        assert_eq!(PlatformId::parse("cray t3e"), None);
        assert_eq!(PlatformId::parse(""), None);
        assert_eq!(PlatformId::parse("()"), None);
    }

    #[test]
    fn table1_bytes_per_flop_ratios() {
        // The "Peak Stream (Bytes/Flop)" column of Table 1.
        let cases = [
            (PlatformId::Power3, 0.26),
            (PlatformId::Itanium2, 0.19),
            (PlatformId::Opteron, 0.51),
            (PlatformId::X1Msp, 1.16),
            (PlatformId::X1e, 0.54),
            (PlatformId::Es, 3.29),
            (PlatformId::Sx8, 2.56),
        ];
        for (id, want) in cases {
            let got = Platform::get(id).bytes_per_flop();
            assert!((got - want).abs() < 0.02, "{id:?}: bytes/flop {got:.3} vs paper {want}");
        }
    }

    #[test]
    fn vector_scalar_split_is_consistent() {
        for p in Platform::all() {
            match p.arch {
                Arch::Vector(v) => {
                    assert!(v.vreg_len >= 64.0);
                    assert!(v.scalar_frac > 0.0 && v.scalar_frac <= 0.25, "{:?}", p.id);
                }
                Arch::Superscalar(s) => {
                    assert!(s.dense_ilp > s.sparse_ilp, "{:?}", p.id);
                }
            }
        }
    }

    #[test]
    fn msp_mode_is_four_ssps() {
        assert!((X1_MSP.peak_gflops - 4.0 * X1_SSP.peak_gflops).abs() < 1e-12);
        assert!((X1_MSP.stream_bw_gbps - 4.0 * X1_SSP.stream_bw_gbps).abs() < 1e-12);
    }

    #[test]
    fn es_has_highest_memory_balance() {
        let es = Platform::get(PlatformId::Es).bytes_per_flop();
        for p in Platform::all() {
            if p.id != PlatformId::Es {
                assert!(p.bytes_per_flop() <= es, "{:?}", p.id);
            }
        }
    }

    #[test]
    fn sx8_random_access_is_slower_than_es_in_relative_terms() {
        let (es, sx8) = (ES, SX8);
        let (Arch::Vector(esv), Arch::Vector(sxv)) = (es.arch, sx8.arch) else {
            panic!("ES/SX-8 must be vector platforms");
        };
        // Absolute random-access bandwidth barely grew from ES FPLRAM to
        // SX-8 DDR2 (paper §4.2); relative to peak the ES is far ahead —
        // the paper's GTC story.
        let es_rel = es.stream_bw_gbps * esv.gather_bw_frac / es.peak_gflops;
        let sx_rel = sx8.stream_bw_gbps * sxv.gather_bw_frac / sx8.peak_gflops;
        assert!(es_rel > 1.4 * sx_rel);
    }

    #[test]
    fn every_platform_round_trips_through_json() {
        for p in Platform::all() {
            let text = p.to_json().emit_pretty();
            let back = Platform::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.id, p.id);
            assert_eq!(back.clock_mhz, p.clock_mhz);
            assert_eq!(back.peak_gflops, p.peak_gflops);
            assert_eq!(back.stream_bw_gbps, p.stream_bw_gbps);
            assert_eq!(back.cpus_per_node, p.cpus_per_node);
            assert_eq!(back.net.topology, p.net.topology);
            match (p.arch, back.arch) {
                (Arch::Superscalar(a), Arch::Superscalar(b)) => {
                    assert_eq!(a.dense_ilp, b.dense_ilp);
                    assert_eq!(a.has_fma, b.has_fma);
                    assert_eq!(a.cached_gather_ns, b.cached_gather_ns);
                }
                (Arch::Vector(a), Arch::Vector(b)) => {
                    assert_eq!(a.vreg_len, b.vreg_len);
                    assert_eq!(a.msp_ways, b.msp_ways);
                    assert_eq!(a.scalar_ilp, b.scalar_ilp);
                }
                _ => panic!("arch class changed in round trip for {:?}", p.id),
            }
        }
    }

    #[test]
    fn labels_and_lookup_are_total() {
        for id in PlatformId::ALL {
            let p = Platform::get(id);
            assert_eq!(p.id, id);
            assert!(!id.label().is_empty());
            assert!(p.peak_gflops > 0.0 && p.stream_bw_gbps > 0.0);
        }
    }
}
