//! Architectural performance models for the seven evaluated HEC platforms.
//!
//! The paper measures four applications on three superscalar systems (IBM
//! Power3 / Seaborg, Intel Itanium2 / Thunder, AMD Opteron / Jacquard) and
//! four parallel vector systems (Cray X1 in MSP and SSP modes, Cray X1E,
//! Earth Simulator, NEC SX-8). None of that hardware exists anymore — the
//! substitution this crate implements is an explicit analytic model:
//!
//! * [`platforms`] — one [`Platform`] descriptor per machine, carrying the
//!   *measured* columns of paper Table 1 (peak rate, EP-STREAM triad
//!   bandwidth, MPI latency/bandwidth, topology) plus the microarchitectural
//!   facts from §2 (vector register length, scalar-unit ratio, cache sizes,
//!   gather/scatter behavior of FPLRAM vs DDR2-SDRAM, MSP multi-streaming).
//! * [`profile`] — the instrumentation record an application produces for
//!   one timestep on one processor: flops, vectorizable fraction, average
//!   vector length, unit-stride and gather/scatter traffic, and the
//!   communication events captured by `msim`.
//! * [`capture`] — the measured path: overlays per-phase counters from a
//!   `hec_core::probe` calibration capture onto a profile, so the tables
//!   are driven by measured rates with the analytic builders as oracle.
//! * [`predict`] — the evaluator: vector machines overlap pipelined vector
//!   arithmetic with memory streams and pay Amdahl's law on the scalar
//!   remainder; superscalar machines are roofline-limited by cache-filtered
//!   memory traffic; both add the network model of `hec-net`.
//!
//! The model's constants are *global* — fixed once in [`platforms`] — so a
//! given application cannot be tuned per-table; the reproduced tables all
//! flow from one parameterization.

pub mod capture;
pub mod platforms;
pub mod predict;
pub mod profile;

pub use capture::{Overlay, PhaseBinding};
pub use platforms::{Arch, Platform, PlatformId, SuperscalarParams, VectorParams};
pub use predict::{predict, TimeBreakdown};
pub use profile::{CommEvent, PhaseProfile, WorkloadProfile};
