//! Workload profiles: what one processor does in one timestep.
//!
//! The four applications *measure* these records from their real Rust
//! kernels (the instrumented counters are validated against analytic counts
//! in each app's tests) and hand them to [`crate::predict`].

use hec_core::json::{FromJson, Json, JsonError, ToJson};

/// One communication event per timestep, as captured by `msim` or derived
/// from the decomposition arithmetic (validated against capture).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CommEvent {
    /// Nearest-neighbor exchange: each rank sends `bytes` to each of
    /// `neighbors` peers.
    Halo {
        /// Payload per neighbor in bytes.
        bytes: f64,
        /// Number of neighbors.
        neighbors: f64,
    },
    /// Reduction over a (sub-)communicator of `procs` ranks.
    Allreduce {
        /// Payload in bytes.
        bytes: f64,
        /// Communicator size.
        procs: f64,
    },
    /// Personalized all-to-all over `procs` ranks, `bytes_per_pair` each.
    Alltoall {
        /// Per-pair payload in bytes.
        bytes_per_pair: f64,
        /// Communicator size.
        procs: f64,
    },
    /// Distributed transpose redistributing `bytes_per_rank` per rank.
    Transpose {
        /// Total outgoing bytes per rank.
        bytes_per_rank: f64,
        /// Communicator size.
        procs: f64,
    },
    /// Broadcast of `bytes` over `procs` ranks.
    Bcast {
        /// Payload in bytes.
        bytes: f64,
        /// Communicator size.
        procs: f64,
    },
}

impl ToJson for CommEvent {
    fn to_json(&self) -> Json {
        match *self {
            CommEvent::Halo { bytes, neighbors } => Json::obj([
                ("op", Json::Str("halo".into())),
                ("bytes", Json::Num(bytes)),
                ("neighbors", Json::Num(neighbors)),
            ]),
            CommEvent::Allreduce { bytes, procs } => Json::obj([
                ("op", Json::Str("allreduce".into())),
                ("bytes", Json::Num(bytes)),
                ("procs", Json::Num(procs)),
            ]),
            CommEvent::Alltoall { bytes_per_pair, procs } => Json::obj([
                ("op", Json::Str("alltoall".into())),
                ("bytes_per_pair", Json::Num(bytes_per_pair)),
                ("procs", Json::Num(procs)),
            ]),
            CommEvent::Transpose { bytes_per_rank, procs } => Json::obj([
                ("op", Json::Str("transpose".into())),
                ("bytes_per_rank", Json::Num(bytes_per_rank)),
                ("procs", Json::Num(procs)),
            ]),
            CommEvent::Bcast { bytes, procs } => Json::obj([
                ("op", Json::Str("bcast".into())),
                ("bytes", Json::Num(bytes)),
                ("procs", Json::Num(procs)),
            ]),
        }
    }
}

impl FromJson for CommEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.str_field("op")? {
            "halo" => Ok(CommEvent::Halo {
                bytes: v.num_field("bytes")?,
                neighbors: v.num_field("neighbors")?,
            }),
            "allreduce" => Ok(CommEvent::Allreduce {
                bytes: v.num_field("bytes")?,
                procs: v.num_field("procs")?,
            }),
            "alltoall" => Ok(CommEvent::Alltoall {
                bytes_per_pair: v.num_field("bytes_per_pair")?,
                procs: v.num_field("procs")?,
            }),
            "transpose" => Ok(CommEvent::Transpose {
                bytes_per_rank: v.num_field("bytes_per_rank")?,
                procs: v.num_field("procs")?,
            }),
            "bcast" => {
                Ok(CommEvent::Bcast { bytes: v.num_field("bytes")?, procs: v.num_field("procs")? })
            }
            other => Err(JsonError::new(format!("unknown comm op '{other}'"))),
        }
    }
}

/// Computation profile of one phase of one timestep on one processor.
#[derive(Clone, Debug)]
pub struct PhaseProfile {
    /// Phase name (e.g. `"collision"`, `"charge deposition"`).
    pub name: String,
    /// Double-precision operations per processor per step.
    pub flops: f64,
    /// Fraction of `flops` inside vectorizable inner loops (Amdahl split).
    pub vector_fraction: f64,
    /// Trip count of the vectorized inner loop (drives stripmine
    /// efficiency; e.g. FVCAM's latitude loops shrink as P grows).
    pub avg_vector_length: f64,
    /// Unit-stride memory traffic in bytes (loads + stores, assuming no
    /// cache).
    pub unit_stride_bytes: f64,
    /// Randomly indexed traffic in bytes (gather/scatter).
    pub gather_scatter_bytes: f64,
    /// Fraction of `unit_stride_bytes` that a sufficiently large cache can
    /// absorb (temporal reuse: ~0.9+ for blocked BLAS3, ~0 for streaming
    /// stencil sweeps).
    pub cacheable_fraction: f64,
    /// How BLAS3-like the arithmetic is (0 = branchy stencil/particle
    /// code, 1 = register-blocked dense kernels). Drives the sustained-ILP
    /// interpolation on superscalar processors — distinct from
    /// `cacheable_fraction`, which only filters memory traffic.
    pub dense_fraction: f64,
    /// Per-processor working set in bytes (decides whether
    /// `cacheable_fraction` is realizable on a given cache).
    pub working_set_bytes: f64,
    /// Concurrent unit-stride streams the kernel touches (LBMHD: 100+;
    /// limits superscalar prefetch efficiency).
    pub concurrent_streams: f64,
    /// Independent instances of the vector loop (outer loop trip count).
    /// When at least `msp_ways`, the X1's multistreaming compiler splits
    /// the *outer* loops and the vector length is untouched; below that it
    /// must split the vector loop itself.
    pub outer_parallelism: f64,
}

impl PhaseProfile {
    /// A zeroed profile with the given name — builder-style starting point.
    pub fn new(name: impl Into<String>) -> Self {
        PhaseProfile {
            name: name.into(),
            flops: 0.0,
            vector_fraction: 1.0,
            avg_vector_length: 256.0,
            unit_stride_bytes: 0.0,
            gather_scatter_bytes: 0.0,
            cacheable_fraction: 0.0,
            dense_fraction: 0.0,
            working_set_bytes: 0.0,
            concurrent_streams: 4.0,
            outer_parallelism: f64::INFINITY,
        }
    }

    /// Arithmetic intensity in flops per byte of (uncached) traffic.
    pub fn intensity(&self) -> f64 {
        let bytes = self.unit_stride_bytes + self.gather_scatter_bytes;
        if bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / bytes
        }
    }
}

impl ToJson for PhaseProfile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("flops", Json::Num(self.flops)),
            ("vector_fraction", Json::Num(self.vector_fraction)),
            ("avg_vector_length", Json::Num(self.avg_vector_length)),
            ("unit_stride_bytes", Json::Num(self.unit_stride_bytes)),
            ("gather_scatter_bytes", Json::Num(self.gather_scatter_bytes)),
            ("cacheable_fraction", Json::Num(self.cacheable_fraction)),
            ("dense_fraction", Json::Num(self.dense_fraction)),
            ("working_set_bytes", Json::Num(self.working_set_bytes)),
            ("concurrent_streams", Json::Num(self.concurrent_streams)),
            ("outer_parallelism", Json::Num(self.outer_parallelism)),
        ])
    }
}

impl FromJson for PhaseProfile {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(PhaseProfile {
            name: v.str_field("name")?.to_string(),
            flops: v.num_field("flops")?,
            vector_fraction: v.num_field("vector_fraction")?,
            avg_vector_length: v.num_field("avg_vector_length")?,
            unit_stride_bytes: v.num_field("unit_stride_bytes")?,
            gather_scatter_bytes: v.num_field("gather_scatter_bytes")?,
            cacheable_fraction: v.num_field("cacheable_fraction")?,
            dense_fraction: v.num_field("dense_fraction")?,
            working_set_bytes: v.num_field("working_set_bytes")?,
            concurrent_streams: v.num_field("concurrent_streams")?,
            // Infinity is emitted as null (JSON has no Inf); restore it.
            outer_parallelism: match v.field("outer_parallelism")? {
                Json::Null => f64::INFINITY,
                other => f64::from_json(other)?,
            },
        })
    }
}

/// Everything one processor does in one timestep: computation phases plus
/// communication events.
#[derive(Clone, Debug, Default)]
pub struct WorkloadProfile {
    /// Application label (e.g. `"LBMHD3D"`).
    pub app: String,
    /// Total MPI ranks in the job.
    pub job_procs: usize,
    /// Computation phases, executed in order.
    pub phases: Vec<PhaseProfile>,
    /// Communication events per timestep.
    pub comm: Vec<CommEvent>,
}

impl WorkloadProfile {
    /// Creates an empty profile for `app` on `job_procs` ranks.
    pub fn new(app: impl Into<String>, job_procs: usize) -> Self {
        WorkloadProfile { app: app.into(), job_procs, phases: Vec::new(), comm: Vec::new() }
    }

    /// Total flops per processor per step.
    pub fn total_flops(&self) -> f64 {
        self.phases.iter().map(|p| p.flops).sum()
    }

    /// Total memory traffic per processor per step (no cache filtering).
    pub fn total_bytes(&self) -> f64 {
        self.phases.iter().map(|p| p.unit_stride_bytes + p.gather_scatter_bytes).sum()
    }
}

impl ToJson for WorkloadProfile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", Json::Str(self.app.clone())),
            ("job_procs", Json::Num(self.job_procs as f64)),
            ("phases", self.phases.to_json()),
            ("comm", self.comm.to_json()),
        ])
    }
}

impl FromJson for WorkloadProfile {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(WorkloadProfile {
            app: v.str_field("app")?.to_string(),
            job_procs: usize::from_json(v.field("job_procs")?)?,
            phases: Vec::from_json(v.field("phases")?)?,
            comm: Vec::from_json(v.field("comm")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let p = PhaseProfile::new("test");
        assert_eq!(p.flops, 0.0);
        assert_eq!(p.vector_fraction, 1.0);
        assert!(p.intensity().is_infinite());
    }

    #[test]
    fn intensity_is_flops_per_byte() {
        let mut p = PhaseProfile::new("x");
        p.flops = 100.0;
        p.unit_stride_bytes = 40.0;
        p.gather_scatter_bytes = 10.0;
        assert!((p.intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn workload_totals_sum_phases() {
        let mut w = WorkloadProfile::new("app", 64);
        for i in 1..=3 {
            let mut p = PhaseProfile::new(format!("p{i}"));
            p.flops = i as f64 * 10.0;
            p.unit_stride_bytes = i as f64;
            w.phases.push(p);
        }
        assert_eq!(w.total_flops(), 60.0);
        assert_eq!(w.total_bytes(), 6.0);
    }

    #[test]
    fn comm_events_serialize_round_trip() {
        let events = [
            CommEvent::Halo { bytes: 4096.0, neighbors: 6.0 },
            CommEvent::Allreduce { bytes: 8.0, procs: 256.0 },
            CommEvent::Alltoall { bytes_per_pair: 128.0, procs: 64.0 },
            CommEvent::Transpose { bytes_per_rank: 1e6, procs: 64.0 },
            CommEvent::Bcast { bytes: 64.0, procs: 512.0 },
        ];
        for e in events {
            let text = e.to_json().emit();
            let back = CommEvent::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(e, back);
        }
    }

    #[test]
    fn workload_profile_round_trips_including_infinite_outer_parallelism() {
        let mut w = WorkloadProfile::new("GTC", 64);
        let mut p = PhaseProfile::new("charge deposition");
        p.flops = 1.5e9;
        p.gather_scatter_bytes = 2.0e9;
        w.phases.push(p); // keeps the default outer_parallelism = Inf
        w.comm.push(CommEvent::Allreduce { bytes: 8.0, procs: 64.0 });
        let text = w.to_json().emit_pretty();
        let back = WorkloadProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.app, "GTC");
        assert_eq!(back.job_procs, 64);
        assert_eq!(back.phases.len(), 1);
        assert_eq!(back.phases[0].flops, 1.5e9);
        assert!(back.phases[0].outer_parallelism.is_infinite());
        assert_eq!(back.comm, w.comm);
    }
}
