//! Workload profiles: what one processor does in one timestep.
//!
//! The four applications *measure* these records from their real Rust
//! kernels (the instrumented counters are validated against analytic counts
//! in each app's tests) and hand them to [`crate::predict`].

use serde::{Deserialize, Serialize};

/// One communication event per timestep, as captured by `msim` or derived
/// from the decomposition arithmetic (validated against capture).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CommEvent {
    /// Nearest-neighbor exchange: each rank sends `bytes` to each of
    /// `neighbors` peers.
    Halo {
        /// Payload per neighbor in bytes.
        bytes: f64,
        /// Number of neighbors.
        neighbors: f64,
    },
    /// Reduction over a (sub-)communicator of `procs` ranks.
    Allreduce {
        /// Payload in bytes.
        bytes: f64,
        /// Communicator size.
        procs: f64,
    },
    /// Personalized all-to-all over `procs` ranks, `bytes_per_pair` each.
    Alltoall {
        /// Per-pair payload in bytes.
        bytes_per_pair: f64,
        /// Communicator size.
        procs: f64,
    },
    /// Distributed transpose redistributing `bytes_per_rank` per rank.
    Transpose {
        /// Total outgoing bytes per rank.
        bytes_per_rank: f64,
        /// Communicator size.
        procs: f64,
    },
    /// Broadcast of `bytes` over `procs` ranks.
    Bcast {
        /// Payload in bytes.
        bytes: f64,
        /// Communicator size.
        procs: f64,
    },
}

/// Computation profile of one phase of one timestep on one processor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Phase name (e.g. `"collision"`, `"charge deposition"`).
    pub name: String,
    /// Double-precision operations per processor per step.
    pub flops: f64,
    /// Fraction of `flops` inside vectorizable inner loops (Amdahl split).
    pub vector_fraction: f64,
    /// Trip count of the vectorized inner loop (drives stripmine
    /// efficiency; e.g. FVCAM's latitude loops shrink as P grows).
    pub avg_vector_length: f64,
    /// Unit-stride memory traffic in bytes (loads + stores, assuming no
    /// cache).
    pub unit_stride_bytes: f64,
    /// Randomly indexed traffic in bytes (gather/scatter).
    pub gather_scatter_bytes: f64,
    /// Fraction of `unit_stride_bytes` that a sufficiently large cache can
    /// absorb (temporal reuse: ~0.9+ for blocked BLAS3, ~0 for streaming
    /// stencil sweeps).
    pub cacheable_fraction: f64,
    /// How BLAS3-like the arithmetic is (0 = branchy stencil/particle
    /// code, 1 = register-blocked dense kernels). Drives the sustained-ILP
    /// interpolation on superscalar processors — distinct from
    /// `cacheable_fraction`, which only filters memory traffic.
    pub dense_fraction: f64,
    /// Per-processor working set in bytes (decides whether
    /// `cacheable_fraction` is realizable on a given cache).
    pub working_set_bytes: f64,
    /// Concurrent unit-stride streams the kernel touches (LBMHD: 100+;
    /// limits superscalar prefetch efficiency).
    pub concurrent_streams: f64,
    /// Independent instances of the vector loop (outer loop trip count).
    /// When at least `msp_ways`, the X1's multistreaming compiler splits
    /// the *outer* loops and the vector length is untouched; below that it
    /// must split the vector loop itself.
    pub outer_parallelism: f64,
}

impl PhaseProfile {
    /// A zeroed profile with the given name — builder-style starting point.
    pub fn new(name: impl Into<String>) -> Self {
        PhaseProfile {
            name: name.into(),
            flops: 0.0,
            vector_fraction: 1.0,
            avg_vector_length: 256.0,
            unit_stride_bytes: 0.0,
            gather_scatter_bytes: 0.0,
            cacheable_fraction: 0.0,
            dense_fraction: 0.0,
            working_set_bytes: 0.0,
            concurrent_streams: 4.0,
            outer_parallelism: f64::INFINITY,
        }
    }

    /// Arithmetic intensity in flops per byte of (uncached) traffic.
    pub fn intensity(&self) -> f64 {
        let bytes = self.unit_stride_bytes + self.gather_scatter_bytes;
        if bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / bytes
        }
    }
}

/// Everything one processor does in one timestep: computation phases plus
/// communication events.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Application label (e.g. `"LBMHD3D"`).
    pub app: String,
    /// Total MPI ranks in the job.
    pub job_procs: usize,
    /// Computation phases, executed in order.
    pub phases: Vec<PhaseProfile>,
    /// Communication events per timestep.
    pub comm: Vec<CommEvent>,
}

impl WorkloadProfile {
    /// Creates an empty profile for `app` on `job_procs` ranks.
    pub fn new(app: impl Into<String>, job_procs: usize) -> Self {
        WorkloadProfile { app: app.into(), job_procs, phases: Vec::new(), comm: Vec::new() }
    }

    /// Total flops per processor per step.
    pub fn total_flops(&self) -> f64 {
        self.phases.iter().map(|p| p.flops).sum()
    }

    /// Total memory traffic per processor per step (no cache filtering).
    pub fn total_bytes(&self) -> f64 {
        self.phases.iter().map(|p| p.unit_stride_bytes + p.gather_scatter_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let p = PhaseProfile::new("test");
        assert_eq!(p.flops, 0.0);
        assert_eq!(p.vector_fraction, 1.0);
        assert!(p.intensity().is_infinite());
    }

    #[test]
    fn intensity_is_flops_per_byte() {
        let mut p = PhaseProfile::new("x");
        p.flops = 100.0;
        p.unit_stride_bytes = 40.0;
        p.gather_scatter_bytes = 10.0;
        assert!((p.intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn workload_totals_sum_phases() {
        let mut w = WorkloadProfile::new("app", 64);
        for i in 1..=3 {
            let mut p = PhaseProfile::new(format!("p{i}"));
            p.flops = i as f64 * 10.0;
            p.unit_stride_bytes = i as f64;
            w.phases.push(p);
        }
        assert_eq!(w.total_flops(), 60.0);
        assert_eq!(w.total_bytes(), 6.0);
    }

    #[test]
    fn comm_events_serialize_round_trip() {
        let e = CommEvent::Alltoall { bytes_per_pair: 128.0, procs: 64.0 };
        let json = serde_json::to_string(&e).unwrap();
        let back: CommEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
