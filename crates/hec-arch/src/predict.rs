//! The performance evaluator: workload profile × platform → predicted time.
//!
//! The model follows the paper's own explanatory vocabulary:
//!
//! * **Vector machines** overlap pipelined vector arithmetic with memory
//!   streams (`max(t_vector, t_memory)`), pay Amdahl's law on the
//!   non-vectorizable remainder through a slow scalar unit, lose efficiency
//!   on short vector loops (stripmine startup), and pay an extra penalty for
//!   gather/scatter depending on the memory technology (FPLRAM vs
//!   DDR2-SDRAM vs the X1's E-cache path).
//! * **Superscalar machines** are roofline-limited: sustained ILP on the
//!   compute side (higher for cache-blocked dense kernels, low for branchy
//!   stencil/particle code), cache-filtered STREAM bandwidth on the memory
//!   side, with prefetch-stream limits for many-stream kernels and a
//!   cache-line penalty for gathers.
//! * **Network** time comes from `hec-net`'s Hockney models applied to the
//!   communication events the applications actually performed.

use hec_net::{collectives, NetworkModel};

use crate::platforms::{Arch, Platform, SuperscalarParams, VectorParams};
use crate::profile::{CommEvent, PhaseProfile, WorkloadProfile};

/// Predicted time decomposition for one timestep on one processor.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Arithmetic time not hidden behind memory (vector or superscalar).
    pub compute_secs: f64,
    /// Memory time not hidden behind arithmetic.
    pub memory_secs: f64,
    /// Non-vectorizable (scalar-unit) time — vector machines only.
    pub scalar_secs: f64,
    /// Communication time.
    pub network_secs: f64,
    /// Per-phase totals, for diagnostics (same order as the workload).
    pub phase_secs: Vec<f64>,
}

impl TimeBreakdown {
    /// Total predicted wall-clock per step.
    pub fn total(&self) -> f64 {
        self.compute_secs + self.memory_secs + self.scalar_secs + self.network_secs
    }
}

/// Result of evaluating a workload on a platform.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// The time decomposition.
    pub breakdown: TimeBreakdown,
    /// Sustained Gflop/s per processor ("Gflop/P" in the tables).
    pub gflops_per_proc: f64,
    /// Percentage of the platform's peak rate.
    pub percent_of_peak: f64,
}

/// Evaluates `workload` on `platform`, returning the paper's two headline
/// metrics plus the full time decomposition.
pub fn predict(platform: &Platform, workload: &WorkloadProfile) -> Prediction {
    let mut bd = TimeBreakdown::default();
    for phase in &workload.phases {
        let (comp, mem, scalar) = match platform.arch {
            Arch::Vector(v) => vector_phase(platform, &v, phase),
            Arch::Superscalar(s) => superscalar_phase(platform, &s, phase),
        };
        bd.compute_secs += comp;
        bd.memory_secs += mem;
        bd.scalar_secs += scalar;
        bd.phase_secs.push(comp + mem + scalar);
    }

    let net = NetworkModel::new(platform.net, workload.job_procs);
    for ev in &workload.comm {
        bd.network_secs += comm_event_secs(&net, ev);
    }

    let total = bd.total().max(1e-30);
    let gflops = workload.total_flops() / total / 1e9;
    Prediction {
        gflops_per_proc: gflops,
        percent_of_peak: 100.0 * gflops / platform.peak_gflops,
        breakdown: bd,
    }
}

/// Vector efficiency of a stripmined loop of trip count `l` on registers of
/// length `r` with `startup` dead slots per chunk. `ways` is the MSP
/// multistreaming width and `outer` the number of independent loop
/// instances: with enough outer parallelism the compiler streams the outer
/// loops and the vector length is untouched; otherwise it must split the
/// vector loop itself (the short-loop penalty the paper's §7 discusses).
fn stripmine_efficiency(l: f64, r: f64, startup: f64, ways: f64, outer: f64) -> f64 {
    if l <= 0.0 {
        return 0.05; // degenerate: nothing vectorizes
    }
    let split = if outer >= ways { 1.0 } else { (ways / outer.max(1.0)).min(ways) };
    let per_way = (l / split).max(1.0);
    let chunks = (per_way / r).ceil();
    // A vector operation on a partially-filled register takes time
    // proportional to the elements processed, so the only waste is the
    // per-chunk startup (pipeline fill + issue overhead).
    per_way / (per_way + chunks * startup)
}

/// Fraction of cacheable traffic a cache of `cache_bytes` actually captures
/// given the phase's working set.
fn cache_capture(cacheable: f64, working_set: f64, cache_bytes: f64) -> f64 {
    if cache_bytes <= 0.0 || cacheable <= 0.0 {
        return 0.0;
    }
    if working_set <= 0.0 {
        return cacheable;
    }
    // Smooth roll-off: full capture while the working set fits, decaying as
    // it spills (classic cache-miss knee).
    let fit = (cache_bytes / working_set).min(1.0);
    cacheable * fit.powf(0.5)
}

fn vector_phase(p: &Platform, v: &VectorParams, ph: &PhaseProfile) -> (f64, f64, f64) {
    let peak = p.peak_gflops * 1e9;
    let bw = p.stream_bw_gbps * 1e9;

    // Multistreaming serializes a slice of the nominally-vector work (X1) —
    // less of it for regular, library-grade kernels.
    let serial = v.stream_serial_frac * (1.0 - ph.dense_fraction);
    let vec_frac = (ph.vector_fraction * (1.0 - serial)).clamp(0.0, 1.0);
    let vec_flops = ph.flops * vec_frac;
    let scalar_flops = ph.flops - vec_flops;

    let eff = stripmine_efficiency(
        ph.avg_vector_length,
        v.vreg_len,
        v.startup_slots,
        v.msp_ways,
        ph.outer_parallelism,
    );
    let t_vec = vec_flops / (peak * eff);

    // E-cache (X1/X1E) absorbs temporally-local traffic.
    let captured = cache_capture(ph.cacheable_fraction, ph.working_set_bytes, v.cache_bytes);
    let unit_bytes = ph.unit_stride_bytes * (1.0 - captured);
    let t_mem = unit_bytes / bw + ph.gather_scatter_bytes / (bw * v.gather_bw_frac);

    // Vector pipelines overlap arithmetic with memory streams; the scalar
    // remainder serializes behind both (Amdahl), running on the scalar
    // unit at its own sustained fraction of its (already small) peak.
    let overlap = t_vec.max(t_mem);
    let t_scalar = scalar_flops / (peak * v.scalar_frac * v.scalar_ilp);
    if t_vec >= t_mem {
        (overlap, 0.0, t_scalar)
    } else {
        (0.0, overlap, t_scalar)
    }
}

fn superscalar_phase(p: &Platform, s: &SuperscalarParams, ph: &PhaseProfile) -> (f64, f64, f64) {
    let peak = p.peak_gflops * 1e9;
    let bw = p.stream_bw_gbps * 1e9;

    // Sustained ILP interpolates between branchy/streaming code and
    // register-blocked dense kernels (PARATEC's ZGEMMs sit near dense_ilp,
    // stencil/particle loops near sparse_ilp).
    let ilp = s.sparse_ilp + (s.dense_ilp - s.sparse_ilp) * ph.dense_fraction;
    let t_comp = ph.flops / (peak * ilp);

    let captured = cache_capture(ph.cacheable_fraction, ph.working_set_bytes, s.cache_bytes);
    // Prefetch engines track a limited number of streams; beyond that,
    // effective bandwidth decays (LBMHD's 100+ streams).
    let stream_eff = (s.prefetch_streams / ph.concurrent_streams.max(1.0)).min(1.0).powf(0.3);
    let unit_bytes = ph.unit_stride_bytes * (1.0 - captured);

    // Gathers split into cache-resident (cheap but latency-bound — the
    // dependent-load cost of GTC's deposition even when the grid fits in
    // cache) and memory-resident (a cache line per element).
    let fit = if ph.working_set_bytes > 0.0 {
        (s.cache_bytes / ph.working_set_bytes).min(1.0)
    } else {
        1.0
    };
    let gs_elems = ph.gather_scatter_bytes / 8.0;
    let t_gs = gs_elems * fit * s.cached_gather_ns * 1e-9
        + ph.gather_scatter_bytes * (1.0 - fit) / (bw * s.gather_bw_frac);
    let t_mem = unit_bytes / (bw * stream_eff) + t_gs;

    // Out-of-order windows overlap compute and memory only partially; the
    // roofline max is the right first-order model (hardware prefetch hides
    // latency, not bandwidth).
    let t = t_comp.max(t_mem);
    if t_comp >= t_mem {
        (t, 0.0, 0.0)
    } else {
        (0.0, t, 0.0)
    }
}

fn comm_event_secs(net: &NetworkModel, ev: &CommEvent) -> f64 {
    match *ev {
        CommEvent::Halo { bytes, neighbors } => net.halo_secs(bytes as usize, neighbors as usize),
        CommEvent::Allreduce { bytes, procs } => {
            collectives::allreduce_secs(net, procs as usize, bytes as usize)
        }
        CommEvent::Alltoall { bytes_per_pair, procs } => {
            collectives::alltoall_secs(net, procs as usize, bytes_per_pair as usize)
        }
        CommEvent::Transpose { bytes_per_rank, procs } => {
            collectives::transpose_secs(net, procs as usize, bytes_per_rank as usize)
        }
        CommEvent::Bcast { bytes, procs } => {
            collectives::bcast_secs(net, procs as usize, bytes as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::{PlatformId, ES, OPTERON, POWER3, SX8, X1_MSP};

    fn streaming_phase(flops: f64, bytes: f64) -> PhaseProfile {
        let mut ph = PhaseProfile::new("stream");
        ph.flops = flops;
        ph.unit_stride_bytes = bytes;
        ph.avg_vector_length = 256.0;
        ph.vector_fraction = 1.0;
        ph.concurrent_streams = 3.0;
        ph
    }

    #[test]
    fn stream_triad_reaches_platform_bandwidth() {
        // A pure triad (2 flops / 24 bytes) must be memory-bound everywhere,
        // and the model must reproduce exactly BW × intensity.
        for p in [POWER3, OPTERON, ES, SX8] {
            let mut w = WorkloadProfile::new("triad", 1);
            let n = 1e7;
            w.phases.push(streaming_phase(2.0 * n, 24.0 * n));
            let pred = predict(&p, &w);
            let want = p.stream_bw_gbps * (2.0 / 24.0);
            assert!(
                (pred.gflops_per_proc - want).abs() < 0.15 * want,
                "{:?}: {} vs {}",
                p.id,
                pred.gflops_per_proc,
                want
            );
        }
    }

    #[test]
    fn dense_kernel_approaches_peak_on_superscalar() {
        // A cache-blocked GEMM should reach dense_ilp × peak on Power3
        // (the paper's PARATEC observation: >60 % of peak via ESSL).
        let mut w = WorkloadProfile::new("gemm", 1);
        let mut ph = PhaseProfile::new("dgemm");
        ph.flops = 1e9;
        ph.unit_stride_bytes = 1e7;
        ph.cacheable_fraction = 0.95;
        ph.dense_fraction = 0.95;
        ph.working_set_bytes = 1e5; // blocked: fits in cache
        ph.concurrent_streams = 3.0;
        w.phases.push(ph);
        let pred = predict(&POWER3, &w);
        assert!(
            pred.percent_of_peak > 55.0 && pred.percent_of_peak < 75.0,
            "{}",
            pred.percent_of_peak
        );
    }

    #[test]
    fn long_vectors_beat_short_vectors() {
        let mk = |vl: f64| {
            let mut w = WorkloadProfile::new("x", 1);
            let mut ph = streaming_phase(1e9, 1e8);
            ph.avg_vector_length = vl;
            w.phases.push(ph);
            w
        };
        let long = predict(&ES, &mk(256.0)).gflops_per_proc;
        let short = predict(&ES, &mk(16.0)).gflops_per_proc;
        assert!(long > 1.5 * short, "long {long} short {short}");
    }

    #[test]
    fn scalar_fraction_murders_vector_performance() {
        // Amdahl: 30 % scalar work on a 1/8-speed scalar unit.
        let mk = |vf: f64| {
            let mut w = WorkloadProfile::new("x", 1);
            let mut ph = streaming_phase(1e9, 1e6);
            ph.vector_fraction = vf;
            w.phases.push(ph);
            w
        };
        let vec = predict(&ES, &mk(1.0)).percent_of_peak;
        let half = predict(&ES, &mk(0.7)).percent_of_peak;
        assert!(vec > 2.0 * half, "{vec} vs {half}");
    }

    #[test]
    fn gather_heavy_code_prefers_es_over_sx8_relatively() {
        // GTC-like: random access dominates. ES must sustain a higher
        // fraction of peak than the SX-8 (paper Table 4: 20-24 % vs 14-15 %).
        let mut w = WorkloadProfile::new("gtc-ish", 1);
        let mut ph = streaming_phase(1e9, 2e8);
        ph.gather_scatter_bytes = 4e9;
        w.phases.push(ph);
        let es = predict(&ES, &w).percent_of_peak;
        let sx8 = predict(&SX8, &w).percent_of_peak;
        assert!(es > sx8, "ES {es} vs SX-8 {sx8}");
    }

    #[test]
    fn network_time_appears_for_multirank_jobs() {
        let mut w = WorkloadProfile::new("x", 64);
        w.phases.push(streaming_phase(1e6, 1e5));
        w.comm.push(CommEvent::Allreduce { bytes: 1024.0, procs: 64.0 });
        let pred = predict(&X1_MSP, &w);
        assert!(pred.breakdown.network_secs > 0.0);
    }

    #[test]
    fn vector_platforms_dominate_streaming_kernels() {
        // The LBMHD story: vector machines outrun every superscalar by a
        // wide margin on long-vector streaming code.
        let mut w = WorkloadProfile::new("lbmhd-ish", 16);
        let mut ph = streaming_phase(1.3e9, 1.7e9);
        ph.concurrent_streams = 100.0;
        w.phases.push(ph);
        let best_scalar =
            [POWER3, OPTERON].iter().map(|p| predict(p, &w).gflops_per_proc).fold(0.0, f64::max);
        for v in [ES, SX8, X1_MSP] {
            let g = predict(&v, &w).gflops_per_proc;
            assert!(g > 2.5 * best_scalar, "{:?}: {} vs {}", v.id, g, best_scalar);
        }
    }

    #[test]
    fn breakdown_total_matches_prediction() {
        let mut w = WorkloadProfile::new("x", 8);
        w.phases.push(streaming_phase(1e8, 1e7));
        w.comm.push(CommEvent::Halo { bytes: 8192.0, neighbors: 6.0 });
        for id in PlatformId::ALL {
            let p = Platform::get(id);
            let pred = predict(&p, &w);
            let g = w.total_flops() / pred.breakdown.total() / 1e9;
            assert!((g - pred.gflops_per_proc).abs() < 1e-9);
        }
    }

    #[test]
    fn stripmine_efficiency_bounds() {
        for &(l, r, s, w) in
            &[(256.0, 256.0, 25.0, 1.0), (64.0, 64.0, 40.0, 4.0), (3.0, 256.0, 25.0, 1.0)]
        {
            let e = stripmine_efficiency(l, r, s, w, f64::INFINITY);
            assert!(e > 0.0 && e <= 1.0, "eff({l},{r},{s},{w}) = {e}");
        }
        // Longer loops are never less efficient.
        let e_long = stripmine_efficiency(1024.0, 256.0, 25.0, 1.0, f64::INFINITY);
        let e_short = stripmine_efficiency(32.0, 256.0, 25.0, 1.0, f64::INFINITY);
        assert!(e_long > e_short);
        // Without outer parallelism, multistreaming splits the vector loop.
        let e_outer = stripmine_efficiency(64.0, 64.0, 40.0, 4.0, f64::INFINITY);
        let e_inner = stripmine_efficiency(64.0, 64.0, 40.0, 4.0, 1.0);
        assert!(e_outer > e_inner);
    }
}
