//! Building workload profiles from measured probe captures.
//!
//! The applications instrument their hot paths with `hec_core::probe`
//! counters; one small calibration run per app yields a [`Capture`] whose
//! per-phase counters are validated against the analytic counts (exact
//! for integer events). This module is the bridge: it overlays those
//! *measured* per-unit rates — scaled to a production configuration —
//! onto a [`WorkloadProfile`], so the architectural model consumes
//! measured data while the analytic builders remain as a cross-check
//! oracle.
//!
//! Extensive quantities (flops, traffic bytes) scale linearly with the
//! executed work units, so `measured × (target units / calibration
//! units)` is exact whenever the per-unit cost is configuration-
//! independent. Shape fields (vector fraction, cacheability, working
//! set…) are *model parameters*, not hardware counters, and are never
//! touched by an overlay.

use hec_core::probe::{Capture, Counters};

use crate::profile::{PhaseProfile, WorkloadProfile};

/// Which measured fields an overlay writes into the model phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Overlay {
    /// Overlay all extensive fields: flops, unit-stride bytes, and
    /// gather/scatter bytes.
    Extensive,
    /// Overlay flops only. Used where the model's byte fields follow a
    /// different convention than the raw §2.1 counters (e.g. PARATEC's
    /// BLAS3 phase models *panel* traffic of the blocked algorithm, not
    /// the no-cache streaming traffic the counters report).
    FlopsOnly,
}

/// Maps one captured phase onto one model phase with a unit-rescaling
/// factor (`target units / calibration units`).
#[derive(Clone, Copy, Debug)]
pub struct PhaseBinding<'a> {
    /// Phase name in the capture (e.g. `"gtc/charge deposition"`).
    pub capture_phase: &'a str,
    /// Phase name in the workload profile (e.g. `"charge deposition"`).
    pub model_phase: &'a str,
    /// Multiplier taking calibration-run counts to the target
    /// configuration's counts.
    pub scale: f64,
    /// Which fields to overlay.
    pub overlay: Overlay,
}

impl<'a> PhaseBinding<'a> {
    /// A binding overlaying every extensive field.
    pub fn extensive(capture_phase: &'a str, model_phase: &'a str, scale: f64) -> Self {
        PhaseBinding { capture_phase, model_phase, scale, overlay: Overlay::Extensive }
    }

    /// A binding overlaying measured flops only.
    pub fn flops_only(capture_phase: &'a str, model_phase: &'a str, scale: f64) -> Self {
        PhaseBinding { capture_phase, model_phase, scale, overlay: Overlay::FlopsOnly }
    }
}

impl PhaseProfile {
    /// Overwrites this phase's extensive fields with measured counters
    /// scaled by `scale`; shape fields are untouched.
    pub fn apply_counters(&mut self, c: &Counters, scale: f64, overlay: Overlay) {
        self.flops = c.flops as f64 * scale;
        if overlay == Overlay::Extensive {
            self.unit_stride_bytes = c.unit_stride_bytes as f64 * scale;
            self.gather_scatter_bytes = c.gather_scatter_bytes as f64 * scale;
        }
    }

    /// Builds a phase whose extensive fields come from measured counters
    /// (scaled by `scale`) and whose average vector length is the
    /// measured trip count per vector-loop execution. The remaining
    /// shape fields keep the [`PhaseProfile::new`] defaults.
    pub fn from_counters(name: impl Into<String>, c: &Counters, scale: f64) -> PhaseProfile {
        let mut p = PhaseProfile::new(name);
        p.apply_counters(c, scale, Overlay::Extensive);
        if c.vector_loops > 0 {
            p.avg_vector_length = c.avg_vector_length();
        }
        p
    }
}

impl WorkloadProfile {
    /// Builds a workload directly from a capture: one phase per binding,
    /// in binding order, via [`PhaseProfile::from_counters`]. Errors if a
    /// bound capture phase recorded nothing (a silently-empty calibration
    /// run must not produce an all-zero profile).
    pub fn from_capture(
        app: impl Into<String>,
        job_procs: usize,
        capture: &Capture,
        bindings: &[PhaseBinding],
    ) -> Result<WorkloadProfile, String> {
        let mut w = WorkloadProfile::new(app, job_procs);
        for b in bindings {
            let c = capture.get(b.capture_phase);
            if c.is_zero() {
                return Err(format!("capture phase '{}' recorded no events", b.capture_phase));
            }
            w.phases.push(PhaseProfile::from_counters(b.model_phase, &c, b.scale));
        }
        Ok(w)
    }

    /// Overlays measured counters onto an existing (typically analytic)
    /// profile: for each binding, the model phase named `model_phase`
    /// gets its extensive fields replaced per [`PhaseProfile::apply_counters`].
    /// Shape fields, unbound phases, and communication events survive.
    /// Errors if either side of a binding is missing.
    pub fn apply_capture(
        &mut self,
        capture: &Capture,
        bindings: &[PhaseBinding],
    ) -> Result<(), String> {
        for b in bindings {
            let c = capture.get(b.capture_phase);
            if c.is_zero() {
                return Err(format!("capture phase '{}' recorded no events", b.capture_phase));
            }
            let phase = self
                .phases
                .iter_mut()
                .find(|p| p.name == b.model_phase)
                .ok_or_else(|| format!("profile has no phase named '{}'", b.model_phase))?;
            phase.apply_counters(&c, b.scale, b.overlay);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_core::probe;

    fn sample_capture() -> Capture {
        let ((), cap) = probe::capture(|| {
            probe::count(
                "app/work",
                Counters {
                    flops: 1000,
                    unit_stride_bytes: 4000,
                    gather_scatter_bytes: 200,
                    vector_iters: 640,
                    vector_loops: 10,
                    ..Default::default()
                },
            );
        });
        cap
    }

    #[test]
    fn from_counters_scales_extensive_fields_and_keeps_measured_avl() {
        let cap = sample_capture();
        let p = PhaseProfile::from_counters("work", &cap.get("app/work"), 2.5);
        assert_eq!(p.flops, 2500.0);
        assert_eq!(p.unit_stride_bytes, 10_000.0);
        assert_eq!(p.gather_scatter_bytes, 500.0);
        assert_eq!(p.avg_vector_length, 64.0);
        // Shape fields keep builder defaults.
        assert_eq!(p.vector_fraction, 1.0);
        assert_eq!(p.cacheable_fraction, 0.0);
    }

    #[test]
    fn apply_capture_overlays_only_bound_extensive_fields() {
        let cap = sample_capture();
        let mut w = WorkloadProfile::new("APP", 64);
        let mut ph = PhaseProfile::new("work");
        ph.flops = 1.0;
        ph.unit_stride_bytes = 2.0;
        ph.gather_scatter_bytes = 3.0;
        ph.cacheable_fraction = 0.37;
        ph.avg_vector_length = 99.0;
        w.phases.push(ph);
        let mut other = PhaseProfile::new("untouched");
        other.flops = 7.0;
        w.phases.push(other);

        w.apply_capture(&cap, &[PhaseBinding::extensive("app/work", "work", 3.0)]).unwrap();
        assert_eq!(w.phases[0].flops, 3000.0);
        assert_eq!(w.phases[0].unit_stride_bytes, 12_000.0);
        assert_eq!(w.phases[0].gather_scatter_bytes, 600.0);
        // Shape fields are model parameters and survive the overlay.
        assert_eq!(w.phases[0].cacheable_fraction, 0.37);
        assert_eq!(w.phases[0].avg_vector_length, 99.0);
        assert_eq!(w.phases[1].flops, 7.0);
    }

    #[test]
    fn flops_only_overlay_preserves_modelled_traffic() {
        let cap = sample_capture();
        let mut w = WorkloadProfile::new("APP", 1);
        let mut ph = PhaseProfile::new("blas3");
        ph.unit_stride_bytes = 123.0;
        w.phases.push(ph);
        w.apply_capture(&cap, &[PhaseBinding::flops_only("app/work", "blas3", 1.0)]).unwrap();
        assert_eq!(w.phases[0].flops, 1000.0);
        assert_eq!(w.phases[0].unit_stride_bytes, 123.0);
    }

    #[test]
    fn missing_phases_are_reported_not_zeroed() {
        let cap = sample_capture();
        let mut w = WorkloadProfile::new("APP", 1);
        w.phases.push(PhaseProfile::new("work"));
        let err = w
            .apply_capture(&cap, &[PhaseBinding::extensive("app/ghost", "work", 1.0)])
            .unwrap_err();
        assert!(err.contains("app/ghost"), "{err}");
        let err = w
            .apply_capture(&cap, &[PhaseBinding::extensive("app/work", "ghost phase", 1.0)])
            .unwrap_err();
        assert!(err.contains("ghost phase"), "{err}");
        assert!(WorkloadProfile::from_capture(
            "A",
            1,
            &cap,
            &[PhaseBinding::extensive("nope", "x", 1.0)]
        )
        .is_err());
    }

    #[test]
    fn from_capture_builds_phases_in_binding_order() {
        let cap = sample_capture();
        let w = WorkloadProfile::from_capture(
            "APP",
            8,
            &cap,
            &[
                PhaseBinding::extensive("app/work", "first", 1.0),
                PhaseBinding::extensive("app/work", "second", 0.5),
            ],
        )
        .unwrap();
        assert_eq!(w.job_procs, 8);
        assert_eq!(w.phases[0].name, "first");
        assert_eq!(w.phases[1].name, "second");
        assert_eq!(w.phases[1].flops, 500.0);
    }
}
