//! LBMHD3D — three-dimensional lattice Boltzmann magneto-hydrodynamics.
//!
//! A complete reimplementation of the application introduced by the paper
//! (§5): a D3Q27 lattice Boltzmann solver for the equations of resistive
//! incompressible MHD, following the Dellar formulation — 27 scalar
//! particle distributions carrying mass and momentum plus 27 vector-valued
//! distributions carrying the magnetic field. The simulation evolves a
//! conducting fluid from simple initial conditions through the onset of
//! turbulence (Figure 6 of the paper shows the vorticity contours this
//! produces).
//!
//! Implementation notes mirroring the paper's §5/§5.1:
//!
//! * the *combined* collision+stream step of Wellein et al. is used — data
//!   is gathered from adjacent cells while computing the update for the
//!   current cell, so only block-boundary points are copied;
//! * the inner loop runs over grid points with the direction loops
//!   unrolled, the layout that vectorizes on the ES/X1 and is also optimal
//!   on cache machines;
//! * the 3D spatial grid is block-distributed over a 3D Cartesian processor
//!   grid with face halo exchanges (`msim`).
//!
//! Modules:
//! * [`lattice`] — the D3Q27 streaming lattice (velocities, weights).
//! * [`state`] — distribution storage and macroscopic moments.
//! * [`collide`] — the fused collide+stream kernel and its flop accounting.
//! * [`decomp`] — 3D Cartesian decomposition and halo exchange.
//! * [`sim`] — the driver: initial conditions, stepping, diagnostics.
//! * [`model`] — analytic workload model feeding `hec-arch` (Table 5).

/// Stable artifact-file tag: `TABLE_lbmhd3d.json` / `PROFILE_lbmhd3d.json`
/// are keyed by this name, so renaming it breaks every committed
/// baseline directory — treat it as part of the artifact schema.
pub const ARTIFACT_TAG: &str = "lbmhd3d";

pub mod collide;
pub mod decomp;
pub mod lattice;
pub mod model;
pub mod sim;
pub mod state;

pub use sim::{Diagnostics, SimParams, Simulation};
