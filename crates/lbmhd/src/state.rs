//! Distribution storage and macroscopic moments.
//!
//! Storage is direction-major ("structure of arrays") in one flat
//! allocation per family: all `Q` scalar distributions f_i live
//! back-to-back in `f` (`Q` lanes of `padded_len` f64s each), and the
//! `Q × 3` vector-distribution components live in `g`. The paper's §5.1
//! explains why: the inner loop runs over grid points (typically hundreds
//! of iterations) with the direction loops unrolled, which both vectorizes
//! on the ES/X1/SX-8 and matches the cache-optimal layout of Wellein et
//! al. on superscalar machines. Keeping each lane contiguous (rather than
//! one heap `Vec` per direction) lets the collide kernel slice shifted
//! unit-stride windows straight out of the flat buffer — no per-call
//! row gathers, no pointer chasing.
//!
//! Every local block is padded with a one-point halo on all sides; the halo
//! is filled by `decomp` (from neighbor ranks or periodic wrap).

use crate::lattice::Q;

/// One rank's block of the distributed lattice, with a 1-point halo.
#[derive(Clone, Debug)]
pub struct Block {
    /// Interior extent in x.
    pub nx: usize,
    /// Interior extent in y.
    pub ny: usize,
    /// Interior extent in z.
    pub nz: usize,
    /// Scalar (mass/momentum) distributions: `Q` contiguous lanes of
    /// `padded_len()` points each, lane `q` starting at `q * padded_len()`.
    pub f: Vec<f64>,
    /// Magnetic vector distributions: `Q × 3` contiguous lanes, lane
    /// `q * 3 + component` starting at `(q * 3 + component) * padded_len()`.
    pub g: Vec<f64>,
}

impl Block {
    /// Allocates a zero-filled block for an `nx × ny × nz` interior.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        let len = (nx + 2) * (ny + 2) * (nz + 2);
        Block { nx, ny, nz, f: vec![0.0; Q * len], g: vec![0.0; Q * 3 * len] }
    }

    /// Padded x extent.
    #[inline(always)]
    pub fn px(&self) -> usize {
        self.nx + 2
    }

    /// Padded y extent.
    #[inline(always)]
    pub fn py(&self) -> usize {
        self.ny + 2
    }

    /// Padded z extent.
    #[inline(always)]
    pub fn pz(&self) -> usize {
        self.nz + 2
    }

    /// Points per lane (padded volume).
    #[inline(always)]
    pub fn padded_len(&self) -> usize {
        self.px() * self.py() * self.pz()
    }

    /// Scalar-distribution lane for direction `q` (all padded points).
    #[inline(always)]
    pub fn f_lane(&self, q: usize) -> &[f64] {
        let n = self.padded_len();
        &self.f[q * n..(q + 1) * n]
    }

    /// Mutable scalar-distribution lane for direction `q`.
    #[inline(always)]
    pub fn f_lane_mut(&mut self, q: usize) -> &mut [f64] {
        let n = self.padded_len();
        &mut self.f[q * n..(q + 1) * n]
    }

    /// Vector-distribution lane for direction `q`, component `a`.
    #[inline(always)]
    pub fn g_lane(&self, q: usize, a: usize) -> &[f64] {
        self.g_lane_flat(q * 3 + a)
    }

    /// Mutable vector-distribution lane for direction `q`, component `a`.
    #[inline(always)]
    pub fn g_lane_mut(&mut self, q: usize, a: usize) -> &mut [f64] {
        self.g_lane_flat_mut(q * 3 + a)
    }

    /// Vector-distribution lane by flat index `qa = q * 3 + a`.
    #[inline(always)]
    pub fn g_lane_flat(&self, qa: usize) -> &[f64] {
        let n = self.padded_len();
        &self.g[qa * n..(qa + 1) * n]
    }

    /// Mutable vector-distribution lane by flat index `qa = q * 3 + a`.
    #[inline(always)]
    pub fn g_lane_flat_mut(&mut self, qa: usize) -> &mut [f64] {
        let n = self.padded_len();
        &mut self.g[qa * n..(qa + 1) * n]
    }

    /// Linear index of padded coordinates `(i, j, k)` (0 = low halo).
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.px() && j < self.py() && k < self.pz());
        i + self.px() * (j + self.py() * k)
    }

    /// Linear index of *interior* coordinates (0-based, excluding halo).
    #[inline(always)]
    pub fn interior_idx(&self, i: usize, j: usize, k: usize) -> usize {
        self.idx(i + 1, j + 1, k + 1)
    }

    /// Number of interior points.
    pub fn interior_len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Macroscopic moments (ρ, ρu, B) at interior point `(i, j, k)`,
    /// computed from the stored (post-collision) distributions.
    pub fn moments(&self, i: usize, j: usize, k: usize) -> Moments {
        use crate::lattice::C;
        let ix = self.interior_idx(i, j, k);
        let lane = self.padded_len();
        let mut rho = 0.0;
        let mut mom = [0.0; 3];
        let mut b = [0.0; 3];
        for q in 0..Q {
            let fq = self.f[q * lane + ix];
            rho += fq;
            for a in 0..3 {
                mom[a] += fq * C[q][a] as f64;
                b[a] += self.g[(q * 3 + a) * lane + ix];
            }
        }
        Moments { rho, mom, b }
    }

    /// Sums (ρ, ρu, B) over the whole interior — conservation diagnostics.
    pub fn totals(&self) -> Moments {
        let mut t = Moments::default();
        for k in 0..self.nz {
            for j in 0..self.ny {
                for i in 0..self.nx {
                    let m = self.moments(i, j, k);
                    t.rho += m.rho;
                    for a in 0..3 {
                        t.mom[a] += m.mom[a];
                        t.b[a] += m.b[a];
                    }
                }
            }
        }
        t
    }
}

/// Macroscopic moments at one point (or summed over a region).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Moments {
    /// Mass density ρ.
    pub rho: f64,
    /// Momentum density ρu.
    pub mom: [f64; 3],
    /// Magnetic field B.
    pub b: [f64; 3],
}

impl Moments {
    /// Fluid velocity u = ρu / ρ.
    pub fn velocity(&self) -> [f64; 3] {
        [self.mom[0] / self.rho, self.mom[1] / self.rho, self.mom[2] / self.rho]
    }
}

/// Sets a block's distributions to the MHD equilibrium for the given
/// macroscopic fields (interior points only; halos stay zero until the
/// first exchange).
pub fn set_equilibrium(block: &mut Block, mut fields: impl FnMut(usize, usize, usize) -> Moments) {
    let lane = block.padded_len();
    for k in 0..block.nz {
        for j in 0..block.ny {
            for i in 0..block.nx {
                let m = fields(i, j, k);
                let u = m.velocity();
                let (feq, geq) = crate::collide::equilibrium(m.rho, u, m.b);
                let ix = block.interior_idx(i, j, k);
                for q in 0..Q {
                    block.f[q * lane + ix] = feq[q];
                    for a in 0..3 {
                        block.g[(q * 3 + a) * lane + ix] = geq[q][a];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_dense_and_disjoint() {
        let b = Block::zeros(4, 3, 2);
        let mut seen = vec![false; b.px() * b.py() * b.pz()];
        for k in 0..b.pz() {
            for j in 0..b.py() {
                for i in 0..b.px() {
                    let ix = b.idx(i, j, k);
                    assert!(!seen[ix]);
                    seen[ix] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lanes_are_contiguous_and_disjoint() {
        let mut b = Block::zeros(3, 2, 4);
        let lane = b.padded_len();
        assert_eq!(b.f.len(), Q * lane);
        assert_eq!(b.g.len(), Q * 3 * lane);
        for q in 0..Q {
            b.f_lane_mut(q)[0] = q as f64 + 1.0;
            for a in 0..3 {
                b.g_lane_mut(q, a)[lane - 1] = (q * 3 + a) as f64 + 1.0;
            }
        }
        for q in 0..Q {
            assert_eq!(b.f[q * lane], q as f64 + 1.0);
            assert_eq!(b.f_lane(q).len(), lane);
            for a in 0..3 {
                assert_eq!(b.g[(q * 3 + a) * lane + lane - 1], (q * 3 + a) as f64 + 1.0);
                assert_eq!(b.g_lane(q, a).len(), lane);
            }
        }
    }

    #[test]
    fn equilibrium_moments_round_trip() {
        let mut b = Block::zeros(3, 3, 3);
        let want = Moments { rho: 1.1, mom: [0.022, -0.011, 0.033], b: [0.05, 0.02, -0.04] };
        set_equilibrium(&mut b, |_, _, _| want);
        let got = b.moments(1, 1, 1);
        assert!((got.rho - want.rho).abs() < 1e-12);
        for a in 0..3 {
            assert!((got.mom[a] - want.mom[a]).abs() < 1e-12, "mom[{a}]");
            assert!((got.b[a] - want.b[a]).abs() < 1e-12, "b[{a}]");
        }
    }

    #[test]
    fn totals_scale_with_volume() {
        let mut b = Block::zeros(4, 4, 4);
        set_equilibrium(&mut b, |_, _, _| Moments { rho: 2.0, mom: [0.0; 3], b: [0.1, 0.0, 0.0] });
        let t = b.totals();
        assert!((t.rho - 2.0 * 64.0).abs() < 1e-9);
        assert!((t.b[0] - 0.1 * 64.0).abs() < 1e-9);
    }

    #[test]
    fn velocity_divides_momentum_by_density() {
        let m = Moments { rho: 2.0, mom: [1.0, -2.0, 4.0], b: [0.0; 3] };
        assert_eq!(m.velocity(), [0.5, -1.0, 2.0]);
    }
}
