//! Simulation driver: initial conditions, stepping, diagnostics.
//!
//! The canonical problem (paper §5, Figure 6) starts from well-defined
//! vorticity tubes — an Orszag–Tang-like configuration — and evolves
//! through the onset of turbulence. The driver runs one rank's block and
//! exchanges halos through `msim`; a 1-rank run wraps periodically and
//! needs no communicator partner, so the same code path serves the serial
//! examples and tests.

use hec_core::pool::Threads;
use msim::Comm;

use crate::collide::{step_with, FLOPS_PER_POINT};
use crate::decomp::{exchange_halos, local_extent, processor_grid, CartRank};
use crate::state::{set_equilibrium, Block, Moments};

/// Parameters of an LBMHD3D run.
#[derive(Clone, Copy, Debug)]
pub struct SimParams {
    /// Global grid extent (cubic: `n³` points).
    pub n: usize,
    /// Relaxation rate for the scalar (fluid) distributions, ω = 1/τ.
    pub omega: f64,
    /// Relaxation rate for the magnetic distributions.
    pub omega_m: f64,
    /// Perturbation amplitude of the initial vorticity tubes.
    pub amplitude: f64,
    /// Shared-memory workers per rank (`0` = resolve from `HEC_THREADS` or
    /// the machine's available parallelism).
    pub threads: usize,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams { n: 16, omega: 1.0, omega_m: 1.0, amplitude: 0.05, threads: 0 }
    }
}

/// Global diagnostics, reduced over all ranks.
#[derive(Clone, Copy, Debug, Default)]
pub struct Diagnostics {
    /// Total mass Σρ.
    pub mass: f64,
    /// Total momentum Σρu.
    pub momentum: [f64; 3],
    /// Total magnetic flux ΣB.
    pub flux: [f64; 3],
    /// Kinetic energy ½Σρu².
    pub kinetic_energy: f64,
    /// Magnetic energy ½ΣB².
    pub magnetic_energy: f64,
}

/// One rank's share of an LBMHD3D simulation.
pub struct Simulation {
    /// Run parameters.
    pub params: SimParams,
    /// This rank's Cartesian placement.
    pub cart: CartRank,
    /// Global origin of the local block.
    pub origin: [usize; 3],
    src: Block,
    dst: Block,
    /// Shared-memory worker handle used by the collide+stream kernel.
    pub threads: Threads,
    /// Lattice points updated so far (for flop accounting).
    pub points_updated: u64,
    /// Halo bytes sent so far.
    pub halo_bytes_sent: u64,
}

impl Simulation {
    /// Sets up the local block for `rank` of `nprocs` and applies the
    /// vorticity-tube initial condition.
    pub fn new(params: SimParams, rank: usize, nprocs: usize) -> Self {
        let dims = processor_grid(nprocs);
        let cart = CartRank::new(rank, dims);
        let ext: Vec<usize> =
            (0..3).map(|a| local_extent(params.n, dims[a], cart.coords[a])).collect();
        let mut origin = [0usize; 3];
        for a in 0..3 {
            origin[a] = (0..cart.coords[a]).map(|c| local_extent(params.n, dims[a], c)).sum();
        }
        let mut src = Block::zeros(ext[0], ext[1], ext[2]);
        let n = params.n as f64;
        let amp = params.amplitude;
        set_equilibrium(&mut src, |i, j, k| {
            let x = (origin[0] + i) as f64 / n * std::f64::consts::TAU;
            let y = (origin[1] + j) as f64 / n * std::f64::consts::TAU;
            let z = (origin[2] + k) as f64 / n * std::f64::consts::TAU;
            // Orszag–Tang-like vortex tubes threaded by a magnetic field.
            Moments {
                rho: 1.0,
                mom: [-amp * y.sin(), amp * x.sin(), amp * 0.5 * (x + y).sin()],
                b: [-amp * y.sin(), amp * (2.0 * x).sin(), amp * 0.5 * z.cos()],
            }
        });
        let dst = Block::zeros(ext[0], ext[1], ext[2]);
        Simulation {
            threads: Threads::from_config(params.threads),
            params,
            cart,
            origin,
            src,
            dst,
            points_updated: 0,
            halo_bytes_sent: 0,
        }
    }

    /// Read access to the current (source) block.
    pub fn block(&self) -> &Block {
        &self.src
    }

    /// Advances one timestep: halo exchange, then fused collide+stream.
    pub fn step(&mut self, comm: &Comm) {
        self.halo_bytes_sent += exchange_halos(comm, &self.cart, &mut self.src) as u64;
        let pts = step_with(
            &self.threads,
            &self.src,
            &mut self.dst,
            self.params.omega,
            self.params.omega_m,
        );
        self.points_updated += pts as u64;
        std::mem::swap(&mut self.src, &mut self.dst);
    }

    /// Runs `steps` timesteps.
    pub fn run(&mut self, comm: &Comm, steps: usize) {
        for _ in 0..steps {
            self.step(comm);
        }
    }

    /// Total flops this rank has executed.
    pub fn flops(&self) -> f64 {
        self.points_updated as f64 * FLOPS_PER_POINT
    }

    /// Local (unreduced) diagnostics.
    pub fn local_diagnostics(&self) -> Diagnostics {
        let mut d = Diagnostics::default();
        for k in 0..self.src.nz {
            for j in 0..self.src.ny {
                for i in 0..self.src.nx {
                    let m = self.src.moments(i, j, k);
                    d.mass += m.rho;
                    let u = m.velocity();
                    for a in 0..3 {
                        d.momentum[a] += m.mom[a];
                        d.flux[a] += m.b[a];
                    }
                    d.kinetic_energy += 0.5 * m.rho * (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
                    d.magnetic_energy +=
                        0.5 * (m.b[0] * m.b[0] + m.b[1] * m.b[1] + m.b[2] * m.b[2]);
                }
            }
        }
        d
    }

    /// Globally reduced diagnostics.
    pub fn diagnostics(&self, comm: &mut Comm) -> Diagnostics {
        let d = self.local_diagnostics();
        let mut v = vec![
            d.mass,
            d.momentum[0],
            d.momentum[1],
            d.momentum[2],
            d.flux[0],
            d.flux[1],
            d.flux[2],
            d.kinetic_energy,
            d.magnetic_energy,
        ];
        comm.allreduce_f64(msim::ReduceOp::Sum, &mut v);
        Diagnostics {
            mass: v[0],
            momentum: [v[1], v[2], v[3]],
            flux: [v[4], v[5], v[6]],
            kinetic_energy: v[7],
            magnetic_energy: v[8],
        }
    }

    /// The z-component of vorticity ω_z = ∂u_y/∂x − ∂u_x/∂y on the local
    /// block's `k`-th xy-plane (central differences, local points only) —
    /// the quantity contoured in the paper's Figure 6.
    pub fn vorticity_z_plane(&self, k: usize) -> Vec<f64> {
        let (nx, ny) = (self.src.nx, self.src.ny);
        let vel = |i: usize, j: usize| -> [f64; 3] { self.src.moments(i, j, k).velocity() };
        let mut out = vec![0.0; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                let ip = (i + 1) % nx;
                let im = (i + nx - 1) % nx;
                let jp = (j + 1) % ny;
                let jm = (j + ny - 1) % ny;
                let duy_dx = (vel(ip, j)[1] - vel(im, j)[1]) * 0.5;
                let dux_dy = (vel(i, jp)[0] - vel(i, jm)[0]) * 0.5;
                out[j * nx + i] = duy_dx - dux_dy;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_steps(n: usize, procs: usize, steps: usize) -> Vec<Diagnostics> {
        msim::run(procs, move |comm| {
            let params = SimParams { n, ..Default::default() };
            let mut sim = Simulation::new(params, comm.rank(), comm.size());
            sim.run(comm, steps);
            sim.diagnostics(comm)
        })
        .unwrap()
    }

    #[test]
    fn serial_run_conserves_invariants() {
        let d0 = run_steps(8, 1, 0)[0];
        let d5 = run_steps(8, 1, 5)[0];
        assert!((d0.mass - d5.mass).abs() < 1e-9 * d0.mass, "mass drift");
        for a in 0..3 {
            assert!((d0.momentum[a] - d5.momentum[a]).abs() < 1e-9, "momentum {a}");
            assert!((d0.flux[a] - d5.flux[a]).abs() < 1e-9, "flux {a}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        // The decomposition must not change the physics: diagnostics after
        // several steps must agree to round-off between 1 and 8 ranks.
        let serial = run_steps(8, 1, 4)[0];
        let par = run_steps(8, 8, 4)[0];
        assert!((serial.mass - par.mass).abs() < 1e-9);
        assert!(
            (serial.kinetic_energy - par.kinetic_energy).abs()
                < 1e-10 * serial.kinetic_energy.max(1e-30)
        );
        assert!(
            (serial.magnetic_energy - par.magnetic_energy).abs()
                < 1e-10 * serial.magnetic_energy.max(1e-30)
        );
    }

    #[test]
    fn energy_decays_under_resistive_relaxation() {
        // With ω < 2 the scheme is dissipative: total (kinetic + magnetic)
        // energy must not grow.
        let d0 = run_steps(12, 1, 0)[0];
        let d = run_steps(12, 1, 20)[0];
        let e0 = d0.kinetic_energy + d0.magnetic_energy;
        let e1 = d.kinetic_energy + d.magnetic_energy;
        assert!(e1 <= e0 * (1.0 + 1e-12), "energy grew: {e0} -> {e1}");
        assert!(e1 > 0.0, "energy vanished entirely");
    }

    #[test]
    fn flop_accounting_matches_grid_size() {
        msim::run(2, |comm| {
            let params = SimParams { n: 8, ..Default::default() };
            let mut sim = Simulation::new(params, comm.rank(), comm.size());
            sim.run(comm, 3);
            // Each rank updates its own block 3 times.
            let pts = (sim.block().nx * sim.block().ny * sim.block().nz) as u64 * 3;
            assert_eq!(sim.points_updated, pts);
            assert!(sim.flops() > 0.0);
            assert!(sim.halo_bytes_sent > 0);
        })
        .unwrap();
    }

    #[test]
    fn vorticity_plane_has_structure() {
        let params = SimParams { n: 12, ..Default::default() };
        msim::run(1, move |comm| {
            let mut sim = Simulation::new(params, comm.rank(), comm.size());
            sim.run(comm, 2);
            let w = sim.vorticity_z_plane(0);
            let max = w.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
            assert!(max > 1e-6, "initial vortex tubes should induce vorticity");
        })
        .unwrap();
    }
}
