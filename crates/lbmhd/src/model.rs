//! Analytic workload model for Table 5's configurations.
//!
//! Table 5 runs LBMHD3D at concurrencies of 16–2048 processors on grids of
//! 256³–1024³ — far beyond what a thread-per-rank simulation can execute
//! directly. This module computes the per-processor workload profile from
//! the decomposition arithmetic; its counts are validated against the
//! *instrumented real runs* at small scale (see the `model_matches_
//! instrumented_run` test), which is what licenses the extrapolation.

use std::sync::OnceLock;

use hec_arch::{CommEvent, PhaseBinding, PhaseProfile, WorkloadProfile};
use hec_core::probe::{self, Capture};

use crate::collide::{BYTES_PER_POINT, CONCURRENT_STREAMS, FLOPS_PER_POINT};
use crate::decomp::{local_extent, processor_grid};
use crate::lattice::Q;
use crate::sim::{SimParams, Simulation};

/// Workload profile for one timestep of LBMHD3D on a `n³` global grid over
/// `procs` ranks.
pub fn workload(n: usize, procs: usize) -> WorkloadProfile {
    let dims = processor_grid(procs);
    // Rank 0 owns the largest block — the pacing rank.
    let (lx, ly, lz) =
        (local_extent(n, dims[0], 0), local_extent(n, dims[1], 0), local_extent(n, dims[2], 0));
    let points = (lx * ly * lz) as f64;

    let mut w = WorkloadProfile::new("LBMHD3D", procs);

    let mut ph = PhaseProfile::new("fused collide+stream");
    ph.flops = points * FLOPS_PER_POINT;
    // The collision arithmetic is fully data-parallel (paper §5.1: "No
    // additional vectorization effort was required due to the data-parallel
    // nature of LBMHD"); the only scalar work is loop bookkeeping.
    ph.vector_fraction = 0.994;
    // The vectorized loop runs over the x extent of the local block.
    ph.avg_vector_length = lx as f64;
    ph.unit_stride_bytes = points * BYTES_PER_POINT;
    // The 26 shifted reads are still unit-stride but not cache-reusable at
    // these grid sizes.
    ph.cacheable_fraction = 0.05;
    ph.dense_fraction = 0.3; // long unrolled arithmetic blocks, few branches
    ph.working_set_bytes = points * BYTES_PER_POINT / 2.0;
    ph.concurrent_streams = CONCURRENT_STREAMS;
    // The (j, k) line loops are the streaming axis for the MSP compiler.
    ph.outer_parallelism = (ly * lz) as f64;
    w.phases.push(ph);

    // Halo exchange: six faces, each carrying all Q + 3Q distributions over
    // a padded face (the 3-sweep corner-propagating exchange).
    let face = |a: usize, b: usize| ((a + 2) * (b + 2)) as f64;
    let per_axis_bytes = [
        face(ly, lz) * (4 * Q) as f64 * 8.0,
        face(lx, lz) * (4 * Q) as f64 * 8.0,
        face(lx, ly) * (4 * Q) as f64 * 8.0,
    ];
    let axes_with_neighbors =
        (0..3).filter(|&a| dims[a] > 1).map(|a| per_axis_bytes[a]).collect::<Vec<_>>();
    if !axes_with_neighbors.is_empty() {
        let avg = axes_with_neighbors.iter().sum::<f64>() / axes_with_neighbors.len() as f64;
        w.comm.push(CommEvent::Halo {
            bytes: avg,
            neighbors: 2.0 * axes_with_neighbors.len() as f64,
        });
    }
    w
}

/// Bytes a rank sends per step under the decomposition for (`n`, `procs`) —
/// the analytic counterpart of `Simulation::halo_bytes_sent`.
pub fn halo_bytes_per_step(n: usize, procs: usize) -> f64 {
    let dims = processor_grid(procs);
    let (lx, ly, lz) =
        (local_extent(n, dims[0], 0), local_extent(n, dims[1], 0), local_extent(n, dims[2], 0));
    let face = |a: usize, b: usize| ((a + 2) * (b + 2)) as f64;
    let per_axis = [face(ly, lz), face(lx, lz), face(lx, ly)];
    (0..3).filter(|&a| dims[a] > 1).map(|a| 2.0 * per_axis[a] * (4 * Q) as f64 * 8.0).sum()
}

/// The (concurrency, grid size) pairs of paper Table 5.
pub const TABLE5_CONFIGS: [(usize, usize); 6] =
    [(16, 256), (64, 256), (256, 512), (512, 512), (1024, 1024), (2048, 1024)];

/// One small instrumented run (one rank, an 8³ block, one fused
/// collide+stream step), cached process-wide. The per-point rates it
/// measures are exactly [`FLOPS_PER_POINT`] / [`BYTES_PER_POINT`] — the
/// validation tests pin that — so the measured Table 5 profiles equal
/// the analytic ones.
pub fn calibration_capture() -> &'static Capture {
    static CAP: OnceLock<Capture> = OnceLock::new();
    CAP.get_or_init(|| {
        let (_, cap) = probe::capture(|| {
            msim::run(1, |comm| {
                let mut sim = Simulation::new(
                    SimParams { n: 8, ..Default::default() },
                    comm.rank(),
                    comm.size(),
                );
                sim.step(comm);
            })
            .expect("LBMHD calibration run failed");
        });
        cap
    })
}

/// [`workload`] with the collide+stream phase's extensive fields
/// replaced by measured per-point rates from [`calibration_capture`],
/// scaled to the pacing rank's block of the (`n`, `procs`)
/// configuration.
pub fn measured_workload(n: usize, procs: usize) -> WorkloadProfile {
    let cap = calibration_capture();
    let mut w = workload(n, procs);
    let dims = processor_grid(procs);
    let points = (local_extent(n, dims[0], 0)
        * local_extent(n, dims[1], 0)
        * local_extent(n, dims[2], 0)) as f64;
    let units = cap.get("lbmhd/collide+stream").vector_iters as f64;
    w.apply_capture(
        cap,
        &[PhaseBinding::extensive("lbmhd/collide+stream", "fused collide+stream", points / units)],
    )
    .expect("LBMHD calibration capture is incomplete");
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimParams, Simulation};

    #[test]
    fn model_matches_instrumented_run() {
        // The analytic halo-byte count must equal what the real simulation
        // actually sent through msim.
        for procs in [2usize, 4, 8] {
            let n = 8;
            let sent = msim::run(procs, move |comm| {
                let mut sim = Simulation::new(
                    SimParams { n, ..Default::default() },
                    comm.rank(),
                    comm.size(),
                );
                sim.step(comm);
                (sim.cart.coords, sim.halo_bytes_sent)
            })
            .unwrap();
            // Compare rank 0 (the model's pacing rank).
            let want = halo_bytes_per_step(n, procs);
            assert_eq!(sent[0].1 as f64, want, "procs={procs}");
        }
    }

    #[test]
    fn model_flops_match_instrumented_run() {
        let n = 8;
        let procs = 4;
        let flops = msim::run(procs, move |comm| {
            let mut sim =
                Simulation::new(SimParams { n, ..Default::default() }, comm.rank(), comm.size());
            sim.step(comm);
            sim.flops()
        })
        .unwrap();
        let w = workload(n, procs);
        assert_eq!(flops[0], w.phases[0].flops);
    }

    #[test]
    fn measured_workload_equals_the_analytic_oracle() {
        // The measured per-point rates are exactly the audited constants,
        // so the measured profile reproduces the analytic one bit for bit.
        for &(procs, n) in &TABLE5_CONFIGS[..2] {
            let a = workload(n, procs);
            let m = measured_workload(n, procs);
            assert_eq!(m.phases[0].flops, a.phases[0].flops, "flops at P={procs}");
            assert_eq!(
                m.phases[0].unit_stride_bytes, a.phases[0].unit_stride_bytes,
                "bytes at P={procs}"
            );
            assert_eq!(m.phases[0].avg_vector_length, a.phases[0].avg_vector_length);
            assert_eq!(m.comm, a.comm);
        }
    }

    #[test]
    fn weak_scaling_keeps_per_rank_work_flat() {
        // Table 5 roughly doubles the grid with 8× the processors; the
        // per-rank point count across its configs stays within a factor ~4.
        let loads: Vec<f64> =
            TABLE5_CONFIGS.iter().map(|&(p, n)| workload(n, p).phases[0].flops).collect();
        let (mn, mx) = loads.iter().fold((f64::MAX, 0.0f64), |(a, b), &x| (a.min(x), b.max(x)));
        assert!(mx / mn < 8.0, "per-rank work varies too much: {loads:?}");
    }

    #[test]
    fn vector_length_tracks_block_extent() {
        let w = workload(256, 16);
        // 16 ranks → grid [4,2,2] wait: processor_grid(16); local x extent.
        assert!(w.phases[0].avg_vector_length >= 64.0);
        let w2 = workload(256, 2048);
        assert!(w2.phases[0].avg_vector_length < w.phases[0].avg_vector_length * 1.01);
    }

    #[test]
    fn single_rank_has_no_network_events() {
        let w = workload(64, 1);
        assert!(w.comm.is_empty());
        assert_eq!(halo_bytes_per_step(64, 1), 0.0);
    }
}
