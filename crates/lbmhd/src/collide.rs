//! The fused collide+stream kernel.
//!
//! Following Wellein et al. (the optimization the paper adopted in §5), the
//! stream and collide phases are combined: for each cell, the post-stream
//! distributions are *gathered* from the upwind neighbors (`x − cᵢ`), the
//! macroscopic moments and MHD equilibria are computed, and the relaxed
//! values are written to the destination lattice. Only block-boundary
//! points ever get copied (by the halo exchange).
//!
//! Physics: Dellar's lattice kinetic MHD scheme. The scalar distributions
//! relax toward
//!
//! ```text
//! fᵢ^eq = wᵢ [ ρ + 3 cᵢ·(ρu) + 9/2 cᵢᵀΠcᵢ − 3/2 tr Π ],
//! Π    = ρuu + (|B|²/2) I − BB        (Maxwell stress included)
//! ```
//!
//! and the vector (magnetic) distributions toward
//!
//! ```text
//! gᵢ^eq = wᵢ [ B + 3 ( (cᵢ·u) B − (cᵢ·B) u ) ],
//! ```
//!
//! whose first moment is the induction-equation flux `uB − Bu`.

use hec_core::pool::Threads;
use hec_core::probe::{self, Counters};

use crate::lattice::{C, Q, W};
use crate::state::Block;

/// Flops per lattice point of the fused kernel, from the audited count
/// below (moment gather 158, point-local prep 53, and 44 per direction for
/// equilibria+relaxation). This is the "valid baseline flop-count" used for
/// the Gflop/s figures, exactly as the paper normalizes its rates.
pub const FLOPS_PER_POINT: f64 = point_flops();

const fn point_flops() -> f64 {
    // Moment gather: ρ (26 adds) + ρu (54: one add per nonzero cᵢ component
    // over all i) + B (78: 26 adds × 3 components).
    let gather = 26.0 + 54.0 + 78.0;
    // Point prep: 1/ρ (1) + u (3) + u·u (5) + B·B (5) + Π (27: six unique
    // components at ~4 flops + 3 diagonal adds) + tr Π (2) + 3/2 & 9/2
    // scalings (2) + ω blends prep (8).
    let prep = 53.0;
    // Per direction: cᵢ·u (2) + cᵢ·B (2) + cᵢ·ρu (2) + cᵢᵀΠcᵢ (8) + f^eq
    // assembly (5) + f relax (3) + g^eq 3 components (13) + g relax (9).
    let per_dir = 44.0;
    gather + prep + per_dir * Q as f64
}

/// Bytes of lattice data read+written per point per step: 27 scalar + 81
/// vector-component doubles in, the same out.
pub const BYTES_PER_POINT: f64 = (Q as f64) * 4.0 * 2.0 * 8.0;

/// Number of concurrent unit-stride streams the kernel touches
/// (27 f-reads + 81 g-reads + 27 f-writes + 81 g-writes).
pub const CONCURRENT_STREAMS: f64 = (Q as f64) * 4.0 * 2.0;

/// Computes the discrete MHD equilibria for macroscopic state
/// `(ρ, u, B)`. Returns `(f_eq, g_eq)`.
pub fn equilibrium(rho: f64, u: [f64; 3], b: [f64; 3]) -> ([f64; Q], [[f64; 3]; Q]) {
    let mom = [rho * u[0], rho * u[1], rho * u[2]];
    let usqr = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    let bsqr = b[0] * b[0] + b[1] * b[1] + b[2] * b[2];
    // Π = ρuu + (B²/2)I − BB
    let mut pi = [[0.0f64; 3]; 3];
    for a in 0..3 {
        for c in 0..3 {
            pi[a][c] = rho * u[a] * u[c] - b[a] * b[c];
        }
        pi[a][a] += 0.5 * bsqr;
    }
    let tr_pi = rho * usqr + 0.5 * bsqr;

    let mut feq = [0.0f64; Q];
    let mut geq = [[0.0f64; 3]; Q];
    for i in 0..Q {
        let c = [C[i][0] as f64, C[i][1] as f64, C[i][2] as f64];
        let cmom = c[0] * mom[0] + c[1] * mom[1] + c[2] * mom[2];
        let cu = c[0] * u[0] + c[1] * u[1] + c[2] * u[2];
        let cb = c[0] * b[0] + c[1] * b[1] + c[2] * b[2];
        let mut cpc = 0.0;
        for a in 0..3 {
            for d in 0..3 {
                cpc += c[a] * pi[a][d] * c[d];
            }
        }
        feq[i] = W[i] * (rho + 3.0 * cmom + 4.5 * cpc - 1.5 * tr_pi);
        for a in 0..3 {
            geq[i][a] = W[i] * (b[a] + 3.0 * (cu * b[a] - cb * u[a]));
        }
    }
    (feq, geq)
}

/// One fused collide+stream step: reads `src` (whose halo must be current)
/// and writes the interior of `dst`. Returns the number of interior points
/// updated (× [`FLOPS_PER_POINT`] gives the step's flop count).
///
/// Resolves the worker count from the environment; [`step_with`] takes an
/// explicit [`Threads`] handle.
pub fn step(src: &Block, dst: &mut Block, omega: f64, omega_m: f64) -> usize {
    step_with(&Threads::from_env(), src, dst, omega, omega_m)
}

/// [`step`] with an explicit worker handle. Each (j,k) lattice line is
/// computed independently and committed in fixed line order, so the result
/// is bitwise identical for every worker count.
pub fn step_with(
    threads: &Threads,
    src: &Block,
    dst: &mut Block,
    omega: f64,
    omega_m: f64,
) -> usize {
    assert_eq!((src.nx, src.ny, src.nz), (dst.nx, dst.ny, dst.nz));
    let (nx, ny, nz) = (src.nx, src.ny, src.nz);
    let px = src.px();
    let pxy = src.px() * src.py();

    // Upwind gather offsets: the value streaming into x along direction i
    // comes from x − cᵢ.
    let mut offs = [0isize; Q];
    for i in 0..Q {
        offs[i] = -(C[i][0] as isize
            + (C[i][1] as isize) * px as isize
            + (C[i][2] as isize) * pxy as isize);
    }

    // Split destination arrays into per-direction mutable borrows.
    let mut dst_f: Vec<&mut Vec<f64>> = dst.f.iter_mut().collect();
    let mut dst_g: Vec<&mut Vec<f64>> = dst.g.iter_mut().collect();

    // Parallelize over z-slabs (the OpenMP axis of the original code);
    // each (j,k) line runs the vectorizable x loop.
    let lines: Vec<(usize, usize)> = (0..nz).flat_map(|k| (0..ny).map(move |j| (j, k))).collect();

    // Collect per-line updates, then write back. To keep the hot loop
    // allocation-free we process lines in parallel into freshly computed
    // rows and then commit serially per direction.
    let rows: Vec<(usize, Vec<[f64; Q]>, Vec<[[f64; 3]; Q]>)> =
        threads.par_map(&lines, |&(j, k)| {
            let base = src.idx(1, j + 1, k + 1);
            let mut frow = vec![[0.0f64; Q]; nx];
            let mut grow = vec![[[0.0f64; 3]; Q]; nx];
            for i in 0..nx {
                let ix = base + i;
                // Gather post-stream values from upwind neighbors.
                let mut fg = [0.0f64; Q];
                let mut gg = [[0.0f64; 3]; Q];
                for q in 0..Q {
                    let up = (ix as isize + offs[q]) as usize;
                    fg[q] = src.f[q][up];
                    for a in 0..3 {
                        gg[q][a] = src.g[q * 3 + a][up];
                    }
                }
                // Moments.
                let mut rho = 0.0;
                let mut mom = [0.0f64; 3];
                let mut b = [0.0f64; 3];
                for q in 0..Q {
                    rho += fg[q];
                    for a in 0..3 {
                        mom[a] += fg[q] * C[q][a] as f64;
                        b[a] += gg[q][a];
                    }
                }
                let inv_rho = 1.0 / rho;
                let u = [mom[0] * inv_rho, mom[1] * inv_rho, mom[2] * inv_rho];
                let (feq, geq) = equilibrium(rho, u, b);
                for q in 0..Q {
                    frow[i][q] = fg[q] + omega * (feq[q] - fg[q]);
                    for a in 0..3 {
                        grow[i][q][a] = gg[q][a] + omega_m * (geq[q][a] - gg[q][a]);
                    }
                }
            }
            (base, frow, grow)
        });

    for (base, frow, grow) in rows {
        for i in 0..nx {
            for q in 0..Q {
                dst_f[q][base + i] = frow[i][q];
                for a in 0..3 {
                    dst_g[q * 3 + a][base + i] = grow[i][q][a];
                }
            }
        }
    }

    let points = (nx * ny * nz) as u64;
    // One x-line per (j,k) pair is the vectorizable loop; totals derive
    // from the lattice extents, never from worker chunking.
    probe::count(
        "lbmhd/collide+stream",
        Counters {
            flops: points * FLOPS_PER_POINT as u64,
            unit_stride_bytes: points * BYTES_PER_POINT as u64,
            vector_iters: points,
            vector_loops: lines.len() as u64,
            ..Default::default()
        },
    );

    nx * ny * nz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{set_equilibrium, Moments};

    /// Fill src halo by periodic wrap from its own interior (serial helper).
    fn wrap_halo(b: &mut Block) {
        let (px, py, pz) = (b.px(), b.py(), b.pz());
        let (nx, ny, nz) = (b.nx, b.ny, b.nz);
        let wrap = |v: usize, n: usize| -> usize {
            if v == 0 {
                n
            } else if v == n + 1 {
                1
            } else {
                v
            }
        };
        for arr_ix in 0..(Q + Q * 3) {
            for k in 0..pz {
                for j in 0..py {
                    for i in 0..px {
                        let (wi, wj, wk) = (wrap(i, nx), wrap(j, ny), wrap(k, nz));
                        if (wi, wj, wk) != (i, j, k) {
                            let (src_ix, dst_ix) =
                                (wi + px * (wj + py * wk), i + px * (j + py * k));
                            if arr_ix < Q {
                                b.f[arr_ix][dst_ix] = b.f[arr_ix][src_ix];
                            } else {
                                b.g[arr_ix - Q][dst_ix] = b.g[arr_ix - Q][src_ix];
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn equilibrium_reproduces_moments() {
        let rho = 1.05;
        let u = [0.03, -0.02, 0.01];
        let b = [0.04, 0.05, -0.02];
        let (feq, geq) = equilibrium(rho, u, b);
        let s: f64 = feq.iter().sum();
        assert!((s - rho).abs() < 1e-13, "density moment");
        for a in 0..3 {
            let m: f64 = (0..Q).map(|i| feq[i] * C[i][a] as f64).sum();
            assert!((m - rho * u[a]).abs() < 1e-13, "momentum moment {a}");
            let bb: f64 = (0..Q).map(|i| geq[i][a]).sum();
            assert!((bb - b[a]).abs() < 1e-13, "B moment {a}");
        }
    }

    #[test]
    fn equilibrium_second_moment_is_maxwell_stress() {
        let rho = 1.0;
        let u = [0.05, 0.02, -0.03];
        let b = [0.06, -0.01, 0.02];
        let bsqr: f64 = b.iter().map(|x| x * x).sum();
        let (feq, _) = equilibrium(rho, u, b);
        for a in 0..3 {
            for c in 0..3 {
                let m: f64 = (0..Q).map(|i| feq[i] * (C[i][a] * C[i][c]) as f64).sum();
                let mut want = rho * u[a] * u[c] - b[a] * b[c];
                if a == c {
                    want += rho / 3.0 + 0.5 * bsqr; // pressure + magnetic
                }
                assert!((m - want).abs() < 1e-12, "stress ({a},{c}): {m} vs {want}");
            }
        }
    }

    #[test]
    fn magnetic_equilibrium_first_moment_is_induction_flux() {
        let rho = 1.0;
        let u = [0.04, -0.01, 0.02];
        let b = [0.03, 0.05, -0.02];
        let (_, geq) = equilibrium(rho, u, b);
        for a in 0..3 {
            for c in 0..3 {
                let m: f64 = (0..Q).map(|i| geq[i][a] * C[i][c] as f64).sum();
                let want = u[c] * b[a] - b[c] * u[a];
                assert!((m - want).abs() < 1e-13, "induction flux ({a},{c})");
            }
        }
    }

    #[test]
    fn uniform_equilibrium_is_a_fixed_point() {
        let m = Moments { rho: 1.0, mom: [0.0; 3], b: [0.02, -0.03, 0.05] };
        let mut src = Block::zeros(4, 4, 4);
        set_equilibrium(&mut src, |_, _, _| m);
        wrap_halo(&mut src);
        let mut dst = Block::zeros(4, 4, 4);
        step(&src, &mut dst, 1.0, 1.0);
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    let got = dst.moments(i, j, k);
                    assert!((got.rho - 1.0).abs() < 1e-12);
                    for a in 0..3 {
                        assert!(got.mom[a].abs() < 1e-12);
                        assert!((got.b[a] - m.b[a]).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn step_conserves_mass_momentum_and_flux() {
        // Random-ish smooth initial condition; conservation must hold to
        // round-off under periodic wrap.
        let n = 6;
        let mut src = Block::zeros(n, n, n);
        set_equilibrium(&mut src, |i, j, k| {
            let x = i as f64 / n as f64 * std::f64::consts::TAU;
            let y = j as f64 / n as f64 * std::f64::consts::TAU;
            let z = k as f64 / n as f64 * std::f64::consts::TAU;
            Moments {
                rho: 1.0 + 0.02 * x.sin() * y.cos(),
                mom: [0.03 * y.sin(), -0.02 * z.sin(), 0.01 * x.cos()],
                b: [0.04 * z.cos(), 0.03 * x.sin(), -0.02 * y.sin()],
            }
        });
        let before = src.totals();
        let mut dst = Block::zeros(n, n, n);
        wrap_halo(&mut src);
        step(&src, &mut dst, 1.8, 1.2);
        let after = dst.totals();
        assert!((before.rho - after.rho).abs() < 1e-10, "mass");
        for a in 0..3 {
            assert!((before.mom[a] - after.mom[a]).abs() < 1e-10, "momentum {a}");
            assert!((before.b[a] - after.b[a]).abs() < 1e-10, "total B {a}");
        }
    }

    #[test]
    fn pure_streaming_is_a_permutation() {
        // With ω = 0 the update is pure streaming: the multiset of f values
        // must be exactly preserved (no element lost or duplicated).
        let n = 4;
        let mut src = Block::zeros(n, n, n);
        // Distinct values everywhere.
        for q in 0..Q {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let ix = src.interior_idx(i, j, k);
                        src.f[q][ix] = (q * 1000 + i * 100 + j * 10 + k) as f64;
                    }
                }
            }
        }
        wrap_halo(&mut src);
        let mut dst = Block::zeros(n, n, n);
        step(&src, &mut dst, 0.0, 0.0);
        for q in 0..Q {
            let mut a: Vec<f64> = (0..n)
                .flat_map(|k| (0..n).flat_map(move |j| (0..n).map(move |i| (i, j, k))))
                .map(|(i, j, k)| src.f[q][src.interior_idx(i, j, k)])
                .collect();
            let mut b: Vec<f64> = (0..n)
                .flat_map(|k| (0..n).flat_map(move |j| (0..n).map(move |i| (i, j, k))))
                .map(|(i, j, k)| dst.f[q][dst.interior_idx(i, j, k)])
                .collect();
            a.sort_by(f64::total_cmp);
            b.sort_by(f64::total_cmp);
            assert_eq!(a, b, "direction {q} not a permutation");
        }
    }

    #[test]
    fn flop_constant_is_audited_value() {
        assert_eq!(FLOPS_PER_POINT, 26.0 + 54.0 + 78.0 + 53.0 + 44.0 * 27.0);
        assert!(FLOPS_PER_POINT > 1300.0 && FLOPS_PER_POINT < 1500.0);
    }
}
