//! The fused collide+stream kernel.
//!
//! Following Wellein et al. (the optimization the paper adopted in §5), the
//! stream and collide phases are combined: for each cell, the post-stream
//! distributions are *gathered* from the upwind neighbors (`x − cᵢ`), the
//! macroscopic moments and MHD equilibria are computed, and the relaxed
//! values are written to the destination lattice. Only block-boundary
//! points ever get copied (by the halo exchange).
//!
//! Physics: Dellar's lattice kinetic MHD scheme. The scalar distributions
//! relax toward
//!
//! ```text
//! fᵢ^eq = wᵢ [ ρ + 3 cᵢ·(ρu) + 9/2 cᵢᵀΠcᵢ − 3/2 tr Π ],
//! Π    = ρuu + (|B|²/2) I − BB        (Maxwell stress included)
//! ```
//!
//! and the vector (magnetic) distributions toward
//!
//! ```text
//! gᵢ^eq = wᵢ [ B + 3 ( (cᵢ·u) B − (cᵢ·B) u ) ],
//! ```
//!
//! whose first moment is the induction-equation flux `uB − Bu`.
//!
//! ## Kernel structure
//!
//! The hot path is written the way the paper's §5.1 describes the vector
//! ports: the direction loop is *outside*, the grid loop is *inside*, and
//! every inner loop is a unit-stride f64 stream over one contiguous lane
//! of the flat [`Block`] storage. Each (j,k) lattice line is processed in
//! three phases over per-line scratch lanes — moment gather (Q streaming
//! passes), point-local prep (1/ρ, u, Π, tr Π), and per-direction
//! equilibrium+relax+write — so the autovectorizer sees plain
//! `for i { a[i] = b[i] op c[i] }` loops with no struct gathers.
//!
//! Every floating-point chain replicates [`step_reference`] exactly
//! (including multiplications by cᵢ components that are ±0 — eliding them
//! could flip a zero's sign), so the lane kernel is **bitwise identical**
//! to the scalar reference, at every worker count. Parallelism is over
//! z-slabs: the destination lanes are pre-split at slab boundaries into
//! disjoint `&mut` windows, so workers write in place with no per-call
//! row materialization and no serial commit pass.

use hec_core::pool::Threads;
use hec_core::probe::{self, Counters};

use crate::lattice::{C, Q, W};
use crate::state::Block;

/// Flops per lattice point of the fused kernel, from the audited count
/// below (moment gather 158, point-local prep 53, and 44 per direction for
/// equilibria+relaxation). This is the "valid baseline flop-count" used for
/// the Gflop/s figures, exactly as the paper normalizes its rates.
pub const FLOPS_PER_POINT: f64 = point_flops();

const fn point_flops() -> f64 {
    // Moment gather: ρ (26 adds) + ρu (54: one add per nonzero cᵢ component
    // over all i) + B (78: 26 adds × 3 components).
    let gather = 26.0 + 54.0 + 78.0;
    // Point prep: 1/ρ (1) + u (3) + u·u (5) + B·B (5) + Π (27: six unique
    // components at ~4 flops + 3 diagonal adds) + tr Π (2) + 3/2 & 9/2
    // scalings (2) + ω blends prep (8).
    let prep = 53.0;
    // Per direction: cᵢ·u (2) + cᵢ·B (2) + cᵢ·ρu (2) + cᵢᵀΠcᵢ (8) + f^eq
    // assembly (5) + f relax (3) + g^eq 3 components (13) + g relax (9).
    let per_dir = 44.0;
    gather + prep + per_dir * Q as f64
}

/// Bytes of lattice data read+written per point per step: 27 scalar + 81
/// vector-component doubles in, the same out.
pub const BYTES_PER_POINT: f64 = (Q as f64) * 4.0 * 2.0 * 8.0;

/// Number of concurrent unit-stride streams the kernel touches
/// (27 f-reads + 81 g-reads + 27 f-writes + 81 g-writes).
pub const CONCURRENT_STREAMS: f64 = (Q as f64) * 4.0 * 2.0;

/// Computes the discrete MHD equilibria for macroscopic state
/// `(ρ, u, B)`. Returns `(f_eq, g_eq)`.
pub fn equilibrium(rho: f64, u: [f64; 3], b: [f64; 3]) -> ([f64; Q], [[f64; 3]; Q]) {
    let mom = [rho * u[0], rho * u[1], rho * u[2]];
    let usqr = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    let bsqr = b[0] * b[0] + b[1] * b[1] + b[2] * b[2];
    // Π = ρuu + (B²/2)I − BB
    let mut pi = [[0.0f64; 3]; 3];
    for a in 0..3 {
        for c in 0..3 {
            pi[a][c] = rho * u[a] * u[c] - b[a] * b[c];
        }
        pi[a][a] += 0.5 * bsqr;
    }
    let tr_pi = rho * usqr + 0.5 * bsqr;

    let mut feq = [0.0f64; Q];
    let mut geq = [[0.0f64; 3]; Q];
    for i in 0..Q {
        let c = [C[i][0] as f64, C[i][1] as f64, C[i][2] as f64];
        let cmom = c[0] * mom[0] + c[1] * mom[1] + c[2] * mom[2];
        let cu = c[0] * u[0] + c[1] * u[1] + c[2] * u[2];
        let cb = c[0] * b[0] + c[1] * b[1] + c[2] * b[2];
        let mut cpc = 0.0;
        for a in 0..3 {
            for d in 0..3 {
                cpc += c[a] * pi[a][d] * c[d];
            }
        }
        feq[i] = W[i] * (rho + 3.0 * cmom + 4.5 * cpc - 1.5 * tr_pi);
        for a in 0..3 {
            geq[i][a] = W[i] * (b[a] + 3.0 * (cu * b[a] - cb * u[a]));
        }
    }
    (feq, geq)
}

/// One fused collide+stream step: reads `src` (whose halo must be current)
/// and writes the interior of `dst`. Returns the number of interior points
/// updated (× [`FLOPS_PER_POINT`] gives the step's flop count).
///
/// Resolves the worker count from the environment; [`step_with`] takes an
/// explicit [`Threads`] handle.
pub fn step(src: &Block, dst: &mut Block, omega: f64, omega_m: f64) -> usize {
    step_with(&Threads::from_env(), src, dst, omega, omega_m)
}

/// Per-line scratch lanes, allocated once per worker slab (never per line
/// and never per call into the thread pool).
struct Scratch {
    rho: Vec<f64>,
    /// Gathered ρu during phase 1; overwritten with the recomputed ρ·u of
    /// `equilibrium` during phase 2 (the reference recomputes it, and the
    /// two differ in the last bit for some inputs — so must we).
    mom: [Vec<f64>; 3],
    b: [Vec<f64>; 3],
    u: [Vec<f64>; 3],
    /// Π, 9 lanes `a*3+d` of `nx` each. Π is mathematically symmetric but
    /// (ρ·u[a])·u[d] and (ρ·u[d])·u[a] can round differently, so all nine
    /// entries are kept exactly as the reference computes them.
    pi: Vec<f64>,
    tr_pi: Vec<f64>,
    cu: Vec<f64>,
    cb: Vec<f64>,
}

impl Scratch {
    fn new(nx: usize) -> Self {
        let l = || vec![0.0f64; nx];
        Scratch {
            rho: l(),
            mom: [l(), l(), l()],
            b: [l(), l(), l()],
            u: [l(), l(), l()],
            pi: vec![0.0f64; 9 * nx],
            tr_pi: l(),
            cu: l(),
            cb: l(),
        }
    }
}

/// Collide+stream one (j,k) line of `nx` points. `base` is the padded
/// linear index of the line's first interior point in `src`; `cut` is the
/// flat-lane offset where this worker's destination windows begin.
#[allow(clippy::too_many_arguments)]
fn collide_line(
    src: &Block,
    offs: &[isize; Q],
    base: usize,
    cut: usize,
    omega: f64,
    omega_m: f64,
    sf: &mut [&mut [f64]],
    sg: &mut [&mut [f64]],
    s: &mut Scratch,
) {
    let nx = src.nx;
    let lane = src.padded_len();

    // Phase 1 — moments. One unit-stride pass per direction; each
    // accumulator sees its contributions in the same q order as the
    // scalar reference, so the sums are bitwise identical.
    {
        let rho = &mut s.rho[..nx];
        let [m0, m1, m2] = &mut s.mom;
        let (m0, m1, m2) = (&mut m0[..nx], &mut m1[..nx], &mut m2[..nx]);
        let [b0, b1, b2] = &mut s.b;
        let (b0, b1, b2) = (&mut b0[..nx], &mut b1[..nx], &mut b2[..nx]);
        rho.fill(0.0);
        m0.fill(0.0);
        m1.fill(0.0);
        m2.fill(0.0);
        b0.fill(0.0);
        b1.fill(0.0);
        b2.fill(0.0);
        for q in 0..Q {
            let up = (base as isize + offs[q]) as usize;
            let c = [C[q][0] as f64, C[q][1] as f64, C[q][2] as f64];
            let fs = &src.f[q * lane + up..][..nx];
            // Multiplications by c components that are ±0 are kept: the
            // reference performs them, and x + f·0 is not always x bitwise
            // (the product's sign of zero matters).
            for i in 0..nx {
                let fv = fs[i];
                rho[i] += fv;
                m0[i] += fv * c[0];
                m1[i] += fv * c[1];
                m2[i] += fv * c[2];
            }
            let g0 = &src.g[(q * 3) * lane + up..][..nx];
            for i in 0..nx {
                b0[i] += g0[i];
            }
            let g1 = &src.g[(q * 3 + 1) * lane + up..][..nx];
            for i in 0..nx {
                b1[i] += g1[i];
            }
            let g2 = &src.g[(q * 3 + 2) * lane + up..][..nx];
            for i in 0..nx {
                b2[i] += g2[i];
            }
        }
    }

    // Phase 2 — point-local prep: 1/ρ, u, ρ·u (recomputed, see Scratch),
    // Π, tr Π. Still one unit-stride pass.
    {
        let pi = &mut s.pi;
        for i in 0..nx {
            let r = s.rho[i];
            let inv = 1.0 / r;
            let uu = [s.mom[0][i] * inv, s.mom[1][i] * inv, s.mom[2][i] * inv];
            let bv = [s.b[0][i], s.b[1][i], s.b[2][i]];
            let usqr = uu[0] * uu[0] + uu[1] * uu[1] + uu[2] * uu[2];
            let bsqr = bv[0] * bv[0] + bv[1] * bv[1] + bv[2] * bv[2];
            for a in 0..3 {
                s.u[a][i] = uu[a];
                s.mom[a][i] = r * uu[a];
                for d in 0..3 {
                    pi[(a * 3 + d) * nx + i] = r * uu[a] * uu[d] - bv[a] * bv[d];
                }
                pi[(a * 3 + a) * nx + i] += 0.5 * bsqr;
            }
            s.tr_pi[i] = r * usqr + 0.5 * bsqr;
        }
    }

    // Phase 3 — per direction: equilibrium, relax, write. The f pass also
    // stores cᵢ·u and cᵢ·B so the three g passes reuse the exact values.
    let off = base - cut;
    for q in 0..Q {
        let up = (base as isize + offs[q]) as usize;
        let c = [C[q][0] as f64, C[q][1] as f64, C[q][2] as f64];
        let w = W[q];
        {
            let fs = &src.f[q * lane + up..][..nx];
            let fd = &mut sf[q][off..off + nx];
            let (rho, tr_pi, pi) = (&s.rho, &s.tr_pi, &s.pi);
            let (m, u, b) = (&s.mom, &s.u, &s.b);
            let (cu_l, cb_l) = (&mut s.cu, &mut s.cb);
            for i in 0..nx {
                let cmom = c[0] * m[0][i] + c[1] * m[1][i] + c[2] * m[2][i];
                let cu = c[0] * u[0][i] + c[1] * u[1][i] + c[2] * u[2][i];
                let cb = c[0] * b[0][i] + c[1] * b[1][i] + c[2] * b[2][i];
                let mut cpc = 0.0;
                for a in 0..3 {
                    for d in 0..3 {
                        cpc += c[a] * pi[(a * 3 + d) * nx + i] * c[d];
                    }
                }
                let feq = w * (rho[i] + 3.0 * cmom + 4.5 * cpc - 1.5 * tr_pi[i]);
                let fg = fs[i];
                fd[i] = fg + omega * (feq - fg);
                cu_l[i] = cu;
                cb_l[i] = cb;
            }
        }
        for a in 0..3 {
            let gs = &src.g[(q * 3 + a) * lane + up..][..nx];
            let gd = &mut sg[q * 3 + a][off..off + nx];
            let (ba, ua) = (&s.b[a], &s.u[a]);
            let (cu_l, cb_l) = (&s.cu, &s.cb);
            for i in 0..nx {
                let geq = w * (ba[i] + 3.0 * (cu_l[i] * ba[i] - cb_l[i] * ua[i]));
                let gg = gs[i];
                gd[i] = gg + omega_m * (geq - gg);
            }
        }
    }
}

/// [`step`] with an explicit worker handle. Workers own disjoint z-slabs
/// whose destination lane windows are split off up front, so every worker
/// streams straight into `dst` — no intermediate rows, no commit pass —
/// and the result is bitwise identical for every worker count.
pub fn step_with(
    threads: &Threads,
    src: &Block,
    dst: &mut Block,
    omega: f64,
    omega_m: f64,
) -> usize {
    assert_eq!((src.nx, src.ny, src.nz), (dst.nx, dst.ny, dst.nz));
    let (nx, ny, nz) = (src.nx, src.ny, src.nz);
    let px = src.px();
    let pxy = src.px() * src.py();
    let lane = src.padded_len();

    // Upwind gather offsets: the value streaming into x along direction i
    // comes from x − cᵢ.
    let mut offs = [0isize; Q];
    for i in 0..Q {
        offs[i] = -(C[i][0] as isize
            + (C[i][1] as isize) * px as isize
            + (C[i][2] as isize) * pxy as isize);
    }

    // z-slab decomposition. A slab owning interior planes [k_lo, k_hi)
    // writes only flat-lane indices in [pxy·(k_lo+1), pxy·(k_hi+1)), so
    // cutting every lane at those offsets yields disjoint &mut windows.
    let nslabs = threads.workers().min(nz).max(1);
    let mut cut = Vec::with_capacity(nslabs + 1);
    cut.push(0usize);
    for sidx in 1..nslabs {
        cut.push(pxy * (sidx * nz / nslabs + 1));
    }
    cut.push(lane);

    let mut slab_f: Vec<Vec<&mut [f64]>> = (0..nslabs).map(|_| Vec::with_capacity(Q)).collect();
    let mut rest = &mut dst.f[..];
    for _q in 0..Q {
        for (sidx, f_slabs) in slab_f.iter_mut().enumerate() {
            let (head, tail) = rest.split_at_mut(cut[sidx + 1] - cut[sidx]);
            f_slabs.push(head);
            rest = tail;
        }
    }
    let mut slab_g: Vec<Vec<&mut [f64]>> = (0..nslabs).map(|_| Vec::with_capacity(Q * 3)).collect();
    let mut rest = &mut dst.g[..];
    for _qa in 0..Q * 3 {
        for (sidx, g_slabs) in slab_g.iter_mut().enumerate() {
            let (head, tail) = rest.split_at_mut(cut[sidx + 1] - cut[sidx]);
            g_slabs.push(head);
            rest = tail;
        }
    }

    let tasks: Vec<_> = slab_f
        .into_iter()
        .zip(slab_g)
        .enumerate()
        .map(|(sidx, (mut sf, mut sg))| {
            let k_lo = sidx * nz / nslabs;
            let k_hi = (sidx + 1) * nz / nslabs;
            let cut_s = cut[sidx];
            move || {
                let mut scratch = Scratch::new(nx);
                for k in k_lo..k_hi {
                    for j in 0..ny {
                        let base = 1 + px * (j + 1) + pxy * (k + 1);
                        collide_line(
                            src,
                            &offs,
                            base,
                            cut_s,
                            omega,
                            omega_m,
                            &mut sf,
                            &mut sg,
                            &mut scratch,
                        );
                    }
                }
            }
        })
        .collect();
    threads.par_tasks(tasks);

    let points = (nx * ny * nz) as u64;
    // One x-line per (j,k) pair is the vectorizable loop; totals derive
    // from the lattice extents, never from worker chunking.
    probe::count(
        "lbmhd/collide+stream",
        Counters {
            flops: points * FLOPS_PER_POINT as u64,
            unit_stride_bytes: points * BYTES_PER_POINT as u64,
            vector_iters: points,
            vector_loops: (ny * nz) as u64,
            ..Default::default()
        },
    );

    nx * ny * nz
}

/// The serial scalar reference: one point at a time, gather → moments →
/// [`equilibrium`] → relax, exactly as the pre-SoA kernel computed it.
/// The lane kernel in [`step_with`] must stay **bitwise identical** to
/// this (the equivalence is pinned by tests); it exists as the oracle and
/// is not instrumented.
pub fn step_reference(src: &Block, dst: &mut Block, omega: f64, omega_m: f64) -> usize {
    assert_eq!((src.nx, src.ny, src.nz), (dst.nx, dst.ny, dst.nz));
    let (nx, ny, nz) = (src.nx, src.ny, src.nz);
    let px = src.px();
    let pxy = src.px() * src.py();
    let lane = src.padded_len();

    let mut offs = [0isize; Q];
    for i in 0..Q {
        offs[i] = -(C[i][0] as isize
            + (C[i][1] as isize) * px as isize
            + (C[i][2] as isize) * pxy as isize);
    }

    for k in 0..nz {
        for j in 0..ny {
            let base = src.idx(1, j + 1, k + 1);
            for i in 0..nx {
                let ix = base + i;
                let mut fg = [0.0f64; Q];
                let mut gg = [[0.0f64; 3]; Q];
                for q in 0..Q {
                    let up = (ix as isize + offs[q]) as usize;
                    fg[q] = src.f[q * lane + up];
                    for a in 0..3 {
                        gg[q][a] = src.g[(q * 3 + a) * lane + up];
                    }
                }
                let mut rho = 0.0;
                let mut mom = [0.0f64; 3];
                let mut b = [0.0f64; 3];
                for q in 0..Q {
                    rho += fg[q];
                    for a in 0..3 {
                        mom[a] += fg[q] * C[q][a] as f64;
                        b[a] += gg[q][a];
                    }
                }
                let inv_rho = 1.0 / rho;
                let u = [mom[0] * inv_rho, mom[1] * inv_rho, mom[2] * inv_rho];
                let (feq, geq) = equilibrium(rho, u, b);
                for q in 0..Q {
                    dst.f[q * lane + ix] = fg[q] + omega * (feq[q] - fg[q]);
                    for a in 0..3 {
                        dst.g[(q * 3 + a) * lane + ix] =
                            gg[q][a] + omega_m * (geq[q][a] - gg[q][a]);
                    }
                }
            }
        }
    }
    nx * ny * nz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{set_equilibrium, Moments};

    /// Fill src halo by periodic wrap from its own interior (serial helper).
    fn wrap_halo(b: &mut Block) {
        let (px, py, pz) = (b.px(), b.py(), b.pz());
        let (nx, ny, nz) = (b.nx, b.ny, b.nz);
        let lane = b.padded_len();
        let wrap = |v: usize, n: usize| -> usize {
            if v == 0 {
                n
            } else if v == n + 1 {
                1
            } else {
                v
            }
        };
        for arr_ix in 0..(Q + Q * 3) {
            for k in 0..pz {
                for j in 0..py {
                    for i in 0..px {
                        let (wi, wj, wk) = (wrap(i, nx), wrap(j, ny), wrap(k, nz));
                        if (wi, wj, wk) != (i, j, k) {
                            let (src_ix, dst_ix) =
                                (wi + px * (wj + py * wk), i + px * (j + py * k));
                            if arr_ix < Q {
                                b.f[arr_ix * lane + dst_ix] = b.f[arr_ix * lane + src_ix];
                            } else {
                                let qa = arr_ix - Q;
                                b.g[qa * lane + dst_ix] = b.g[qa * lane + src_ix];
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn equilibrium_reproduces_moments() {
        let rho = 1.05;
        let u = [0.03, -0.02, 0.01];
        let b = [0.04, 0.05, -0.02];
        let (feq, geq) = equilibrium(rho, u, b);
        let s: f64 = feq.iter().sum();
        assert!((s - rho).abs() < 1e-13, "density moment");
        for a in 0..3 {
            let m: f64 = (0..Q).map(|i| feq[i] * C[i][a] as f64).sum();
            assert!((m - rho * u[a]).abs() < 1e-13, "momentum moment {a}");
            let bb: f64 = (0..Q).map(|i| geq[i][a]).sum();
            assert!((bb - b[a]).abs() < 1e-13, "B moment {a}");
        }
    }

    #[test]
    fn equilibrium_second_moment_is_maxwell_stress() {
        let rho = 1.0;
        let u = [0.05, 0.02, -0.03];
        let b = [0.06, -0.01, 0.02];
        let bsqr: f64 = b.iter().map(|x| x * x).sum();
        let (feq, _) = equilibrium(rho, u, b);
        for a in 0..3 {
            for c in 0..3 {
                let m: f64 = (0..Q).map(|i| feq[i] * (C[i][a] * C[i][c]) as f64).sum();
                let mut want = rho * u[a] * u[c] - b[a] * b[c];
                if a == c {
                    want += rho / 3.0 + 0.5 * bsqr; // pressure + magnetic
                }
                assert!((m - want).abs() < 1e-12, "stress ({a},{c}): {m} vs {want}");
            }
        }
    }

    #[test]
    fn magnetic_equilibrium_first_moment_is_induction_flux() {
        let rho = 1.0;
        let u = [0.04, -0.01, 0.02];
        let b = [0.03, 0.05, -0.02];
        let (_, geq) = equilibrium(rho, u, b);
        for a in 0..3 {
            for c in 0..3 {
                let m: f64 = (0..Q).map(|i| geq[i][a] * C[i][c] as f64).sum();
                let want = u[c] * b[a] - b[c] * u[a];
                assert!((m - want).abs() < 1e-13, "induction flux ({a},{c})");
            }
        }
    }

    #[test]
    fn uniform_equilibrium_is_a_fixed_point() {
        let m = Moments { rho: 1.0, mom: [0.0; 3], b: [0.02, -0.03, 0.05] };
        let mut src = Block::zeros(4, 4, 4);
        set_equilibrium(&mut src, |_, _, _| m);
        wrap_halo(&mut src);
        let mut dst = Block::zeros(4, 4, 4);
        step(&src, &mut dst, 1.0, 1.0);
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    let got = dst.moments(i, j, k);
                    assert!((got.rho - 1.0).abs() < 1e-12);
                    for a in 0..3 {
                        assert!(got.mom[a].abs() < 1e-12);
                        assert!((got.b[a] - m.b[a]).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn step_conserves_mass_momentum_and_flux() {
        // Random-ish smooth initial condition; conservation must hold to
        // round-off under periodic wrap.
        let n = 6;
        let mut src = Block::zeros(n, n, n);
        set_equilibrium(&mut src, |i, j, k| {
            let x = i as f64 / n as f64 * std::f64::consts::TAU;
            let y = j as f64 / n as f64 * std::f64::consts::TAU;
            let z = k as f64 / n as f64 * std::f64::consts::TAU;
            Moments {
                rho: 1.0 + 0.02 * x.sin() * y.cos(),
                mom: [0.03 * y.sin(), -0.02 * z.sin(), 0.01 * x.cos()],
                b: [0.04 * z.cos(), 0.03 * x.sin(), -0.02 * y.sin()],
            }
        });
        let before = src.totals();
        let mut dst = Block::zeros(n, n, n);
        wrap_halo(&mut src);
        step(&src, &mut dst, 1.8, 1.2);
        let after = dst.totals();
        assert!((before.rho - after.rho).abs() < 1e-10, "mass");
        for a in 0..3 {
            assert!((before.mom[a] - after.mom[a]).abs() < 1e-10, "momentum {a}");
            assert!((before.b[a] - after.b[a]).abs() < 1e-10, "total B {a}");
        }
    }

    #[test]
    fn pure_streaming_is_a_permutation() {
        // With ω = 0 the update is pure streaming: the multiset of f values
        // must be exactly preserved (no element lost or duplicated).
        let n = 4;
        let mut src = Block::zeros(n, n, n);
        let lane = src.padded_len();
        // Distinct values everywhere.
        for q in 0..Q {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let ix = src.interior_idx(i, j, k);
                        src.f[q * lane + ix] = (q * 1000 + i * 100 + j * 10 + k) as f64;
                    }
                }
            }
        }
        wrap_halo(&mut src);
        let mut dst = Block::zeros(n, n, n);
        step(&src, &mut dst, 0.0, 0.0);
        for q in 0..Q {
            let mut a: Vec<f64> = (0..n)
                .flat_map(|k| (0..n).flat_map(move |j| (0..n).map(move |i| (i, j, k))))
                .map(|(i, j, k)| src.f[q * lane + src.interior_idx(i, j, k)])
                .collect();
            let mut b: Vec<f64> = (0..n)
                .flat_map(|k| (0..n).flat_map(move |j| (0..n).map(move |i| (i, j, k))))
                .map(|(i, j, k)| dst.f[q * lane + dst.interior_idx(i, j, k)])
                .collect();
            a.sort_by(f64::total_cmp);
            b.sort_by(f64::total_cmp);
            assert_eq!(a, b, "direction {q} not a permutation");
        }
    }

    #[test]
    fn lane_kernel_is_bitwise_identical_to_scalar_reference() {
        // The SoA lane kernel vs. the per-point scalar oracle, at several
        // worker counts: every f64 bit must match (see module docs for why
        // the chains are replicable at all).
        let (nx, ny, nz) = (7, 5, 6);
        let mut src = Block::zeros(nx, ny, nz);
        set_equilibrium(&mut src, |i, j, k| {
            let x = i as f64 / nx as f64 * std::f64::consts::TAU;
            let y = j as f64 / ny as f64 * std::f64::consts::TAU;
            let z = k as f64 / nz as f64 * std::f64::consts::TAU;
            Moments {
                rho: 1.0 + 0.05 * (x + 2.0 * y).sin() * z.cos(),
                mom: [0.04 * (y + z).sin(), -0.03 * (x * 1.7).cos(), 0.02 * (z - x).sin()],
                b: [0.05 * (z * 1.3).cos(), 0.04 * (x + y).sin(), -0.03 * (y * 0.7).cos()],
            }
        });
        wrap_halo(&mut src);

        let mut want = Block::zeros(nx, ny, nz);
        step_reference(&src, &mut want, 1.9, 1.1);

        for workers in [1, 2, 4] {
            let mut got = Block::zeros(nx, ny, nz);
            step_with(&Threads::new(workers), &src, &mut got, 1.9, 1.1);
            let lane = src.padded_len();
            for q in 0..Q {
                for k in 0..nz {
                    for j in 0..ny {
                        for i in 0..nx {
                            let ix = got.interior_idx(i, j, k);
                            assert_eq!(
                                got.f[q * lane + ix].to_bits(),
                                want.f[q * lane + ix].to_bits(),
                                "f q={q} ({i},{j},{k}) workers={workers}"
                            );
                            for a in 0..3 {
                                assert_eq!(
                                    got.g[(q * 3 + a) * lane + ix].to_bits(),
                                    want.g[(q * 3 + a) * lane + ix].to_bits(),
                                    "g q={q} a={a} ({i},{j},{k}) workers={workers}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn flop_constant_is_audited_value() {
        assert_eq!(FLOPS_PER_POINT, 26.0 + 54.0 + 78.0 + 53.0 + 44.0 * 27.0);
        assert!(FLOPS_PER_POINT > 1300.0 && FLOPS_PER_POINT < 1500.0);
    }
}
