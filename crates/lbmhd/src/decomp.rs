//! 3D Cartesian block decomposition and halo exchange.
//!
//! The global grid is block-distributed over a 3D processor grid (paper
//! §5). The halo exchange runs in three sweeps (x, then y, then z), each a
//! pair of face exchanges that *include the already-received halo layers*
//! of previous sweeps — the standard trick that propagates edge and corner
//! values without explicit diagonal messages.

use msim::Comm;

use crate::lattice::Q;
use crate::state::Block;

/// Factorization of `p` ranks into a 3D processor grid, closest to a cube.
pub fn processor_grid(p: usize) -> [usize; 3] {
    let mut best = [p, 1, 1];
    let mut best_score = usize::MAX;
    for px in 1..=p {
        if p % px != 0 {
            continue;
        }
        let rem = p / px;
        for py in 1..=rem {
            if rem % py != 0 {
                continue;
            }
            let pz = rem / py;
            // Surface-to-volume proxy: sum of pairwise maxima.
            let score = px.max(py) * py.max(pz) * px.max(pz);
            if score < best_score {
                best_score = score;
                best = [px, py, pz];
            }
        }
    }
    best
}

/// One rank's placement in the processor grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CartRank {
    /// Processor-grid shape.
    pub dims: [usize; 3],
    /// This rank's coordinates.
    pub coords: [usize; 3],
}

impl CartRank {
    /// Builds coordinates for `rank` in row-major order over `dims`.
    pub fn new(rank: usize, dims: [usize; 3]) -> Self {
        let x = rank % dims[0];
        let y = (rank / dims[0]) % dims[1];
        let z = rank / (dims[0] * dims[1]);
        CartRank { dims, coords: [x, y, z] }
    }

    /// The communicator rank at `coords` (periodic).
    pub fn rank_of(&self, coords: [i64; 3]) -> usize {
        let w = |v: i64, n: usize| v.rem_euclid(n as i64) as usize;
        let c =
            [w(coords[0], self.dims[0]), w(coords[1], self.dims[1]), w(coords[2], self.dims[2])];
        c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])
    }

    /// Neighbor rank one step along `axis` in direction `dir` (±1).
    pub fn neighbor(&self, axis: usize, dir: i64) -> usize {
        let mut c = [self.coords[0] as i64, self.coords[1] as i64, self.coords[2] as i64];
        c[axis] += dir;
        self.rank_of(c)
    }
}

/// Local block extents for a global `n` split over `parts`, giving the
/// first `n % parts` parts one extra point.
pub fn local_extent(n: usize, parts: usize, coord: usize) -> usize {
    n / parts + usize::from(coord < n % parts)
}

/// Packs one face layer (padded plane at `fixed` along `axis`, including
/// halo in the other two dimensions) of every distribution into a buffer.
fn pack_face(b: &Block, axis: usize, fixed: usize) -> Vec<f64> {
    let dims = [b.px(), b.py(), b.pz()];
    let lane = b.padded_len();
    let (u, v) = other_axes(axis);
    let mut out = Vec::with_capacity((Q + 3 * Q) * dims[u] * dims[v]);
    for arr in b.f.chunks_exact(lane).chain(b.g.chunks_exact(lane)) {
        for jv in 0..dims[v] {
            for ju in 0..dims[u] {
                let mut c = [0usize; 3];
                c[axis] = fixed;
                c[u] = ju;
                c[v] = jv;
                out.push(arr[b.idx(c[0], c[1], c[2])]);
            }
        }
    }
    out
}

/// Unpacks a buffer produced by [`pack_face`] into the plane at `fixed`.
fn unpack_face(b: &mut Block, axis: usize, fixed: usize, buf: &[f64]) {
    let dims = [b.px(), b.py(), b.pz()];
    let lane = b.padded_len();
    let (u, v) = other_axes(axis);
    let mut it = buf.iter();
    let idx = |bb: &Block, c: [usize; 3]| bb.idx(c[0], c[1], c[2]);
    for arr_ix in 0..(Q + 3 * Q) {
        for jv in 0..dims[v] {
            for ju in 0..dims[u] {
                let mut c = [0usize; 3];
                c[axis] = fixed;
                c[u] = ju;
                c[v] = jv;
                let ix = idx(b, c);
                let val = *it.next().expect("face buffer too short");
                if arr_ix < Q {
                    b.f[arr_ix * lane + ix] = val;
                } else {
                    b.g[(arr_ix - Q) * lane + ix] = val;
                }
            }
        }
    }
}

fn other_axes(axis: usize) -> (usize, usize) {
    match axis {
        0 => (1, 2),
        1 => (0, 2),
        2 => (0, 1),
        _ => panic!("axis out of range"),
    }
}

/// Exchanges all six face halos with the Cartesian neighbors (periodic).
/// Returns the number of payload bytes this rank sent.
pub fn exchange_halos(comm: &Comm, cart: &CartRank, b: &mut Block) -> usize {
    let mut sent = 0;
    let interior_hi = [b.nx, b.ny, b.nz];
    for axis in 0..3 {
        let lo_plane = 1; // first interior plane
        let hi_plane = interior_hi[axis]; // last interior plane
        let n_lo = cart.neighbor(axis, -1);
        let n_hi = cart.neighbor(axis, 1);
        let tag = 100 + axis as u64;

        if cart.dims[axis] == 1 {
            // Periodic self-wrap: copy interior faces to opposite halos.
            let lo = pack_face(b, axis, lo_plane);
            let hi = pack_face(b, axis, hi_plane);
            unpack_face(b, axis, interior_hi[axis] + 1, &lo);
            unpack_face(b, axis, 0, &hi);
            continue;
        }

        // Send my low interior plane down, receive my high halo from up.
        let lo = pack_face(b, axis, lo_plane);
        sent += lo.len() * 8;
        let got_hi = comm.sendrecv_f64(n_lo, n_hi, tag, &lo);
        unpack_face(b, axis, interior_hi[axis] + 1, &got_hi);

        // Send my high interior plane up, receive my low halo from down.
        let hi = pack_face(b, axis, hi_plane);
        sent += hi.len() * 8;
        let got_lo = comm.sendrecv_f64(n_hi, n_lo, tag + 10, &hi);
        unpack_face(b, axis, 0, &got_lo);
    }
    sent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_grid_is_exact_factorization() {
        for p in [1usize, 2, 3, 4, 8, 12, 16, 64, 256] {
            let d = processor_grid(p);
            assert_eq!(d[0] * d[1] * d[2], p, "p={p}");
        }
    }

    #[test]
    fn processor_grid_prefers_cubes() {
        assert_eq!(processor_grid(8), [2, 2, 2]);
        assert_eq!(processor_grid(64), [4, 4, 4]);
        let d27 = processor_grid(27);
        assert_eq!(d27, [3, 3, 3]);
    }

    #[test]
    fn cart_rank_round_trips() {
        let dims = [4, 3, 2];
        for r in 0..24 {
            let c = CartRank::new(r, dims);
            let back = c.rank_of([c.coords[0] as i64, c.coords[1] as i64, c.coords[2] as i64]);
            assert_eq!(back, r);
        }
    }

    #[test]
    fn neighbors_wrap_periodically() {
        let c = CartRank::new(0, [4, 1, 1]);
        assert_eq!(c.neighbor(0, -1), 3);
        assert_eq!(c.neighbor(0, 1), 1);
        // Axis with a single rank: neighbor is self.
        assert_eq!(c.neighbor(1, 1), 0);
    }

    #[test]
    fn local_extents_cover_global() {
        for (n, parts) in [(17usize, 4usize), (64, 8), (5, 5), (7, 3)] {
            let total: usize = (0..parts).map(|c| local_extent(n, parts, c)).sum();
            assert_eq!(total, n);
            // Extents differ by at most one.
            let exts: Vec<usize> = (0..parts).map(|c| local_extent(n, parts, c)).collect();
            let (mn, mx) = (exts.iter().min().unwrap(), exts.iter().max().unwrap());
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut b = Block::zeros(3, 4, 5);
        let lane = b.padded_len();
        for (n, arr) in b.f.chunks_exact_mut(lane).chain(b.g.chunks_exact_mut(lane)).enumerate() {
            for (i, v) in arr.iter_mut().enumerate() {
                *v = (n * 10_000 + i) as f64;
            }
        }
        let buf = pack_face(&b, 1, 2);
        let mut b2 = b.clone();
        // Wipe the plane, then restore it from the buffer.
        let snapshot = b.clone();
        for arr in b2.f.chunks_exact_mut(lane).chain(b2.g.chunks_exact_mut(lane)) {
            for k in 0..b.pz() {
                for i in 0..b.px() {
                    let ix = i + b.px() * (2 + b.py() * k);
                    arr[ix] = -1.0;
                }
            }
        }
        unpack_face(&mut b2, 1, 2, &buf);
        assert_eq!(snapshot.f, b2.f);
        assert_eq!(snapshot.g, b2.g);
    }

    #[test]
    fn self_wrap_fills_halos_periodically() {
        let mut b = Block::zeros(3, 3, 3);
        // Tag interior points with their coordinates in f[0].
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    let ix = b.interior_idx(i, j, k);
                    b.f_lane_mut(0)[ix] = (100 * i + 10 * j + k) as f64;
                }
            }
        }
        // Run the self-wrap path through msim with one rank.
        let cart = CartRank::new(0, [1, 1, 1]);
        msim::run(1, move |comm| {
            let mut local = b.clone();
            exchange_halos(comm, &cart, &mut local);
            // Low-x halo must equal the high-x interior plane.
            for k in 0..3 {
                for j in 0..3 {
                    let halo = local.f_lane(0)[local.idx(0, j + 1, k + 1)];
                    let want = local.f_lane(0)[local.interior_idx(2, j, k)];
                    assert_eq!(halo, want);
                }
            }
        })
        .unwrap();
    }
}
