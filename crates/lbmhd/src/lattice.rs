//! The D3Q27 streaming lattice.
//!
//! 27 velocities — the null vector plus the 26 neighbors of a cube — with
//! the standard fourth-order-isotropic weights (8/27 for rest, 2/27 for
//! faces, 1/54 for edges, 1/216 for corners) and sound speed c_s² = 1/3.

/// Number of streaming directions (26 plus the null vector — paper §5).
pub const Q: usize = 27;

/// Lattice sound speed squared.
pub const CS2: f64 = 1.0 / 3.0;

/// The 27 lattice velocities. Index 0 is the rest particle; the rest are
/// ordered faces, edges, corners.
pub const C: [[i32; 3]; Q] = build_velocities();

/// Quadrature weights matching [`C`]'s ordering.
pub const W: [f64; Q] = build_weights();

const fn build_velocities() -> [[i32; 3]; Q] {
    // Enumerate (dx,dy,dz) ∈ {-1,0,1}³ sorted by |c|²: rest, faces (|c|²=1),
    // edges (2), corners (3). Order is fixed and matched by OPPOSITE/W.
    let mut out = [[0i32; 3]; Q];
    let mut n = 1;
    // faces
    let mut pass = 1;
    while pass <= 3 {
        let mut dz = -1;
        while dz <= 1 {
            let mut dy = -1;
            while dy <= 1 {
                let mut dx = -1;
                while dx <= 1 {
                    let m = dx * dx + dy * dy + dz * dz;
                    if m == pass {
                        out[n] = [dx, dy, dz];
                        n += 1;
                    }
                    dx += 1;
                }
                dy += 1;
            }
            dz += 1;
        }
        pass += 1;
    }
    out
}

const fn build_weights() -> [f64; Q] {
    let mut w = [0.0f64; Q];
    let c = build_velocities();
    let mut i = 0;
    while i < Q {
        let m = c[i][0] * c[i][0] + c[i][1] * c[i][1] + c[i][2] * c[i][2];
        w[i] = match m {
            0 => 8.0 / 27.0,
            1 => 2.0 / 27.0,
            2 => 1.0 / 54.0,
            3 => 1.0 / 216.0,
            _ => 0.0,
        };
        i += 1;
    }
    w
}

/// Index of the direction opposite to `i` (−c_i).
pub fn opposite(i: usize) -> usize {
    let [x, y, z] = C[i];
    C.iter().position(|&[a, b, c]| (a, b, c) == (-x, -y, -z)).expect("lattice is symmetric")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_27_unique_velocities() {
        for i in 0..Q {
            for j in i + 1..Q {
                assert_ne!(C[i], C[j], "duplicate velocity at {i},{j}");
            }
        }
        assert_eq!(C[0], [0, 0, 0]);
    }

    #[test]
    fn weights_sum_to_one() {
        let s: f64 = W.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn weights_by_shell() {
        for i in 0..Q {
            let m: i32 = C[i].iter().map(|&c| c * c).sum();
            let want = match m {
                0 => 8.0 / 27.0,
                1 => 2.0 / 27.0,
                2 => 1.0 / 54.0,
                3 => 1.0 / 216.0,
                _ => unreachable!(),
            };
            assert_eq!(W[i], want);
        }
    }

    #[test]
    fn first_moment_vanishes() {
        // Σ w_i c_i = 0 (lattice isotropy, zeroth condition).
        for a in 0..3 {
            let s: f64 = (0..Q).map(|i| W[i] * C[i][a] as f64).sum();
            assert!(s.abs() < 1e-15);
        }
    }

    #[test]
    fn second_moment_is_cs2_identity() {
        // Σ w_i c_ia c_ib = c_s² δ_ab.
        for a in 0..3 {
            for b in 0..3 {
                let s: f64 = (0..Q).map(|i| W[i] * (C[i][a] * C[i][b]) as f64).sum();
                let want = if a == b { CS2 } else { 0.0 };
                assert!((s - want).abs() < 1e-15, "({a},{b}): {s}");
            }
        }
    }

    #[test]
    fn fourth_moment_isotropy() {
        // Σ w_i c_ia c_ib c_ic c_id = c_s⁴ (δab δcd + δac δbd + δad δbc).
        let delta = |a: usize, b: usize| if a == b { 1.0 } else { 0.0 };
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    for d in 0..3 {
                        let s: f64 = (0..Q)
                            .map(|i| W[i] * (C[i][a] * C[i][b] * C[i][c] * C[i][d]) as f64)
                            .sum();
                        let want = CS2
                            * CS2
                            * (delta(a, b) * delta(c, d)
                                + delta(a, c) * delta(b, d)
                                + delta(a, d) * delta(b, c));
                        assert!((s - want).abs() < 1e-14, "({a},{b},{c},{d}): {s} vs {want}");
                    }
                }
            }
        }
    }

    #[test]
    fn opposite_is_an_involution() {
        for i in 0..Q {
            let o = opposite(i);
            assert_eq!(opposite(o), i);
            for a in 0..3 {
                assert_eq!(C[o][a], -C[i][a]);
            }
        }
    }
}
