//! Gyro-averaged charge deposition (scatter).
//!
//! Each marker deposits its weight at four points on its gyro-ring, each
//! bilinearly interpolated onto the poloidal grid and linearly split
//! between the two adjacent toroidal planes — 32 randomly-located grid
//! updates per particle. This is the kernel the paper singles out (§4) as
//! the performance problem of PIC on both architecture families:
//!
//! * on cache machines, the scatter has no locality;
//! * on vector machines, two markers in the same vector register may hit
//!   the same grid point — a memory dependency that forbids vectorization.
//!
//! The **work-vector method** (Oliker et al. 2004, adopted by the paper)
//! gives every vector-register slot a private copy of the grid, scatters
//! without conflict, and reduces the copies afterwards. We implement both
//! paths; the replicated one is also what a threaded deposition uses.

use crate::geometry::PoloidalGrid;
use crate::particles::Particles;
use hec_core::pool::Threads;

/// Grid updates per marker: 4 gyro-ring points × 4 bilinear corners ×
/// 2 toroidal planes.
pub const SCATTER_POINTS: usize = 32;

/// Particles per private-grid chunk in [`deposit_threaded`]. The chunking
/// depends only on the particle count — never on the worker count — so
/// the fixed-order reduction gives bitwise-identical charge for any
/// `HEC_THREADS`.
pub const DEPOSIT_CHUNK: usize = 1024;

/// Cap on private grid copies: with enormous particle counts the chunks
/// grow instead of multiplying, bounding the replica memory the paper
/// flags as the work-vector method's cost.
const MAX_CHUNKS: usize = 64;

/// Flops per marker for deposition, audited from the kernel below: 4 ring
/// positions (4 adds + 4 trig ≈ 12) + per ring point: locate (6) + corner
/// weights (6) + 8 weighted adds with plane split (3 each = 24) → 4×36 + 12.
pub const FLOPS_PER_PARTICLE: f64 = 156.0;

/// Deposits markers' weights onto `charge` (per-plane arrays of one
/// toroidal domain). `zeta_lo`/`dzeta` describe the domain's local planes:
/// plane `z` sits at `zeta_lo + z·dzeta`; a marker between planes `z` and
/// `z+1` splits its charge linearly (the last local plane pairs with the
/// ghost plane `charge[mzeta]`, merged toroidally by the caller).
///
/// Returns the number of markers deposited.
pub fn deposit(
    grid: &PoloidalGrid,
    particles: &Particles,
    charge: &mut [Vec<f64>],
    zeta_lo: f64,
    dzeta: f64,
) -> usize {
    deposit_range(grid, particles, 0, particles.len(), charge, zeta_lo, dzeta);
    particles.len()
}

/// Deposits markers `lo..hi` — the scatter body shared by the serial,
/// work-vector, and threaded paths.
fn deposit_range(
    grid: &PoloidalGrid,
    particles: &Particles,
    lo: usize,
    hi: usize,
    charge: &mut [Vec<f64>],
    zeta_lo: f64,
    dzeta: f64,
) {
    let mzeta = charge.len() - 1; // last slot is the ghost plane
    for p in lo..hi {
        let fz = ((particles.zeta[p] - zeta_lo) / dzeta).clamp(0.0, mzeta as f64 - 1e-12);
        let z = (fz as usize).min(mzeta - 1);
        let wz = fz - z as f64;
        let w_particle = particles.weight[p] * 0.25; // split over 4 ring points
        let rho = particles.rho[p];
        // 4-point gyro-averaging ring.
        for ring in 0..4 {
            let angle = ring as f64 * std::f64::consts::FRAC_PI_2;
            let r = particles.r[p] + rho * angle.cos();
            let theta = particles.theta[p] + rho * angle.sin() / particles.r[p].max(1e-6);
            let ((i, j), (wr, wt)) = grid.locate(r, theta);
            let jp = (j + 1) % grid.mtheta;
            let c00 = (1.0 - wr) * (1.0 - wt) * w_particle;
            let c10 = wr * (1.0 - wt) * w_particle;
            let c01 = (1.0 - wr) * wt * w_particle;
            let c11 = wr * wt * w_particle;
            let (za, zb) = (z, z + 1);
            let (wa, wb) = (1.0 - wz, wz);
            for (cz, cw) in [(za, wa), (zb, wb)] {
                let plane = &mut charge[cz];
                plane[grid.idx(i, j)] += c00 * cw;
                plane[grid.idx(i + 1, j)] += c10 * cw;
                plane[grid.idx(i, jp)] += c01 * cw;
                plane[grid.idx(i + 1, jp)] += c11 * cw;
            }
        }
    }
}

/// The work-vector method made literal for threads: particles are split
/// into fixed-size chunks ([`DEPOSIT_CHUNK`], grown past [`MAX_CHUNKS`]
/// copies), each chunk scatters into a private copy of the charge grid
/// (conflict-free — no two chunks touch the same memory), and the copies
/// are reduced into `charge` in chunk order.
///
/// Determinism: the decomposition and the reduction order depend only on
/// the particle count, so the result is **bitwise identical for any
/// worker count** — including forced-serial. When the particles fit one
/// chunk the private copy is skipped and this *is* the serial
/// [`deposit`], bit for bit. Across the one-chunk/many-chunk boundary the
/// sums differ only by association (≤ 1 ulp per addend); the sim's
/// conservation tolerances absorb that.
///
/// Returns the number of markers deposited.
pub fn deposit_threaded(
    grid: &PoloidalGrid,
    particles: &Particles,
    charge: &mut [Vec<f64>],
    zeta_lo: f64,
    dzeta: f64,
    threads: &Threads,
) -> usize {
    let n = particles.len();
    let chunk = DEPOSIT_CHUNK.max(n.div_ceil(MAX_CHUNKS));
    if n <= chunk {
        return deposit(grid, particles, charge, zeta_lo, dzeta);
    }
    let planes = charge.len();
    let plane_len = charge[0].len();
    let nchunks = n.div_ceil(chunk);
    let tasks: Vec<_> = (0..nchunks)
        .map(|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            move || {
                let mut private: Vec<Vec<f64>> =
                    (0..planes).map(|_| vec![0.0; plane_len]).collect();
                deposit_range(grid, particles, lo, hi, &mut private, zeta_lo, dzeta);
                private
            }
        })
        .collect();
    let partials = threads.par_tasks(tasks);
    // Fixed-order reduction: chunk 0, then 1, ... regardless of which
    // worker produced which partial.
    for part in &partials {
        for (z, plane) in part.iter().enumerate() {
            for (dst, src) in charge[z].iter_mut().zip(plane) {
                *dst += *src;
            }
        }
    }
    n
}

/// Work-vector deposition: scatters into `replicas` private grid copies
/// (round-robin over markers, the way vector-register slots would) and
/// reduces them into `charge`. Produces bit-different but numerically
/// equivalent sums; the memory cost is `replicas ×` the grid — the paper's
/// explanation of why GTC's vector ports need 2–8× more memory and cannot
/// also afford OpenMP grid copies.
///
/// Returns the number of markers deposited.
pub fn deposit_work_vector(
    grid: &PoloidalGrid,
    particles: &Particles,
    charge: &mut [Vec<f64>],
    zeta_lo: f64,
    dzeta: f64,
    replicas: usize,
) -> usize {
    assert!(replicas > 0, "need at least one replica");
    let mzeta = charge.len() - 1;
    let plane_len = grid.len();
    // Private copies: replicas × planes.
    let mut private: Vec<Vec<Vec<f64>>> =
        (0..replicas).map(|_| (0..=mzeta).map(|_| vec![0.0; plane_len]).collect()).collect();
    // Deal markers round-robin to replicas — the register-slot pattern.
    for (p, copy) in (0..particles.len()).map(|p| (p, p % replicas)) {
        let one = single_marker_view(particles, p);
        deposit(grid, &one, &mut private[copy], zeta_lo, dzeta);
    }
    // Reduction of the work-vector copies.
    for copy in &private {
        for (z, plane) in copy.iter().enumerate() {
            for (dst, src) in charge[z].iter_mut().zip(plane) {
                *dst += *src;
            }
        }
    }
    particles.len()
}

/// Borrowless single-marker view used by the work-vector path.
fn single_marker_view(p: &Particles, i: usize) -> Particles {
    let mut one = Particles::default();
    one.push(p.get(i));
    one
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particles::load_uniform;

    fn grid() -> PoloidalGrid {
        PoloidalGrid { mpsi: 12, mtheta: 24, r_inner: 0.1, r_outer: 0.9 }
    }

    fn empty_planes(g: &PoloidalGrid, mzeta: usize) -> Vec<Vec<f64>> {
        (0..=mzeta).map(|_| vec![0.0; g.len()]).collect()
    }

    #[test]
    fn deposition_conserves_total_charge() {
        let g = grid();
        let parts = load_uniform(500, 0.15, 0.85, 0.0, 1.0, 9);
        let mut charge = empty_planes(&g, 4);
        deposit(&g, &parts, &mut charge, 0.0, 0.25);
        let total: f64 = charge.iter().flatten().sum();
        assert!(
            (total - parts.total_weight()).abs() < 1e-9 * parts.total_weight(),
            "deposited {total} vs loaded {}",
            parts.total_weight()
        );
    }

    #[test]
    fn work_vector_matches_serial_deposition() {
        let g = grid();
        let parts = load_uniform(300, 0.15, 0.85, 0.0, 1.0, 4);
        let mut serial = empty_planes(&g, 2);
        deposit(&g, &parts, &mut serial, 0.0, 0.5);
        for replicas in [1usize, 4, 8] {
            let mut wv = empty_planes(&g, 2);
            deposit_work_vector(&g, &parts, &mut wv, 0.0, 0.5, replicas);
            for (a, b) in serial.iter().flatten().zip(wv.iter().flatten()) {
                assert!((a - b).abs() < 1e-10, "replicas={replicas}");
            }
        }
    }

    #[test]
    fn marker_on_plane_deposits_only_there() {
        let g = grid();
        let mut parts = crate::particles::Particles::default();
        // ζ exactly on plane 1 of a 3-plane domain with dζ = 0.5, ρ = 0.
        parts.push([0.5, 0.3, 0.5, 0.0, 2.0, 0.0]);
        let mut charge = empty_planes(&g, 3);
        deposit(&g, &parts, &mut charge, 0.0, 0.5);
        let per_plane: Vec<f64> = charge.iter().map(|p| p.iter().sum()).collect();
        assert!((per_plane[1] - 2.0).abs() < 1e-12, "{per_plane:?}");
        assert!(per_plane[0].abs() < 1e-12 && per_plane[2].abs() < 1e-12);
    }

    #[test]
    fn ghost_plane_collects_boundary_charge() {
        let g = grid();
        let mut parts = crate::particles::Particles::default();
        // ζ near the top of the wedge: most charge goes to the ghost plane.
        parts.push([0.5, 1.0, 0.95, 0.0, 1.0, 0.0]);
        let mut charge = empty_planes(&g, 2); // planes at ζ = 0, 0.5; ghost at 1.0
        deposit(&g, &parts, &mut charge, 0.0, 0.5);
        let ghost: f64 = charge[2].iter().sum();
        assert!((ghost - 0.9).abs() < 1e-12, "ghost got {ghost}");
    }

    #[test]
    fn scatter_points_constant_is_consistent() {
        assert_eq!(SCATTER_POINTS, 4 * 4 * 2);
    }

    #[test]
    fn threaded_deposit_is_bitwise_invariant_across_worker_counts() {
        let g = grid();
        // Enough markers to force several private-grid chunks.
        let parts = load_uniform(3 * DEPOSIT_CHUNK + 17, 0.15, 0.85, 0.0, 1.0, 21);
        let mut reference = empty_planes(&g, 3);
        deposit_threaded(&g, &parts, &mut reference, 0.0, 1.0 / 3.0, &Threads::serial());
        for workers in [2usize, 3, 4, 8] {
            let mut charge = empty_planes(&g, 3);
            deposit_threaded(&g, &parts, &mut charge, 0.0, 1.0 / 3.0, &Threads::new(workers));
            for (a, b) in reference.iter().flatten().zip(charge.iter().flatten()) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
            }
        }
        // And the chunked sum agrees with the classic serial scatter to
        // round-off (association differs, values don't).
        let mut serial = empty_planes(&g, 3);
        deposit(&g, &parts, &mut serial, 0.0, 1.0 / 3.0);
        for (a, b) in serial.iter().flatten().zip(reference.iter().flatten()) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn binned_deposit_matches_unbinned_within_tolerance() {
        // Binning permutes the scatter order, so per-point sums differ only
        // by association: the identity oracle is a relative-1e-12 bound per
        // grid point (documented in EXPERIMENTS.md), not bit equality.
        let g = grid();
        let parts = load_uniform(2500, 0.15, 0.85, 0.0, 1.0, 33);
        let mut unbinned = empty_planes(&g, 3);
        deposit(&g, &parts, &mut unbinned, 0.0, 1.0 / 3.0);
        let mut sorted = parts.clone();
        assert!(sorted.bin_by_cell(&g) > 1);
        let mut binned = empty_planes(&g, 3);
        deposit(&g, &sorted, &mut binned, 0.0, 1.0 / 3.0);
        for (a, b) in unbinned.iter().flatten().zip(binned.iter().flatten()) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
        }
        // Total deposited charge is unchanged to round-off.
        let ta: f64 = unbinned.iter().flatten().sum();
        let tb: f64 = binned.iter().flatten().sum();
        assert!((ta - tb).abs() < 1e-9 * ta.abs().max(1.0));
    }

    #[test]
    fn threaded_deposit_is_exactly_serial_below_one_chunk() {
        let g = grid();
        let parts = load_uniform(DEPOSIT_CHUNK / 2, 0.15, 0.85, 0.0, 1.0, 7);
        let mut serial = empty_planes(&g, 2);
        deposit(&g, &parts, &mut serial, 0.0, 0.5);
        let mut threaded = empty_planes(&g, 2);
        deposit_threaded(&g, &parts, &mut threaded, 0.0, 0.5, &Threads::new(4));
        for (a, b) in serial.iter().flatten().zip(threaded.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
