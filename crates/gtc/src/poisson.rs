//! Gyrokinetic Poisson solve on each poloidal plane.
//!
//! GTC solves the gyro-averaged Poisson equation plane by plane; in
//! normalized form we use the Padé-simplified operator
//!
//! ```text
//! (−ρ_s² ∇⊥² + 1) φ = ρ_charge
//! ```
//!
//! on the annulus with Dirichlet walls and periodic θ. Multiplying the
//! equation through by `r` makes the polar finite-difference operator
//! symmetric positive-definite in the plain dot product, so it is solved
//! by conjugate gradient (`kernels`).
//! The screened (+1) term makes the operator well-conditioned, which is
//! also why this phase is a small share of GTC's runtime (the paper: ~85 %
//! of the work is particle-related).

use kernels::solve::{conjugate_gradient, CgResult};

use crate::geometry::PoloidalGrid;

/// Laplacian scale ρ_s² of the screened operator.
pub const RHO_S2: f64 = 4.0e-3;

/// Applies `r·(−ρ_s²∇⊥² + 1)` in polar coordinates on the annular grid —
/// the r-weighted form whose finite-difference matrix is symmetric.
/// Dirichlet (zero) at the radial walls, periodic in θ.
pub fn apply_operator(grid: &PoloidalGrid, x: &[f64], y: &mut [f64]) {
    let (dr, dt) = (grid.dr(), grid.dtheta());
    let (np, nt) = (grid.mpsi, grid.mtheta);
    for i in 0..np {
        let r = grid.radius(i).max(1e-9);
        for j in 0..nt {
            let ix = grid.idx(i, j);
            if i == 0 || i == np - 1 {
                // Dirichlet walls: identity row; the CG iterates stay zero
                // there because the RHS is zeroed too.
                y[ix] = x[ix];
                continue;
            }
            let jp = (j + 1) % nt;
            let jm = (j + nt - 1) % nt;
            // r∇⊥² = ∂r(r ∂r) + 1/r ∂θθ, discretized flux-style: the
            // coefficient r_{i±1/2} is shared by rows i and i±1, which is
            // exactly what makes the matrix symmetric.
            let rp = r + 0.5 * dr;
            let rm = r - 0.5 * dr;
            let d2r = (rp * (x[grid.idx(i + 1, j)] - x[ix]) - rm * (x[ix] - x[grid.idx(i - 1, j)]))
                / (dr * dr);
            let d2t = (x[grid.idx(i, jp)] - 2.0 * x[ix] + x[grid.idx(i, jm)]) / (r * dt * dt);
            y[ix] = -RHO_S2 * (d2r + d2t) + r * x[ix];
        }
    }
}

/// Solves the screened Poisson equation for one plane's charge density,
/// writing φ in place. Returns the CG iteration record.
pub fn solve_plane(grid: &PoloidalGrid, charge: &[f64], phi: &mut [f64], tol: f64) -> CgResult {
    // Scale the RHS by r (the symmetrizing weight) and ground the walls.
    let mut rhs = charge.to_vec();
    for i in 0..grid.mpsi {
        let r = grid.radius(i);
        for j in 0..grid.mtheta {
            rhs[grid.idx(i, j)] *= r;
        }
    }
    for j in 0..grid.mtheta {
        rhs[grid.idx(0, j)] = 0.0;
        rhs[grid.idx(grid.mpsi - 1, j)] = 0.0;
    }
    // Walls of the initial guess must be zero: the identity rows then keep
    // them zero through every CG iterate.
    for j in 0..grid.mtheta {
        phi[grid.idx(0, j)] = 0.0;
        phi[grid.idx(grid.mpsi - 1, j)] = 0.0;
    }
    conjugate_gradient(|x, y| apply_operator(grid, x, y), &rhs, phi, tol, 500)
}

/// Flops of one operator application (audited: ~15 per interior point).
pub fn operator_flops(grid: &PoloidalGrid) -> f64 {
    15.0 * ((grid.mpsi - 2) * grid.mtheta) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> PoloidalGrid {
        PoloidalGrid { mpsi: 17, mtheta: 32, r_inner: 0.1, r_outer: 0.9 }
    }

    #[test]
    fn operator_is_symmetric() {
        // ⟨Ax, y⟩ = ⟨x, Ay⟩ for random-ish vectors (SPD requirement of CG).
        let g = grid();
        let n = g.len();
        // Wall-zero vectors: symmetry holds on the Dirichlet subspace.
        let zero_walls = |mut v: Vec<f64>| {
            for j in 0..g.mtheta {
                v[g.idx(0, j)] = 0.0;
                v[g.idx(g.mpsi - 1, j)] = 0.0;
            }
            v
        };
        let x = zero_walls((0..n).map(|i| ((i * 37 % 101) as f64) * 0.01 - 0.5).collect());
        let y = zero_walls((0..n).map(|i| ((i * 53 % 97) as f64) * 0.01 - 0.4).collect());
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        apply_operator(&g, &x, &mut ax);
        apply_operator(&g, &y, &mut ay);
        let xay: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
        let yax: f64 = y.iter().zip(&ax).map(|(a, b)| a * b).sum();
        assert!((xay - yax).abs() < 1e-10 * xay.abs().max(1.0), "not symmetric: {xay} vs {yax}");
    }

    #[test]
    fn solve_recovers_manufactured_solution() {
        // Pick φ*, build ρ = Aφ*, solve, compare.
        let g = grid();
        let n = g.len();
        let mut phi_star = vec![0.0; n];
        for i in 1..g.mpsi - 1 {
            let r = g.radius(i);
            for j in 0..g.mtheta {
                let t = j as f64 * g.dtheta();
                // Vanishes at both walls; smooth in θ.
                phi_star[g.idx(i, j)] = ((r - g.r_inner) * (g.r_outer - r)) * (2.0 * t).cos();
            }
        }
        let mut rhs = vec![0.0; n];
        apply_operator(&g, &phi_star, &mut rhs);
        // solve_plane applies the r-weight itself, so hand it the
        // *unweighted* charge ρ = (Aφ*)/r.
        for i in 0..g.mpsi {
            let r = g.radius(i);
            for j in 0..g.mtheta {
                rhs[g.idx(i, j)] /= r;
            }
        }
        let mut phi = vec![0.0; n];
        let res = solve_plane(&g, &rhs, &mut phi, 1e-12);
        assert!(res.converged, "CG stalled: {res:?}");
        for (a, b) in phi.iter().zip(&phi_star) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn screened_operator_damps_long_wavelengths_weakly() {
        // With tiny ρ_s², A ≈ I on smooth fields: φ ≈ ρ for a gentle charge.
        let g = grid();
        let n = g.len();
        let mut charge = vec![0.0; n];
        for i in 1..g.mpsi - 1 {
            let r = g.radius(i);
            for j in 0..g.mtheta {
                charge[g.idx(i, j)] = (r - g.r_inner) * (g.r_outer - r);
            }
        }
        let mut phi = vec![0.0; n];
        let res = solve_plane(&g, &charge, &mut phi, 1e-10);
        assert!(res.converged);
        // Interior mid-annulus point: φ within ~25 % of ρ.
        let mid = g.idx(g.mpsi / 2, 0);
        assert!((phi[mid] - charge[mid]).abs() < 0.25 * charge[mid].abs());
    }

    #[test]
    fn walls_stay_grounded() {
        let g = grid();
        let charge = vec![1.0; g.len()];
        let mut phi = vec![0.0; g.len()];
        solve_plane(&g, &charge, &mut phi, 1e-10);
        for j in 0..g.mtheta {
            assert_eq!(phi[g.idx(0, j)], 0.0);
            assert_eq!(phi[g.idx(g.mpsi - 1, j)], 0.0);
        }
    }
}
