//! Marker-particle storage and loading.
//!
//! Structure-of-arrays layout: the particle loops are the vector loops of
//! GTC (millions of trip counts), so each attribute lives in its own
//! contiguous array, exactly like the F90 original.

use crate::geometry::PoloidalGrid;
use hec_core::rng::Rng;

/// Number of `f64` attributes per particle (the wire format for shifts).
pub const ATTRS: usize = 6;

/// SoA marker-particle arrays for one rank.
#[derive(Clone, Debug, Default)]
pub struct Particles {
    /// Minor radius r.
    pub r: Vec<f64>,
    /// Poloidal angle θ.
    pub theta: Vec<f64>,
    /// Toroidal angle ζ (global, 0..2π).
    pub zeta: Vec<f64>,
    /// Parallel velocity v∥.
    pub v_par: Vec<f64>,
    /// δf weight w.
    pub weight: Vec<f64>,
    /// Gyroradius ρ (sets the 4-point gyro-averaging ring).
    pub rho: Vec<f64>,
}

impl Particles {
    /// Number of markers held.
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// True when no markers are held.
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// Appends one marker.
    pub fn push(&mut self, p: [f64; ATTRS]) {
        self.r.push(p[0]);
        self.theta.push(p[1]);
        self.zeta.push(p[2]);
        self.v_par.push(p[3]);
        self.weight.push(p[4]);
        self.rho.push(p[5]);
    }

    /// Reads marker `i` as a flat attribute array.
    pub fn get(&self, i: usize) -> [f64; ATTRS] {
        [self.r[i], self.theta[i], self.zeta[i], self.v_par[i], self.weight[i], self.rho[i]]
    }

    /// Removes marker `i` by swap-remove (order not preserved) and returns
    /// its attributes.
    pub fn swap_remove(&mut self, i: usize) -> [f64; ATTRS] {
        [
            self.r.swap_remove(i),
            self.theta.swap_remove(i),
            self.zeta.swap_remove(i),
            self.v_par.swap_remove(i),
            self.weight.swap_remove(i),
            self.rho.swap_remove(i),
        ]
    }

    /// Serializes markers at `indices` into a flat buffer and removes them
    /// (descending-index swap-removes keep earlier indices valid).
    pub fn extract(&mut self, mut indices: Vec<usize>) -> Vec<f64> {
        indices.sort_unstable_by(|a, b| b.cmp(a));
        let mut buf = Vec::with_capacity(indices.len() * ATTRS);
        for i in indices {
            buf.extend_from_slice(&self.swap_remove(i));
        }
        buf
    }

    /// Appends markers from a flat buffer produced by [`Particles::extract`].
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of [`ATTRS`].
    pub fn absorb(&mut self, buf: &[f64]) {
        assert_eq!(buf.len() % ATTRS, 0, "corrupt particle buffer");
        for chunk in buf.chunks_exact(ATTRS) {
            self.push([chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5]]);
        }
    }

    /// Sum of marker weights (the conserved total δf charge).
    pub fn total_weight(&self) -> f64 {
        self.weight.iter().sum()
    }

    /// Sorts markers by their poloidal grid cell (stable counting sort) so
    /// that the deposit scatter walks the charge grid in memory order
    /// instead of hopping randomly — the cache-machine locality fix for
    /// the paper's §4 scatter problem.
    ///
    /// The permutation depends only on the marker data (never on worker
    /// count) and the reorder is a pure copy, so every attribute multiset
    /// is preserved bit-for-bit. Binning an already-binned population is a
    /// no-op permutation. Returns the number of occupied cells.
    pub fn bin_by_cell(&mut self, grid: &PoloidalGrid) -> usize {
        let n = self.len();
        if n <= 1 {
            return n;
        }
        let ncells = grid.len();
        let cells: Vec<usize> = (0..n)
            .map(|p| {
                let ((i, j), _) = grid.locate(self.r[p], self.theta[p]);
                grid.idx(i, j)
            })
            .collect();
        // Counting sort: histogram, exclusive prefix sum, stable gather.
        let mut counts = vec![0usize; ncells + 1];
        for &c in &cells {
            counts[c + 1] += 1;
        }
        let occupied = counts[1..].iter().filter(|&&k| k > 0).count();
        for c in 1..=ncells {
            counts[c] += counts[c - 1];
        }
        let mut perm = vec![0usize; n];
        for (p, &c) in cells.iter().enumerate() {
            perm[counts[c]] = p;
            counts[c] += 1;
        }
        for attr in [
            &mut self.r,
            &mut self.theta,
            &mut self.zeta,
            &mut self.v_par,
            &mut self.weight,
            &mut self.rho,
        ] {
            let old = std::mem::take(attr);
            attr.extend(perm.iter().map(|&p| old[p]));
        }
        occupied
    }
}

/// Loads `count` markers uniformly over the annulus `[r_in, r_out]` ×
/// θ ∈ [0, 2π) × the toroidal wedge `[zeta_lo, zeta_hi)`, with a
/// Maxwellian-ish parallel velocity and small uniform gyroradius.
///
/// Deterministic per `(seed)`: reloading with the same seed reproduces the
/// ensemble exactly.
pub fn load_uniform(
    count: usize,
    r_in: f64,
    r_out: f64,
    zeta_lo: f64,
    zeta_hi: f64,
    seed: u64,
) -> Particles {
    let mut rng = Rng::new(seed);
    let mut p = Particles::default();
    for _ in 0..count {
        // Uniform in area: r ∝ sqrt(U) between the walls.
        let u: f64 = rng.uniform();
        let r = (r_in * r_in + u * (r_out * r_out - r_in * r_in)).sqrt();
        let theta = rng.uniform() * std::f64::consts::TAU;
        let zeta = zeta_lo + rng.uniform() * (zeta_hi - zeta_lo);
        // Sum of uniforms ≈ Gaussian (Irwin–Hall, k = 6).
        let v: f64 = (0..6).map(|_| rng.uniform()).sum::<f64>() - 3.0;
        let weight = 1.0 + 0.01 * (theta.sin() + zeta.cos());
        let rho = 0.01 + 0.005 * rng.uniform();
        p.push([r, theta, zeta, v, weight, rho]);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_deterministic() {
        let a = load_uniform(100, 0.1, 0.9, 0.0, 1.0, 42);
        let b = load_uniform(100, 0.1, 0.9, 0.0, 1.0, 42);
        assert_eq!(a.r, b.r);
        assert_eq!(a.v_par, b.v_par);
    }

    #[test]
    fn load_respects_bounds() {
        let p = load_uniform(500, 0.2, 0.8, 1.0, 2.0, 7);
        assert_eq!(p.len(), 500);
        for i in 0..p.len() {
            assert!(p.r[i] >= 0.2 && p.r[i] <= 0.8);
            assert!(p.zeta[i] >= 1.0 && p.zeta[i] < 2.0);
            assert!(p.theta[i] >= 0.0 && p.theta[i] < std::f64::consts::TAU);
        }
    }

    #[test]
    fn extract_absorb_round_trip_preserves_multiset() {
        let mut p = load_uniform(50, 0.1, 0.9, 0.0, 1.0, 3);
        let w_before = p.total_weight();
        let buf = p.extract(vec![0, 10, 49, 25]);
        assert_eq!(p.len(), 46);
        assert_eq!(buf.len(), 4 * ATTRS);
        let mut q = Particles::default();
        q.absorb(&buf);
        assert_eq!(q.len(), 4);
        assert!((p.total_weight() + q.total_weight() - w_before).abs() < 1e-12);
    }

    #[test]
    fn velocity_distribution_is_centered() {
        let p = load_uniform(20_000, 0.1, 0.9, 0.0, 1.0, 11);
        let mean: f64 = p.v_par.iter().sum::<f64>() / p.len() as f64;
        let var: f64 =
            p.v_par.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / p.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        // Irwin–Hall k=6 has variance 1/2.
        assert!((var - 0.5).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn binning_orders_markers_by_cell_and_preserves_them_exactly() {
        let grid = PoloidalGrid { mpsi: 12, mtheta: 24, r_inner: 0.1, r_outer: 0.9 };
        let mut p = load_uniform(2000, 0.15, 0.85, 0.0, 1.0, 33);
        let tuples = |p: &Particles| {
            let mut t: Vec<[u64; ATTRS]> =
                (0..p.len()).map(|i| p.get(i).map(f64::to_bits)).collect();
            t.sort_unstable();
            t
        };
        let before = tuples(&p);
        let occupied = p.bin_by_cell(&grid);
        assert!(occupied > 1 && occupied <= grid.len());
        // Every marker survives with its attribute tuple intact, bit for bit.
        assert_eq!(tuples(&p), before);
        // Cell indices are nondecreasing after the sort.
        let cell = |p: &Particles, i: usize| {
            let ((gi, gj), _) = grid.locate(p.r[i], p.theta[i]);
            grid.idx(gi, gj)
        };
        for i in 1..p.len() {
            assert!(cell(&p, i - 1) <= cell(&p, i), "markers {i} out of cell order");
        }
        // Binning a binned population is the identity permutation.
        let snapshot = p.clone();
        p.bin_by_cell(&grid);
        assert_eq!(p.r, snapshot.r);
        assert_eq!(p.weight, snapshot.weight);
    }

    #[test]
    #[should_panic(expected = "corrupt particle buffer")]
    fn absorb_rejects_misaligned_buffer() {
        let mut p = Particles::default();
        p.absorb(&[1.0; 7]);
    }

    /// Golden bit patterns for seed 2005. If this test fails the RNG or the
    /// load recipe changed, which silently invalidates every recorded
    /// experiment — bump the seeds in EXPERIMENTS.md if the change is
    /// intentional.
    #[test]
    fn load_is_bit_reproducible_against_golden_values() {
        let p = load_uniform(1000, 0.1, 0.9, 0.0, 1.0, 2005);
        let golden: [(usize, [u64; ATTRS]); 3] = [
            (
                0,
                [
                    0x3fd3fde5692242f4,
                    0x400027f486b9b172,
                    0x3fc048e9c1497018,
                    0x3f82d5c3597dcd00,
                    0x3ff04d88befe4d67,
                    0x3f8816439ee066f0,
                ],
            ),
            (
                499,
                [
                    0x3fea4dada192b261,
                    0x401737a90b5af6c3,
                    0x3fdd301154025cda,
                    0xbfef1f4077dae164,
                    0x3ff011e6d96b920b,
                    0x3f8e58928b857ed8,
                ],
            ),
            (
                999,
                [
                    0x3fdd3e51a8f52ee2,
                    0x3fed7cd496f41026,
                    0x3fc3f54112e2afc8,
                    0x3fe85d0b17efcde8,
                    0x3ff049167c7918d0,
                    0x3f8ce3c18c7db631,
                ],
            ),
        ];
        for (i, bits) in golden {
            let got = p.get(i);
            for (attr, (g, want)) in got.iter().zip(bits).enumerate() {
                assert_eq!(g.to_bits(), want, "marker {i} attribute {attr} drifted");
            }
        }
        assert_eq!(p.total_weight().to_bits(), 0x408f8379f5cef982);
    }
}
