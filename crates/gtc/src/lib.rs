//! GTC — gyrokinetic toroidal particle-in-cell mini-app.
//!
//! A from-scratch reimplementation of the performance-relevant structure of
//! the Gyrokinetic Toroidal Code (paper §4): a δf particle-in-cell method
//! on a torus, where charged-particle markers deposit charge on a spatial
//! grid, a Poisson equation is solved on each poloidal plane, and the
//! resulting electric field is gathered back to push the particles.
//!
//! The paper's contribution for GTC is a **particle decomposition**: on top
//! of the physics-limited 64-way 1D toroidal domain decomposition, the
//! particles inside each toroidal domain are split over several MPI
//! processes, which (a) lifted GTC's concurrency from 64 to 2048+ on the
//! ES, and (b) added `Allreduce` calls over the sub-communicators to merge
//! each domain's grid charge. Both are implemented here, as is the
//! **work-vector deposition** (§4: private grid copies per vector-register
//! element to break the scatter memory dependency).
//!
//! Modules:
//! * [`geometry`] — annular poloidal grid × toroidal planes, field arrays.
//! * [`particles`] — SoA marker storage and toroidal loading.
//! * [`deposit`] — gyro-ring charge scatter (serial and work-vector).
//! * [`poisson`] — CG solve of the gyrokinetic Poisson equation per plane.
//! * [`push`] — field gather and RK2 drift push with δf weight evolution.
//! * [`sim`] — msim driver wiring the two-level decomposition together.
//! * [`model`] — analytic workload model feeding `hec-arch` (Table 4).

/// Stable artifact-file tag: `TABLE_gtc.json` / `PROFILE_gtc.json`
/// are keyed by this name, so renaming it breaks every committed
/// baseline directory — treat it as part of the artifact schema.
pub const ARTIFACT_TAG: &str = "gtc";

pub mod deposit;
pub mod geometry;
pub mod model;
pub mod particles;
pub mod poisson;
pub mod push;
pub mod sim;

pub use sim::{GtcParams, GtcSim};
