//! Field gather and particle push.
//!
//! The gather mirrors the deposition stencil (4 gyro-ring points × bilinear
//! × 2 planes — random reads instead of random writes), then a second-order
//! Runge–Kutta step advances the gyro-center drift equations:
//!
//! ```text
//! dr/dt     = E_θ / B                    (E×B, radial)
//! dθ/dt     = −E_r / (B r) + v∥ q(r)/r   (E×B + field-line twist)
//! dζ/dt     = v∥ / R₀
//! dw/dt     = −κ · (E_θ/B)               (δf weight: radial drift × gradient)
//! ```
//!
//! with B = R₀ = 1 in normalized units and κ the background temperature
//! gradient drive.

use crate::geometry::{safety_factor, PoloidalGrid};
use crate::particles::Particles;

/// Background gradient drive for the δf weight equation.
pub const KAPPA: f64 = 2.0;

/// Flops per marker per gather, audited from the kernel: 4 ring points ×
/// (locate 6 + corner weights 6 + 2 fields × 8 weighted adds + plane blend
/// 4) ≈ 4 × 28, plus the ring setup 12.
pub const GATHER_FLOPS_PER_PARTICLE: f64 = 124.0;

/// Flops per marker per RK2 push (two derivative evaluations at ~20 flops
/// plus the update arithmetic).
pub const PUSH_FLOPS_PER_PARTICLE: f64 = 58.0;

/// Gathered electric field at each marker.
#[derive(Clone, Debug, Default)]
pub struct GatheredField {
    /// Radial field per marker.
    pub e_r: Vec<f64>,
    /// Poloidal field per marker.
    pub e_theta: Vec<f64>,
}

/// Gathers (E_r, E_θ) at every marker from the per-plane field arrays
/// using the gyro-averaged stencil. `e_r`/`e_theta` hold `mzeta + 1`
/// planes (the last being the ghost plane already synchronized by the
/// caller).
pub fn gather(
    grid: &PoloidalGrid,
    particles: &Particles,
    e_r: &[Vec<f64>],
    e_theta: &[Vec<f64>],
    zeta_lo: f64,
    dzeta: f64,
) -> GatheredField {
    let mzeta = e_r.len() - 1;
    let n = particles.len();
    let mut out = GatheredField { e_r: vec![0.0; n], e_theta: vec![0.0; n] };
    for p in 0..n {
        let fz = ((particles.zeta[p] - zeta_lo) / dzeta).clamp(0.0, mzeta as f64 - 1e-12);
        let z = (fz as usize).min(mzeta - 1);
        let wz = fz - z as f64;
        let rho = particles.rho[p];
        let mut acc_r = 0.0;
        let mut acc_t = 0.0;
        for ring in 0..4 {
            let angle = ring as f64 * std::f64::consts::FRAC_PI_2;
            let r = particles.r[p] + rho * angle.cos();
            let theta = particles.theta[p] + rho * angle.sin() / particles.r[p].max(1e-6);
            let ((i, j), (wr, wt)) = grid.locate(r, theta);
            let jp = (j + 1) % grid.mtheta;
            let c = [
                (grid.idx(i, j), (1.0 - wr) * (1.0 - wt)),
                (grid.idx(i + 1, j), wr * (1.0 - wt)),
                (grid.idx(i, jp), (1.0 - wr) * wt),
                (grid.idx(i + 1, jp), wr * wt),
            ];
            for (ix, w) in c {
                let blend_r = (1.0 - wz) * e_r[z][ix] + wz * e_r[z + 1][ix];
                let blend_t = (1.0 - wz) * e_theta[z][ix] + wz * e_theta[z + 1][ix];
                acc_r += w * blend_r;
                acc_t += w * blend_t;
            }
        }
        out.e_r[p] = acc_r * 0.25;
        out.e_theta[p] = acc_t * 0.25;
    }
    out
}

/// Drift derivatives for one marker state.
#[inline]
fn derivs(r: f64, v_par: f64, e_r: f64, e_theta: f64) -> [f64; 4] {
    let r_safe = r.max(1e-6);
    let dr = e_theta; // E×B radial drift (B = 1)
    let dtheta = -e_r / r_safe + v_par * safety_factor(r) / r_safe;
    let dzeta = v_par; // R₀ = 1
    let dw = -KAPPA * e_theta;
    [dr, dtheta, dzeta, dw]
}

/// RK2 (midpoint) push of all markers with a frozen gathered field.
/// Radial positions reflect off the annulus walls; angles wrap.
/// Returns the number of markers pushed.
pub fn push(
    grid: &PoloidalGrid,
    particles: &mut Particles,
    field: &GatheredField,
    dt: f64,
) -> usize {
    let n = particles.len();
    let tau = std::f64::consts::TAU;
    for p in 0..n {
        let (er, et) = (field.e_r[p], field.e_theta[p]);
        let r0 = particles.r[p];
        let k1 = derivs(r0, particles.v_par[p], er, et);
        let r_mid = r0 + 0.5 * dt * k1[0];
        let k2 = derivs(r_mid, particles.v_par[p], er, et);
        let mut r_new = r0 + dt * k2[0];
        // Reflect at the annulus walls.
        if r_new < grid.r_inner {
            r_new = 2.0 * grid.r_inner - r_new;
        } else if r_new > grid.r_outer {
            r_new = 2.0 * grid.r_outer - r_new;
        }
        particles.r[p] = r_new.clamp(grid.r_inner, grid.r_outer);
        particles.theta[p] = (particles.theta[p] + dt * k2[1]).rem_euclid(tau);
        particles.zeta[p] = (particles.zeta[p] + dt * k2[2]).rem_euclid(tau);
        particles.weight[p] += dt * k2[3];
    }
    n
}

/// Indices of markers whose ζ has left the wedge `[zeta_lo, zeta_hi)` —
/// the shift candidates for the toroidal particle exchange.
pub fn escapees(particles: &Particles, zeta_lo: f64, zeta_hi: f64) -> Vec<usize> {
    (0..particles.len())
        .filter(|&p| {
            let z = particles.zeta[p];
            z < zeta_lo || z >= zeta_hi
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particles::load_uniform;

    fn grid() -> PoloidalGrid {
        PoloidalGrid { mpsi: 12, mtheta: 24, r_inner: 0.1, r_outer: 0.9 }
    }

    fn zero_field(g: &PoloidalGrid, mzeta: usize) -> Vec<Vec<f64>> {
        (0..=mzeta).map(|_| vec![0.0; g.len()]).collect()
    }

    #[test]
    fn gather_of_uniform_field_is_exact() {
        let g = grid();
        let parts = load_uniform(200, 0.15, 0.85, 0.0, 1.0, 5);
        let er: Vec<Vec<f64>> = (0..=2).map(|_| vec![3.0; g.len()]).collect();
        let et: Vec<Vec<f64>> = (0..=2).map(|_| vec![-1.5; g.len()]).collect();
        let f = gather(&g, &parts, &er, &et, 0.0, 0.5);
        for p in 0..parts.len() {
            assert!((f.e_r[p] - 3.0).abs() < 1e-12);
            assert!((f.e_theta[p] + 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_field_push_streams_along_field_lines() {
        let g = grid();
        let mut parts = crate::particles::Particles::default();
        parts.push([0.5, 0.0, 0.0, 1.0, 1.0, 0.0]);
        let field = GatheredField { e_r: vec![0.0], e_theta: vec![0.0] };
        let dt = 0.01;
        push(&g, &mut parts, &field, dt);
        // ζ advances by v∥ dt, θ by v∥ q(r)/r dt; r and w unchanged.
        assert!((parts.zeta[0] - 0.01).abs() < 1e-12);
        let want_theta = 1.0 * safety_factor(0.5) / 0.5 * dt;
        assert!((parts.theta[0] - want_theta).abs() < 1e-12);
        assert_eq!(parts.r[0], 0.5);
        assert_eq!(parts.weight[0], 1.0);
    }

    #[test]
    fn radial_reflection_keeps_markers_inside() {
        let g = grid();
        let mut parts = crate::particles::Particles::default();
        parts.push([0.89, 0.0, 0.5, 0.0, 1.0, 0.0]);
        // Strong outward E×B drift: E_θ > 0.
        let field = GatheredField { e_r: vec![0.0], e_theta: vec![5.0] };
        push(&g, &mut parts, &field, 0.01);
        assert!(parts.r[0] >= g.r_inner && parts.r[0] <= g.r_outer);
    }

    #[test]
    fn weights_respond_to_radial_drift() {
        let g = grid();
        let mut parts = crate::particles::Particles::default();
        parts.push([0.5, 0.0, 0.5, 0.0, 1.0, 0.0]);
        let field = GatheredField { e_r: vec![0.0], e_theta: vec![1.0] };
        push(&g, &mut parts, &field, 0.1);
        // dw = −κ E_θ dt = −2 × 1 × 0.1.
        assert!((parts.weight[0] - (1.0 - 0.2)).abs() < 1e-12);
    }

    #[test]
    fn escapees_detects_boundary_crossings() {
        let mut parts = crate::particles::Particles::default();
        parts.push([0.5, 0.0, 0.45, 0.0, 1.0, 0.0]); // inside
        parts.push([0.5, 0.0, 0.55, 0.0, 1.0, 0.0]); // above
        parts.push([0.5, 0.0, 6.1, 0.0, 1.0, 0.0]); // below (wrapped)
        let esc = escapees(&parts, 0.0, 0.5);
        assert_eq!(esc, vec![1, 2]);
    }

    #[test]
    fn gather_then_deposit_are_adjoint_in_count() {
        // The gather touches exactly the same 32 points the scatter does;
        // sanity-check via a delta field: a marker reads back only what it
        // would deposit to.
        let g = grid();
        let mut parts = crate::particles::Particles::default();
        parts.push([0.5, 0.3, 0.25, 0.0, 1.0, 0.0]);
        let mut er = zero_field(&g, 2);
        // Put a spike at the marker's nearest corner.
        let ((i, j), _) = g.locate(0.5, 0.3);
        er[0][g.idx(i, j)] = 1.0;
        let et = zero_field(&g, 2);
        let f = gather(&g, &parts, &er, &et, 0.0, 0.5);
        assert!(f.e_r[0] > 0.0, "marker must see the spike");
        assert!(f.e_r[0] <= 1.0);
    }
}
