//! Field gather and particle push.
//!
//! The gather mirrors the deposition stencil (4 gyro-ring points × bilinear
//! × 2 planes — random reads instead of random writes), then a second-order
//! Runge–Kutta step advances the gyro-center drift equations:
//!
//! ```text
//! dr/dt     = E_θ / B                    (E×B, radial)
//! dθ/dt     = −E_r / (B r) + v∥ q(r)/r   (E×B + field-line twist)
//! dζ/dt     = v∥ / R₀
//! dw/dt     = −κ · (E_θ/B)               (δf weight: radial drift × gradient)
//! ```
//!
//! with B = R₀ = 1 in normalized units and κ the background temperature
//! gradient drive.

use crate::geometry::{safety_factor, PoloidalGrid};
use crate::particles::Particles;
use hec_core::pool::Threads;

/// Background gradient drive for the δf weight equation.
pub const KAPPA: f64 = 2.0;

/// Flops per marker per gather, audited from the kernel: 4 ring points ×
/// (locate 6 + corner weights 6 + 2 fields × 8 weighted adds + plane blend
/// 4) ≈ 4 × 28, plus the ring setup 12.
pub const GATHER_FLOPS_PER_PARTICLE: f64 = 124.0;

/// Flops per marker per RK2 push (two derivative evaluations at ~20 flops
/// plus the update arithmetic).
pub const PUSH_FLOPS_PER_PARTICLE: f64 = 58.0;

/// Gathered electric field at each marker.
#[derive(Clone, Debug, Default)]
pub struct GatheredField {
    /// Radial field per marker.
    pub e_r: Vec<f64>,
    /// Poloidal field per marker.
    pub e_theta: Vec<f64>,
}

/// Gathers (E_r, E_θ) at every marker from the per-plane field arrays
/// using the gyro-averaged stencil. `e_r`/`e_theta` hold `mzeta + 1`
/// planes (the last being the ghost plane already synchronized by the
/// caller).
pub fn gather(
    grid: &PoloidalGrid,
    particles: &Particles,
    e_r: &[Vec<f64>],
    e_theta: &[Vec<f64>],
    zeta_lo: f64,
    dzeta: f64,
) -> GatheredField {
    let n = particles.len();
    let mut out = GatheredField { e_r: vec![0.0; n], e_theta: vec![0.0; n] };
    gather_range(grid, particles, 0, e_r, e_theta, zeta_lo, dzeta, &mut out.e_r, &mut out.e_theta);
    out
}

/// Gathers markers `lo..lo + out_r.len()` into the output slices (local
/// index 0 = marker `lo`) — the read stencil shared by the serial and
/// threaded paths.
#[allow(clippy::too_many_arguments)]
fn gather_range(
    grid: &PoloidalGrid,
    particles: &Particles,
    lo: usize,
    e_r: &[Vec<f64>],
    e_theta: &[Vec<f64>],
    zeta_lo: f64,
    dzeta: f64,
    out_r: &mut [f64],
    out_t: &mut [f64],
) {
    let mzeta = e_r.len() - 1;
    for local in 0..out_r.len() {
        let p = lo + local;
        let fz = ((particles.zeta[p] - zeta_lo) / dzeta).clamp(0.0, mzeta as f64 - 1e-12);
        let z = (fz as usize).min(mzeta - 1);
        let wz = fz - z as f64;
        let rho = particles.rho[p];
        let mut acc_r = 0.0;
        let mut acc_t = 0.0;
        for ring in 0..4 {
            let angle = ring as f64 * std::f64::consts::FRAC_PI_2;
            let r = particles.r[p] + rho * angle.cos();
            let theta = particles.theta[p] + rho * angle.sin() / particles.r[p].max(1e-6);
            let ((i, j), (wr, wt)) = grid.locate(r, theta);
            let jp = (j + 1) % grid.mtheta;
            let c = [
                (grid.idx(i, j), (1.0 - wr) * (1.0 - wt)),
                (grid.idx(i + 1, j), wr * (1.0 - wt)),
                (grid.idx(i, jp), (1.0 - wr) * wt),
                (grid.idx(i + 1, jp), wr * wt),
            ];
            for (ix, w) in c {
                let blend_r = (1.0 - wz) * e_r[z][ix] + wz * e_r[z + 1][ix];
                let blend_t = (1.0 - wz) * e_theta[z][ix] + wz * e_theta[z + 1][ix];
                acc_r += w * blend_r;
                acc_t += w * blend_t;
            }
        }
        out_r[local] = acc_r * 0.25;
        out_t[local] = acc_t * 0.25;
    }
}

/// [`gather`] with the markers split across workers. Every marker's
/// field is an independent pure read, and each worker writes a disjoint
/// range of the output, so the result is **bitwise identical** to the
/// serial gather for any worker count.
pub fn gather_threaded(
    grid: &PoloidalGrid,
    particles: &Particles,
    e_r: &[Vec<f64>],
    e_theta: &[Vec<f64>],
    zeta_lo: f64,
    dzeta: f64,
    threads: &Threads,
) -> GatheredField {
    let n = particles.len();
    let chunk = n.div_ceil(threads.workers()).max(1);
    if chunk >= n {
        return gather(grid, particles, e_r, e_theta, zeta_lo, dzeta);
    }
    let mut out = GatheredField { e_r: vec![0.0; n], e_theta: vec![0.0; n] };
    let tasks: Vec<_> = out
        .e_r
        .chunks_mut(chunk)
        .zip(out.e_theta.chunks_mut(chunk))
        .enumerate()
        .map(|(c, (gr, gt))| {
            move || gather_range(grid, particles, c * chunk, e_r, e_theta, zeta_lo, dzeta, gr, gt)
        })
        .collect();
    threads.par_tasks(tasks);
    out
}

/// Drift derivatives for one marker state.
#[inline]
fn derivs(r: f64, v_par: f64, e_r: f64, e_theta: f64) -> [f64; 4] {
    let r_safe = r.max(1e-6);
    let dr = e_theta; // E×B radial drift (B = 1)
    let dtheta = -e_r / r_safe + v_par * safety_factor(r) / r_safe;
    let dzeta = v_par; // R₀ = 1
    let dw = -KAPPA * e_theta;
    [dr, dtheta, dzeta, dw]
}

/// RK2 (midpoint) push of all markers with a frozen gathered field.
/// Radial positions reflect off the annulus walls; angles wrap.
/// Returns the number of markers pushed.
pub fn push(
    grid: &PoloidalGrid,
    particles: &mut Particles,
    field: &GatheredField,
    dt: f64,
) -> usize {
    let n = particles.len();
    let Particles { r, theta, zeta, v_par, weight, .. } = particles;
    push_range(grid, r, theta, zeta, weight, v_par, &field.e_r, &field.e_theta, dt);
    n
}

/// RK2 update of one slice of markers: all slices are equal-length views
/// at the same particle offset. This is the per-marker arithmetic shared
/// by the serial and threaded paths.
#[allow(clippy::too_many_arguments)]
fn push_range(
    grid: &PoloidalGrid,
    r: &mut [f64],
    theta: &mut [f64],
    zeta: &mut [f64],
    weight: &mut [f64],
    v_par: &[f64],
    e_r: &[f64],
    e_theta: &[f64],
    dt: f64,
) {
    let tau = std::f64::consts::TAU;
    for p in 0..r.len() {
        let (er, et) = (e_r[p], e_theta[p]);
        let r0 = r[p];
        let k1 = derivs(r0, v_par[p], er, et);
        let r_mid = r0 + 0.5 * dt * k1[0];
        let k2 = derivs(r_mid, v_par[p], er, et);
        let mut r_new = r0 + dt * k2[0];
        // Reflect at the annulus walls.
        if r_new < grid.r_inner {
            r_new = 2.0 * grid.r_inner - r_new;
        } else if r_new > grid.r_outer {
            r_new = 2.0 * grid.r_outer - r_new;
        }
        r[p] = r_new.clamp(grid.r_inner, grid.r_outer);
        theta[p] = (theta[p] + dt * k2[1]).rem_euclid(tau);
        zeta[p] = (zeta[p] + dt * k2[2]).rem_euclid(tau);
        weight[p] += dt * k2[3];
    }
}

/// [`push`] with the markers split across workers. Each worker owns a
/// disjoint range of every mutated attribute array, and no marker reads
/// another's state, so the result is **bitwise identical** to the serial
/// push for any worker count.
pub fn push_threaded(
    grid: &PoloidalGrid,
    particles: &mut Particles,
    field: &GatheredField,
    dt: f64,
    threads: &Threads,
) -> usize {
    let n = particles.len();
    let chunk = n.div_ceil(threads.workers()).max(1);
    if chunk >= n {
        return push(grid, particles, field, dt);
    }
    let Particles { r, theta, zeta, v_par, weight, .. } = particles;
    let tasks: Vec<_> = r
        .chunks_mut(chunk)
        .zip(theta.chunks_mut(chunk))
        .zip(zeta.chunks_mut(chunk))
        .zip(weight.chunks_mut(chunk))
        .enumerate()
        .map(|(c, (((cr, ct), cz), cw))| {
            let lo = c * chunk;
            let hi = lo + cr.len();
            let vp = &v_par[lo..hi];
            let er = &field.e_r[lo..hi];
            let et = &field.e_theta[lo..hi];
            move || push_range(grid, cr, ct, cz, cw, vp, er, et, dt)
        })
        .collect();
    threads.par_tasks(tasks);
    n
}

/// Indices of markers whose ζ has left the wedge `[zeta_lo, zeta_hi)` —
/// the shift candidates for the toroidal particle exchange.
pub fn escapees(particles: &Particles, zeta_lo: f64, zeta_hi: f64) -> Vec<usize> {
    (0..particles.len())
        .filter(|&p| {
            let z = particles.zeta[p];
            z < zeta_lo || z >= zeta_hi
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particles::load_uniform;

    fn grid() -> PoloidalGrid {
        PoloidalGrid { mpsi: 12, mtheta: 24, r_inner: 0.1, r_outer: 0.9 }
    }

    fn zero_field(g: &PoloidalGrid, mzeta: usize) -> Vec<Vec<f64>> {
        (0..=mzeta).map(|_| vec![0.0; g.len()]).collect()
    }

    #[test]
    fn gather_of_uniform_field_is_exact() {
        let g = grid();
        let parts = load_uniform(200, 0.15, 0.85, 0.0, 1.0, 5);
        let er: Vec<Vec<f64>> = (0..=2).map(|_| vec![3.0; g.len()]).collect();
        let et: Vec<Vec<f64>> = (0..=2).map(|_| vec![-1.5; g.len()]).collect();
        let f = gather(&g, &parts, &er, &et, 0.0, 0.5);
        for p in 0..parts.len() {
            assert!((f.e_r[p] - 3.0).abs() < 1e-12);
            assert!((f.e_theta[p] + 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_field_push_streams_along_field_lines() {
        let g = grid();
        let mut parts = crate::particles::Particles::default();
        parts.push([0.5, 0.0, 0.0, 1.0, 1.0, 0.0]);
        let field = GatheredField { e_r: vec![0.0], e_theta: vec![0.0] };
        let dt = 0.01;
        push(&g, &mut parts, &field, dt);
        // ζ advances by v∥ dt, θ by v∥ q(r)/r dt; r and w unchanged.
        assert!((parts.zeta[0] - 0.01).abs() < 1e-12);
        let want_theta = 1.0 * safety_factor(0.5) / 0.5 * dt;
        assert!((parts.theta[0] - want_theta).abs() < 1e-12);
        assert_eq!(parts.r[0], 0.5);
        assert_eq!(parts.weight[0], 1.0);
    }

    #[test]
    fn radial_reflection_keeps_markers_inside() {
        let g = grid();
        let mut parts = crate::particles::Particles::default();
        parts.push([0.89, 0.0, 0.5, 0.0, 1.0, 0.0]);
        // Strong outward E×B drift: E_θ > 0.
        let field = GatheredField { e_r: vec![0.0], e_theta: vec![5.0] };
        push(&g, &mut parts, &field, 0.01);
        assert!(parts.r[0] >= g.r_inner && parts.r[0] <= g.r_outer);
    }

    #[test]
    fn weights_respond_to_radial_drift() {
        let g = grid();
        let mut parts = crate::particles::Particles::default();
        parts.push([0.5, 0.0, 0.5, 0.0, 1.0, 0.0]);
        let field = GatheredField { e_r: vec![0.0], e_theta: vec![1.0] };
        push(&g, &mut parts, &field, 0.1);
        // dw = −κ E_θ dt = −2 × 1 × 0.1.
        assert!((parts.weight[0] - (1.0 - 0.2)).abs() < 1e-12);
    }

    #[test]
    fn escapees_detects_boundary_crossings() {
        let mut parts = crate::particles::Particles::default();
        parts.push([0.5, 0.0, 0.45, 0.0, 1.0, 0.0]); // inside
        parts.push([0.5, 0.0, 0.55, 0.0, 1.0, 0.0]); // above
        parts.push([0.5, 0.0, 6.1, 0.0, 1.0, 0.0]); // below (wrapped)
        let esc = escapees(&parts, 0.0, 0.5);
        assert_eq!(esc, vec![1, 2]);
    }

    #[test]
    fn gather_then_deposit_are_adjoint_in_count() {
        // The gather touches exactly the same 32 points the scatter does;
        // sanity-check via a delta field: a marker reads back only what it
        // would deposit to.
        let g = grid();
        let mut parts = crate::particles::Particles::default();
        parts.push([0.5, 0.3, 0.25, 0.0, 1.0, 0.0]);
        let mut er = zero_field(&g, 2);
        // Put a spike at the marker's nearest corner.
        let ((i, j), _) = g.locate(0.5, 0.3);
        er[0][g.idx(i, j)] = 1.0;
        let et = zero_field(&g, 2);
        let f = gather(&g, &parts, &er, &et, 0.0, 0.5);
        assert!(f.e_r[0] > 0.0, "marker must see the spike");
        assert!(f.e_r[0] <= 1.0);
    }

    #[test]
    fn threaded_gather_and_push_are_bitwise_serial() {
        let g = grid();
        let parts = load_uniform(501, 0.15, 0.85, 0.0, 1.0, 11);
        // A structured (non-uniform) field so the gather actually blends.
        let er: Vec<Vec<f64>> =
            (0..=2).map(|z| (0..g.len()).map(|i| (z * 7 + i) as f64 * 1e-3).collect()).collect();
        let et: Vec<Vec<f64>> = (0..=2)
            .map(|z| (0..g.len()).map(|i| ((i * 3) % 17) as f64 * 1e-3 - z as f64).collect())
            .collect();
        let f_serial = gather(&g, &parts, &er, &et, 0.0, 0.5);
        let mut p_serial = parts.clone();
        push(&g, &mut p_serial, &f_serial, 0.02);
        for workers in [1usize, 2, 4] {
            let t = Threads::new(workers);
            let f = gather_threaded(&g, &parts, &er, &et, 0.0, 0.5, &t);
            for p in 0..parts.len() {
                assert_eq!(f.e_r[p].to_bits(), f_serial.e_r[p].to_bits(), "workers={workers}");
                assert_eq!(f.e_theta[p].to_bits(), f_serial.e_theta[p].to_bits());
            }
            let mut pp = parts.clone();
            push_threaded(&g, &mut pp, &f, 0.02, &t);
            for p in 0..parts.len() {
                assert_eq!(pp.r[p].to_bits(), p_serial.r[p].to_bits(), "workers={workers}");
                assert_eq!(pp.theta[p].to_bits(), p_serial.theta[p].to_bits());
                assert_eq!(pp.zeta[p].to_bits(), p_serial.zeta[p].to_bits());
                assert_eq!(pp.weight[p].to_bits(), p_serial.weight[p].to_bits());
            }
        }
    }
}
