//! The GTC driver: two-level decomposition over msim.
//!
//! Level 1 (paper §4.1): a 1D **toroidal domain decomposition** into
//! `ndomains` wedges (physics caps this at ~64 — the electrostatic
//! potential is quasi-2D in field-line coordinates).
//!
//! Level 2 (the paper's new contribution, §4.1): a **particle
//! decomposition** — the markers inside each wedge are split over
//! `npe = P / ndomains` processes. Each process deposits its own markers;
//! the wedge's charge grid is then merged with an `Allreduce` over the
//! wedge sub-communicator (the added reduction cost the paper analyzes),
//! every process solves the wedge's Poisson planes redundantly (as real
//! GTC does), and markers that cross wedge boundaries are shifted to the
//! matching process of the neighbor wedge.

use hec_core::pool::Threads;
use hec_core::probe::{self, Counters};
use msim::{Comm, ReduceOp};

use crate::deposit::{deposit_threaded, FLOPS_PER_PARTICLE as DEPOSIT_FLOPS};
use crate::geometry::{Fields, PoloidalGrid};
use crate::particles::{load_uniform, Particles, ATTRS};
use crate::poisson::solve_plane;
use crate::push::{
    escapees, gather_threaded, push_threaded, GATHER_FLOPS_PER_PARTICLE, PUSH_FLOPS_PER_PARTICLE,
};

/// Parameters of a GTC run.
#[derive(Clone, Copy, Debug)]
pub struct GtcParams {
    /// Radial grid points per poloidal plane.
    pub mpsi: usize,
    /// Poloidal grid points per plane.
    pub mtheta: usize,
    /// Total toroidal planes around the torus.
    pub mzeta_total: usize,
    /// Toroidal domains (≤ mzeta_total; the paper uses 64).
    pub ndomains: usize,
    /// Markers per domain (split over the domain's processes).
    pub particles_per_domain: usize,
    /// Timestep.
    pub dt: f64,
    /// RNG seed base.
    pub seed: u64,
    /// Shared-memory workers per process (0 = auto: `HEC_THREADS` or the
    /// machine). Every threaded kernel is bitwise invariant in this.
    pub threads: usize,
}

impl Default for GtcParams {
    fn default() -> Self {
        GtcParams {
            mpsi: 12,
            mtheta: 24,
            mzeta_total: 8,
            ndomains: 4,
            particles_per_domain: 2000,
            dt: 0.02,
            seed: 1000,
            threads: 0,
        }
    }
}

/// Per-step instrumentation counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct GtcCounters {
    /// Markers deposited (sum over steps).
    pub deposited: u64,
    /// Markers gathered+pushed.
    pub pushed: u64,
    /// CG iterations across all plane solves.
    pub cg_iterations: u64,
    /// Markers shifted to toroidal neighbors.
    pub shifted: u64,
    /// Bytes sent in particle shifts.
    pub shift_bytes: u64,
}

/// One process's share of a GTC simulation.
pub struct GtcSim {
    /// Run parameters.
    pub params: GtcParams,
    /// This process's toroidal domain index.
    pub domain: usize,
    /// This process's rank within the domain (particle decomposition).
    pub sub_rank: usize,
    /// Processes per domain.
    pub npe: usize,
    /// Wedge bounds in ζ.
    pub zeta_lo: f64,
    /// Upper wedge bound in ζ.
    pub zeta_hi: f64,
    /// Local markers.
    pub particles: Particles,
    /// Wedge fields (replicated within the domain).
    pub fields: Fields,
    /// Sub-communicator of the domain (particle decomposition).
    sub: Comm,
    /// Shared-memory worker handle for the hot kernels.
    pub threads: Threads,
    /// Instrumentation.
    pub counters: GtcCounters,
}

impl GtcSim {
    /// Sets up decomposition, communicators, and the marker ensemble.
    ///
    /// # Panics
    /// Panics unless `ndomains` divides both the world size and
    /// `mzeta_total`.
    pub fn new(params: GtcParams, world: &mut Comm) -> Self {
        let p = world.size();
        assert!(p % params.ndomains == 0, "ndomains must divide the process count");
        assert!(
            params.mzeta_total % params.ndomains == 0,
            "toroidal planes must split evenly over domains"
        );
        let npe = p / params.ndomains;
        // Block mapping: domain-major, matching real GTC's layout where the
        // particle decomposition is the fast index.
        let domain = world.rank() / npe;
        let sub_rank = world.rank() % npe;
        let sub = world.split(domain as u64, sub_rank as u64);

        let grid =
            PoloidalGrid { mpsi: params.mpsi, mtheta: params.mtheta, r_inner: 0.1, r_outer: 0.9 };
        let wedge = std::f64::consts::TAU / params.ndomains as f64;
        let (zeta_lo, zeta_hi) = (domain as f64 * wedge, (domain + 1) as f64 * wedge);

        // Load the domain ensemble deterministically, then keep the strided
        // slice belonging to this sub-rank — the union over sub-ranks is
        // identical for every npe, which the tests exploit.
        let all = load_uniform(
            params.particles_per_domain,
            grid.r_inner,
            grid.r_outer,
            zeta_lo,
            zeta_hi,
            params.seed + domain as u64,
        );
        let mut particles = Particles::default();
        for i in (sub_rank..all.len()).step_by(npe) {
            particles.push(all.get(i));
        }

        let mzeta_local = params.mzeta_total / params.ndomains;
        let fields = Fields::new(grid, mzeta_local);
        GtcSim {
            params,
            domain,
            sub_rank,
            npe,
            zeta_lo,
            zeta_hi,
            particles,
            fields,
            sub,
            threads: Threads::from_config(params.threads),
            counters: GtcCounters::default(),
        }
    }

    /// World rank of the same sub-rank in the toroidal neighbor domain.
    fn neighbor_rank(&self, dir: i64) -> usize {
        let nd = self.params.ndomains as i64;
        let d = (self.domain as i64 + dir).rem_euclid(nd) as usize;
        d * self.npe + self.sub_rank
    }

    /// Local plane spacing in ζ.
    fn dzeta(&self) -> f64 {
        (self.zeta_hi - self.zeta_lo) / self.fields.mzeta as f64
    }

    /// One full PIC cycle: deposit → merge → solve → field → gather → push
    /// → shift.
    pub fn step(&mut self, world: &mut Comm) {
        let grid = self.fields.grid;
        let mzeta = self.fields.mzeta;
        let plane_len = grid.len();

        // --- Bin markers by poloidal cell so the scatter walks the charge
        // grid in memory order (the cache-machine cure for the paper's §4
        // scatter locality problem). The sort is a pure deterministic
        // reorder — worker-count invariance of the whole step is untouched.
        self.particles.bin_by_cell(&grid);

        // --- Charge deposition (scatter) into mzeta planes + ghost:
        // the work-vector method across threads (private grid copies,
        // fixed-order reduction — bitwise invariant in the worker count).
        let mut charge: Vec<Vec<f64>> = (0..=mzeta).map(|_| vec![0.0; plane_len]).collect();
        let deposited = deposit_threaded(
            &grid,
            &self.particles,
            &mut charge,
            self.zeta_lo,
            self.dzeta(),
            &self.threads,
        ) as u64;
        self.counters.deposited += deposited;
        // Deposition events from the audited per-marker constants × the
        // markers actually deposited — identical for any worker count.
        probe::count(
            "gtc/charge deposition",
            Counters {
                flops: deposited * DEPOSIT_FLOPS as u64,
                unit_stride_bytes: deposited * ATTRS as u64 * 8,
                gather_scatter_bytes: deposited * crate::deposit::SCATTER_POINTS as u64 * 16,
                gather_scatter_ops: deposited * crate::deposit::SCATTER_POINTS as u64,
                vector_iters: deposited,
                vector_loops: 1,
                ..Default::default()
            },
        );

        // --- Merge charge over the particle decomposition (the Allreduce
        // the paper's new algorithm introduces).
        if self.npe > 1 {
            let mut flat: Vec<f64> = charge.iter().flatten().copied().collect();
            self.sub.allreduce_f64(ReduceOp::Sum, &mut flat);
            for (z, plane) in charge.iter_mut().enumerate() {
                plane.copy_from_slice(&flat[z * plane_len..(z + 1) * plane_len]);
            }
        }

        // --- Toroidal ghost-plane fold: my ghost charge belongs to the next
        // domain's plane 0; theirs arrives for mine.
        if self.params.ndomains > 1 {
            let next = self.neighbor_rank(1);
            let prev = self.neighbor_rank(-1);
            let from_prev = world.sendrecv_f64(next, prev, 21, &charge[mzeta]);
            for (c, g) in charge[0].iter_mut().zip(&from_prev) {
                *c += *g;
            }
        } else {
            let ghost = charge[mzeta].clone();
            for (c, g) in charge[0].iter_mut().zip(&ghost) {
                *c += *g;
            }
        }
        self.fields.charge = charge;

        // --- Poisson solve on each local plane (redundant within the
        // domain, as in real GTC). The planes are independent, so they
        // run as one task each; each solve is the unchanged serial CG.
        let phis: Vec<Vec<f64>> = self.fields.phi[..mzeta].iter_mut().map(std::mem::take).collect();
        let charge_planes = &self.fields.charge;
        let results = self.threads.par_tasks(
            phis.into_iter()
                .enumerate()
                .map(|(z, mut phi)| {
                    move || {
                        let res = solve_plane(&grid, &charge_planes[z], &mut phi, 1e-8);
                        (phi, res.iterations)
                    }
                })
                .collect::<Vec<_>>(),
        );
        let mut step_cg = 0u64;
        for (z, (phi, iters)) in results.into_iter().enumerate() {
            step_cg += iters as u64;
            self.fields.phi[z] = phi;
        }
        self.counters.cg_iterations += step_cg;
        // Each CG iteration applies the 15-flop/point operator plus the
        // 10-flop/point vector updates and streams ~5 arrays per point.
        let per_cg = crate::poisson::operator_flops(&grid) as u64 + 10 * plane_len as u64;
        probe::count(
            "gtc/poisson solve",
            Counters {
                flops: step_cg * per_cg,
                unit_stride_bytes: step_cg * 40 * plane_len as u64,
                vector_iters: step_cg * plane_len as u64,
                vector_loops: step_cg,
                ..Default::default()
            },
        );

        // --- E = −∇φ, then fetch the ghost plane's field from the next
        // domain (its plane 0).
        self.fields.electric_field_from_phi();
        let (ghost_er, ghost_et) = if self.params.ndomains > 1 {
            let next = self.neighbor_rank(1);
            let prev = self.neighbor_rank(-1);
            let er = world.sendrecv_f64(prev, next, 22, &self.fields.e_r[0]);
            let et = world.sendrecv_f64(prev, next, 23, &self.fields.e_theta[0]);
            (er, et)
        } else {
            (self.fields.e_r[0].clone(), self.fields.e_theta[0].clone())
        };

        // --- Gather the field at the markers and push.
        let mut er_planes: Vec<Vec<f64>> = self.fields.e_r[..mzeta].to_vec();
        er_planes.push(ghost_er);
        let mut et_planes: Vec<Vec<f64>> = self.fields.e_theta[..mzeta].to_vec();
        et_planes.push(ghost_et);
        let field = gather_threaded(
            &grid,
            &self.particles,
            &er_planes,
            &et_planes,
            self.zeta_lo,
            self.dzeta(),
            &self.threads,
        );
        let pushed =
            push_threaded(&grid, &mut self.particles, &field, self.params.dt, &self.threads) as u64;
        self.counters.pushed += pushed;
        // The gather reads 64 stencil values per marker (2 components ×
        // 2 planes × 16 points); the push streams the marker arrays.
        probe::count(
            "gtc/field gather",
            Counters {
                flops: pushed * GATHER_FLOPS_PER_PARTICLE as u64,
                unit_stride_bytes: pushed * ATTRS as u64 * 8,
                gather_scatter_bytes: pushed * 64 * 8,
                gather_scatter_ops: pushed * 64,
                vector_iters: pushed,
                vector_loops: 1,
                ..Default::default()
            },
        );
        probe::count(
            "gtc/particle push",
            Counters {
                flops: pushed * PUSH_FLOPS_PER_PARTICLE as u64,
                unit_stride_bytes: pushed * ATTRS as u64 * 16,
                vector_iters: pushed,
                vector_loops: 1,
                ..Default::default()
            },
        );

        // --- Shift escaped markers to the toroidal neighbors.
        self.shift(world);
    }

    /// Sends markers that left the wedge to the neighbor domains and
    /// absorbs the arrivals. Markers always move at most one wedge per
    /// step (enforced by the CFL-ish dt), so one exchange suffices.
    fn shift(&mut self, world: &mut Comm) {
        if self.params.ndomains == 1 {
            return; // periodic wrap is implicit: ζ is already wrapped
        }
        let mut esc = escapees(&self.particles, self.zeta_lo, self.zeta_hi);
        let tau = std::f64::consts::TAU;
        // Remove in descending index order (swap_remove keeps lower indices
        // valid), classifying by direction as we go: ζ above the wedge goes
        // forward, below goes backward, accounting for the periodic seam.
        esc.sort_unstable_by(|a, b| b.cmp(a));
        let (mut fwd_buf, mut bwd_buf) = (Vec::new(), Vec::new());
        for p in esc {
            let z = self.particles.zeta[p];
            let delta = (z - self.zeta_lo).rem_euclid(tau);
            let attrs = self.particles.swap_remove(p);
            if delta < tau / 2.0 {
                fwd_buf.extend_from_slice(&attrs);
            } else {
                bwd_buf.extend_from_slice(&attrs);
            }
        }
        self.counters.shifted += ((fwd_buf.len() + bwd_buf.len()) / ATTRS) as u64;
        self.counters.shift_bytes += ((fwd_buf.len() + bwd_buf.len()) * 8) as u64;

        let next = self.neighbor_rank(1);
        let prev = self.neighbor_rank(-1);
        let from_prev = world.sendrecv_f64(next, prev, 31, &fwd_buf);
        let from_next = world.sendrecv_f64(prev, next, 32, &bwd_buf);
        self.particles.absorb(&from_prev);
        self.particles.absorb(&from_next);
    }

    /// Runs `steps` PIC cycles.
    pub fn run(&mut self, world: &mut Comm, steps: usize) {
        for _ in 0..steps {
            self.step(world);
        }
    }

    /// Total flops executed by this rank so far (deposit + gather + push +
    /// Poisson CG).
    pub fn flops(&self) -> f64 {
        let per_cg = crate::poisson::operator_flops(&self.fields.grid)
            + 10.0 * self.fields.grid.len() as f64;
        self.counters.deposited as f64 * DEPOSIT_FLOPS
            + self.counters.pushed as f64 * (GATHER_FLOPS_PER_PARTICLE + PUSH_FLOPS_PER_PARTICLE)
            + self.counters.cg_iterations as f64 * per_cg
    }

    /// Globally reduced (particle count, total weight).
    pub fn global_particle_stats(&self, world: &mut Comm) -> (f64, f64) {
        let mut v = vec![self.particles.len() as f64, self.particles.total_weight()];
        world.allreduce_f64(ReduceOp::Sum, &mut v);
        (v[0], v[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_config(params: GtcParams, procs: usize, steps: usize) -> Vec<(f64, f64)> {
        msim::run(procs, move |world| {
            let mut sim = GtcSim::new(params, world);
            sim.run(world, steps);
            sim.global_particle_stats(world)
        })
        .unwrap()
    }

    #[test]
    fn particle_count_is_conserved_across_shifts() {
        let params = GtcParams { particles_per_domain: 500, ..Default::default() };
        let total0 = (params.particles_per_domain * params.ndomains) as f64;
        for &(procs, steps) in &[(4usize, 5usize), (8, 5)] {
            let stats = run_config(params, procs, steps);
            for (count, _) in &stats {
                assert_eq!(*count, total0, "procs={procs}");
            }
        }
    }

    #[test]
    fn markers_stay_in_their_wedges() {
        let params = GtcParams { particles_per_domain: 300, ..Default::default() };
        msim::run(4, move |world| {
            let mut sim = GtcSim::new(params, world);
            sim.run(world, 4);
            for p in 0..sim.particles.len() {
                let z = sim.particles.zeta[p];
                assert!(
                    z >= sim.zeta_lo - 1e-12 && z < sim.zeta_hi + 1e-12,
                    "marker at ζ={z} outside wedge [{}, {})",
                    sim.zeta_lo,
                    sim.zeta_hi
                );
            }
        })
        .unwrap();
    }

    #[test]
    fn particle_decomposition_reproduces_single_pe_charge() {
        // npe = 1 vs npe = 2 with the same ensemble: the merged charge grid
        // must agree to round-off. This is the correctness core of the
        // paper's new decomposition.
        let params = GtcParams {
            ndomains: 2,
            mzeta_total: 4,
            particles_per_domain: 400,
            ..Default::default()
        };
        let charge1 = msim::run(2, move |world| {
            let mut sim = GtcSim::new(params, world);
            sim.step(world);
            sim.fields.charge.clone()
        })
        .unwrap();
        let charge2 = msim::run(4, move |world| {
            let mut sim = GtcSim::new(params, world);
            sim.step(world);
            (sim.domain, sim.fields.charge.clone())
        })
        .unwrap();
        // Compare domain 0's charge: rank 0 in the npe=1 run, ranks 0 and 1
        // in the npe=2 run (replicated within the domain).
        for (d, ch) in &charge2 {
            let reference = &charge1[*d];
            for (pa, pb) in reference.iter().zip(ch) {
                for (a, b) in pa.iter().zip(pb) {
                    assert!((a - b).abs() < 1e-9, "charge mismatch in domain {d}");
                }
            }
        }
    }

    #[test]
    fn shifts_actually_happen() {
        let params = GtcParams { particles_per_domain: 1000, dt: 0.05, ..Default::default() };
        let counters = msim::run(4, move |world| {
            let mut sim = GtcSim::new(params, world);
            sim.run(world, 5);
            sim.counters
        })
        .unwrap();
        let total_shifted: u64 = counters.iter().map(|c| c.shifted).sum();
        assert!(total_shifted > 0, "no toroidal particle traffic in 5 steps");
    }

    #[test]
    fn flop_accounting_is_positive_and_scales_with_steps() {
        let params = GtcParams { particles_per_domain: 200, ..Default::default() };
        let f = msim::run(4, move |world| {
            let mut sim = GtcSim::new(params, world);
            sim.run(world, 1);
            let f1 = sim.flops();
            sim.run(world, 1);
            (f1, sim.flops())
        })
        .unwrap();
        for (f1, f2) in f {
            assert!(f1 > 0.0);
            assert!(f2 > 1.5 * f1, "second step should add comparable flops");
        }
    }

    #[test]
    fn simulation_is_bitwise_identical_across_hec_threads() {
        // Determinism regression guard: the whole PIC loop — threaded
        // deposit, Poisson planes, gather, push — must produce
        // byte-for-byte identical state at HEC_THREADS=1 and =4.
        // particles_per_domain is chosen to force multiple private-grid
        // chunks in the threaded deposit.
        let params = GtcParams {
            ndomains: 2,
            mzeta_total: 4,
            particles_per_domain: 2500,
            threads: 0, // auto: resolves from HEC_THREADS below
            ..Default::default()
        };
        let run_at = |threads: &str| {
            std::env::set_var("HEC_THREADS", threads);
            msim::run(2, move |world| {
                let mut sim = GtcSim::new(params, world);
                sim.run(world, 3);
                let mut bits: Vec<u64> = Vec::new();
                for v in [
                    &sim.particles.r,
                    &sim.particles.theta,
                    &sim.particles.zeta,
                    &sim.particles.weight,
                ] {
                    bits.extend(v.iter().map(|x| x.to_bits()));
                }
                for plane in sim.fields.charge.iter().chain(sim.fields.phi.iter()) {
                    bits.extend(plane.iter().map(|x| x.to_bits()));
                }
                bits
            })
            .unwrap()
        };
        let serial = run_at("1");
        let threaded = run_at("4");
        std::env::remove_var("HEC_THREADS");
        assert_eq!(serial.len(), threaded.len());
        for (rank, (a, b)) in serial.iter().zip(&threaded).enumerate() {
            assert_eq!(a, b, "rank {rank} state diverged between 1 and 4 threads");
        }
    }

    #[test]
    fn charge_is_conserved_globally() {
        // Total deposited charge across all domains equals total weight
        // (before the push changes weights).
        let params = GtcParams { particles_per_domain: 600, ..Default::default() };
        msim::run(4, move |world| {
            let mut sim = GtcSim::new(params, world);
            let w0 = sim.global_particle_stats(world).1;
            sim.step(world);
            // Sum plane 0..mzeta (ghost already folded into neighbor).
            let local: f64 = sim.fields.charge[..sim.fields.mzeta].iter().flatten().sum();
            // Each domain's charge is replicated npe times.
            let total = world.allreduce_sum_scalar(local) / sim.npe as f64;
            assert!((total - w0).abs() < 1e-6 * w0.abs(), "{total} vs {w0}");
        })
        .unwrap();
    }
}
