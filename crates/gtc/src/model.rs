//! Analytic workload model for Table 4's configurations.
//!
//! Table 4 is a weak-scaling study: the grid stays fixed while the particle
//! count grows with the processor count (100 particles/cell at P=64 up to
//! 3200 at P=2048), keeping ~3.2 million markers per processor. The
//! per-marker kernel costs below are the audited constants of the real
//! implementation (`deposit`, `push`), validated against instrumented runs
//! in the tests.

use std::sync::OnceLock;

use hec_arch::{CommEvent, PhaseBinding, PhaseProfile, WorkloadProfile};
use hec_core::probe::{self, Capture};

use crate::deposit::{FLOPS_PER_PARTICLE as DEPOSIT_FLOPS, SCATTER_POINTS};
use crate::particles::ATTRS;
use crate::push::{GATHER_FLOPS_PER_PARTICLE, PUSH_FLOPS_PER_PARTICLE};
use crate::sim::{GtcParams, GtcSim};

/// The production grid of the paper's benchmark problem (per-domain plane
/// sizes; the torus has 64 domains in all Table 4 runs).
pub const NDOMAINS: usize = 64;

/// Markers per processor in every Table 4 configuration ("each processor
/// follows about 3.2 million particles").
pub const PARTICLES_PER_PROC: f64 = 3.2e6;

/// Grid points per poloidal plane of the benchmark problem (the paper's
/// device-scale grid; fixed across the weak scaling).
pub const PLANE_POINTS: f64 = 128.0 * 1024.0;

/// Toroidal planes per domain.
pub const MZETA_LOCAL: f64 = 1.0;

/// Fraction of markers crossing a wedge boundary per step (measured from
/// the instrumented mini-app runs; see `shift_fraction_is_close` test).
pub const SHIFT_FRACTION: f64 = 0.05;

/// The (processors, particles-per-cell) pairs of paper Table 4.
pub const TABLE4_CONFIGS: [(usize, usize); 6] =
    [(64, 100), (128, 200), (256, 400), (512, 800), (1024, 1600), (2048, 3200)];

/// Workload profile for one GTC step on `procs` processors with
/// `PARTICLES_PER_PROC` markers each.
pub fn workload(procs: usize) -> WorkloadProfile {
    let np = PARTICLES_PER_PROC;
    let npe = (procs / NDOMAINS).max(1);
    let grid_bytes = PLANE_POINTS * (MZETA_LOCAL + 1.0) * 8.0;

    let mut w = WorkloadProfile::new("GTC", procs);

    // --- Charge deposition: random scatter (read+modify+write 32 grid
    // points per marker) plus streaming reads of the marker arrays.
    let mut dep = PhaseProfile::new("charge deposition");
    dep.flops = np * DEPOSIT_FLOPS;
    // The work-vector method vectorizes the scatter fully; the remaining
    // scalar work is the ring/stencil index arithmetic.
    dep.vector_fraction = 0.99;
    dep.avg_vector_length = 256.0;
    dep.unit_stride_bytes = np * (ATTRS as f64) * 8.0;
    dep.gather_scatter_bytes = np * (SCATTER_POINTS as f64) * 8.0 * 2.0;
    // The deposition's random writes land on one plane's grid — about a
    // megabyte — which is what the cache machines keep resident.
    dep.working_set_bytes = PLANE_POINTS * 8.0;
    dep.cacheable_fraction = 0.35; // grid reuse: nearby markers share cells
    dep.dense_fraction = 0.05;
    dep.concurrent_streams = 8.0;
    w.phases.push(dep);

    // --- Poisson solve: grid work, small next to the particle phases
    // (paper: ~85 % of the runtime is particle work).
    let mut poi = PhaseProfile::new("poisson solve");
    let cg_iters = CG_ITERS;
    poi.flops = cg_iters * 15.0 * PLANE_POINTS * MZETA_LOCAL;
    poi.vector_fraction = 0.98;
    poi.avg_vector_length = 512.0;
    poi.unit_stride_bytes = cg_iters * 5.0 * 8.0 * PLANE_POINTS * MZETA_LOCAL;
    poi.working_set_bytes = grid_bytes;
    poi.cacheable_fraction = 0.5;
    poi.dense_fraction = 0.2;
    poi.concurrent_streams = 6.0;
    w.phases.push(poi);

    // --- Field gather: the read-side mirror of the deposition.
    let mut gat = PhaseProfile::new("field gather");
    gat.flops = np * GATHER_FLOPS_PER_PARTICLE;
    gat.vector_fraction = 0.99;
    gat.avg_vector_length = 256.0;
    gat.unit_stride_bytes = np * (ATTRS as f64) * 8.0;
    // Two field components × two planes × 16 stencil points, read-only.
    gat.gather_scatter_bytes = np * 64.0 * 8.0;
    gat.working_set_bytes = 2.0 * PLANE_POINTS * 8.0;
    gat.cacheable_fraction = 0.35;
    gat.dense_fraction = 0.05;
    gat.concurrent_streams = 8.0;
    w.phases.push(gat);

    // --- Push: pure streaming over the marker arrays.
    let mut psh = PhaseProfile::new("particle push");
    psh.flops = np * PUSH_FLOPS_PER_PARTICLE;
    psh.vector_fraction = 0.99;
    psh.avg_vector_length = 256.0;
    psh.unit_stride_bytes = np * (ATTRS as f64) * 8.0 * 2.0;
    psh.working_set_bytes = np * (ATTRS as f64) * 8.0;
    psh.dense_fraction = 0.25; // straight-line RK arithmetic
    psh.concurrent_streams = 12.0;
    w.phases.push(psh);

    // --- Communication: the particle-decomposition Allreduce of the wedge
    // charge (paper §4.2's new cost), the toroidal ghost exchanges, and
    // the particle shift.
    if npe > 1 {
        w.comm.push(CommEvent::Allreduce { bytes: grid_bytes, procs: npe as f64 });
    }
    w.comm.push(CommEvent::Halo { bytes: PLANE_POINTS * 8.0, neighbors: 2.0 });
    w.comm.push(CommEvent::Halo {
        bytes: SHIFT_FRACTION * np * (ATTRS as f64) * 8.0,
        neighbors: 2.0,
    });
    w
}

/// CG iterations per step assumed by the Table 4 profile.
pub const CG_ITERS: f64 = 40.0;

/// One small instrumented mini-app run (4 ranks, one step), cached
/// process-wide. Its per-phase counters are the measured per-unit rates
/// the Table 4 profiles are built from; the validation tests pin them
/// against the analytic constants.
pub fn calibration_capture() -> &'static Capture {
    static CAP: OnceLock<Capture> = OnceLock::new();
    CAP.get_or_init(|| {
        let params = GtcParams { particles_per_domain: 500, ..Default::default() };
        let (_, cap) = probe::capture(|| {
            msim::run(4, move |world| {
                let mut sim = GtcSim::new(params, world);
                sim.step(world);
            })
            .expect("GTC calibration run failed");
        });
        cap
    })
}

/// [`workload`] with every extensive field (flops, traffic bytes)
/// replaced by measured per-unit rates from [`calibration_capture`],
/// scaled to the Table 4 configuration. The particle phases scale by
/// markers, the Poisson phase by CG point-iterations; shape fields and
/// communication events stay analytic.
pub fn measured_workload(procs: usize) -> WorkloadProfile {
    let cap = calibration_capture();
    let mut w = workload(procs);
    // `vector_iters` counts exactly one event per work unit (marker or
    // CG point-iteration), so it is the calibration-unit denominator.
    let units = |phase: &str| cap.get(phase).vector_iters as f64;
    let per_particle = |phase: &str| PARTICLES_PER_PROC / units(phase);
    let bindings = [
        PhaseBinding::extensive(
            "gtc/charge deposition",
            "charge deposition",
            per_particle("gtc/charge deposition"),
        ),
        PhaseBinding::extensive(
            "gtc/poisson solve",
            "poisson solve",
            CG_ITERS * PLANE_POINTS * MZETA_LOCAL / units("gtc/poisson solve"),
        ),
        PhaseBinding::extensive(
            "gtc/field gather",
            "field gather",
            per_particle("gtc/field gather"),
        ),
        PhaseBinding::extensive(
            "gtc/particle push",
            "particle push",
            per_particle("gtc/particle push"),
        ),
    ];
    w.apply_capture(cap, &bindings).expect("GTC calibration capture is incomplete");
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_marker_flop_constants_match_instrumented_run() {
        // One step of the real mini-app: flops() must equal the analytic
        // per-marker constants × marker counts plus the CG share.
        let params = GtcParams { particles_per_domain: 500, ..Default::default() };
        msim::run(4, move |world| {
            let mut sim = GtcSim::new(params, world);
            sim.step(world);
            let n = sim.counters.deposited as f64;
            let analytic_particle =
                n * (DEPOSIT_FLOPS + GATHER_FLOPS_PER_PARTICLE + PUSH_FLOPS_PER_PARTICLE);
            let cg = sim.counters.cg_iterations as f64
                * (crate::poisson::operator_flops(&sim.fields.grid)
                    + 10.0 * sim.fields.grid.len() as f64);
            assert!((sim.flops() - (analytic_particle + cg)).abs() < 1e-6);
        })
        .unwrap();
    }

    #[test]
    fn shift_fraction_is_close_to_model_constant() {
        // Measured crossing rate should be the same order as the model's
        // SHIFT_FRACTION (|v̄|·dt / wedge size sets it).
        let params = GtcParams { particles_per_domain: 4000, dt: 0.02, ..Default::default() };
        let frac = msim::run(4, move |world| {
            let mut sim = GtcSim::new(params, world);
            sim.run(world, 5);
            sim.counters.shifted as f64 / (5.0 * sim.particles.len().max(1) as f64)
        })
        .unwrap();
        let mean = frac.iter().sum::<f64>() / frac.len() as f64;
        assert!(
            mean > SHIFT_FRACTION * 0.1 && mean < SHIFT_FRACTION * 10.0,
            "measured shift fraction {mean} vs model {SHIFT_FRACTION}"
        );
    }

    #[test]
    fn weak_scaling_keeps_flops_per_proc_constant() {
        let f64_ref = workload(64).total_flops();
        for (p, _) in TABLE4_CONFIGS {
            let f = workload(p).total_flops();
            assert!((f - f64_ref).abs() < 1e-6, "weak scaling broken at P={p}");
        }
    }

    #[test]
    fn allreduce_appears_only_with_particle_decomposition() {
        let w64 = workload(64); // npe = 1: no particle decomposition
        assert!(!w64.comm.iter().any(|e| matches!(e, CommEvent::Allreduce { .. })));
        let w512 = workload(512); // npe = 8
        assert!(w512
            .comm
            .iter()
            .any(|e| matches!(e, CommEvent::Allreduce { procs, .. } if *procs == 8.0)));
    }

    #[test]
    fn measured_workload_agrees_with_the_analytic_oracle() {
        let a = workload(512);
        let m = measured_workload(512);
        assert_eq!(a.phases.len(), m.phases.len());
        assert_eq!(a.comm, m.comm, "comm events stay analytic");
        // Particle phases: the measured per-marker rates are exactly the
        // audited constants, so the scaled fields agree to rounding.
        for name in ["charge deposition", "field gather", "particle push"] {
            let pa = a.phases.iter().find(|p| p.name == name).unwrap();
            let pm = m.phases.iter().find(|p| p.name == name).unwrap();
            assert!((pm.flops - pa.flops).abs() <= 1e-6 * pa.flops, "{name} flops");
            assert!(
                (pm.unit_stride_bytes - pa.unit_stride_bytes).abs() <= 1e-6 * pa.unit_stride_bytes,
                "{name} unit-stride bytes"
            );
            assert!(
                (pm.gather_scatter_bytes - pa.gather_scatter_bytes).abs()
                    <= 1e-6 * pa.gather_scatter_bytes.max(1.0),
                "{name} gather/scatter bytes"
            );
            // Shape fields must survive the overlay untouched.
            assert_eq!(pm.vector_fraction, pa.vector_fraction, "{name}");
            assert_eq!(pm.cacheable_fraction, pa.cacheable_fraction, "{name}");
        }
        // Poisson: the byte rate (40 B per point-iteration) matches
        // exactly; the measured flop rate additionally counts the CG
        // BLAS1 updates the analytic stencil count omits, so it sits
        // above the oracle but within a small factor.
        let pa = a.phases.iter().find(|p| p.name == "poisson solve").unwrap();
        let pm = m.phases.iter().find(|p| p.name == "poisson solve").unwrap();
        assert!(
            (pm.unit_stride_bytes - pa.unit_stride_bytes).abs() <= 1e-6 * pa.unit_stride_bytes,
            "poisson unit-stride bytes"
        );
        assert!(
            pm.flops >= pa.flops && pm.flops < 2.5 * pa.flops,
            "poisson flops: measured {} vs analytic {}",
            pm.flops,
            pa.flops
        );
    }

    #[test]
    fn particle_phases_dominate() {
        // The paper: computational work directly involving particles is
        // ~85 % of the total.
        let w = workload(512);
        let particle_flops: f64 =
            w.phases.iter().filter(|p| p.name != "poisson solve").map(|p| p.flops).sum();
        assert!(particle_flops / w.total_flops() > 0.85);
    }
}
