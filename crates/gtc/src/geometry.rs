//! Toroidal simulation geometry and field storage.
//!
//! The torus is discretized as `mzeta` poloidal planes (toroidal angle ζ),
//! each an annular (r, θ) grid of `mpsi × mtheta` points. GTC's field-line
//! coordinates make the potential quasi-2D along ζ, which is why the
//! toroidal direction never needs more than ~64 planes (paper §4.1) — the
//! physics, not the algorithm, caps the 1D domain decomposition.

/// The annular poloidal grid shared by all planes.
#[derive(Clone, Copy, Debug)]
pub struct PoloidalGrid {
    /// Radial points (inner wall to outer wall).
    pub mpsi: usize,
    /// Poloidal points (periodic).
    pub mtheta: usize,
    /// Inner minor radius.
    pub r_inner: f64,
    /// Outer minor radius.
    pub r_outer: f64,
}

impl PoloidalGrid {
    /// Radial grid spacing.
    pub fn dr(&self) -> f64 {
        (self.r_outer - self.r_inner) / (self.mpsi - 1) as f64
    }

    /// Poloidal grid spacing in radians.
    pub fn dtheta(&self) -> f64 {
        std::f64::consts::TAU / self.mtheta as f64
    }

    /// Number of grid points per plane.
    pub fn len(&self) -> usize {
        self.mpsi * self.mtheta
    }

    /// True for a degenerate empty grid (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of radial index `i`, poloidal index `j` (periodic).
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.mpsi);
        i * self.mtheta + (j % self.mtheta)
    }

    /// Radius of radial index `i`.
    pub fn radius(&self, i: usize) -> f64 {
        self.r_inner + i as f64 * self.dr()
    }

    /// Maps a particle's `(r, θ)` to bilinear stencil weights:
    /// `((i, j), (wr, wt))` with the four corners `(i, j), (i+1, j),
    /// (i, j+1), (i+1, j+1)` weighted `(1−wr)(1−wt)` etc. `r` is clamped to
    /// the annulus.
    #[inline]
    pub fn locate(&self, r: f64, theta: f64) -> ((usize, usize), (f64, f64)) {
        let rr = r.clamp(self.r_inner, self.r_outer - 1e-12 * self.dr());
        let fi = (rr - self.r_inner) / self.dr();
        let i = (fi as usize).min(self.mpsi - 2);
        let wr = fi - i as f64;
        let t = theta.rem_euclid(std::f64::consts::TAU);
        let ft = t / self.dtheta();
        let j = (ft as usize).min(self.mtheta - 1);
        let wt = ft - j as f64;
        ((i, j), (wr, wt))
    }
}

/// The toroidal safety-factor profile q(r): field-line twist used by the
/// particle push. A mild monotone profile like real tokamaks.
pub fn safety_factor(r: f64) -> f64 {
    0.85 + 2.2 * r * r
}

/// Per-plane scalar fields of one toroidal domain.
#[derive(Clone, Debug)]
pub struct Fields {
    /// The poloidal grid.
    pub grid: PoloidalGrid,
    /// Local toroidal planes.
    pub mzeta: usize,
    /// Charge density per plane (`mzeta` × grid.len()).
    pub charge: Vec<Vec<f64>>,
    /// Electrostatic potential per plane.
    pub phi: Vec<Vec<f64>>,
    /// Radial electric field per plane.
    pub e_r: Vec<Vec<f64>>,
    /// Poloidal electric field per plane.
    pub e_theta: Vec<Vec<f64>>,
}

impl Fields {
    /// Allocates zero-filled fields for `mzeta` local planes.
    pub fn new(grid: PoloidalGrid, mzeta: usize) -> Self {
        let z = || (0..mzeta).map(|_| vec![0.0; grid.len()]).collect::<Vec<_>>();
        Fields { grid, mzeta, charge: z(), phi: z(), e_r: z(), e_theta: z() }
    }

    /// Computes E = −∇φ on every plane (central differences; one-sided at
    /// the radial walls).
    pub fn electric_field_from_phi(&mut self) {
        let g = self.grid;
        let (dr, dt) = (g.dr(), g.dtheta());
        for z in 0..self.mzeta {
            let phi = &self.phi[z];
            let er = &mut self.e_r[z];
            let et = &mut self.e_theta[z];
            for i in 0..g.mpsi {
                let r = g.radius(i).max(1e-9);
                for j in 0..g.mtheta {
                    let ix = g.idx(i, j);
                    // Radial derivative.
                    let dphi_dr = if i == 0 {
                        (phi[g.idx(1, j)] - phi[ix]) / dr
                    } else if i == g.mpsi - 1 {
                        (phi[ix] - phi[g.idx(i - 1, j)]) / dr
                    } else {
                        (phi[g.idx(i + 1, j)] - phi[g.idx(i - 1, j)]) / (2.0 * dr)
                    };
                    // Poloidal derivative (periodic).
                    let jp = (j + 1) % g.mtheta;
                    let jm = (j + g.mtheta - 1) % g.mtheta;
                    let dphi_dt = (phi[g.idx(i, jp)] - phi[g.idx(i, jm)]) / (2.0 * dt);
                    er[ix] = -dphi_dr;
                    et[ix] = -dphi_dt / r;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> PoloidalGrid {
        PoloidalGrid { mpsi: 9, mtheta: 16, r_inner: 0.1, r_outer: 0.9 }
    }

    #[test]
    fn spacing_and_radius() {
        let g = grid();
        assert!((g.dr() - 0.1).abs() < 1e-15);
        assert!((g.radius(0) - 0.1).abs() < 1e-15);
        assert!((g.radius(8) - 0.9).abs() < 1e-15);
    }

    #[test]
    fn locate_interpolates_linearly() {
        let g = grid();
        let ((i, j), (wr, wt)) = g.locate(0.25, 0.0);
        assert_eq!(i, 1);
        assert!((wr - 0.5).abs() < 1e-12);
        assert_eq!(j, 0);
        assert!(wt.abs() < 1e-12);
    }

    #[test]
    fn locate_clamps_radius() {
        let g = grid();
        let ((i, _), (wr, _)) = g.locate(2.0, 0.0);
        assert_eq!(i, g.mpsi - 2);
        assert!(wr <= 1.0);
        let ((i0, _), (wr0, _)) = g.locate(0.0, 0.0);
        assert_eq!(i0, 0);
        assert_eq!(wr0, 0.0);
    }

    #[test]
    fn locate_wraps_theta() {
        let g = grid();
        let ((_, j1), _) = g.locate(0.5, 0.1);
        let ((_, j2), _) = g.locate(0.5, 0.1 + std::f64::consts::TAU);
        assert_eq!(j1, j2);
    }

    #[test]
    fn electric_field_of_linear_potential_is_constant() {
        let g = grid();
        let mut f = Fields::new(g, 2);
        // φ = 3 r  →  E_r = −3, E_θ = 0.
        for z in 0..2 {
            for i in 0..g.mpsi {
                for j in 0..g.mtheta {
                    f.phi[z][g.idx(i, j)] = 3.0 * g.radius(i);
                }
            }
        }
        f.electric_field_from_phi();
        for z in 0..2 {
            for i in 0..g.mpsi {
                for j in 0..g.mtheta {
                    let ix = g.idx(i, j);
                    assert!((f.e_r[z][ix] + 3.0).abs() < 1e-12, "E_r at ({i},{j})");
                    assert!(f.e_theta[z][ix].abs() < 1e-12, "E_θ at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn safety_factor_is_monotone() {
        assert!(safety_factor(0.2) < safety_factor(0.8));
        assert!(safety_factor(0.0) > 0.0);
    }
}
