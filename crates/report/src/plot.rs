//! ASCII plots for the figure reproductions (Figures 3, 4, and 8).

/// One line series: `(x, y)` points plus a single-character marker.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points; `None` y-values are skipped (unavailable configs).
    pub points: Vec<(f64, Option<f64>)>,
    /// Plot marker.
    pub marker: char,
}

/// Renders an ASCII scatter/line chart of several series on shared axes.
/// `log_y` plots log₁₀(y) (the paper's Figure 4 is log-log-ish).
pub fn xy_chart(
    title: &str,
    series: &[Series],
    width: usize,
    height: usize,
    log_y: bool,
) -> String {
    let pts: Vec<(f64, f64, char)> = series
        .iter()
        .flat_map(|s| {
            s.points.iter().filter_map(move |&(x, y)| {
                y.map(|y| (x, if log_y { y.log10() } else { y }, s.marker))
            })
        })
        .collect();
    if pts.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y, _) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut canvas = vec![vec![' '; width]; height];
    for &(x, y, m) in &pts {
        let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
        let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
        canvas[height - 1 - cy][cx] = m;
    }
    let mut out = format!("{title}\n");
    let ylab = |v: f64| if log_y { format!("{:8.1}", 10f64.powf(v)) } else { format!("{v:8.2}") };
    for (r, row) in canvas.iter().enumerate() {
        let yv = y1 - (y1 - y0) * r as f64 / (height - 1) as f64;
        out.push_str(&ylab(yv));
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("{:>14.0}{:>width$.0}\n", x0, x1, width = width - 5));
    for s in series {
        out.push_str(&format!("  {} = {}\n", s.marker, s.label));
    }
    out
}

/// Renders a horizontal bar chart (Figure 8's per-application comparison).
pub fn bar_chart(title: &str, bars: &[(String, f64)], width: usize) -> String {
    let max = bars.iter().map(|b| b.1).fold(0.0f64, f64::max).max(1e-12);
    let label_w = bars.iter().map(|b| b.0.chars().count()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, v) in bars {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!("{label:<label_w$} |{} {v:.2}\n", "#".repeat(n), label_w = label_w));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_markers_and_legend() {
        let s = vec![
            Series {
                label: "ES".into(),
                points: vec![(32.0, Some(1.0)), (64.0, Some(2.0))],
                marker: 'e',
            },
            Series {
                label: "Power3".into(),
                points: vec![(32.0, Some(0.1)), (64.0, None)],
                marker: 'p',
            },
        ];
        let out = xy_chart("test", &s, 40, 10, false);
        assert!(out.contains('e'));
        assert!(out.contains('p'));
        assert!(out.contains("ES"));
        assert!(out.contains("Power3"));
    }

    #[test]
    fn log_scale_compresses_decades() {
        let s = vec![Series {
            label: "x".into(),
            points: vec![(1.0, Some(10.0)), (2.0, Some(1000.0))],
            marker: '*',
        }];
        let out = xy_chart("log", &s, 30, 8, true);
        assert!(out.contains('*'));
    }

    #[test]
    fn empty_series_render_gracefully() {
        let out = xy_chart("none", &[], 20, 5, false);
        assert!(out.contains("(no data)"));
    }

    #[test]
    fn bars_scale_to_max() {
        let out = bar_chart("b", &[("a".into(), 1.0), ("bb".into(), 2.0)], 10);
        let lines: Vec<&str> = out.lines().collect();
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[2]), 10);
        assert_eq!(hashes(lines[1]), 5);
    }
}
