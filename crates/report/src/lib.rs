//! Reporting: aligned text tables, ASCII plots, and the paper's published
//! numbers for comparison.
//!
//! * [`table`] — the fixed-width table renderer every experiment uses.
//! * [`plot`] — ASCII line/bar plots for the figure reproductions.
//! * [`paper`] — the published values of Tables 3–6 (Gflop/s per
//!   processor) and helpers for shape comparisons (who wins, by what
//!   factor) between our model's predictions and the paper.
//! * [`latency`] — latency/throughput summaries for the serve
//!   benchmark (`repro loadgen`).
//! * [`diff`] — the findings table `repro diff` prints when two artifact
//!   directories disagree (drift / regression / missing / extra).

pub mod diff;
pub mod latency;
pub mod paper;
pub mod plot;
pub mod table;

pub use table::Table;
