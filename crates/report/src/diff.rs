//! Artifact-diff report: the findings table `repro diff` prints when
//! two artifact directories disagree.
//!
//! The diff engine (`bench::diff`) classifies every disagreement into a
//! [`FindingKind`]; this module owns the display types and the fixed
//! rendering so the golden-fixture tests can assert on stable report
//! text ("which file, which field") without reaching into the engine.

use crate::table::Table;

/// How a compared field (or whole artifact) disagreed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// An exact-deterministic field changed value.
    Drift,
    /// A thresholded performance field regressed beyond tolerance.
    Regression,
    /// A field or artifact present in the old directory is gone.
    Missing,
    /// An artifact or field appeared that the old directory lacks.
    Extra,
}

impl FindingKind {
    /// Fixed label used in the report table.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::Drift => "drift",
            FindingKind::Regression => "regression",
            FindingKind::Missing => "missing",
            FindingKind::Extra => "extra",
        }
    }
}

/// One disagreement between the two artifact directories.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Artifact file name, e.g. `PROFILE_gtc.json`.
    pub file: String,
    /// Dotted field path inside the artifact (empty for whole-file
    /// findings), e.g. `profile.captures[0].capture.phases[deposit].counters.flops`.
    pub path: String,
    /// What kind of disagreement this is.
    pub kind: FindingKind,
    /// Old vs new values and, for regressions, the relative change.
    pub detail: String,
}

/// Renders the findings as a fixed-width table, worst category first
/// (drift and missing before regressions — exactness outranks pace).
pub fn findings_table(title: &str, findings: &[Finding]) -> Table {
    let mut t = Table::new(title, &["kind", "file", "field", "detail"]);
    let rank = |k: FindingKind| match k {
        FindingKind::Drift => 0,
        FindingKind::Missing => 1,
        FindingKind::Extra => 2,
        FindingKind::Regression => 3,
    };
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| {
        rank(a.kind).cmp(&rank(b.kind)).then_with(|| (&a.file, &a.path).cmp(&(&b.file, &b.path)))
    });
    for f in sorted {
        let field = if f.path.is_empty() { "—".to_string() } else { f.path.clone() };
        t.push_row(vec![f.kind.label().to_string(), f.file.clone(), field, f.detail.clone()]);
    }
    t
}

/// One-line verdict for the bottom of the report.
pub fn summary_line(
    findings: &[Finding],
    files_compared: usize,
    perf_note: Option<&str>,
) -> String {
    let count = |k: FindingKind| findings.iter().filter(|f| f.kind == k).count();
    let note = perf_note.map(|n| format!(" ({n})")).unwrap_or_default();
    if findings.is_empty() {
        format!("diff: ok — {files_compared} artifacts compared, no drift, no regressions{note}")
    } else {
        format!(
            "diff: FAILED — {} drift, {} regression(s), {} missing, {} extra across {} artifacts{note}",
            count(FindingKind::Drift),
            count(FindingKind::Regression),
            count(FindingKind::Missing),
            count(FindingKind::Extra),
            files_compared,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(kind: FindingKind, file: &str, path: &str) -> Finding {
        Finding { file: file.into(), path: path.into(), kind, detail: "old 1 -> new 2".into() }
    }

    #[test]
    fn table_names_the_offending_file_and_field() {
        let t = findings_table(
            "artifact diff",
            &[f(FindingKind::Drift, "PROFILE_gtc.json", "profile.captures[0].flops")],
        );
        let s = t.render();
        assert!(s.contains("PROFILE_gtc.json"));
        assert!(s.contains("profile.captures[0].flops"));
        assert!(s.contains("drift"));
    }

    #[test]
    fn drift_sorts_before_regressions() {
        let t = findings_table(
            "d",
            &[
                f(FindingKind::Regression, "BENCH_serve.json", "throughput_rps"),
                f(FindingKind::Drift, "TABLE_gtc.json", "rows[0].cells[1].gflops_per_proc"),
            ],
        );
        let s = t.render();
        let drift_at = s.find("drift").unwrap();
        let reg_at = s.find("regression").unwrap();
        assert!(drift_at < reg_at);
    }

    #[test]
    fn whole_file_findings_render_a_dash_field() {
        let t = findings_table("d", &[f(FindingKind::Missing, "TABLE_gtc.json", "")]);
        assert!(t.render().contains("—"));
    }

    #[test]
    fn summary_counts_each_kind() {
        let fs = [
            f(FindingKind::Drift, "a", "x"),
            f(FindingKind::Regression, "b", "y"),
            f(FindingKind::Regression, "b", "z"),
        ];
        let s = summary_line(&fs, 11, None);
        assert!(s.contains("FAILED"));
        assert!(s.contains("1 drift"));
        assert!(s.contains("2 regression(s)"));
        let ok = summary_line(&[], 11, Some("perf skipped: different host"));
        assert!(ok.contains("ok"));
        assert!(ok.contains("perf skipped"));
    }
}
