//! Fixed-width text tables, right-aligned numeric cells — the format of
//! the paper's Tables 1 and 3–6.

/// A simple text table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title printed above the header.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Body rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Formats a `Gflop/P` + `%peak` pair the way the paper's tables do,
    /// or the em-dash for unavailable configurations.
    pub fn perf_cell(gflops: Option<f64>, pct: Option<f64>) -> (String, String) {
        match (gflops, pct) {
            (Some(g), Some(p)) => (format!("{g:.2}"), format!("{p:.1}")),
            _ => ("—".into(), "—".into()),
        }
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                // Right-align numbers, left-align the first (label) column.
                let pad = widths[c].saturating_sub(cell.chars().count());
                if c == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1.00".into()]);
        t.push_row(vec!["long-name".into(), "123.45".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].contains("name") && lines[1].contains("value"));
        // All body lines equal length (alignment).
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn perf_cell_formats_pairs_and_dashes() {
        assert_eq!(Table::perf_cell(Some(1.234), Some(9.87)), ("1.23".into(), "9.9".into()));
        assert_eq!(Table::perf_cell(None, None).0, "—");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
