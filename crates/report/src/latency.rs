//! Latency/throughput summary rendering for the serve benchmark.
//!
//! The load generator measures closed-loop request latencies; this
//! module turns per-endpoint summaries into the same fixed-width table
//! style the paper reproductions use.

use crate::table::Table;

/// One measured endpoint (or endpoint class) summary.
#[derive(Clone, Debug)]
pub struct LatencySummary {
    /// Label (endpoint path or workload class).
    pub label: String,
    /// Completed requests.
    pub requests: u64,
    /// Error responses (status ≥ 400) among them.
    pub errors: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
}

fn fmt_us(us: u64) -> String {
    if us >= 10_000 {
        format!("{:.1} ms", us as f64 / 1000.0)
    } else {
        format!("{us} us")
    }
}

/// Availability/failover summary of one cluster load test.
#[derive(Clone, Debug)]
pub struct ClusterSummary {
    /// Replica slots behind the router.
    pub replicas: u64,
    /// Replicas up when the run ended.
    pub up: u64,
    /// Router failovers during the run (owner switched mid-request).
    pub failovers: u64,
    /// Client requests that needed a retry but ultimately succeeded.
    pub retried_ok: u64,
    /// Successful responses / attempted requests, in `[0, 1]`.
    pub availability: f64,
    /// Membership changes during the run (scale-ups + drains).
    pub membership_events: u64,
    /// Tracked keys rerouted across epoch flips during the run.
    pub keys_moved: u64,
    /// Autoscaler decisions during the run as `(up, down)`.
    pub autoscale: (u64, u64),
}

/// Renders the cluster availability row that accompanies a cluster
/// load test's latency table.
pub fn cluster_table(title: &str, c: &ClusterSummary) -> Table {
    let mut t = Table::new(
        title.to_string(),
        &["replicas", "up", "failovers", "retried ok", "availability", "churn", "moved", "scale"],
    );
    t.push_row(vec![
        c.replicas.to_string(),
        c.up.to_string(),
        c.failovers.to_string(),
        c.retried_ok.to_string(),
        format!("{:.3}%", c.availability * 100.0),
        c.membership_events.to_string(),
        c.keys_moved.to_string(),
        format!("+{}/-{}", c.autoscale.0, c.autoscale.1),
    ]);
    t
}

/// One flop-counted kernel measurement for [`gflops_table`].
#[derive(Clone, Debug)]
pub struct GflopsRow {
    /// Kernel case name, e.g. `"gemm/dgemm_128/t1"`.
    pub label: String,
    /// Shared-memory workers used (`None` = untracked).
    pub threads: Option<u64>,
    /// Measured Gflop/s at the median time.
    pub gflops: f64,
    /// Speedup over the 1-worker leg of the same case.
    pub speedup: Option<f64>,
    /// `speedup / threads`.
    pub efficiency: Option<f64>,
}

/// Renders measured Gflop/s for flop-counted kernels — the unit every
/// per-kernel result in the paper is reported in — in the suite's table
/// style.
pub fn gflops_table(title: &str, rows: &[GflopsRow]) -> Table {
    let mut t =
        Table::new(title.to_string(), &["kernel", "threads", "Gflop/s", "speedup", "efficiency"]);
    for r in rows {
        t.push_row(vec![
            r.label.clone(),
            r.threads.map_or_else(|| "-".to_string(), |n| n.to_string()),
            format!("{:.3}", r.gflops),
            r.speedup.map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
            r.efficiency.map_or_else(|| "-".to_string(), |e| format!("{:.0}%", e * 100.0)),
        ]);
    }
    t
}

/// Renders per-endpoint latency summaries plus an overall throughput
/// line, in the suite's table style.
pub fn latency_table(title: &str, rows: &[LatencySummary], throughput_rps: f64) -> Table {
    let mut t = Table::new(
        format!("{title} ({throughput_rps:.0} req/s overall)"),
        &["endpoint", "requests", "errors", "p50", "p95", "p99"],
    );
    for r in rows {
        t.push_row(vec![
            r.label.clone(),
            r.requests.to_string(),
            r.errors.to_string(),
            fmt_us(r.p50_us),
            fmt_us(r.p95_us),
            fmt_us(r.p99_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_columns() {
        let rows = vec![
            LatencySummary {
                label: "/eval".into(),
                requests: 1000,
                errors: 0,
                p50_us: 180,
                p95_us: 950,
                p99_us: 12_000,
            },
            LatencySummary {
                label: "/sweep".into(),
                requests: 10,
                errors: 1,
                p50_us: 20_000,
                p95_us: 45_000,
                p99_us: 45_000,
            },
        ];
        let out = latency_table("serve load test", &rows, 512.4).render();
        assert!(out.contains("512 req/s"), "{out}");
        assert!(out.contains("/eval"));
        assert!(out.contains("180 us"));
        assert!(out.contains("12.0 ms"));
        assert!(out.contains("45.0 ms"));
    }

    #[test]
    fn gflops_table_renders_rates_and_scaling() {
        let rows = vec![
            GflopsRow {
                label: "gemm/dgemm_128/t1".into(),
                threads: Some(1),
                gflops: 14.502,
                speedup: Some(1.0),
                efficiency: Some(1.0),
            },
            GflopsRow {
                label: "lbmhd/collide_stream_24cubed/t2".into(),
                threads: Some(2),
                gflops: 1.31,
                speedup: Some(1.9),
                efficiency: Some(0.95),
            },
            GflopsRow {
                label: "fft/forward_256".into(),
                threads: None,
                gflops: 0.5,
                speedup: None,
                efficiency: None,
            },
        ];
        let out = gflops_table("measured Gflop/s", &rows).render();
        assert!(out.contains("14.502"), "{out}");
        assert!(out.contains("1.90x"));
        assert!(out.contains("95%"));
        assert!(out.contains("Gflop/s"));
        // Untracked cases render dashes, not zeros.
        assert!(out.contains('-'));
    }

    #[test]
    fn cluster_table_shows_availability_and_failovers() {
        let out = cluster_table(
            "cluster availability",
            &ClusterSummary {
                replicas: 3,
                up: 2,
                failovers: 7,
                retried_ok: 4,
                availability: 1.0,
                membership_events: 3,
                keys_moved: 12,
                autoscale: (1, 1),
            },
        )
        .render();
        assert!(out.contains("100.000%"), "{out}");
        assert!(out.contains('7'));
        assert!(out.contains("retried ok"));
        assert!(out.contains("+1/-1"), "autoscale column renders up/down: {out}");
        assert!(out.contains("12"), "keys moved column: {out}");
    }
}
