//! The paper's published results (Gflop/s per processor), transcribed from
//! Tables 3–6, plus shape-comparison helpers.
//!
//! These are the ground truth the reproduction is judged against. We are
//! not expected to match absolute numbers (our substrate is a model, not
//! the authors' machines); EXPERIMENTS.md tracks, per table, whether the
//! *shape* holds: platform ordering, rough ratios, and where scaling rolls
//! over.

use hec_core::json::{FromJson, Json, JsonError, ToJson};

/// Platform column order used by all the grids below.
pub const PLATFORMS: [&str; 7] =
    ["Power3", "Itanium2", "Opteron", "X1 (MSP)", "X1 (4-SSP)", "ES", "SX-8"];

/// One published row: concurrency plus per-platform Gflop/P (None = "—").
#[derive(Clone, Debug)]
pub struct PaperRow {
    /// Processor count.
    pub procs: usize,
    /// Extra row label (grid size, particles/cell, decomposition…).
    pub label: String,
    /// Gflop/P per platform, in [`PLATFORMS`] order.
    pub gflops: [Option<f64>; 7],
}

fn row(procs: usize, label: &str, g: [Option<f64>; 7]) -> PaperRow {
    PaperRow { procs, label: label.into(), gflops: g }
}

impl ToJson for PaperRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("procs", Json::Num(self.procs as f64)),
            ("label", Json::Str(self.label.clone())),
            // A missing cell ("—" in the paper) emits as null.
            ("gflops", Json::Arr(self.gflops.iter().map(|g| g.to_json()).collect())),
        ])
    }
}

impl FromJson for PaperRow {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let cells =
            v.field("gflops")?.as_arr().ok_or_else(|| JsonError::new("gflops must be an array"))?;
        if cells.len() != 7 {
            return Err(JsonError::new(format!("expected 7 gflops cells, got {}", cells.len())));
        }
        let mut gflops = [None; 7];
        for (slot, cell) in gflops.iter_mut().zip(cells) {
            *slot = match cell {
                Json::Null => None,
                other => Some(f64::from_json(other)?),
            };
        }
        Ok(PaperRow {
            procs: usize::from_json(v.field("procs")?)?,
            label: v.str_field("label")?.to_string(),
            gflops,
        })
    }
}

/// Paper Table 3 (FVCAM). Platform order here is
/// [Power3, Itanium2, —, X1 (MSP), X1E (in the 4-SSP slot), ES, —]:
/// FVCAM has no Opteron/SX-8 data, and the paper reports X1E instead of
/// SSP mode. See [`FVCAM_PLATFORMS`].
pub fn table3() -> Vec<PaperRow> {
    let n = None;
    vec![
        row(32, "1D", [Some(0.12), Some(0.40), n, Some(1.72), Some(1.88), Some(1.33), n]),
        row(64, "1D", [Some(0.12), n, n, n, Some(1.67), Some(1.12), n]),
        row(128, "1D", [Some(0.11), n, n, n, n, Some(0.81), n]),
        row(256, "1D", [Some(0.10), n, n, n, n, Some(0.54), n]),
        row(128, "2D Pz=4", [Some(0.11), Some(0.33), n, Some(1.34), Some(1.48), Some(1.01), n]),
        row(256, "2D Pz=4", [Some(0.09), Some(0.30), n, Some(1.05), Some(1.19), Some(0.83), n]),
        row(376, "2D Pz=4", [n, Some(0.27), n, n, Some(0.99), n, n]),
        row(512, "2D Pz=4", [Some(0.09), n, n, n, n, Some(0.57), n]),
        row(336, "2D Pz=7", [Some(0.09), Some(0.29), n, Some(0.96), Some(1.09), Some(0.79), n]),
        row(644, "2D Pz=7", [n, Some(0.23), n, n, Some(0.71), n, n]),
        row(672, "2D Pz=7", [Some(0.07), n, n, n, Some(0.70), Some(0.56), n]),
        row(896, "2D Pz=7", [Some(0.06), n, n, n, n, Some(0.44), n]),
        row(1680, "2D Pz=7", [Some(0.05), n, n, n, n, n, n]),
    ]
}

/// Column labels for [`table3`]'s layout quirk.
pub const FVCAM_PLATFORMS: [&str; 7] =
    ["Power3", "Itanium2", "(n/a)", "X1 (MSP)", "X1E (MSP)", "ES", "(n/a)"];

/// Paper Table 4 (GTC), 100–3200 particles per cell.
pub fn table4() -> Vec<PaperRow> {
    let n = None;
    vec![
        row(
            64,
            "100 p/c",
            [Some(0.14), Some(0.39), Some(0.59), Some(1.29), Some(1.12), Some(1.60), Some(2.39)],
        ),
        row(
            128,
            "200 p/c",
            [Some(0.14), Some(0.39), Some(0.59), Some(1.22), Some(1.00), Some(1.56), Some(2.28)],
        ),
        row(
            256,
            "400 p/c",
            [Some(0.14), Some(0.38), Some(0.57), Some(1.17), Some(0.92), Some(1.55), Some(2.32)],
        ),
        row(512, "800 p/c", [Some(0.14), Some(0.38), Some(0.51), n, n, Some(1.53), n]),
        row(1024, "1600 p/c", [Some(0.14), Some(0.37), n, n, n, Some(1.88), n]),
        row(2048, "3200 p/c", [Some(0.13), Some(0.37), n, n, n, Some(1.82), n]),
    ]
}

/// Paper Table 5 (LBMHD3D). The X1 SSP column reports per-SSP Gflop/s.
pub fn table5() -> Vec<PaperRow> {
    let n = None;
    vec![
        row(
            16,
            "256^3",
            [Some(0.14), Some(0.26), Some(0.70), Some(5.19), n, Some(5.50), Some(7.89)],
        ),
        row(
            64,
            "256^3",
            [Some(0.15), Some(0.35), Some(0.68), Some(5.24), n, Some(5.25), Some(8.10)],
        ),
        row(
            256,
            "512^3",
            [Some(0.14), Some(0.32), Some(0.60), Some(5.26), Some(1.34), Some(5.45), Some(9.52)],
        ),
        row(512, "512^3", [Some(0.14), Some(0.35), Some(0.59), n, Some(1.34), Some(5.21), n]),
        row(1024, "1024^3", [n, n, n, n, Some(1.30), Some(5.44), n]),
        row(2048, "1024^3", [n, n, n, n, n, Some(5.41), n]),
    ]
}

/// Paper Table 6 (PARATEC, 488-atom CdSe dot, 3 CG steps).
pub fn table6() -> Vec<PaperRow> {
    let n = None;
    vec![
        row(64, "", [Some(0.94), n, n, Some(4.25), Some(4.32), n, Some(7.91)]),
        row(128, "", [Some(0.93), Some(2.84), n, Some(3.19), Some(3.72), Some(5.12), Some(7.53)]),
        row(256, "", [Some(0.85), Some(2.63), Some(1.98), Some(3.05), n, Some(4.97), Some(6.81)]),
        row(512, "", [Some(0.73), Some(2.44), Some(0.95), n, n, Some(4.36), n]),
        row(1024, "", [Some(0.60), Some(1.77), n, n, n, Some(3.64), n]),
        row(2048, "", [n, n, n, n, n, Some(2.67), n]),
    ]
}

/// Compares two per-platform result vectors by *rank ordering*: the
/// fraction of defined pairs `(i, j)` whose order agrees. 1.0 = identical
/// ordering (the primary "shape" criterion).
pub fn ordering_agreement(ours: &[Option<f64>], paper: &[Option<f64>]) -> f64 {
    let mut total = 0.0;
    let mut agree = 0.0;
    for i in 0..ours.len() {
        for j in i + 1..ours.len() {
            if let (Some(a1), Some(a2), Some(b1), Some(b2)) = (ours[i], ours[j], paper[i], paper[j])
            {
                total += 1.0;
                if ((a1 - a2) * (b1 - b2)) >= 0.0 {
                    agree += 1.0;
                }
            }
        }
    }
    if total == 0.0 {
        1.0
    } else {
        agree / total
    }
}

/// Geometric-mean absolute log-ratio between our values and the paper's —
/// e^(this) is the typical multiplicative error.
pub fn typical_ratio(ours: &[Option<f64>], paper: &[Option<f64>]) -> f64 {
    let logs: Vec<f64> = ours
        .iter()
        .zip(paper)
        .filter_map(|(a, b)| match (a, b) {
            (Some(a), Some(b)) if *a > 0.0 && *b > 0.0 => Some((a / b).ln().abs()),
            _ => None,
        })
        .collect();
    if logs.is_empty() {
        1.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_shapes() {
        assert_eq!(table3().len(), 13);
        assert_eq!(table4().len(), 6);
        assert_eq!(table5().len(), 6);
        assert_eq!(table6().len(), 6);
    }

    #[test]
    fn published_invariants_hold() {
        // ES beats every superscalar platform on GTC at P=64.
        let t4 = table4();
        let r = &t4[0].gflops;
        let es = r[5].unwrap();
        for scalar in [r[0], r[1], r[2]] {
            assert!(es > scalar.unwrap());
        }
        // SX-8 holds the absolute LBMHD record.
        let t5 = table5();
        let r = &t5[2].gflops;
        let sx8 = r[6].unwrap();
        for other in r.iter().take(6).flatten() {
            assert!(sx8 > *other);
        }
    }

    #[test]
    fn ordering_agreement_detects_perfect_and_inverted() {
        let a = [Some(1.0), Some(2.0), Some(3.0), None, None, None, None];
        let b = [Some(10.0), Some(20.0), Some(30.0), None, None, None, None];
        assert_eq!(ordering_agreement(&a, &b), 1.0);
        let c = [Some(3.0), Some(2.0), Some(1.0), None, None, None, None];
        assert_eq!(ordering_agreement(&c, &b), 0.0);
    }

    #[test]
    fn typical_ratio_is_multiplicative_error() {
        let a = [Some(2.0), Some(20.0)];
        let b = [Some(1.0), Some(10.0)];
        assert!((typical_ratio(&a, &b) - 2.0).abs() < 1e-12);
        assert_eq!(typical_ratio(&[None], &[None]), 1.0);
    }

    #[test]
    fn every_published_row_round_trips_through_json() {
        for table in [table3(), table4(), table5(), table6()] {
            for r in table {
                let text = r.to_json().emit();
                let back = PaperRow::from_json(&Json::parse(&text).unwrap()).unwrap();
                assert_eq!(back.procs, r.procs);
                assert_eq!(back.label, r.label);
                assert_eq!(back.gflops, r.gflops);
            }
        }
        // Wrong arity is rejected, not silently truncated.
        let bad = Json::parse(r#"{"procs": 4, "label": "", "gflops": [1.0]}"#).unwrap();
        assert!(PaperRow::from_json(&bad).is_err());
    }
}
