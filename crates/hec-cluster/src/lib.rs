//! `hec-cluster` — sharded, replicated, fault-tolerant serving.
//!
//! One frontend URL over N independent [`hec_serve`] replicas. The
//! canonical request keyspace is partitioned by a consistent-hash ring
//! ([`ring`]: virtual nodes, replication factor R), the router
//! ([`router`]) forwards each request to its key's first live owner and
//! fails over to the next on transport failure or load shedding, health
//! is tracked by a probing checker plus reactive marking ([`health`]),
//! and a deterministic fault plan ([`faults`]) can kill, stall,
//! drop-connect, or slow replicas at fixed admitted-request indices.
//!
//! The contract under faults (DESIGN.md §9): with R owners per key and
//! at most R − 1 of them killed, every admitted request returns a
//! response *byte-identical* to the single-process engine's — the
//! replicas all run the same bitwise-deterministic model, so which
//! owner answers is invisible in the bytes.
//!
//! ```no_run
//! let cluster = hec_cluster::start(hec_cluster::ClusterConfig {
//!     replicas: 3,
//!     ..hec_cluster::ClusterConfig::default()
//! })
//! .unwrap();
//! println!("routing on http://{}", cluster.addr());
//! cluster.shutdown();
//! cluster.join();
//! ```

pub mod faults;
pub mod health;
pub mod replica;
pub mod ring;
pub mod router;

pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use health::{Health, HealthConfig};
pub use replica::ReplicaSet;
pub use ring::{stable_hash, Ring, DEFAULT_VNODES};
pub use router::{start, Cluster, ClusterConfig, DEFAULT_REPLICATION};
