//! `hec-cluster` — sharded, replicated, fault-tolerant serving.
//!
//! One frontend URL over N independent [`hec_serve`] replicas. The
//! canonical request keyspace is partitioned by a consistent-hash ring
//! ([`ring`]: virtual nodes, replication factor R), the router
//! ([`router`]) forwards each request to its key's first live owner and
//! fails over to the next on transport failure or load shedding, health
//! is tracked by a probing checker plus reactive marking ([`health`]),
//! and a deterministic fault plan ([`faults`]) can kill, stall,
//! drop-connect, or slow replicas at fixed admitted-request indices.
//!
//! Membership is live ([`membership`]): versioned ring epochs with
//! `/admin/scale-up` and `/admin/drain/<i>` endpoints, bounded
//! rebalancing (only keys whose owners changed between epochs move),
//! cache handoff that warms the new owners before cutover, and an
//! optional autoscaler driven by the router's queue gauge and
//! inter-tick p99 — all keyed to the same admitted-request clock as
//! the fault plan, so churn runs are bit-for-bit reproducible.
//!
//! The contract under faults (DESIGN.md §9): with R owners per key and
//! at most R − 1 of them killed, every admitted request returns a
//! response *byte-identical* to the single-process engine's — the
//! replicas all run the same bitwise-deterministic model, so which
//! owner answers is invisible in the bytes.
//!
//! ```no_run
//! let cluster = hec_cluster::start(hec_cluster::ClusterConfig {
//!     replicas: 3,
//!     ..hec_cluster::ClusterConfig::default()
//! })
//! .unwrap();
//! println!("routing on http://{}", cluster.addr());
//! cluster.shutdown();
//! cluster.join();
//! ```

pub mod faults;
pub mod health;
pub mod membership;
pub mod replica;
pub mod ring;
pub mod router;

pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use health::{Health, HealthConfig};
pub use membership::{AutoscaleConfig, Elasticity, Epoch, Membership, MembershipEvent};
pub use replica::ReplicaSet;
pub use ring::{owners_diff, stable_hash, OwnersDiff, Ring, DEFAULT_VNODES};
pub use router::{start, Cluster, ClusterConfig, DEFAULT_REPLICATION};
