//! Consistent-hash ring with virtual nodes.
//!
//! The canonical request keyspace (`app|platform|procs=N…`, see
//! `hec_serve::request`) is partitioned across replicas by hashing each
//! key onto a ring of `replicas × vnodes` points and walking clockwise.
//! Virtual nodes smooth the partition (with one point per replica the
//! largest arc is unboundedly bad; with 64 the load imbalance is a few
//! percent), and the walk yields the key's *owner list*: the first
//! `replication` distinct replicas encountered, in preference order.
//! Failover is "try the next owner" — no rehashing, no coordination.
//!
//! Hashing is FNV-1a finished with splitmix64 — in-tree and stable
//! across platforms and runs, unlike `DefaultHasher`, whose seed policy
//! is unspecified. Ring layout is therefore a pure function of
//! `(replicas, vnodes)`: every router instance, and every test, agrees
//! on who owns which key.

use hec_core::rng::splitmix64;

/// Default virtual nodes per replica.
pub const DEFAULT_VNODES: usize = 64;

/// Stable 64-bit hash of `bytes`: FNV-1a with a splitmix64 finalizer
/// (FNV alone mixes low bits poorly; the finalizer fixes avalanche).
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut x = h;
    splitmix64(&mut x)
}

/// A consistent-hash ring over `replicas` replicas.
#[derive(Clone, Debug)]
pub struct Ring {
    /// Ring points sorted by hash: `(hash, replica_index)`.
    points: Vec<(u64, usize)>,
    replicas: usize,
    replication: usize,
}

impl Ring {
    /// Builds the ring: `vnodes` points per replica, owner lists of
    /// length `min(replication, replicas)`. Deterministic in its inputs.
    pub fn new(replicas: usize, vnodes: usize, replication: usize) -> Ring {
        let replicas = replicas.max(1);
        let vnodes = vnodes.max(1);
        let mut points: Vec<(u64, usize)> = (0..replicas)
            .flat_map(|r| {
                (0..vnodes)
                    .map(move |v| (stable_hash(format!("replica{r}#vnode{v}").as_bytes()), r))
            })
            .collect();
        points.sort_unstable();
        Ring { points, replicas, replication: replication.clamp(1, replicas) }
    }

    /// Number of replicas the ring spans.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Owner-list length (the effective replication factor R).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The key's owners: the first R distinct replicas clockwise from
    /// the key's hash, in preference order. Never empty.
    pub fn owners(&self, key: &str) -> Vec<usize> {
        let h = stable_hash(key.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut owners = Vec::with_capacity(self.replication);
        for i in 0..self.points.len() {
            let (_, r) = self.points[(start + i) % self.points.len()];
            if !owners.contains(&r) {
                owners.push(r);
                if owners.len() == self.replication {
                    break;
                }
            }
        }
        owners
    }

    /// The primary owner of `key` (first entry of [`Ring::owners`]).
    pub fn primary(&self, key: &str) -> usize {
        self.owners(key)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_layout_is_deterministic() {
        let a = Ring::new(5, 64, 2);
        let b = Ring::new(5, 64, 2);
        for key in ["gtc|es|procs=64", "lbmhd|sx8|procs=512|n=512", "x", ""] {
            assert_eq!(a.owners(key), b.owners(key), "{key}");
        }
    }

    #[test]
    fn owners_are_distinct_and_r_long() {
        let ring = Ring::new(4, 32, 3);
        for i in 0..200 {
            let owners = ring.owners(&format!("key{i}"));
            assert_eq!(owners.len(), 3);
            let mut sorted = owners.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "owners must be distinct: {owners:?}");
            assert!(owners.iter().all(|&r| r < 4));
        }
    }

    #[test]
    fn replication_clamps_to_replica_count() {
        let ring = Ring::new(2, 16, 5);
        assert_eq!(ring.replication(), 2);
        assert_eq!(ring.owners("k").len(), 2);
        let single = Ring::new(1, 16, 3);
        assert_eq!(single.owners("k"), vec![0]);
    }

    #[test]
    fn virtual_nodes_balance_the_keyspace() {
        // With 64 vnodes per replica, no replica should own a wildly
        // disproportionate share of 10k uniform keys.
        let ring = Ring::new(4, DEFAULT_VNODES, 1);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[ring.primary(&format!("app|plat|procs={i}"))] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            assert!(c > 1_000, "replica {r} owns only {c}/10000 keys");
            assert!(c < 5_000, "replica {r} owns {c}/10000 keys");
        }
    }

    #[test]
    fn failover_order_moves_to_the_next_distinct_replica() {
        // The second owner differs from the first for every key; killing
        // the primary leaves the secondary as the deterministic target.
        let ring = Ring::new(3, 48, 2);
        for i in 0..100 {
            let owners = ring.owners(&format!("k{i}"));
            assert_ne!(owners[0], owners[1]);
        }
    }

    #[test]
    fn ownership_is_invariant_under_vnode_insertion_order() {
        // Property: the ring is a *set* of points — the order vnodes are
        // generated in must not matter. Build the same point set in a
        // seeded Fisher-Yates-shuffled order and check every owner list
        // agrees with the canonically built ring.
        use hec_core::rng::Rng;
        let (replicas, vnodes, replication) = (5, 32, 3);
        let canonical = Ring::new(replicas, vnodes, replication);
        for seed in 0..8u64 {
            let mut labels: Vec<(usize, usize)> =
                (0..replicas).flat_map(|r| (0..vnodes).map(move |v| (r, v))).collect();
            let mut rng = Rng::new(seed);
            for i in (1..labels.len()).rev() {
                labels.swap(i, rng.below(i + 1));
            }
            let mut points: Vec<(u64, usize)> = labels
                .into_iter()
                .map(|(r, v)| (stable_hash(format!("replica{r}#vnode{v}").as_bytes()), r))
                .collect();
            points.sort_unstable();
            let shuffled = Ring { points, replicas, replication };
            for i in 0..100 {
                let key = format!("app{}|plat{}|procs={}", i % 4, i % 7, 1 << (i % 10));
                assert_eq!(canonical.owners(&key), shuffled.owners(&key), "seed {seed}, key {key}");
            }
        }
    }

    #[test]
    fn every_key_has_exactly_r_distinct_owners_across_configs() {
        // Property: for any (replicas, vnodes, replication) and any key,
        // the owner list has exactly min(replication, replicas) entries,
        // all distinct, all valid replica indices.
        use hec_core::rng::Rng;
        let mut rng = Rng::new(0xC0FFEE);
        for replicas in 1..=6usize {
            for &vnodes in &[1usize, 16, 64] {
                for replication in 1..=5usize {
                    let ring = Ring::new(replicas, vnodes, replication);
                    let want = replication.min(replicas);
                    for _ in 0..50 {
                        let key = format!("k{}", rng.next_u64());
                        let owners = ring.owners(&key);
                        assert_eq!(owners.len(), want, "{replicas}r/{vnodes}v/{replication}R");
                        let mut sorted = owners.clone();
                        sorted.sort_unstable();
                        sorted.dedup();
                        assert_eq!(sorted.len(), want, "duplicate owner in {owners:?}");
                        assert!(owners.iter().all(|&r| r < replicas));
                    }
                }
            }
        }
    }

    #[test]
    fn stable_hash_is_pinned() {
        // The ring layout is part of the cluster's deterministic
        // contract; a silent hash change would shuffle every owner list.
        assert_eq!(stable_hash(b""), stable_hash(b""));
        assert_ne!(stable_hash(b"a"), stable_hash(b"b"));
        let h = stable_hash(b"gtc|es|procs=64");
        assert_eq!(h, stable_hash(b"gtc|es|procs=64"));
    }
}
