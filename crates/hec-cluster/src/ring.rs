//! Consistent-hash ring with virtual nodes.
//!
//! The canonical request keyspace (`app|platform|procs=N…`, see
//! `hec_serve::request`) is partitioned across replicas by hashing each
//! key onto a ring of `replicas × vnodes` points and walking clockwise.
//! Virtual nodes smooth the partition (with one point per replica the
//! largest arc is unboundedly bad; with 64 the load imbalance is a few
//! percent), and the walk yields the key's *owner list*: the first
//! `replication` distinct replicas encountered, in preference order.
//! Failover is "try the next owner" — no rehashing, no coordination.
//!
//! Hashing is FNV-1a finished with splitmix64 — in-tree and stable
//! across platforms and runs, unlike `DefaultHasher`, whose seed policy
//! is unspecified. Ring layout is therefore a pure function of
//! `(members, vnodes)`: every router instance, and every test, agrees
//! on who owns which key.
//!
//! Rings are built over an explicit *member-ID set* ([`Ring::over`]), not
//! just a count: a member's vnode positions depend only on its own ID, so
//! adding or draining one member perturbs only the arcs its vnodes gain
//! or lose — the bounded-key-movement property elasticity relies on.
//! [`owners_diff`] computes exactly those arcs between two ring epochs.

use hec_core::rng::splitmix64;

/// Default virtual nodes per replica.
pub const DEFAULT_VNODES: usize = 64;

/// Stable 64-bit hash of `bytes`: FNV-1a with a splitmix64 finalizer
/// (FNV alone mixes low bits poorly; the finalizer fixes avalanche).
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut x = h;
    splitmix64(&mut x)
}

/// A consistent-hash ring over an explicit set of member IDs.
#[derive(Clone, Debug)]
pub struct Ring {
    /// Ring points sorted by hash: `(hash, member_id)`.
    points: Vec<(u64, usize)>,
    /// Member IDs the ring spans (sorted, distinct).
    members: Vec<usize>,
    replication: usize,
}

impl Ring {
    /// Builds the ring over the contiguous member set `0..replicas`:
    /// `vnodes` points per replica, owner lists of length
    /// `min(replication, replicas)`. Deterministic in its inputs.
    pub fn new(replicas: usize, vnodes: usize, replication: usize) -> Ring {
        let members: Vec<usize> = (0..replicas.max(1)).collect();
        Ring::over(&members, vnodes, replication)
    }

    /// Builds the ring over an arbitrary member-ID set. A member's vnode
    /// positions are a function of its ID alone, so the same ID hashes to
    /// the same arcs in every epoch that contains it — membership change
    /// moves only the arcs of the changed members.
    pub fn over(members: &[usize], vnodes: usize, replication: usize) -> Ring {
        let mut members: Vec<usize> = if members.is_empty() { vec![0] } else { members.to_vec() };
        members.sort_unstable();
        members.dedup();
        let vnodes = vnodes.max(1);
        let mut points: Vec<(u64, usize)> = members
            .iter()
            .flat_map(|&r| {
                (0..vnodes)
                    .map(move |v| (stable_hash(format!("replica{r}#vnode{v}").as_bytes()), r))
            })
            .collect();
        points.sort_unstable();
        let replication = replication.clamp(1, members.len());
        Ring { points, members, replication }
    }

    /// Number of members the ring spans.
    pub fn replicas(&self) -> usize {
        self.members.len()
    }

    /// The member IDs the ring spans, sorted.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Owner-list length (the effective replication factor R).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The owners of a raw ring position: the first R distinct members
    /// clockwise from hash `h`, in preference order. Never empty.
    pub fn owners_at(&self, h: u64) -> Vec<usize> {
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut owners = Vec::with_capacity(self.replication);
        for i in 0..self.points.len() {
            let (_, r) = self.points[(start + i) % self.points.len()];
            if !owners.contains(&r) {
                owners.push(r);
                if owners.len() == self.replication {
                    break;
                }
            }
        }
        owners
    }

    /// The key's owners: the first R distinct members clockwise from
    /// the key's hash, in preference order. Never empty.
    pub fn owners(&self, key: &str) -> Vec<usize> {
        self.owners_at(stable_hash(key.as_bytes()))
    }

    /// The primary owner of `key` (first entry of [`Ring::owners`]).
    pub fn primary(&self, key: &str) -> usize {
        self.owners(key)[0]
    }
}

/// The keyspace arcs whose owner lists differ between two ring epochs,
/// from [`owners_diff`]. `covers` answers "did this key's owners
/// change?" exactly — a key moved between the epochs iff its hash lies
/// on one of the recorded arcs — and `fraction` is the measure of the
/// moved arcs as a share of the full 2^64 keyspace, the quantity the
/// bounded-movement property test holds under the theoretical
/// moved-vnode bound.
#[derive(Clone, Debug)]
pub struct OwnersDiff {
    /// Sorted distinct union of both rings' point hashes. Owner lists
    /// are constant on each arc `(bounds[i-1], bounds[i]]` (wrapping).
    bounds: Vec<u64>,
    /// `moved[i]`: the owner lists differ on the arc ending at
    /// `bounds[i]`.
    moved: Vec<bool>,
    /// Total measure of moved arcs as a fraction of the keyspace.
    fraction: f64,
}

impl OwnersDiff {
    /// True when the key hash `h` lies on an arc whose owners changed.
    pub fn covers(&self, h: u64) -> bool {
        let i = self.bounds.partition_point(|&b| b < h);
        self.moved[i % self.moved.len()]
    }

    /// Share of the keyspace whose owner lists changed, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Number of contiguous boundary arcs marked moved.
    pub fn moved_arcs(&self) -> usize {
        self.moved.iter().filter(|&&m| m).count()
    }

    /// True when no arc moved (the epochs agree on every owner list).
    pub fn is_empty(&self) -> bool {
        self.moved_arcs() == 0
    }
}

/// Computes the arcs whose owner lists differ between `old` and `new`.
///
/// Owner lists are piecewise constant between adjacent ring points, so
/// it suffices to evaluate both rings once per arc of the *union* point
/// set: `O((|old| + |new|) · R)` total work, no key sampling. The result
/// is exact — the router's rebalance and the property test both consume
/// it rather than re-deriving ownership ad hoc.
pub fn owners_diff(old: &Ring, new: &Ring) -> OwnersDiff {
    let mut bounds: Vec<u64> =
        old.points.iter().chain(new.points.iter()).map(|&(h, _)| h).collect();
    bounds.sort_unstable();
    bounds.dedup();
    let n = bounds.len();
    let mut moved = Vec::with_capacity(n);
    let mut moved_measure: u128 = 0;
    const KEYSPACE: u128 = 1 << 64;
    for i in 0..n {
        let b = bounds[i];
        let differs = old.owners_at(b) != new.owners_at(b);
        moved.push(differs);
        if differs {
            let prev = bounds[(i + n - 1) % n];
            // Arc (prev, b], wrapping; a single-point ring covers the
            // whole circle (wrapping_sub would read zero).
            let len = if n == 1 { KEYSPACE } else { u128::from(b.wrapping_sub(prev)) };
            moved_measure += len;
        }
    }
    let fraction = moved_measure as f64 / KEYSPACE as f64;
    OwnersDiff { bounds, moved, fraction }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_layout_is_deterministic() {
        let a = Ring::new(5, 64, 2);
        let b = Ring::new(5, 64, 2);
        for key in ["gtc|es|procs=64", "lbmhd|sx8|procs=512|n=512", "x", ""] {
            assert_eq!(a.owners(key), b.owners(key), "{key}");
        }
    }

    #[test]
    fn owners_are_distinct_and_r_long() {
        let ring = Ring::new(4, 32, 3);
        for i in 0..200 {
            let owners = ring.owners(&format!("key{i}"));
            assert_eq!(owners.len(), 3);
            let mut sorted = owners.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "owners must be distinct: {owners:?}");
            assert!(owners.iter().all(|&r| r < 4));
        }
    }

    #[test]
    fn replication_clamps_to_replica_count() {
        let ring = Ring::new(2, 16, 5);
        assert_eq!(ring.replication(), 2);
        assert_eq!(ring.owners("k").len(), 2);
        let single = Ring::new(1, 16, 3);
        assert_eq!(single.owners("k"), vec![0]);
    }

    #[test]
    fn virtual_nodes_balance_the_keyspace() {
        // With 64 vnodes per replica, no replica should own a wildly
        // disproportionate share of 10k uniform keys.
        let ring = Ring::new(4, DEFAULT_VNODES, 1);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[ring.primary(&format!("app|plat|procs={i}"))] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            assert!(c > 1_000, "replica {r} owns only {c}/10000 keys");
            assert!(c < 5_000, "replica {r} owns {c}/10000 keys");
        }
    }

    #[test]
    fn failover_order_moves_to_the_next_distinct_replica() {
        // The second owner differs from the first for every key; killing
        // the primary leaves the secondary as the deterministic target.
        let ring = Ring::new(3, 48, 2);
        for i in 0..100 {
            let owners = ring.owners(&format!("k{i}"));
            assert_ne!(owners[0], owners[1]);
        }
    }

    #[test]
    fn ownership_is_invariant_under_vnode_insertion_order() {
        // Property: the ring is a *set* of points — the order vnodes are
        // generated in must not matter. Build the same point set in a
        // seeded Fisher-Yates-shuffled order and check every owner list
        // agrees with the canonically built ring.
        use hec_core::rng::Rng;
        let (replicas, vnodes, replication) = (5, 32, 3);
        let canonical = Ring::new(replicas, vnodes, replication);
        for seed in 0..8u64 {
            let mut labels: Vec<(usize, usize)> =
                (0..replicas).flat_map(|r| (0..vnodes).map(move |v| (r, v))).collect();
            let mut rng = Rng::new(seed);
            for i in (1..labels.len()).rev() {
                labels.swap(i, rng.below(i + 1));
            }
            let mut points: Vec<(u64, usize)> = labels
                .into_iter()
                .map(|(r, v)| (stable_hash(format!("replica{r}#vnode{v}").as_bytes()), r))
                .collect();
            points.sort_unstable();
            let shuffled = Ring { points, members: (0..replicas).collect(), replication };
            for i in 0..100 {
                let key = format!("app{}|plat{}|procs={}", i % 4, i % 7, 1 << (i % 10));
                assert_eq!(canonical.owners(&key), shuffled.owners(&key), "seed {seed}, key {key}");
            }
        }
    }

    #[test]
    fn every_key_has_exactly_r_distinct_owners_across_configs() {
        // Property: for any (replicas, vnodes, replication) and any key,
        // the owner list has exactly min(replication, replicas) entries,
        // all distinct, all valid replica indices.
        use hec_core::rng::Rng;
        let mut rng = Rng::new(0xC0FFEE);
        for replicas in 1..=6usize {
            for &vnodes in &[1usize, 16, 64] {
                for replication in 1..=5usize {
                    let ring = Ring::new(replicas, vnodes, replication);
                    let want = replication.min(replicas);
                    for _ in 0..50 {
                        let key = format!("k{}", rng.next_u64());
                        let owners = ring.owners(&key);
                        assert_eq!(owners.len(), want, "{replicas}r/{vnodes}v/{replication}R");
                        let mut sorted = owners.clone();
                        sorted.sort_unstable();
                        sorted.dedup();
                        assert_eq!(sorted.len(), want, "duplicate owner in {owners:?}");
                        assert!(owners.iter().all(|&r| r < replicas));
                    }
                }
            }
        }
    }

    #[test]
    fn over_matches_new_for_contiguous_members_and_handles_gaps() {
        let a = Ring::new(4, 32, 2);
        let b = Ring::over(&[0, 1, 2, 3], 32, 2);
        for i in 0..100 {
            let key = format!("k{i}");
            assert_eq!(a.owners(&key), b.owners(&key));
        }
        // Gapped member sets are first-class: owners come from the set.
        let gapped = Ring::over(&[0, 2, 5], 32, 2);
        assert_eq!(gapped.members(), &[0, 2, 5]);
        for i in 0..100 {
            let owners = gapped.owners(&format!("k{i}"));
            assert!(owners.iter().all(|r| [0, 2, 5].contains(r)), "{owners:?}");
        }
    }

    #[test]
    fn members_shared_between_epochs_keep_their_arcs() {
        // Member 1's vnode positions depend only on its ID, so its
        // points are identical whether the ring is {0,1} or {0,1,2}.
        let small = Ring::over(&[0, 1], 64, 2);
        let large = Ring::over(&[0, 1, 2], 64, 2);
        let pts = |ring: &Ring, m: usize| -> Vec<u64> {
            ring.points.iter().filter(|&&(_, r)| r == m).map(|&(h, _)| h).collect()
        };
        assert_eq!(pts(&small, 1), pts(&large, 1));
        assert_eq!(pts(&small, 0), pts(&large, 0));
    }

    #[test]
    fn owners_diff_is_exact_and_empty_for_identical_epochs() {
        let a = Ring::over(&[0, 1, 2], 64, 2);
        let b = Ring::over(&[0, 1, 2], 64, 2);
        let diff = owners_diff(&a, &b);
        assert!(diff.is_empty());
        assert_eq!(diff.fraction(), 0.0);
        for i in 0..200 {
            assert!(!diff.covers(stable_hash(format!("k{i}").as_bytes())));
        }
    }

    #[test]
    fn owners_diff_covers_exactly_the_keys_whose_owners_changed() {
        // covers(h) must agree with a direct owner-list comparison for
        // every sampled key — both directions, no false arcs.
        for (old_members, new_members) in [
            (vec![0usize, 1], vec![0usize, 1, 2]), // add
            (vec![0, 1, 2, 3], vec![0, 2, 3]),     // drain
            (vec![0, 1, 2], vec![0, 1, 2, 3, 4]),  // add two
            (vec![0, 2, 5], vec![0, 2]),           // drain from a gapped set
        ] {
            let old = Ring::over(&old_members, DEFAULT_VNODES, 2);
            let new = Ring::over(&new_members, DEFAULT_VNODES, 2);
            let diff = owners_diff(&old, &new);
            for i in 0..2_000 {
                let key = format!("app{}|plat{}|procs={i}", i % 5, i % 3);
                let h = stable_hash(key.as_bytes());
                let changed = old.owners(&key) != new.owners(&key);
                assert_eq!(
                    diff.covers(h),
                    changed,
                    "covers() disagreed with owner comparison for {key} ({old_members:?} -> {new_members:?})"
                );
            }
        }
    }

    #[test]
    fn single_member_change_moves_a_bounded_keyspace_fraction() {
        // The bounded-movement property (DESIGN §12): adding one member
        // to an n-member ring moves at most roughly R/(n+1) of the
        // keyspace — the new member's vnodes shadow R owner slots each —
        // and the exact arc measure from owners_diff stays under that
        // bound with a concentration-slack factor. A full reshuffle
        // (fraction near 1.0) would fail this immediately.
        for n in [2usize, 3, 4, 6] {
            for r in [1usize, 2] {
                let old = Ring::over(&(0..n).collect::<Vec<_>>(), DEFAULT_VNODES, r);
                let new = Ring::over(&(0..=n).collect::<Vec<_>>(), DEFAULT_VNODES, r);
                let diff = owners_diff(&old, &new);
                let theoretical = r as f64 / (n + 1) as f64;
                let bound = (1.5 * theoretical).min(0.9);
                assert!(
                    diff.fraction() <= bound,
                    "add to n={n}, R={r}: moved {:.3} > bound {:.3}",
                    diff.fraction(),
                    bound
                );
                assert!(diff.fraction() > 0.0, "adding a member must move something");
                // Sampled measurement agrees with the arc measure.
                let sampled = (0..20_000)
                    .filter(|i| diff.covers(stable_hash(format!("key{i}").as_bytes())))
                    .count() as f64
                    / 20_000.0;
                assert!(
                    (sampled - diff.fraction()).abs() < 0.02,
                    "sampled {sampled:.3} vs measure {:.3}",
                    diff.fraction()
                );
            }
        }
    }

    #[test]
    fn stable_hash_is_pinned() {
        // The ring layout is part of the cluster's deterministic
        // contract; a silent hash change would shuffle every owner list.
        assert_eq!(stable_hash(b""), stable_hash(b""));
        assert_ne!(stable_hash(b"a"), stable_hash(b"b"));
        let h = stable_hash(b"gtc|es|procs=64");
        assert_eq!(h, stable_hash(b"gtc|es|procs=64"));
    }
}
