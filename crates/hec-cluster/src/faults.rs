//! Deterministic fault injection for the cluster tier.
//!
//! A [`FaultPlan`] is a fixed list of events, each pinned to an
//! *admitted-request index*: when the router admits its `k`-th routable
//! request, every event with `at_request == k` fires. Plans are either
//! hand-built (tests pinning one kill at one index) or generated from a
//! seed via [`FaultPlan::seeded`] — same seed, same events, so a
//! failover test replays the identical kill/stall/drop sequence every
//! run, which is what lets the suite assert *byte-identical* responses
//! under faults instead of "usually works".
//!
//! Kinds:
//! * `Kill` — shut the target replica down (it stays down until an
//!   explicit restart). The seeded generator emits at most `R − 1`
//!   kills, matching the availability contract: a key with R owners
//!   tolerates R − 1 owner deaths.
//! * `StallMs` — delay the request before any forwarding, simulating a
//!   router-side scheduling hiccup.
//! * `DropConn` — the next forward attempt from this request to the
//!   target replica fails as if the connection dropped mid-flight; the
//!   router must fail over.
//! * `SlowReplyMs` — delay relaying the reply, simulating a straggler
//!   replica (the paper's scaling tables are exactly about stragglers at
//!   high P).
//! * `AddAt` — scale the cluster up by one replica (membership churn
//!   pinned to an admitted-request index; the `replica` field is
//!   ignored, the new member takes the next slot ID).
//! * `DrainAt` — gracefully drain the target replica out of the ring
//!   (epoch flip, cache handoff, then stop), the elastic counterpart of
//!   `Kill` under the same byte-identity contract.

use hec_core::rng::Rng;

/// What a fault event does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Shut down the target replica.
    Kill,
    /// Sleep this many milliseconds before forwarding.
    StallMs(u64),
    /// Fail the request's next forward attempt to the target replica.
    DropConn,
    /// Sleep this many milliseconds before relaying the reply.
    SlowReplyMs(u64),
    /// Scale up: add one replica to the ring (target field ignored).
    AddAt,
    /// Scale down: gracefully drain the target replica out of the ring.
    DrainAt,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Admitted-request index at which the event fires.
    pub at_request: u64,
    /// Target replica index.
    pub replica: usize,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, consumed as requests are
/// admitted. Each event fires exactly once.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan from explicit events (tests pin exact indices this way).
    pub fn with(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at_request);
        FaultPlan { events }
    }

    /// Convenience: kill `replica` when request `at_request` is admitted.
    pub fn kill_at(replica: usize, at_request: u64) -> FaultPlan {
        FaultPlan::with(vec![FaultEvent { at_request, replica, kind: FaultKind::Kill }])
    }

    /// Convenience: one scale-up event at `at_request`.
    pub fn add_at(at_request: u64) -> FaultPlan {
        FaultPlan::with(vec![FaultEvent { at_request, replica: 0, kind: FaultKind::AddAt }])
    }

    /// Convenience: drain `replica` when request `at_request` is admitted.
    pub fn drain_at(replica: usize, at_request: u64) -> FaultPlan {
        FaultPlan::with(vec![FaultEvent { at_request, replica, kind: FaultKind::DrainAt }])
    }

    /// Merges two plans into one schedule (events re-sorted by index).
    pub fn merged(self, other: FaultPlan) -> FaultPlan {
        let mut events = self.events;
        events.extend(other.events);
        FaultPlan::with(events)
    }

    /// A seeded plan: `events` faults over request indices
    /// `[0, horizon)` against `replicas` replicas. The mix is drawn from
    /// the seeded generator — stalls, dropped connections, slow replies,
    /// and at most `replication − 1` kills (so every key keeps a live
    /// owner). Same arguments, same plan, on every platform.
    pub fn seeded(
        seed: u64,
        replicas: usize,
        replication: usize,
        events: usize,
        horizon: u64,
    ) -> FaultPlan {
        let mut rng = Rng::new(seed);
        let replicas = replicas.max(1);
        let horizon = horizon.max(1);
        let max_kills = replication.clamp(1, replicas) - 1;
        let mut kills = 0usize;
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            let at_request = rng.below(horizon as usize) as u64;
            let replica = rng.below(replicas);
            let kind = match rng.below(4) {
                0 if kills < max_kills => {
                    kills += 1;
                    FaultKind::Kill
                }
                0 | 1 => FaultKind::StallMs(1 + rng.below(20) as u64),
                2 => FaultKind::DropConn,
                _ => FaultKind::SlowReplyMs(1 + rng.below(20) as u64),
            };
            out.push(FaultEvent { at_request, replica, kind });
        }
        FaultPlan::with(out)
    }

    /// Events not yet fired.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Removes and returns every event scheduled for request `index`.
    pub fn take_at(&mut self, index: u64) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        self.events.retain(|e| {
            if e.at_request == index {
                fired.push(*e);
                false
            } else {
                true
            }
        });
        fired
    }

    /// A read-only view of the scheduled events (for logging/metrics).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_replay_exactly() {
        let a = FaultPlan::seeded(11, 3, 2, 16, 100);
        let b = FaultPlan::seeded(11, 3, 2, 16, 100);
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::seeded(12, 3, 2, 16, 100);
        assert_ne!(a.events(), c.events(), "different seeds must differ");
    }

    #[test]
    fn seeded_kills_stay_under_replication() {
        for seed in 0..50u64 {
            for (replicas, replication) in [(3usize, 2usize), (5, 3), (4, 1)] {
                let plan = FaultPlan::seeded(seed, replicas, replication, 64, 1000);
                let kills = plan.events().iter().filter(|e| e.kind == FaultKind::Kill).count();
                assert!(
                    kills <= replication.saturating_sub(1),
                    "seed {seed}: {kills} kills at R={replication}"
                );
            }
        }
    }

    #[test]
    fn take_at_consumes_events_once() {
        let mut plan = FaultPlan::with(vec![
            FaultEvent { at_request: 5, replica: 0, kind: FaultKind::Kill },
            FaultEvent { at_request: 5, replica: 1, kind: FaultKind::DropConn },
            FaultEvent { at_request: 9, replica: 1, kind: FaultKind::StallMs(3) },
        ]);
        assert_eq!(plan.take_at(4), vec![]);
        let fired = plan.take_at(5);
        assert_eq!(fired.len(), 2);
        assert_eq!(plan.take_at(5), vec![], "events fire exactly once");
        assert_eq!(plan.remaining(), 1);
        assert_eq!(plan.take_at(9).len(), 1);
        assert!(plan.is_empty());
    }

    #[test]
    fn churn_constructors_pin_membership_events() {
        let plan =
            FaultPlan::add_at(24).merged(FaultPlan::add_at(32)).merged(FaultPlan::drain_at(1, 44));
        assert_eq!(plan.remaining(), 3);
        let evs = plan.events();
        assert_eq!(evs[0], FaultEvent { at_request: 24, replica: 0, kind: FaultKind::AddAt });
        assert_eq!(evs[1], FaultEvent { at_request: 32, replica: 0, kind: FaultKind::AddAt });
        assert_eq!(evs[2], FaultEvent { at_request: 44, replica: 1, kind: FaultKind::DrainAt });
    }

    #[test]
    fn events_land_inside_the_horizon() {
        let plan = FaultPlan::seeded(7, 4, 2, 100, 50);
        assert!(plan.events().iter().all(|e| e.at_request < 50));
        assert!(plan.events().iter().all(|e| e.replica < 4));
    }
}
