//! Replica health: probed state, transition counters, and the checker.
//!
//! Each replica has one bit of probed state (up/down) plus transition
//! counters, updated from two directions: a background checker thread
//! probes every replica's `/metrics` endpoint with a timeout on a fixed
//! interval, and the router marks replicas down *reactively* the moment
//! a forward fails (waiting a full probe interval to notice a dead
//! primary would turn every failover into a timeout). Both paths go
//! through [`Health::mark`], which counts each up↔down transition —
//! the cluster `/metrics` document exposes those counts, and the e2e
//! suite asserts the down-then-up sequence around a kill/restart.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hec_serve::client;

use crate::replica::ReplicaSet;

/// Health-checker tuning.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Delay between probe sweeps.
    pub interval: Duration,
    /// Per-probe connect/read timeout.
    pub probe_timeout: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(500),
        }
    }
}

struct ReplicaHealth {
    up: AtomicBool,
    down_transitions: AtomicU64,
    up_transitions: AtomicU64,
}

/// Up/down state and transition counts for every replica.
pub struct Health {
    replicas: Vec<ReplicaHealth>,
}

impl Health {
    /// All replicas start marked up (they were just started).
    pub fn new(n: usize) -> Health {
        Health {
            replicas: (0..n)
                .map(|_| ReplicaHealth {
                    up: AtomicBool::new(true),
                    down_transitions: AtomicU64::new(0),
                    up_transitions: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// True when replica `i` is currently believed up.
    pub fn is_up(&self, i: usize) -> bool {
        self.replicas.get(i).map(|r| r.up.load(Ordering::SeqCst)).unwrap_or(false)
    }

    /// Records an observation of replica `i`; counts the transition when
    /// the state actually changed. Returns true on a state change.
    pub fn mark(&self, i: usize, up: bool) -> bool {
        let Some(r) = self.replicas.get(i) else { return false };
        let changed = r.up.swap(up, Ordering::SeqCst) != up;
        if changed {
            if up {
                r.up_transitions.fetch_add(1, Ordering::Relaxed);
            } else {
                r.down_transitions.fetch_add(1, Ordering::Relaxed);
            }
        }
        changed
    }

    /// Up→down transitions observed for replica `i`.
    pub fn down_transitions(&self, i: usize) -> u64 {
        self.replicas.get(i).map(|r| r.down_transitions.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Down→up transitions observed for replica `i`.
    pub fn up_transitions(&self, i: usize) -> u64 {
        self.replicas.get(i).map(|r| r.up_transitions.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Number of replicas currently up.
    pub fn up_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.up.load(Ordering::SeqCst)).count()
    }
}

/// Probes one replica: a `/metrics` GET within the timeout counts as up.
/// A down slot (no address) is down without a network round trip.
pub fn probe(replicas: &ReplicaSet, i: usize, timeout: Duration) -> bool {
    match replicas.addr(i) {
        None => false,
        Some(addr) => client::http_get_timeout(&format!("http://{addr}/metrics"), timeout)
            .map(|r| r.status == 200)
            .unwrap_or(false),
    }
}

/// Spawns the background checker: sweeps every replica each `interval`
/// until `stop` is set, feeding observations through [`Health::mark`].
pub fn spawn_checker(
    replicas: Arc<ReplicaSet>,
    health: Arc<Health>,
    stop: Arc<AtomicBool>,
    cfg: HealthConfig,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            for i in 0..replicas.len() {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                health.mark(i, probe(&replicas, i, cfg.probe_timeout));
            }
            std::thread::sleep(cfg.interval);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_serve::server::ServeConfig;

    #[test]
    fn transitions_count_only_state_changes() {
        let h = Health::new(2);
        assert!(h.is_up(0));
        assert!(!h.mark(0, true), "up→up is not a transition");
        assert!(h.mark(0, false));
        assert!(!h.mark(0, false));
        assert!(h.mark(0, true));
        assert_eq!(h.down_transitions(0), 1);
        assert_eq!(h.up_transitions(0), 1);
        assert_eq!(h.down_transitions(1), 0);
        assert_eq!(h.up_count(), 2);
    }

    #[test]
    fn probe_tracks_replica_liveness() {
        let set =
            ReplicaSet::start(1, ServeConfig { port: 0, workers: 1, queue: 8, cache_capacity: 64 })
                .unwrap();
        let timeout = Duration::from_millis(500);
        assert!(probe(&set, 0, timeout));
        set.kill(0);
        assert!(!probe(&set, 0, timeout));
        assert!(!probe(&set, 7, timeout), "out-of-range replica is down");
        set.shutdown_all();
    }
}
