//! Replica health: probed state, transition counters, and the checker.
//!
//! Each replica has one bit of probed state (up/down) plus transition
//! counters, updated from two directions: a background checker thread
//! probes every replica's `/metrics` endpoint with a timeout on a fixed
//! interval, and the router marks replicas down *reactively* the moment
//! a forward fails (waiting a full probe interval to notice a dead
//! primary would turn every failover into a timeout). Both paths go
//! through [`Health::mark`], which counts each up↔down transition —
//! the cluster `/metrics` document exposes those counts, and the e2e
//! suite asserts the down-then-up sequence around a kill/restart.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hec_core::sync::Mutex;
use hec_serve::client;

use crate::replica::ReplicaSet;

/// Health-checker tuning.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Delay between probe sweeps.
    pub interval: Duration,
    /// Per-probe connect/read timeout.
    pub probe_timeout: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(500),
        }
    }
}

struct ReplicaHealth {
    up: AtomicBool,
    /// Retired members are out of the ring for good: probes skip them,
    /// marks ignore them, and their transition counters freeze — a
    /// drained replica must not accumulate down-transitions forever.
    retired: AtomicBool,
    /// Bumped on every *reactive* observation (router failure, admin
    /// kill/restart). A background probe snapshots this before its
    /// network round trip and its result is dropped if the stamp moved
    /// meanwhile — otherwise a probe that connected just before a kill
    /// would land after the kill's mark and flip the replica back up.
    reactive_stamp: AtomicU64,
    down_transitions: AtomicU64,
    up_transitions: AtomicU64,
}

impl ReplicaHealth {
    fn fresh() -> ReplicaHealth {
        ReplicaHealth {
            up: AtomicBool::new(true),
            retired: AtomicBool::new(false),
            reactive_stamp: AtomicU64::new(0),
            down_transitions: AtomicU64::new(0),
            up_transitions: AtomicU64::new(0),
        }
    }

    fn record(&self, up: bool) -> bool {
        let changed = self.up.swap(up, Ordering::SeqCst) != up;
        if changed {
            if up {
                self.up_transitions.fetch_add(1, Ordering::Relaxed);
            } else {
                self.down_transitions.fetch_add(1, Ordering::Relaxed);
            }
        }
        changed
    }
}

/// Up/down state and transition counts for every replica slot. The set
/// grows with [`Health::add`] (elastic scale-up) and individual slots
/// retire with [`Health::retire`]; slot IDs mirror the replica set's.
pub struct Health {
    replicas: Mutex<Vec<Arc<ReplicaHealth>>>,
}

impl Health {
    /// All replicas start marked up (they were just started).
    pub fn new(n: usize) -> Health {
        Health { replicas: Mutex::new((0..n).map(|_| Arc::new(ReplicaHealth::fresh())).collect()) }
    }

    fn slot(&self, i: usize) -> Option<Arc<ReplicaHealth>> {
        self.replicas.lock().get(i).cloned()
    }

    /// Total slots ever tracked (current and retired).
    pub fn len(&self) -> usize {
        self.replicas.lock().len()
    }

    /// Tracks one more replica, marked up. Returns its slot ID.
    pub fn add(&self) -> usize {
        let mut g = self.replicas.lock();
        g.push(Arc::new(ReplicaHealth::fresh()));
        g.len() - 1
    }

    /// Retires replica `i`: it reads down, stops being probed, and its
    /// transition counters freeze (retirement itself is not counted as
    /// a down transition — the replica didn't fail, it left).
    pub fn retire(&self, i: usize) {
        if let Some(r) = self.slot(i) {
            r.retired.store(true, Ordering::SeqCst);
            r.up.store(false, Ordering::SeqCst);
        }
    }

    /// True when replica `i` has been retired.
    pub fn is_retired(&self, i: usize) -> bool {
        self.slot(i).map(|r| r.retired.load(Ordering::SeqCst)).unwrap_or(false)
    }

    /// True when replica `i` is currently believed up.
    pub fn is_up(&self, i: usize) -> bool {
        self.slot(i).map(|r| r.up.load(Ordering::SeqCst)).unwrap_or(false)
    }

    /// Records a *reactive* observation of replica `i` (a forward that
    /// failed or succeeded, an admin kill/restart); counts the
    /// transition when the state actually changed and invalidates any
    /// probe currently in flight. Returns true on a state change.
    /// Observations of retired replicas are dropped.
    pub fn mark(&self, i: usize, up: bool) -> bool {
        let Some(r) = self.slot(i) else { return false };
        if r.retired.load(Ordering::SeqCst) {
            return false;
        }
        r.reactive_stamp.fetch_add(1, Ordering::SeqCst);
        r.record(up)
    }

    /// The stamp a probe must snapshot before its round trip; pass it
    /// back to [`Health::mark_probed`].
    pub fn probe_stamp(&self, i: usize) -> u64 {
        self.slot(i).map(|r| r.reactive_stamp.load(Ordering::SeqCst)).unwrap_or(0)
    }

    /// Records a background-probe observation taken under `stamp`. The
    /// result is dropped when any reactive mark landed since the stamp
    /// was read — the probe's evidence predates it and must not win.
    pub fn mark_probed(&self, i: usize, up: bool, stamp: u64) -> bool {
        let Some(r) = self.slot(i) else { return false };
        if r.retired.load(Ordering::SeqCst) || r.reactive_stamp.load(Ordering::SeqCst) != stamp {
            return false;
        }
        r.record(up)
    }

    /// Up→down transitions observed for replica `i`.
    pub fn down_transitions(&self, i: usize) -> u64 {
        self.slot(i).map(|r| r.down_transitions.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Down→up transitions observed for replica `i`.
    pub fn up_transitions(&self, i: usize) -> u64 {
        self.slot(i).map(|r| r.up_transitions.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Number of current (non-retired) replicas believed up.
    pub fn up_count(&self) -> usize {
        let slots: Vec<Arc<ReplicaHealth>> = self.replicas.lock().clone();
        slots
            .iter()
            .filter(|r| !r.retired.load(Ordering::SeqCst) && r.up.load(Ordering::SeqCst))
            .count()
    }

    /// Number of current (non-retired) replicas, up or down.
    pub fn current_count(&self) -> usize {
        let slots: Vec<Arc<ReplicaHealth>> = self.replicas.lock().clone();
        slots.iter().filter(|r| !r.retired.load(Ordering::SeqCst)).count()
    }
}

/// Probes one replica: a `/metrics` GET within the timeout counts as up.
/// A down slot (no address) is down without a network round trip.
pub fn probe(replicas: &ReplicaSet, i: usize, timeout: Duration) -> bool {
    match replicas.addr(i) {
        None => false,
        Some(addr) => client::http_get_timeout(&format!("http://{addr}/metrics"), timeout)
            .map(|r| r.status == 200)
            .unwrap_or(false),
    }
}

/// Spawns the background checker: sweeps every current replica each
/// `interval` until `stop` is set, feeding observations through
/// [`Health::mark`]. The sweep re-reads the slot count every pass, so
/// replicas added mid-run are picked up and retired ones are skipped.
pub fn spawn_checker(
    replicas: Arc<ReplicaSet>,
    health: Arc<Health>,
    stop: Arc<AtomicBool>,
    cfg: HealthConfig,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            for i in 0..health.len() {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                if health.is_retired(i) {
                    continue;
                }
                let stamp = health.probe_stamp(i);
                let up = probe(&replicas, i, cfg.probe_timeout);
                health.mark_probed(i, up, stamp);
            }
            std::thread::sleep(cfg.interval);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_serve::server::ServeConfig;

    #[test]
    fn transitions_count_only_state_changes() {
        let h = Health::new(2);
        assert!(h.is_up(0));
        assert!(!h.mark(0, true), "up→up is not a transition");
        assert!(h.mark(0, false));
        assert!(!h.mark(0, false));
        assert!(h.mark(0, true));
        assert_eq!(h.down_transitions(0), 1);
        assert_eq!(h.up_transitions(0), 1);
        assert_eq!(h.down_transitions(1), 0);
        assert_eq!(h.up_count(), 2);
    }

    #[test]
    fn retired_replicas_freeze_their_counters_and_leave_the_counts() {
        let h = Health::new(3);
        assert!(h.mark(2, false));
        assert!(h.mark(2, true));
        h.retire(2);
        assert!(h.is_retired(2));
        assert!(!h.is_up(2));
        // Marks after retirement are dropped; counters stay frozen.
        assert!(!h.mark(2, false));
        assert!(!h.mark(2, true));
        assert_eq!(h.down_transitions(2), 1);
        assert_eq!(h.up_transitions(2), 1);
        assert_eq!(h.up_count(), 2);
        assert_eq!(h.current_count(), 2);
        assert_eq!(h.len(), 3, "retired slots keep their ID");
    }

    #[test]
    fn stale_probe_results_cannot_overwrite_a_reactive_mark() {
        let h = Health::new(1);
        // A probe snapshots its stamp, then an admin kill lands while
        // the probe's round trip is in flight: the probe's "up" verdict
        // is stale evidence and must be dropped.
        let stamp = h.probe_stamp(0);
        assert!(h.mark(0, false), "kill marks the replica down");
        assert!(!h.mark_probed(0, true, stamp), "stale probe is dropped");
        assert!(!h.is_up(0));
        assert_eq!(h.up_transitions(0), 0);
        // A probe taken under the current stamp still lands.
        let fresh = h.probe_stamp(0);
        assert!(h.mark_probed(0, true, fresh));
        assert!(h.is_up(0));
    }

    #[test]
    fn add_tracks_a_new_replica_marked_up() {
        let h = Health::new(1);
        assert_eq!(h.add(), 1);
        assert_eq!(h.add(), 2);
        assert!(h.is_up(1) && h.is_up(2));
        assert_eq!(h.up_count(), 3);
        assert_eq!(h.current_count(), 3);
    }

    #[test]
    fn probe_tracks_replica_liveness() {
        let set =
            ReplicaSet::start(1, ServeConfig { port: 0, workers: 1, queue: 8, cache_capacity: 64 })
                .unwrap();
        let timeout = Duration::from_millis(500);
        assert!(probe(&set, 0, timeout));
        set.kill(0);
        assert!(!probe(&set, 0, timeout));
        assert!(!probe(&set, 7, timeout), "out-of-range replica is down");
        set.shutdown_all();
    }
}
