//! The replica set: N independent in-process `hec-serve` instances.
//!
//! Each replica is a full [`hec_serve::server::Server`] — its own
//! listener on an ephemeral 127.0.0.1 port, worker pool, cache, and
//! batcher — so replicas fail independently: killing one closes its
//! socket and drains its workers without touching the others, exactly
//! the failure granularity the fault plan needs. A restarted replica
//! comes back on a *new* port (the old one cannot be reliably rebound
//! immediately); the router always looks addresses up through
//! [`ReplicaSet::addr`], so the ring never stores a stale port.
//!
//! The set is *growable and retirable* (DESIGN §12): slot IDs are
//! append-only — [`ReplicaSet::add`] assigns the next never-used ID, and
//! [`ReplicaSet::retire`] gracefully drains a slot and marks it retired
//! forever (IDs are never reused, so a ring epoch that names member `i`
//! always means the same process). A retired slot records the reactor's
//! final open-connection count, the number the drain contract requires
//! to be zero.

use std::net::SocketAddr;
use std::sync::Arc;

use hec_core::sync::Mutex;
use hec_serve::server::{self, ServeConfig, Server};

struct Slot {
    server: Option<Server>,
    /// Last bound address; retained while down for diagnostics.
    addr: SocketAddr,
    /// Retired slots never restart; their ID is never reused.
    retired: bool,
    /// Reactor connections still open when the retirement drain
    /// finished (meaningful only once `retired`).
    final_open: u64,
}

/// In-process `hec-serve` replicas: individually killable, restartable,
/// and — for elasticity — addable and retirable.
pub struct ReplicaSet {
    slots: Mutex<Vec<Arc<Mutex<Slot>>>>,
    template: ServeConfig,
}

impl ReplicaSet {
    /// Starts `n` replicas from `template` (the port field is ignored —
    /// every replica binds an ephemeral port).
    pub fn start(n: usize, template: ServeConfig) -> std::io::Result<ReplicaSet> {
        let set = ReplicaSet { slots: Mutex::new(Vec::with_capacity(n.max(1))), template };
        for _ in 0..n.max(1) {
            set.add()?;
        }
        Ok(set)
    }

    fn slot(&self, i: usize) -> Option<Arc<Mutex<Slot>>> {
        self.slots.lock().get(i).cloned()
    }

    /// Number of replica slots ever created (up, down, or retired).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when the set has no slots (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Starts a fresh replica in the next slot. Returns its ID and
    /// address; the ID is stable for the life of the set.
    pub fn add(&self) -> std::io::Result<(usize, SocketAddr)> {
        let server = server::start(ServeConfig { port: 0, ..self.template.clone() })?;
        let addr = server.addr();
        let mut slots = self.slots.lock();
        slots.push(Arc::new(Mutex::new(Slot {
            server: Some(server),
            addr,
            retired: false,
            final_open: 0,
        })));
        Ok((slots.len() - 1, addr))
    }

    /// The replica's current address, or `None` when it is down,
    /// retired, or the index is out of range.
    pub fn addr(&self, i: usize) -> Option<SocketAddr> {
        let slot = self.slot(i)?;
        let g = slot.lock();
        g.server.as_ref().map(|s| s.addr())
    }

    /// The replica's last known address regardless of state (diagnostics).
    pub fn last_addr(&self, i: usize) -> Option<SocketAddr> {
        Some(self.slot(i)?.lock().addr)
    }

    /// True when the replica is currently running.
    pub fn is_up(&self, i: usize) -> bool {
        self.slot(i).map(|s| s.lock().server.is_some()).unwrap_or(false)
    }

    /// True when the replica has been retired (drained out for good).
    pub fn is_retired(&self, i: usize) -> bool {
        self.slot(i).map(|s| s.lock().retired).unwrap_or(false)
    }

    /// IDs of slots that are not retired, ascending.
    pub fn current_ids(&self) -> Vec<usize> {
        let slots = self.slots.lock();
        (0..slots.len()).filter(|&i| !slots[i].lock().retired).collect()
    }

    /// IDs of retired slots, ascending.
    pub fn retired_ids(&self) -> Vec<usize> {
        let slots = self.slots.lock();
        (0..slots.len()).filter(|&i| slots[i].lock().retired).collect()
    }

    /// The reactor's final open-connection count recorded when slot `i`
    /// was retired. `None` until the slot is retired.
    pub fn final_open(&self, i: usize) -> Option<u64> {
        let slot = self.slot(i)?;
        let g = slot.lock();
        if g.retired {
            Some(g.final_open)
        } else {
            None
        }
    }

    /// Shuts replica `i` down (graceful: drains in-flight requests).
    /// Returns true when it was up. Idempotent.
    pub fn kill(&self, i: usize) -> bool {
        let Some(slot) = self.slot(i) else { return false };
        let server = slot.lock().server.take();
        match server {
            Some(s) => {
                s.shutdown();
                s.join();
                true
            }
            None => false,
        }
    }

    /// Restarts replica `i` on a fresh ephemeral port. Returns the new
    /// address; an already-running replica is left alone. Retired slots
    /// refuse to restart.
    pub fn restart(&self, i: usize) -> std::io::Result<SocketAddr> {
        let slot = self.slot(i).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("no replica {i}"))
        })?;
        {
            let g = slot.lock();
            if g.retired {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("replica {i} is retired"),
                ));
            }
            if let Some(s) = g.server.as_ref() {
                return Ok(s.addr());
            }
        }
        let server = server::start(ServeConfig { port: 0, ..self.template.clone() })?;
        let addr = server.addr();
        let mut g = slot.lock();
        g.server = Some(server);
        g.addr = addr;
        Ok(addr)
    }

    /// Retires replica `i` for good: graceful drain (in-flight requests
    /// complete, then every connection closes), then the slot is marked
    /// retired and records the reactor's final open-connection count.
    /// Returns that count, or `None` when already retired / out of
    /// range. A down-but-not-retired slot retires with count 0.
    pub fn retire(&self, i: usize) -> Option<u64> {
        let slot = self.slot(i)?;
        let server = {
            let mut g = slot.lock();
            if g.retired {
                return None;
            }
            g.retired = true;
            g.server.take()
        };
        let final_open = match server {
            Some(s) => {
                let net = s.net_stats();
                s.shutdown();
                s.join();
                net.open()
            }
            None => 0,
        };
        slot.lock().final_open = final_open;
        Some(final_open)
    }

    /// Shuts every running replica down.
    pub fn shutdown_all(&self) {
        for i in 0..self.len() {
            let _ = self.kill(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_serve::client;

    fn small_cfg() -> ServeConfig {
        ServeConfig { port: 0, workers: 2, queue: 16, cache_capacity: 128 }
    }

    #[test]
    fn replicas_start_on_distinct_ports_and_serve() {
        let set = ReplicaSet::start(3, small_cfg()).unwrap();
        assert_eq!(set.len(), 3);
        let mut ports = Vec::new();
        for i in 0..3 {
            let addr = set.addr(i).expect("up");
            ports.push(addr.port());
            let r = client::http_get(&format!("http://{addr}/healthz")).unwrap();
            assert_eq!(r.status, 200);
        }
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 3, "each replica gets its own port");
        set.shutdown_all();
    }

    #[test]
    fn kill_is_isolated_and_restart_revives() {
        let set = ReplicaSet::start(2, small_cfg()).unwrap();
        let dead_addr = set.addr(0).unwrap();
        assert!(set.kill(0));
        assert!(!set.kill(0), "second kill is a no-op");
        assert!(!set.is_up(0));
        assert!(set.is_up(1), "killing 0 must not touch 1");
        assert!(client::http_get(&format!("http://{dead_addr}/healthz")).is_err());
        let other = set.addr(1).unwrap();
        assert_eq!(client::http_get(&format!("http://{other}/healthz")).unwrap().status, 200);

        let revived = set.restart(0).unwrap();
        assert!(set.is_up(0));
        assert_eq!(client::http_get(&format!("http://{revived}/healthz")).unwrap().status, 200);
        set.shutdown_all();
    }

    #[test]
    fn add_assigns_the_next_slot_and_serves() {
        let set = ReplicaSet::start(2, small_cfg()).unwrap();
        let (id, addr) = set.add().unwrap();
        assert_eq!(id, 2);
        assert_eq!(set.len(), 3);
        assert!(set.is_up(2));
        assert_eq!(client::http_get(&format!("http://{addr}/healthz")).unwrap().status, 200);
        assert_eq!(set.current_ids(), vec![0, 1, 2]);
        set.shutdown_all();
    }

    #[test]
    fn retire_drains_to_zero_connections_and_is_permanent() {
        let set = ReplicaSet::start(2, small_cfg()).unwrap();
        let addr = set.addr(1).unwrap();
        let open = set.retire(1).expect("first retire reports the drain");
        assert_eq!(open, 0, "an idle replica drains to zero connections");
        assert_eq!(set.final_open(1), Some(0));
        assert!(set.is_retired(1));
        assert!(!set.is_up(1));
        assert!(set.addr(1).is_none());
        assert!(client::http_get(&format!("http://{addr}/healthz")).is_err());
        assert_eq!(set.retire(1), None, "second retire is a no-op");
        assert!(set.restart(1).is_err(), "retired slots never restart");
        assert_eq!(set.current_ids(), vec![0]);
        assert_eq!(set.retired_ids(), vec![1]);
        // IDs are never reused: the next add takes slot 2, not 1.
        let (id, _) = set.add().unwrap();
        assert_eq!(id, 2);
        set.shutdown_all();
    }

    #[test]
    fn retire_counts_connections_still_open_after_drain() {
        // A keep-alive client connection is closed by the graceful
        // drain, so the recorded final count is still zero — the drain
        // contract the elasticity e2e asserts through /metrics.
        let set = ReplicaSet::start(1, small_cfg()).unwrap();
        let addr = set.addr(0).unwrap();
        let r = client::http_get(&format!("http://{addr}/metrics")).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(set.retire(0), Some(0));
        set.shutdown_all();
    }
}
