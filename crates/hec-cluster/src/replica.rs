//! The replica set: N independent in-process `hec-serve` instances.
//!
//! Each replica is a full [`hec_serve::server::Server`] — its own
//! listener on an ephemeral 127.0.0.1 port, worker pool, cache, and
//! batcher — so replicas fail independently: killing one closes its
//! socket and drains its workers without touching the others, exactly
//! the failure granularity the fault plan needs. A restarted replica
//! comes back on a *new* port (the old one cannot be reliably rebound
//! immediately); the router always looks addresses up through
//! [`ReplicaSet::addr`], so the ring never stores a stale port.

use std::net::SocketAddr;

use hec_core::sync::Mutex;
use hec_serve::server::{self, ServeConfig, Server};

struct Slot {
    server: Option<Server>,
    /// Last bound address; retained while down for diagnostics.
    addr: SocketAddr,
}

/// N in-process `hec-serve` replicas, individually killable/restartable.
pub struct ReplicaSet {
    slots: Vec<Mutex<Slot>>,
    template: ServeConfig,
}

impl ReplicaSet {
    /// Starts `n` replicas from `template` (the port field is ignored —
    /// every replica binds an ephemeral port).
    pub fn start(n: usize, template: ServeConfig) -> std::io::Result<ReplicaSet> {
        let mut slots = Vec::with_capacity(n.max(1));
        for _ in 0..n.max(1) {
            let server = server::start(ServeConfig { port: 0, ..template.clone() })?;
            let addr = server.addr();
            slots.push(Mutex::new(Slot { server: Some(server), addr }));
        }
        Ok(ReplicaSet { slots, template })
    }

    /// Number of replica slots (up or down).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the set has no slots (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The replica's current address, or `None` when it is down or the
    /// index is out of range.
    pub fn addr(&self, i: usize) -> Option<SocketAddr> {
        let slot = self.slots.get(i)?.lock();
        slot.server.as_ref().map(|s| s.addr())
    }

    /// The replica's last known address regardless of state (diagnostics).
    pub fn last_addr(&self, i: usize) -> Option<SocketAddr> {
        Some(self.slots.get(i)?.lock().addr)
    }

    /// True when the replica is currently running.
    pub fn is_up(&self, i: usize) -> bool {
        self.slots.get(i).map(|s| s.lock().server.is_some()).unwrap_or(false)
    }

    /// Shuts replica `i` down (graceful: drains in-flight requests).
    /// Returns true when it was up. Idempotent.
    pub fn kill(&self, i: usize) -> bool {
        let Some(slot) = self.slots.get(i) else { return false };
        let server = slot.lock().server.take();
        match server {
            Some(s) => {
                s.shutdown();
                s.join();
                true
            }
            None => false,
        }
    }

    /// Restarts replica `i` on a fresh ephemeral port. Returns the new
    /// address; an already-running replica is left alone.
    pub fn restart(&self, i: usize) -> std::io::Result<SocketAddr> {
        let slot = self.slots.get(i).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("no replica {i}"))
        })?;
        let mut g = slot.lock();
        if let Some(s) = g.server.as_ref() {
            return Ok(s.addr());
        }
        let server = server::start(ServeConfig { port: 0, ..self.template.clone() })?;
        let addr = server.addr();
        g.server = Some(server);
        g.addr = addr;
        Ok(addr)
    }

    /// Shuts every running replica down.
    pub fn shutdown_all(&self) {
        for i in 0..self.slots.len() {
            let _ = self.kill(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_serve::client;

    fn small_cfg() -> ServeConfig {
        ServeConfig { port: 0, workers: 2, queue: 16, cache_capacity: 128 }
    }

    #[test]
    fn replicas_start_on_distinct_ports_and_serve() {
        let set = ReplicaSet::start(3, small_cfg()).unwrap();
        assert_eq!(set.len(), 3);
        let mut ports = Vec::new();
        for i in 0..3 {
            let addr = set.addr(i).expect("up");
            ports.push(addr.port());
            let r = client::http_get(&format!("http://{addr}/healthz")).unwrap();
            assert_eq!(r.status, 200);
        }
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 3, "each replica gets its own port");
        set.shutdown_all();
    }

    #[test]
    fn kill_is_isolated_and_restart_revives() {
        let set = ReplicaSet::start(2, small_cfg()).unwrap();
        let dead_addr = set.addr(0).unwrap();
        assert!(set.kill(0));
        assert!(!set.kill(0), "second kill is a no-op");
        assert!(!set.is_up(0));
        assert!(set.is_up(1), "killing 0 must not touch 1");
        assert!(client::http_get(&format!("http://{dead_addr}/healthz")).is_err());
        let other = set.addr(1).unwrap();
        assert_eq!(client::http_get(&format!("http://{other}/healthz")).unwrap().status, 200);

        let revived = set.restart(0).unwrap();
        assert!(set.is_up(0));
        assert_eq!(client::http_get(&format!("http://{revived}/healthz")).unwrap().status, 200);
        set.shutdown_all();
    }
}
