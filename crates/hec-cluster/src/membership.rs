//! Live membership: ring epochs, bounded rebalancing, cache handoff,
//! and the metrics-driven autoscaler.
//!
//! The cluster's member set is no longer fixed at start. Membership is
//! versioned as **epochs**: an immutable `(version, members, ring)`
//! triple behind one atomic swap. The router reads the current epoch
//! per request; a scale-up or drain builds the next epoch off to the
//! side, warms the caches it is about to make authoritative, and only
//! then installs it — requests in flight keep the epoch they started
//! with, so there is never a moment with no owner for a key.
//!
//! Rebalancing is **bounded by construction**: vnode positions hash the
//! member ID, not the member count, so members shared between two
//! epochs keep their arcs and only keys whose owner set actually
//! changed move ([`crate::ring::owners_diff`] computes that set
//! exactly; the property test in `ring.rs` holds the moved fraction to
//! the theoretical vnode share). The handoff walks the router's
//! tracked keys, exports each moved key's cache entry from its old
//! primary via `POST /cache/export`, and installs it on the new
//! primary via `POST /cache/import` — or re-primes with a plain GET
//! when the entry is not exportable. `handoff.keys_moved` counts the
//! owner-changed keys; `handoff.warm_hits` counts successful warms.
//!
//! The **autoscaler** is deliberately boring: every `tick_every`-th
//! admitted request it samples the router's queue depth and the p99 of
//! the latency observed *since the previous tick* (bucket deltas, not
//! lifetime quantiles — a long-lived histogram never forgets a burst).
//! Sustained busy ticks scale up by one, sustained idle ticks drain
//! the highest member, bounded by `[min, max]` with a cooldown between
//! decisions. Because ticks are keyed to the admitted-request index —
//! the same clock the fault plan uses — a seeded run makes the *same
//! decisions at the same indices* every time, which is what lets the
//! bench pipeline gate `autoscale_decisions` bit-for-bit.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hec_core::json::Json;
use hec_core::sync::Mutex;
use hec_serve::client;
use hec_serve::metrics::Histogram;

use crate::health::Health;
use crate::replica::ReplicaSet;
use crate::ring::{owners_diff, stable_hash, Ring};

/// Tracked-key bound: the handoff set is the keys actually routed, and
/// the canonical workload has a few dozen — this cap only guards
/// against an adversarial stream of unique keys.
pub const MAX_TRACKED_KEYS: usize = 4096;

/// One immutable membership version. The router holds an `Arc<Epoch>`
/// per request; installs swap the Arc, never mutate it.
#[derive(Clone, Debug)]
pub struct Epoch {
    /// Monotonic version, starting at 0 for the boot membership.
    pub version: u64,
    /// Current member IDs, sorted ascending.
    pub members: Vec<usize>,
    /// The ring over exactly those members.
    pub ring: Ring,
}

/// One membership change, for the `/metrics` log.
#[derive(Clone, Debug)]
pub struct MembershipEvent {
    /// Epoch version this change installed.
    pub epoch: u64,
    /// `"add"` or `"drain"`.
    pub action: &'static str,
    /// The member that joined or left.
    pub replica: usize,
    /// Tracked keys whose owner set changed at this flip.
    pub keys_moved: u64,
    /// Keys successfully warmed on their new primary before cutover.
    pub warm_hits: u64,
}

/// Autoscaler policy. All thresholds are deterministic functions of
/// the admitted-request clock and the sampled gauges — no wall time.
#[derive(Clone, Copy, Debug)]
pub struct AutoscaleConfig {
    /// Sample every this many admitted requests (ticks fire on indices
    /// `tick_every − 1, 2·tick_every − 1, …`).
    pub tick_every: u64,
    /// A tick with queue depth at or above this is busy.
    pub up_queue_depth: usize,
    /// A tick whose inter-tick p99 is at or above this (µs) is busy.
    pub up_p99_us: u64,
    /// Consecutive busy ticks before scaling up by one.
    pub up_ticks: u32,
    /// A tick with queue depth at or below this (and a calm p99) is
    /// idle.
    pub down_queue_depth: usize,
    /// Consecutive idle ticks before draining one member.
    pub down_ticks: u32,
    /// Ticks to ignore after any decision (lets the new membership's
    /// signal settle before judging it).
    pub cooldown_ticks: u32,
    /// Never drain below this many members.
    pub min: usize,
    /// Never grow above this many members.
    pub max: usize,
}

impl AutoscaleConfig {
    /// The default policy over a fixed size window: eager on the way up
    /// (2 busy ticks), reluctant on the way down (12 idle ticks).
    pub fn bounded(min: usize, max: usize) -> AutoscaleConfig {
        AutoscaleConfig {
            tick_every: 16,
            up_queue_depth: 8,
            up_p99_us: 200_000,
            up_ticks: 2,
            down_queue_depth: 2,
            down_ticks: 12,
            cooldown_ticks: 4,
            min: min.max(1),
            max: max.max(min.max(1)),
        }
    }
}

/// The versioned membership state: current epoch plus change counters.
pub struct Membership {
    epoch: Mutex<Arc<Epoch>>,
    vnodes: usize,
    replication: usize,
    added_total: AtomicU64,
    removed_total: AtomicU64,
    keys_moved: AtomicU64,
    warm_hits: AtomicU64,
    events: Mutex<Vec<MembershipEvent>>,
}

impl Membership {
    /// Epoch 0 over the boot members.
    pub fn new(members: Vec<usize>, vnodes: usize, replication: usize) -> Membership {
        let ring = Ring::over(&members, vnodes, replication);
        Membership {
            epoch: Mutex::new(Arc::new(Epoch { version: 0, members, ring })),
            vnodes,
            replication,
            added_total: AtomicU64::new(0),
            removed_total: AtomicU64::new(0),
            keys_moved: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The current epoch (cheap: one Arc clone).
    pub fn current(&self) -> Arc<Epoch> {
        Arc::clone(&self.epoch.lock())
    }

    /// Installs the next epoch over `members` and returns its version.
    fn install(&self, members: Vec<usize>, ring: Ring) -> u64 {
        let mut g = self.epoch.lock();
        let version = g.version + 1;
        *g = Arc::new(Epoch { version, members, ring });
        version
    }

    /// Membership changes applied so far (the `/metrics` events count).
    pub fn events_len(&self) -> usize {
        self.events.lock().len()
    }

    /// Members added over the cluster's lifetime.
    pub fn added_total(&self) -> u64 {
        self.added_total.load(Ordering::Relaxed)
    }

    /// Members drained over the cluster's lifetime.
    pub fn removed_total(&self) -> u64 {
        self.removed_total.load(Ordering::Relaxed)
    }

    /// Tracked keys rerouted across all epoch flips.
    pub fn keys_moved(&self) -> u64 {
        self.keys_moved.load(Ordering::Relaxed)
    }

    /// Keys successfully warmed on their new primary.
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits.load(Ordering::Relaxed)
    }
}

/// What a scale-up installed.
#[derive(Clone, Debug)]
pub struct ScaleUp {
    /// The new member's ID.
    pub added: usize,
    /// The new member's serve address.
    pub addr: std::net::SocketAddr,
    /// Epoch version that now includes it.
    pub epoch: u64,
    /// Tracked keys whose owners changed at this flip.
    pub keys_moved: u64,
    /// Keys warmed onto their new primaries before cutover.
    pub warm_hits: u64,
}

/// What a drain removed.
#[derive(Clone, Debug)]
pub struct Drain {
    /// Epoch version that excludes the drained member.
    pub epoch: u64,
    /// Tracked keys whose owners changed at this flip.
    pub keys_moved: u64,
    /// Keys warmed onto their new primaries before cutover.
    pub warm_hits: u64,
    /// Connections still open when the drained reactor exited (a
    /// graceful drain reads 0).
    pub connections_open: u64,
}

struct AutoState {
    up_streak: u32,
    down_streak: u32,
    cooldown: u32,
    /// Previous tick's latency bucket snapshot, for inter-tick deltas.
    prev_buckets: Vec<(u64, u64)>,
}

enum Decision {
    Up,
    Down(usize),
}

/// The elasticity engine: owns the [`Membership`], performs scale-up
/// and drain against the replica set, warms caches across epoch flips,
/// and runs the autoscaler policy.
pub struct Elasticity {
    /// The versioned membership (public: the router reads epochs).
    pub membership: Membership,
    replicas: Arc<ReplicaSet>,
    health: Arc<Health>,
    /// Ring key → a representative request target for re-priming.
    tracked: Mutex<BTreeMap<String, String>>,
    /// Per-member forwarded counters, grown on scale-up.
    forwarded: Mutex<Vec<Arc<AtomicU64>>>,
    autoscale: Option<AutoscaleConfig>,
    auto_state: Mutex<AutoState>,
    auto_up: AtomicU64,
    auto_down: AtomicU64,
    /// Serializes membership changes (admin + autoscaler may race).
    change: Mutex<()>,
    /// Per-warm HTTP timeout (the router's forward timeout).
    timeout: Duration,
}

impl Elasticity {
    /// Elasticity over the boot members `0..n`.
    pub fn new(
        replicas: Arc<ReplicaSet>,
        health: Arc<Health>,
        vnodes: usize,
        replication: usize,
        autoscale: Option<AutoscaleConfig>,
        timeout: Duration,
    ) -> Elasticity {
        let n = replicas.len();
        Elasticity {
            membership: Membership::new((0..n).collect(), vnodes, replication),
            replicas,
            health,
            tracked: Mutex::new(BTreeMap::new()),
            forwarded: Mutex::new((0..n).map(|_| Arc::new(AtomicU64::new(0))).collect()),
            autoscale,
            auto_state: Mutex::new(AutoState {
                up_streak: 0,
                down_streak: 0,
                cooldown: 0,
                prev_buckets: Vec::new(),
            }),
            auto_up: AtomicU64::new(0),
            auto_down: AtomicU64::new(0),
            change: Mutex::new(()),
            timeout,
        }
    }

    /// Remembers a routed key and a target that can re-prime it.
    pub fn track(&self, key: &str, target: &str) {
        let mut g = self.tracked.lock();
        if g.len() < MAX_TRACKED_KEYS && !g.contains_key(key) {
            g.insert(key.to_string(), target.to_string());
        }
    }

    /// Counts a completed forward to member `r`.
    pub fn note_forward(&self, r: usize) {
        if let Some(c) = self.forwarded.lock().get(r).cloned() {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Forwards completed by member `r`.
    pub fn forwarded(&self, r: usize) -> u64 {
        self.forwarded.lock().get(r).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Autoscaler decisions so far as `(up, down)`.
    pub fn autoscale_decisions(&self) -> (u64, u64) {
        (self.auto_up.load(Ordering::Relaxed), self.auto_down.load(Ordering::Relaxed))
    }

    /// Adds one replica, warms the keys it now owns, installs the next
    /// epoch. The router keeps serving throughout.
    pub fn scale_up(&self) -> std::io::Result<ScaleUp> {
        let _g = self.change.lock();
        let (added, addr) = self.replicas.add()?;
        self.forwarded.lock().push(Arc::new(AtomicU64::new(0)));
        self.health.add();
        let old = self.membership.current();
        let mut members = old.members.clone();
        members.push(added);
        members.sort_unstable();
        let ring = Ring::over(&members, self.membership.vnodes, self.membership.replication);
        let (keys_moved, warm_hits) = self.handoff(&old.ring, &ring);
        let epoch = self.membership.install(members, ring);
        self.membership.added_total.fetch_add(1, Ordering::Relaxed);
        self.membership.events.lock().push(MembershipEvent {
            epoch,
            action: "add",
            replica: added,
            keys_moved,
            warm_hits,
        });
        Ok(ScaleUp { added, addr, epoch, keys_moved, warm_hits })
    }

    /// Drains member `id` out of the ring: flip the epoch to exclude
    /// it, warm the keys it loses onto their new primaries *while it is
    /// still serving*, then stop it gracefully. Returns the epoch and
    /// the drained reactor's final open-connection count.
    pub fn drain(&self, id: usize) -> std::io::Result<Drain> {
        let _g = self.change.lock();
        let old = self.membership.current();
        if !old.members.contains(&id) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("replica {id} is not a current member"),
            ));
        }
        if old.members.len() <= 1 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot drain the last member",
            ));
        }
        let members: Vec<usize> = old.members.iter().copied().filter(|&m| m != id).collect();
        let ring = Ring::over(&members, self.membership.vnodes, self.membership.replication);
        // Handoff first: the outgoing member is still up, so its cache
        // entries are exportable and re-primes cannot land on it.
        let (keys_moved, warm_hits) = self.handoff(&old.ring, &ring);
        let epoch = self.membership.install(members, ring);
        self.health.retire(id);
        let connections_open = self.replicas.retire(id).unwrap_or(0);
        self.membership.removed_total.fetch_add(1, Ordering::Relaxed);
        self.membership.events.lock().push(MembershipEvent {
            epoch,
            action: "drain",
            replica: id,
            keys_moved,
            warm_hits,
        });
        Ok(Drain { epoch, keys_moved, warm_hits, connections_open })
    }

    /// Migrates every tracked key whose owner set changes between the
    /// two rings. Returns `(keys_moved, warm_hits)`.
    fn handoff(&self, old: &Ring, new: &Ring) -> (u64, u64) {
        let diff = owners_diff(old, new);
        if diff.is_empty() {
            return (0, 0);
        }
        let snapshot: Vec<(String, String)> =
            self.tracked.lock().iter().map(|(k, t)| (k.clone(), t.clone())).collect();
        let (mut moved, mut warm) = (0u64, 0u64);
        for (key, target) in snapshot {
            if !diff.covers(stable_hash(key.as_bytes())) {
                continue;
            }
            moved += 1;
            let (old_primary, new_primary) = (old.primary(&key), new.primary(&key));
            if old_primary == new_primary {
                // A secondary changed but the authoritative copy did
                // not move; nothing to warm.
                continue;
            }
            if self.warm_key(&key, &target, old_primary, new_primary) {
                warm += 1;
            }
        }
        self.membership.keys_moved.fetch_add(moved, Ordering::Relaxed);
        self.membership.warm_hits.fetch_add(warm, Ordering::Relaxed);
        (moved, warm)
    }

    /// Warms one key onto its new primary: export/import the cache
    /// entry when the key is a canonical point key, otherwise re-prime
    /// by replaying the tracked GET target against the new primary.
    fn warm_key(&self, key: &str, target: &str, old_primary: usize, new_primary: usize) -> bool {
        let Some(new_addr) = self.replicas.addr(new_primary) else {
            return false;
        };
        let exportable = !key.starts_with('/') && !key.starts_with("sweep|");
        if exportable {
            if let Some(old_addr) = self.replicas.addr(old_primary) {
                let req = Json::obj([("keys", Json::Arr(vec![Json::Str(key.to_string())]))])
                    .emit_pretty();
                let exported = client::http_post_timeout(
                    &format!("http://{old_addr}/cache/export"),
                    &req,
                    self.timeout,
                );
                if let Ok(resp) = exported {
                    let has_entries = resp.status == 200
                        && Json::parse(&resp.body)
                            .ok()
                            .and_then(|d| {
                                d.get("entries").and_then(|e| e.as_arr().map(|a| a.len()))
                            })
                            .is_some_and(|n| n > 0);
                    if has_entries {
                        let imported = client::http_post_timeout(
                            &format!("http://{new_addr}/cache/import"),
                            &resp.body,
                            self.timeout,
                        );
                        if imported.map(|r| r.status == 200).unwrap_or(false) {
                            return true;
                        }
                    }
                }
            }
        }
        // Not exportable (sweeps, raw targets) or the old primary had
        // no entry: re-prime by evaluating on the new owner directly.
        client::http_get_timeout(&format!("http://{new_addr}{target}"), self.timeout)
            .map(|r| r.status == 200)
            .unwrap_or(false)
    }

    /// One autoscaler observation, keyed to the admitted-request index.
    /// Called on every admitted request; only tick indices do work.
    pub fn autoscale_tick(&self, index: u64, queue_depth: usize, hist: &Histogram) {
        let Some(cfg) = self.autoscale else { return };
        if (index + 1) % cfg.tick_every != 0 {
            return;
        }
        let decision = {
            let mut st = self.auto_state.lock();
            let cur = hist.nonzero_buckets();
            let p99 = delta_p99(&st.prev_buckets, &cur);
            st.prev_buckets = cur;
            let busy = queue_depth >= cfg.up_queue_depth || p99 >= cfg.up_p99_us;
            let idle = queue_depth <= cfg.down_queue_depth && p99 < cfg.up_p99_us;
            // Streaks update even during cooldown — the signal keeps
            // accumulating; only the *decision* is suppressed.
            if busy {
                st.up_streak += 1;
                st.down_streak = 0;
            } else if idle {
                st.down_streak += 1;
                st.up_streak = 0;
            } else {
                st.up_streak = 0;
                st.down_streak = 0;
            }
            if st.cooldown > 0 {
                st.cooldown -= 1;
                None
            } else {
                let members = self.membership.current().members.clone();
                if st.up_streak >= cfg.up_ticks && members.len() < cfg.max {
                    st.up_streak = 0;
                    st.down_streak = 0;
                    st.cooldown = cfg.cooldown_ticks;
                    Some(Decision::Up)
                } else if st.down_streak >= cfg.down_ticks && members.len() > cfg.min {
                    st.up_streak = 0;
                    st.down_streak = 0;
                    st.cooldown = cfg.cooldown_ticks;
                    Some(Decision::Down(*members.iter().max().unwrap()))
                } else {
                    None
                }
            }
        };
        match decision {
            Some(Decision::Up) => {
                if self.scale_up().is_ok() {
                    self.auto_up.fetch_add(1, Ordering::Relaxed);
                }
            }
            Some(Decision::Down(victim)) => {
                if self.drain(victim).is_ok() {
                    self.auto_down.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {}
        }
    }

    /// The `/metrics` membership section.
    pub fn doc(&self) -> Json {
        let cur = self.membership.current();
        let log: Vec<Json> = self
            .membership
            .events
            .lock()
            .iter()
            .map(|e| {
                Json::obj([
                    ("epoch", Json::Num(e.epoch as f64)),
                    ("action", Json::Str(e.action.to_string())),
                    ("replica", Json::Num(e.replica as f64)),
                    ("keys_moved", Json::Num(e.keys_moved as f64)),
                    ("warm_hits", Json::Num(e.warm_hits as f64)),
                ])
            })
            .collect();
        let (up, down) = self.autoscale_decisions();
        Json::obj([
            ("epoch", Json::Num(cur.version as f64)),
            ("events", Json::Num(log.len() as f64)),
            (
                "members",
                Json::obj([
                    ("current", Json::Num(cur.members.len() as f64)),
                    ("added_total", Json::Num(self.membership.added_total() as f64)),
                    ("removed_total", Json::Num(self.membership.removed_total() as f64)),
                ]),
            ),
            (
                "handoff",
                Json::obj([
                    ("keys_moved", Json::Num(self.membership.keys_moved() as f64)),
                    ("warm_hits", Json::Num(self.membership.warm_hits() as f64)),
                ]),
            ),
            (
                "autoscale",
                Json::obj([
                    ("enabled", Json::Bool(self.autoscale.is_some())),
                    ("up", Json::Num(up as f64)),
                    ("down", Json::Num(down as f64)),
                ]),
            ),
            ("log", Json::Arr(log)),
        ])
    }
}

/// The p99 of the observations recorded *between* two bucket
/// snapshots of the same histogram (per-bucket counts are monotonic,
/// so the delta is exactly the inter-snapshot window). Returns 0 for
/// an empty window.
pub fn delta_p99(prev: &[(u64, u64)], cur: &[(u64, u64)]) -> u64 {
    let prev_count = |le: u64| prev.iter().find(|&&(p, _)| p == le).map_or(0, |&(_, c)| c);
    let deltas: Vec<(u64, u64)> =
        cur.iter().map(|&(le, c)| (le, c.saturating_sub(prev_count(le)))).collect();
    let total: u64 = deltas.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * 0.99).ceil() as u64;
    let mut seen = 0u64;
    for &(le, c) in &deltas {
        seen += c;
        if seen >= rank {
            return le;
        }
    }
    deltas.last().map_or(0, |&(le, _)| le)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_serve::server::ServeConfig;

    fn elastic(n: usize, autoscale: Option<AutoscaleConfig>) -> Elasticity {
        let replicas = Arc::new(
            ReplicaSet::start(n, ServeConfig { port: 0, workers: 1, queue: 8, cache_capacity: 64 })
                .unwrap(),
        );
        let health = Arc::new(Health::new(n));
        Elasticity::new(replicas, health, 16, 2, autoscale, Duration::from_secs(5))
    }

    #[test]
    fn delta_p99_sees_only_the_window_between_snapshots() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record_us(10);
        }
        let snap = h.nonzero_buckets();
        assert!(delta_p99(&[], &snap) <= 15, "lifetime window is all-fast");
        // A burst after the snapshot dominates the delta window even
        // though it is a minority of the lifetime observations.
        for _ in 0..50 {
            h.record_us(500_000);
        }
        let p99 = delta_p99(&snap, &h.nonzero_buckets());
        assert!(p99 >= 500_000, "delta window must see the burst, got {p99}");
        assert_eq!(delta_p99(&snap, &snap), 0, "empty window is 0");
    }

    #[test]
    fn scale_up_and_drain_flip_epochs_and_move_only_changed_keys() {
        let e = elastic(2, None);
        for app in ["gtc", "lbmhd", "fvcam", "paratec"] {
            e.track(&format!("sweep|{app}"), &format!("/sweep?app={app}"));
        }
        let before = e.membership.current();
        assert_eq!(before.version, 0);
        assert_eq!(before.members, vec![0, 1]);

        let up = e.scale_up().unwrap();
        assert_eq!(up.added, 2);
        let mid = e.membership.current();
        assert_eq!((mid.version, mid.members.clone()), (1, vec![0, 1, 2]));
        // keys_moved is exactly the tracked keys owners_diff covers.
        let diff = owners_diff(&before.ring, &mid.ring);
        let expect: u64 = ["gtc", "lbmhd", "fvcam", "paratec"]
            .iter()
            .filter(|a| diff.covers(stable_hash(format!("sweep|{a}").as_bytes())))
            .count() as u64;
        assert_eq!(up.keys_moved, expect);

        let drained = e.drain(1).unwrap();
        let after = e.membership.current();
        assert_eq!((after.version, after.members.clone()), (2, vec![0, 2]));
        assert_eq!(drained.connections_open, 0, "graceful drain leaves no connections");
        assert_eq!(e.membership.events_len(), 2);
        assert_eq!(e.membership.added_total(), 1);
        assert_eq!(e.membership.removed_total(), 1);
        e.replicas.shutdown_all();
    }

    #[test]
    fn drain_refuses_non_members_and_the_last_member() {
        let e = elastic(2, None);
        assert!(e.drain(7).is_err(), "unknown member");
        e.drain(0).unwrap();
        assert!(e.drain(0).is_err(), "already drained");
        assert!(e.drain(1).is_err(), "last member must not drain");
        assert_eq!(e.membership.current().members, vec![1]);
        e.replicas.shutdown_all();
    }

    #[test]
    fn autoscaler_scales_up_on_sustained_load_and_down_on_idle() {
        let cfg = AutoscaleConfig {
            tick_every: 1,
            up_queue_depth: 1000, // queue never triggers; p99 drives it
            up_p99_us: 100_000,
            up_ticks: 2,
            down_queue_depth: 2,
            down_ticks: 3,
            cooldown_ticks: 2,
            min: 1,
            max: 2,
        };
        let e = elastic(1, Some(cfg));
        let h = Histogram::new();
        // Two busy ticks (slow p99 deltas) -> one scale-up, capped at max.
        for i in 0..4u64 {
            h.record_us(300_000);
            e.autoscale_tick(i, 0, &h);
        }
        assert_eq!(e.autoscale_decisions(), (1, 0), "max bounds the up decisions");
        assert_eq!(e.membership.current().members.len(), 2);
        // Idle ticks: cooldown (2) absorbs the first two, then 3 idle
        // ticks drain the newest member back to min.
        for i in 4..12u64 {
            e.autoscale_tick(i, 0, &h);
        }
        assert_eq!(e.autoscale_decisions(), (1, 1));
        let cur = e.membership.current();
        assert_eq!(cur.members, vec![0], "down drains the highest member id");
        assert!(e.replicas.is_retired(1));
        e.replicas.shutdown_all();
    }

    #[test]
    fn forwarded_counters_grow_with_membership() {
        let e = elastic(1, None);
        e.note_forward(0);
        e.note_forward(5); // out of range: dropped, not a panic
        assert_eq!(e.forwarded(0), 1);
        assert_eq!(e.forwarded(5), 0);
        e.scale_up().unwrap();
        e.note_forward(1);
        assert_eq!(e.forwarded(1), 1);
        e.replicas.shutdown_all();
    }
}
