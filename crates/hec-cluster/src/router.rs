//! The routing tier: one frontend URL over N `hec-serve` replicas.
//!
//! The router owns the replica set, the consistent-hash ring, the
//! health state, and the fault plan. Every routable request (anything
//! that is not a router-local endpoint) is admitted, assigned the next
//! admitted-request index (which is what fault events key on), mapped to
//! its canonical ring key, and forwarded to the key's first *live* ring
//! owner. A transport failure marks the replica down reactively, counts
//! a failover, and moves to the next owner; a `503` from an overloaded
//! replica fails over the same way (the response is kept as a fallback
//! if every owner is shedding). When a whole pass over the owners
//! yields nothing, the seeded backoff paces another pass — a replica
//! mid-restart comes back within a retry or two — and only an exhausted
//! budget turns into the router's own `503 + Retry-After`.
//!
//! Because every replica evaluates the same deterministic engine, the
//! relayed body is byte-identical no matter which owner answered, which
//! replica died mid-run, or whether a hedge won: the failover path is
//! invisible in the response bytes, and `tests/cluster_e2e.rs` holds the
//! router to exactly that.
//!
//! Router-local protocol surface (everything else is forwarded):
//!
//! | endpoint | method | purpose |
//! |---|---|---|
//! | `/healthz` | GET | router liveness |
//! | `/metrics` | GET | ring/replica/failover/fault counters |
//! | `/shutdown` | POST/GET | graceful stop of router *and* replicas |
//! | `/admin/kill?replica=i` | POST/GET | kill one replica |
//! | `/admin/restart?replica=i` | POST/GET | restart one replica |
//! | `/admin/scale-up` | POST/GET | add a replica (next epoch) |
//! | `/admin/drain/<i>` | POST/GET | drain replica `i` out of the ring |
//!
//! Membership is versioned ([`crate::membership`]): the router reads
//! the current epoch's ring per owner pass, so a scale-up or drain
//! lands between passes, never mid-pass, and the epoch flip itself is
//! one Arc swap.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hec_core::json::Json;
use hec_core::pool::{QueueGauge, Threads, WorkerPool};
use hec_core::retry::Backoff;
use hec_core::sync::Mutex;
use hec_serve::client::{self, RetryPolicy};
use hec_serve::metrics::Histogram;
use hec_serve::reactor::{self, CoreConfig, CoreEvents, NetStats, ShutdownFlag};
use hec_serve::request::{parse_query, Point};
use hec_serve::server::{
    connections_doc, error_body, reactor_doc, Request, ServeConfig, RETRY_AFTER_SECS,
};

use crate::faults::{FaultKind, FaultPlan};
use crate::health::{self, Health, HealthConfig};
use crate::membership::{AutoscaleConfig, Drain, Elasticity, ScaleUp};
use crate::replica::ReplicaSet;
use crate::ring::{Ring, DEFAULT_VNODES};

/// Default replication factor R (each key has R owners on the ring).
pub const DEFAULT_REPLICATION: usize = 2;

/// Cluster tuning. `Default` is a 3-replica, R=2 ring.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of replicas to stand up.
    pub replicas: usize,
    /// Router port on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Virtual nodes per replica on the ring.
    pub vnodes: usize,
    /// Owners per key (replication factor R).
    pub replication: usize,
    /// Router worker threads.
    pub workers: usize,
    /// Router admission-queue bound.
    pub queue: usize,
    /// Template for each replica's own `hec-serve` config.
    pub replica: ServeConfig,
    /// Health-checker cadence and probe timeout.
    pub health: HealthConfig,
    /// Per-forward retry pacing (seeded backoff, `Retry-After` cap).
    pub retry: RetryPolicy,
    /// Hedge delay in milliseconds: a GET unanswered for this long is
    /// also sent to the key's next owner. `None` disables hedging.
    pub hedge_ms: Option<u64>,
    /// Seed for the retry-jitter streams (combined with the request
    /// index, so each request has its own deterministic stream).
    pub seed: u64,
    /// The fault plan to inject (empty for production-shaped runs).
    pub faults: FaultPlan,
    /// Autoscaler policy; `None` leaves membership purely manual.
    pub autoscale: Option<AutoscaleConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 3,
            port: 0,
            vnodes: DEFAULT_VNODES,
            replication: DEFAULT_REPLICATION,
            workers: Threads::from_env().workers().max(2),
            queue: 64,
            replica: ServeConfig::from_env(0),
            health: HealthConfig::default(),
            retry: RetryPolicy::default(),
            hedge_ms: None,
            seed: 0x5ec1a,
            faults: FaultPlan::none(),
            autoscale: None,
        }
    }
}

impl ClusterConfig {
    /// Configuration from the environment: `HEC_CLUSTER_VNODES`,
    /// `HEC_CLUSTER_REPLICATION`, `HEC_CLUSTER_WORKERS`,
    /// `HEC_CLUSTER_QUEUE`, and `HEC_CLUSTER_HEDGE_MS` override the
    /// defaults; the per-replica template reads the `HEC_SERVE_*` knobs.
    pub fn from_env(replicas: usize, port: u16) -> ClusterConfig {
        let get = |name: &str, default: usize| -> usize {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&v| v > 0)
                .unwrap_or(default)
        };
        let hedge_ms = std::env::var("HEC_CLUSTER_HEDGE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&v| v > 0);
        ClusterConfig {
            replicas: replicas.max(1),
            port,
            vnodes: get("HEC_CLUSTER_VNODES", DEFAULT_VNODES),
            replication: get("HEC_CLUSTER_REPLICATION", DEFAULT_REPLICATION),
            workers: get("HEC_CLUSTER_WORKERS", Threads::from_env().workers().max(2)),
            queue: get("HEC_CLUSTER_QUEUE", 64),
            hedge_ms,
            ..ClusterConfig::default()
        }
    }
}

struct RouterState {
    elasticity: Arc<Elasticity>,
    replicas: Arc<ReplicaSet>,
    health: Arc<Health>,
    faults: Mutex<FaultPlan>,
    planned_faults: usize,
    retry: RetryPolicy,
    hedge: Option<Duration>,
    seed: u64,
    started: Instant,
    stop: Arc<ShutdownFlag>,
    net: Arc<NetStats>,
    queue: QueueGauge,
    /// Admitted routable requests — the fault-plan clock.
    admitted: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    failovers: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    faults_injected: AtomicU64,
    lat_route: Histogram,
    lat_local: Histogram,
}

impl RouterState {
    /// The ring key for a request: canonical point key for `/eval`,
    /// `sweep|app` for `/sweep`, the raw target otherwise. Malformed
    /// requests keep a deterministic (raw) key and are forwarded anyway,
    /// so even error bodies stay byte-identical to a single replica's.
    fn ring_key(&self, req: &Request) -> String {
        match req.path.as_str() {
            "/eval" => {
                let parsed = match req.method.as_str() {
                    "POST" => Point::from_json_text(&req.body),
                    _ => Point::from_query(&req.query),
                };
                match parsed {
                    Ok(p) => p.canonical_key(),
                    Err(_) => req.target(),
                }
            }
            "/sweep" => {
                let app = parse_query(&req.query)
                    .into_iter()
                    .find(|(k, _)| k == "app")
                    .map(|(_, v)| v.to_ascii_lowercase())
                    .unwrap_or_default();
                format!("sweep|{app}")
            }
            _ => req.target(),
        }
    }

    /// Candidate replicas for a key on `ring`: the owners, live ones
    /// first, preference order preserved within each group.
    fn candidates(&self, ring: &Ring, key: &str) -> Vec<usize> {
        let owners = ring.owners(key);
        let (up, down): (Vec<usize>, Vec<usize>) =
            owners.into_iter().partition(|&r| self.health.is_up(r));
        up.into_iter().chain(down).collect()
    }

    /// Fires every fault event scheduled for request `index`. Returns
    /// `(replicas to drop-connect on, reply delay)`.
    fn inject_faults(&self, index: u64) -> (Vec<usize>, Option<Duration>) {
        let fired = self.faults.lock().take_at(index);
        let mut drops = Vec::new();
        let mut slow: Option<Duration> = None;
        for ev in fired {
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
            match ev.kind {
                FaultKind::Kill => {
                    self.replicas.kill(ev.replica);
                    self.health.mark(ev.replica, false);
                }
                FaultKind::StallMs(ms) => std::thread::sleep(Duration::from_millis(ms)),
                FaultKind::DropConn => drops.push(ev.replica),
                FaultKind::SlowReplyMs(ms) => {
                    let d = Duration::from_millis(ms);
                    slow = Some(slow.map_or(d, |s| s.max(d)));
                }
                // Membership churn pinned to the admitted clock: the
                // epoch flips before this request's first owner pass.
                FaultKind::AddAt => {
                    let _ = self.elasticity.scale_up();
                }
                FaultKind::DrainAt => {
                    let _ = self.elasticity.drain(ev.replica);
                }
            }
        }
        (drops, slow)
    }

    /// One forward attempt to replica `r`. `Err` means transport-level
    /// failure (connection refused/dropped/timed out).
    fn attempt(&self, r: usize, req: &Request) -> std::io::Result<client::Response> {
        let addr = self.replicas.addr(r).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, format!("replica {r} is down"))
        })?;
        let url = format!("http://{addr}{}", req.target());
        match req.method.as_str() {
            "POST" => client::http_post_timeout(&url, &req.body, self.retry.timeout),
            _ => client::http_get_timeout(&url, self.retry.timeout),
        }
    }

    /// Routes one admitted request: fault injection, owner selection,
    /// failover, retry rounds. Returns `(status, extra headers, body)`.
    fn forward(&self, req: &Request) -> (u16, Vec<String>, String) {
        let index = self.admitted.fetch_add(1, Ordering::SeqCst);
        let (mut drops, slow_reply) = self.inject_faults(index);
        let key = self.ring_key(req);
        self.elasticity.track(&key, &req.target());
        self.elasticity.autoscale_tick(index, self.queue.len(), &self.lat_route);
        let mut backoff = Backoff::new(
            self.seed ^ index,
            self.retry.base_ms,
            self.retry.cap_ms,
            self.retry.max_retries,
        );
        let mut shed: Option<client::Response> = None;
        let mut tried_any = false;

        // A failover is any request not answered by its key's primary
        // owner — whether the router actively switched after a failed
        // attempt or routed around a replica already marked down.
        let finish = |r: usize, resp: client::Response, failed_over: bool| {
            self.health.mark(r, true);
            self.elasticity.note_forward(r);
            if failed_over {
                self.failovers.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(d) = slow_reply {
                std::thread::sleep(d);
            }
            let extra: Vec<String> = resp
                .header("Retry-After")
                .map(|v| vec![format!("Retry-After: {v}")])
                .unwrap_or_default();
            (resp.status, extra, resp.body)
        };

        loop {
            // Re-read the epoch each pass: churn between passes (an
            // autoscale or an injected Add/Drain) re-routes the retry
            // to the key's *new* owners instead of a retired replica.
            let epoch = self.elasticity.membership.current();
            let primary = epoch.ring.primary(&key);
            let candidates = self.candidates(&epoch.ring, &key);

            // Tail-latency hedge: only on a clean first pass (no drops
            // pending, nothing tried yet) with at least two live owners.
            if let Some(delay) = self.hedge {
                if !tried_any && drops.is_empty() && req.method != "POST" {
                    let live: Vec<(usize, SocketAddr)> = candidates
                        .iter()
                        .filter_map(|&r| self.replicas.addr(r).map(|a| (r, a)))
                        .take(2)
                        .collect();
                    if live.len() == 2 {
                        let urls: Vec<String> = live
                            .iter()
                            .map(|(_, a)| format!("http://{a}{}", req.target()))
                            .collect();
                        if let Ok(out) = client::hedged_get(&urls, delay, self.retry.timeout) {
                            if out.hedged {
                                self.hedges.fetch_add(1, Ordering::Relaxed);
                            }
                            if out.response.status != 503 {
                                let (r, _) = live[out.winner];
                                return finish(r, out.response, r != primary);
                            }
                            shed = Some(out.response);
                        }
                        tried_any = true;
                    }
                }
            }

            for &r in &candidates {
                if let Some(pos) = drops.iter().position(|&d| d == r) {
                    // Injected connection drop: consume the event and
                    // treat this exactly like a transport failure.
                    drops.remove(pos);
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                    tried_any = true;
                    continue;
                }
                match self.attempt(r, req) {
                    Ok(resp) if resp.status == 503 => {
                        // Overloaded, not dead: keep it up, remember the
                        // shed response, try the next owner.
                        shed = Some(resp);
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                        tried_any = true;
                    }
                    Ok(resp) => return finish(r, resp, tried_any || r != primary),
                    Err(_) => {
                        self.health.mark(r, false);
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                        tried_any = true;
                    }
                }
            }

            match backoff.next_delay() {
                Some(d) => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(d);
                }
                None => break,
            }
        }

        // Budget exhausted: relay the last shed 503 if one exists (its
        // bytes are a real replica's), else the router's own 503.
        match shed {
            Some(resp) => {
                let extra = resp
                    .header("Retry-After")
                    .map(|v| vec![format!("Retry-After: {v}")])
                    .unwrap_or_else(|| vec![format!("Retry-After: {RETRY_AFTER_SECS}")]);
                (resp.status, extra, resp.body)
            }
            None => (
                503,
                vec![format!("Retry-After: {RETRY_AFTER_SECS}")],
                error_body("no live owner for key; retry"),
            ),
        }
    }

    fn metrics_doc(&self) -> Json {
        let hist = |h: &Histogram| {
            Json::obj([
                ("count", Json::Num(h.count() as f64)),
                ("sum_us", Json::Num(h.sum_us() as f64)),
                ("p50_us", Json::Num(h.quantile_us(0.50) as f64)),
                ("p95_us", Json::Num(h.quantile_us(0.95) as f64)),
                ("p99_us", Json::Num(h.quantile_us(0.99) as f64)),
            ])
        };
        let epoch = self.elasticity.membership.current();
        // Only current members appear in `cluster.replicas`; drained
        // slots move to `cluster.retired` with their final connection
        // count, so the live table never grows stale rows.
        let replicas: Vec<Json> = epoch
            .members
            .iter()
            .map(|&i| {
                let addr = self
                    .replicas
                    .addr(i)
                    .or_else(|| self.replicas.last_addr(i))
                    .map(|a| a.to_string())
                    .unwrap_or_default();
                Json::obj([
                    ("index", Json::Num(i as f64)),
                    ("addr", Json::Str(addr)),
                    ("up", Json::Bool(self.health.is_up(i))),
                    ("down_transitions", Json::Num(self.health.down_transitions(i) as f64)),
                    ("up_transitions", Json::Num(self.health.up_transitions(i) as f64)),
                    ("forwarded", Json::Num(self.elasticity.forwarded(i) as f64)),
                ])
            })
            .collect();
        let retired: Vec<Json> = self
            .replicas
            .retired_ids()
            .into_iter()
            .map(|i| {
                Json::obj([
                    ("index", Json::Num(i as f64)),
                    (
                        "connections_open_after_drain",
                        Json::Num(self.replicas.final_open(i).unwrap_or(0) as f64),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("uptime_secs", Json::Num(self.started.elapsed().as_secs_f64())),
            ("requests", Json::Num(self.requests.load(Ordering::Relaxed) as f64)),
            ("admitted", Json::Num(self.admitted.load(Ordering::Relaxed) as f64)),
            ("errors", Json::Num(self.errors.load(Ordering::Relaxed) as f64)),
            ("rejected", Json::Num(self.rejected.load(Ordering::Relaxed) as f64)),
            ("failovers", Json::Num(self.failovers.load(Ordering::Relaxed) as f64)),
            ("retries", Json::Num(self.retries.load(Ordering::Relaxed) as f64)),
            ("hedges", Json::Num(self.hedges.load(Ordering::Relaxed) as f64)),
            ("connections", connections_doc(&self.net)),
            ("reactor", reactor_doc(&self.net)),
            (
                "cluster",
                Json::obj([
                    ("replication", Json::Num(epoch.ring.replication() as f64)),
                    ("epoch", Json::Num(epoch.version as f64)),
                    ("up", Json::Num(self.health.up_count() as f64)),
                    ("replicas", Json::Arr(replicas)),
                    ("retired", Json::Arr(retired)),
                ]),
            ),
            ("membership", self.elasticity.doc()),
            (
                "faults",
                Json::obj([
                    ("planned", Json::Num(self.planned_faults as f64)),
                    ("injected", Json::Num(self.faults_injected.load(Ordering::Relaxed) as f64)),
                    ("remaining", Json::Num(self.faults.lock().remaining() as f64)),
                ]),
            ),
            (
                "queue",
                Json::obj([
                    ("depth", Json::Num(self.queue.len() as f64)),
                    ("capacity", Json::Num(self.queue.capacity() as f64)),
                ]),
            ),
            (
                "latency",
                Json::obj([("route", hist(&self.lat_route)), ("local", hist(&self.lat_local))]),
            ),
        ])
    }
}

fn admin_target(query: &str) -> Option<usize> {
    parse_query(query).into_iter().find(|(k, _)| k == "replica").and_then(|(_, v)| v.parse().ok())
}

fn scale_up_doc(up: &ScaleUp) -> String {
    Json::obj([
        ("added", Json::Num(up.added as f64)),
        ("addr", Json::Str(up.addr.to_string())),
        ("epoch", Json::Num(up.epoch as f64)),
        ("keys_moved", Json::Num(up.keys_moved as f64)),
        ("warm_hits", Json::Num(up.warm_hits as f64)),
    ])
    .emit_pretty()
}

fn drain_doc(i: usize, d: &Drain) -> String {
    Json::obj([
        ("drained", Json::Num(i as f64)),
        ("epoch", Json::Num(d.epoch as f64)),
        ("keys_moved", Json::Num(d.keys_moved as f64)),
        ("warm_hits", Json::Num(d.warm_hits as f64)),
        ("connections_open_after_drain", Json::Num(d.connections_open as f64)),
    ])
    .emit_pretty()
}

fn route(req: &Request, state: &Arc<RouterState>) -> (u16, Vec<String>, String, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            (200, vec![], Json::obj([("ok", Json::Bool(true))]).emit_pretty(), true)
        }
        ("GET", "/metrics") => (200, vec![], state.metrics_doc().emit_pretty(), true),
        ("GET" | "POST", "/shutdown") => {
            state.stop.trigger();
            (200, vec![], Json::obj([("stopping", Json::Bool(true))]).emit_pretty(), true)
        }
        ("GET" | "POST", "/admin/kill") => match admin_target(&req.query) {
            Some(i) if i < state.replicas.len() => {
                let was_up = state.replicas.kill(i);
                state.health.mark(i, false);
                (
                    200,
                    vec![],
                    Json::obj([("killed", Json::Num(i as f64)), ("was_up", Json::Bool(was_up))])
                        .emit_pretty(),
                    true,
                )
            }
            _ => (400, vec![], error_body("kill needs replica=<index>"), true),
        },
        ("GET" | "POST", "/admin/scale-up") => match state.elasticity.scale_up() {
            Ok(up) => (200, vec![], scale_up_doc(&up), true),
            Err(e) => (500, vec![], error_body(&format!("scale-up failed: {e}")), true),
        },
        (m, p) if p.starts_with("/admin/drain/") => {
            if !matches!(m, "GET" | "POST") {
                return (405, vec![], error_body("method not allowed"), true);
            }
            match p["/admin/drain/".len()..].parse::<usize>() {
                Err(_) => (400, vec![], error_body("drain needs /admin/drain/<index>"), true),
                Ok(i) => match state.elasticity.drain(i) {
                    Ok(d) => (200, vec![], drain_doc(i, &d), true),
                    Err(e) => (400, vec![], error_body(&format!("drain failed: {e}")), true),
                },
            }
        }
        ("GET" | "POST", "/admin/restart") => match admin_target(&req.query) {
            Some(i) if i < state.replicas.len() && state.replicas.is_retired(i) => {
                (400, vec![], error_body(&format!("replica {i} is retired")), true)
            }
            Some(i) if i < state.replicas.len() => match state.replicas.restart(i) {
                Ok(addr) => {
                    state.health.mark(i, true);
                    (
                        200,
                        vec![],
                        Json::obj([
                            ("restarted", Json::Num(i as f64)),
                            ("addr", Json::Str(addr.to_string())),
                        ])
                        .emit_pretty(),
                        true,
                    )
                }
                Err(e) => (500, vec![], error_body(&format!("restart failed: {e}")), true),
            },
            _ => (400, vec![], error_body("restart needs replica=<index>"), true),
        },
        (_, "/healthz" | "/metrics" | "/admin/kill" | "/admin/restart" | "/admin/scale-up") => {
            (405, vec![], error_body("method not allowed"), true)
        }
        _ => {
            let (status, extra, body) = state.forward(req);
            (status, extra, body, false)
        }
    }
}

/// Maps the reactor's admission outcomes onto the router counters,
/// matching the blocking-era accounting.
struct RouterEvents(Arc<RouterState>);

impl CoreEvents for RouterEvents {
    fn on_request(&self) {
        self.0.requests.fetch_add(1, Ordering::Relaxed);
    }
    fn on_reject(&self) {
        self.0.requests.fetch_add(1, Ordering::Relaxed);
        self.0.rejected.fetch_add(1, Ordering::Relaxed);
        self.0.errors.fetch_add(1, Ordering::Relaxed);
    }
    fn on_bad_request(&self) {
        self.0.requests.fetch_add(1, Ordering::Relaxed);
        self.0.errors.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

/// A running cluster: router frontend plus its replica set. Stop it
/// with [`Cluster::shutdown`] then [`Cluster::join`].
pub struct Cluster {
    state: Arc<RouterState>,
    core: reactor::Core,
    checker: std::thread::JoinHandle<()>,
}

impl Cluster {
    /// The router's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.core.addr()
    }

    /// Number of replica slots.
    pub fn replica_count(&self) -> usize {
        self.state.replicas.len()
    }

    /// A replica's current address (`None` while it is down).
    pub fn replica_addr(&self, i: usize) -> Option<SocketAddr> {
        self.state.replicas.addr(i)
    }

    /// Kills replica `i` directly (tests; the HTTP path is
    /// `/admin/kill`). Marks it down immediately.
    pub fn kill_replica(&self, i: usize) -> bool {
        let was_up = self.state.replicas.kill(i);
        self.state.health.mark(i, false);
        was_up
    }

    /// Restarts replica `i` directly, marking it up on success.
    pub fn restart_replica(&self, i: usize) -> std::io::Result<SocketAddr> {
        let addr = self.state.replicas.restart(i)?;
        self.state.health.mark(i, true);
        Ok(addr)
    }

    /// Adds one replica and installs the next epoch (the HTTP path is
    /// `/admin/scale-up`).
    pub fn scale_up(&self) -> std::io::Result<crate::membership::ScaleUp> {
        self.state.elasticity.scale_up()
    }

    /// Drains replica `i` out of the ring (the HTTP path is
    /// `/admin/drain/<i>`).
    pub fn drain_replica(&self, i: usize) -> std::io::Result<crate::membership::Drain> {
        self.state.elasticity.drain(i)
    }

    /// The current epoch's member IDs.
    pub fn members(&self) -> Vec<usize> {
        self.state.elasticity.membership.current().members.clone()
    }

    /// Requests a graceful stop: the router drains admitted requests,
    /// then the replicas drain theirs.
    pub fn shutdown(&self) {
        self.state.stop.trigger();
    }

    /// True once a stop has been requested.
    pub fn stopping(&self) -> bool {
        self.state.stop.stopping()
    }

    /// Waits for the router and every replica to finish draining.
    pub fn join(self) {
        self.core.join();
        let _ = self.checker.join();
    }
}

/// Starts the cluster: `cfg.replicas` in-process `hec-serve` replicas on
/// ephemeral ports, the health checker, and the router frontend on
/// `127.0.0.1:cfg.port`. Returns once the router socket is accepting.
pub fn start(cfg: ClusterConfig) -> std::io::Result<Cluster> {
    let replicas = Arc::new(ReplicaSet::start(cfg.replicas, cfg.replica.clone())?);
    let health = Arc::new(Health::new(replicas.len()));
    let pool = WorkerPool::new(Threads::new(cfg.workers), cfg.queue);
    let stop = Arc::new(ShutdownFlag::new());
    let net = Arc::new(NetStats::new());
    let planned_faults = cfg.faults.remaining();
    let elasticity = Arc::new(Elasticity::new(
        Arc::clone(&replicas),
        Arc::clone(&health),
        cfg.vnodes,
        cfg.replication,
        cfg.autoscale,
        cfg.retry.timeout,
    ));
    let state = Arc::new(RouterState {
        elasticity,
        replicas: Arc::clone(&replicas),
        health: Arc::clone(&health),
        faults: Mutex::new(cfg.faults),
        planned_faults,
        retry: cfg.retry,
        hedge: cfg.hedge_ms.map(Duration::from_millis),
        seed: cfg.seed,
        started: Instant::now(),
        stop: Arc::clone(&stop),
        net: Arc::clone(&net),
        queue: pool.queue_gauge(),
        admitted: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        hedges: AtomicU64::new(0),
        faults_injected: AtomicU64::new(0),
        lat_route: Histogram::new(),
        lat_local: Histogram::new(),
    });

    let checker_stop = Arc::new(AtomicBool::new(false));
    let checker = health::spawn_checker(
        Arc::clone(&replicas),
        Arc::clone(&health),
        Arc::clone(&checker_stop),
        cfg.health,
    );

    let handler_state = Arc::clone(&state);
    let handler: Arc<reactor::Handler> = Arc::new(move |req: &Request, t0: Instant| {
        let (status, extra, body, local) = route(req, &handler_state);
        if status >= 400 {
            handler_state.errors.fetch_add(1, Ordering::Relaxed);
        }
        if local {
            handler_state.lat_local.record(t0.elapsed());
        } else {
            handler_state.lat_route.record(t0.elapsed());
        }
        (status, extra, body)
    });
    let events = Arc::new(RouterEvents(Arc::clone(&state)));
    // After the reactor drains the router's in-flight requests (they may
    // still need live replicas), stop the checker and the replicas.
    let drain_replicas = Arc::clone(&replicas);
    let on_drained = Box::new(move || {
        checker_stop.store(true, Ordering::SeqCst);
        drain_replicas.shutdown_all();
    });
    let core = reactor::start_core(
        CoreConfig {
            port: cfg.port,
            reject_body: error_body("router admission queue full; retry"),
        },
        pool,
        net,
        events,
        stop,
        handler,
        Some(on_drained),
    )?;
    Ok(Cluster { state, core, checker })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultEvent;

    fn small(replicas: usize, faults: FaultPlan) -> Cluster {
        start(ClusterConfig {
            replicas,
            replica: ServeConfig { port: 0, workers: 2, queue: 16, cache_capacity: 256 },
            retry: RetryPolicy {
                base_ms: 5,
                cap_ms: 50,
                max_retries: 3,
                timeout: Duration::from_secs(10),
            },
            health: HealthConfig {
                interval: Duration::from_millis(50),
                probe_timeout: Duration::from_millis(300),
            },
            faults,
            ..ClusterConfig::default()
        })
        .expect("cluster starts")
    }

    #[test]
    fn router_serves_the_same_bytes_as_a_replica() {
        let c = small(3, FaultPlan::none());
        let base = format!("http://{}", c.addr());
        let point =
            hec_serve::request::Point::from_query("app=gtc&platform=x1msp&procs=256").unwrap();
        let want = hec_serve::server::point_response_body(&point, point.eval());
        let got =
            client::http_get(&format!("{base}/eval?app=gtc&platform=x1msp&procs=256")).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.body, want, "routed bytes must equal in-process bytes");
        c.shutdown();
        c.join();
    }

    #[test]
    fn dropconn_fault_fails_over_without_an_error() {
        // Drop the connection to every possible target of request 0:
        // whichever owner is tried first fails artificially, the next
        // one answers, and the client never sees it.
        let plan = FaultPlan::with(
            (0..3)
                .map(|r| FaultEvent { at_request: 0, replica: r, kind: FaultKind::DropConn })
                .collect(),
        );
        // Only events whose replica is actually tried are consumed; with
        // R=2 at most two owners are tried, so at least one drop fires.
        let c = small(3, plan);
        let base = format!("http://{}", c.addr());
        let r = client::http_get(&format!("{base}/eval?app=lbmhd&platform=es&procs=64")).unwrap();
        assert_eq!(r.status, 200, "failover must hide the dropped connection");
        let m = client::http_get(&format!("{base}/metrics")).unwrap();
        let doc = Json::parse(&m.body).unwrap();
        assert!(doc.get("failovers").unwrap().as_f64().unwrap() >= 1.0);
        c.shutdown();
        c.join();
    }

    #[test]
    fn admin_kill_and_restart_round_trip() {
        let c = small(2, FaultPlan::none());
        let base = format!("http://{}", c.addr());
        let killed = client::http_post(&format!("{base}/admin/kill?replica=1"), "").unwrap();
        assert_eq!(killed.status, 200);
        assert!(killed.body.contains("\"was_up\": true"));
        assert!(c.replica_addr(1).is_none());
        // Requests still answer through the surviving replica.
        let r =
            client::http_get(&format!("{base}/eval?app=paratec&platform=sx8&procs=128")).unwrap();
        assert_eq!(r.status, 200);
        let revived = client::http_post(&format!("{base}/admin/restart?replica=1"), "").unwrap();
        assert_eq!(revived.status, 200);
        assert!(c.replica_addr(1).is_some());
        assert_eq!(
            client::http_post(&format!("{base}/admin/kill?replica=9"), "").unwrap().status,
            400
        );
        c.shutdown();
        c.join();
    }

    #[test]
    fn hedged_router_still_serves_identical_bytes() {
        let c = start(ClusterConfig {
            replicas: 3,
            hedge_ms: Some(1), // hedge aggressively: exercise the path
            replica: ServeConfig { port: 0, workers: 2, queue: 16, cache_capacity: 256 },
            ..ClusterConfig::default()
        })
        .unwrap();
        let base = format!("http://{}", c.addr());
        let point =
            hec_serve::request::Point::from_query("app=fvcam&platform=power3&procs=256&pz=4")
                .unwrap();
        let want = hec_serve::server::point_response_body(&point, point.eval());
        for _ in 0..5 {
            let got =
                client::http_get(&format!("{base}/eval?app=fvcam&platform=power3&procs=256&pz=4"))
                    .unwrap();
            assert_eq!(got.status, 200);
            assert_eq!(got.body, want);
        }
        c.shutdown();
        c.join();
    }

    #[test]
    fn shutdown_stops_router_and_replicas() {
        let c = small(2, FaultPlan::none());
        let base = format!("http://{}", c.addr());
        let replica0 = c.replica_addr(0).unwrap();
        let r = client::http_post(&format!("{base}/shutdown"), "").unwrap();
        assert_eq!(r.status, 200);
        assert!(c.stopping());
        c.join();
        assert!(
            client::http_get(&format!("http://{replica0}/healthz")).is_err(),
            "replicas must stop with the router"
        );
    }
}
