//! Result generation for every table and figure.
//!
//! The per-cell evaluation core (measured workload → architectural model
//! → Gflop/P and % of peak) lives in [`hec_serve::engine`] since the
//! service and the CLI must produce bitwise-identical numbers; the
//! moved items are re-exported here so existing callers keep working.
//! What remains local is everything that needs the simulated runtime:
//! the Figure 2 traffic capture and the Figure 8 assembly.
//!
//! Results use the paper's 7-column platform layout (see
//! `report::paper::PLATFORMS`).

pub use hec_serve::engine::{fvcam_rows, gtc_rows, lbmhd_rows, paratec_rows, Cell, Row};

/// Figure 8 data: the 256-processor slice of all four applications —
/// (% of peak, speed relative to ES) per platform per app.
pub struct Fig8App {
    /// Application name.
    pub app: &'static str,
    /// Per-platform cells at P=256.
    pub cells: [Option<Cell>; 7],
}

/// Collects the 256-processor rows of all four applications.
pub fn fig8_apps() -> Vec<Fig8App> {
    let pick = |rows: &[Row], label_filter: Option<&str>| -> [Option<Cell>; 7] {
        rows.iter()
            .find(|r| r.procs == 256 && label_filter.map(|f| r.label.contains(f)).unwrap_or(true))
            .map(|r| r.cells.clone())
            .unwrap_or([None; 7])
    };
    vec![
        Fig8App { app: "FVCAM", cells: pick(&fvcam_rows(), Some("2D Pz=4")) },
        Fig8App { app: "GTC", cells: pick(&gtc_rows(), None) },
        Fig8App { app: "LBMHD3D", cells: pick(&lbmhd_rows(), None) },
        Fig8App { app: "PARATEC", cells: pick(&paratec_rows(), None) },
    ]
}

/// Figure 2: runs the real FVCAM mini-app on the D mesh with 64 msim
/// ranks (the paper's 64 MPI processes × 4 OpenMP threads = 256 CPUs) and
/// captures the point-to-point traffic matrix for the 1D and the
/// 2D (Pz = 4) decompositions. `scale` shrinks the mesh for quick runs
/// (1 = full D mesh).
pub fn fig2_traffic(pz: usize, scale: usize) -> (Vec<u64>, usize) {
    let nlon = 576 / scale.max(1);
    let nlat = 361 / scale.max(1);
    let nlev = 26;
    let ranks = 64;
    let params = fvcam::FvParams { nlon, nlat, nlev, pz, courant: 0.3, ..Default::default() };
    let (_, traffic) = msim::run_with_traffic(ranks, move |comm| {
        let mut sim = fvcam::FvSim::new(params, comm.rank(), comm.size());
        // Capture a clean steady-state step, as IPM captures do.
        sim.step(comm);
        // One synchronized reset: all ranks must be past step 1 before the
        // matrix is cleared, and none may start step 2 before it happens.
        comm.barrier();
        if comm.rank() == 0 {
            comm.traffic().reset();
        }
        comm.barrier();
        sim.step(comm);
    })
    .expect("fig2 capture run failed");
    (traffic.snapshot(), ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_produce_rows() {
        assert_eq!(gtc_rows().len(), 6);
        assert_eq!(lbmhd_rows().len(), 6);
        assert_eq!(paratec_rows().len(), 6);
        assert_eq!(fvcam_rows().len(), 13);
    }

    #[test]
    fn every_defined_cell_is_positive_and_below_peak() {
        for rows in [gtc_rows(), lbmhd_rows(), paratec_rows(), fvcam_rows()] {
            for r in rows {
                for c in r.cells.iter().flatten() {
                    assert!(c.gflops > 0.0);
                    assert!(c.pct_peak > 0.0 && c.pct_peak <= 100.0, "{}", c.pct_peak);
                    assert!(c.step_secs > 0.0);
                }
            }
        }
    }

    #[test]
    fn fig8_has_all_four_apps() {
        let apps = fig8_apps();
        assert_eq!(apps.len(), 4);
        for a in &apps {
            assert!(a.cells.iter().any(|c| c.is_some()), "{} missing", a.app);
        }
    }

    #[test]
    fn fig2_capture_runs_on_a_reduced_mesh() {
        let (matrix, ranks) = fig2_traffic(1, 8);
        assert_eq!(matrix.len(), ranks * ranks);
        assert!(matrix.iter().sum::<u64>() > 0);
        // 1D: traffic only between adjacent ranks (and none on the
        // diagonal).
        for src in 0..ranks {
            assert_eq!(matrix[src * ranks + src], 0, "self-traffic at {src}");
            for dst in 0..ranks {
                let d = (src as i64 - dst as i64).abs();
                if matrix[src * ranks + dst] > 0 {
                    assert!(d == 1, "1D run has traffic at distance {d}");
                }
            }
        }
    }
}
