//! Result generation for every table and figure.
//!
//! Each driver builds, per (configuration, platform), the workload profile
//! from the application's *measured* calibration capture (see each app's
//! `measured_workload`; the analytic builders remain as the cross-check
//! oracle) and evaluates it with the architectural model. Results use the
//! paper's 7-column platform layout (see `report::paper::PLATFORMS`).

use hec_arch::{predict, Platform, PlatformId, WorkloadProfile};

/// One reproduced cell: sustained Gflop/s per processor and % of peak.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Gflop/s per processor.
    pub gflops: f64,
    /// Percent of the platform's peak.
    pub pct_peak: f64,
    /// Predicted seconds per timestep (Figure 4 needs this).
    pub step_secs: f64,
}

/// One reproduced table row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Processor count.
    pub procs: usize,
    /// Row label (decomposition, grid, particles/cell…).
    pub label: String,
    /// Per-platform cells in `report::paper::PLATFORMS` order.
    pub cells: [Option<Cell>; 7],
}

fn eval(platform: &Platform, w: &WorkloadProfile) -> Cell {
    let p = predict(platform, w);
    Cell { gflops: p.gflops_per_proc, pct_peak: p.percent_of_peak, step_secs: p.breakdown.total() }
}

/// Evaluates a workload on the X1 in "aggregate 4-SSP" mode, the way
/// Tables 4 and 6 report it: the same total work spread over 4× as many
/// SSP ranks; the quoted Gflop/P is the aggregate of 4 SSPs.
fn eval_4ssp(w: &WorkloadProfile) -> Cell {
    let ssp = Platform::get(PlatformId::X1Ssp);
    let mut quarter = w.clone();
    quarter.job_procs = w.job_procs * 4;
    for ph in quarter.phases.iter_mut() {
        ph.flops /= 4.0;
        ph.unit_stride_bytes /= 4.0;
        ph.gather_scatter_bytes /= 4.0;
        ph.working_set_bytes /= 4.0;
        // The inner (vector) loops are the same loops — only the outer
        // block shrinks — so the vector length is left untouched.
    }
    for ev in quarter.comm.iter_mut() {
        use hec_arch::CommEvent::*;
        match ev {
            Halo { bytes, .. } => *bytes /= 4.0,
            Allreduce { procs, .. } => *procs *= 4.0,
            Alltoall { procs, bytes_per_pair } => {
                *procs *= 4.0;
                *bytes_per_pair /= 16.0; // per-rank volume /4, pairs ×4
            }
            Transpose { procs, bytes_per_rank } => {
                *procs *= 4.0;
                *bytes_per_rank /= 4.0;
            }
            Bcast { procs, .. } => *procs *= 4.0,
        }
    }
    let p = predict(&ssp, &quarter);
    // The paper reports the *aggregate* of 4 SSPs against the MSP's 12.8
    // Gflop/s peak, so the two X1 columns are directly comparable.
    let aggregate = 4.0 * p.gflops_per_proc;
    Cell {
        gflops: aggregate,
        pct_peak: 100.0 * aggregate / Platform::get(PlatformId::X1Msp).peak_gflops,
        step_secs: p.breakdown.total(),
    }
}

/// Table 3 / Figures 3–4: FVCAM on the D mesh. OpenMP (4 threads) is used
/// on Power3 and ES exactly as in the paper; the X1E column sits in the
/// paper's "4-SSP" slot (FVCAM reports X1E, not SSP mode).
pub fn fvcam_rows() -> Vec<Row> {
    use fvcam::model::{measured_workload, table3_configs, FvConfig};
    let mut rows = Vec::new();
    for base in table3_configs(1) {
        let mk = |threads: usize| -> Option<WorkloadProfile> {
            measured_workload(FvConfig { threads, ..base })
        };
        let w1 = mk(1);
        let w4 = mk(4);
        // Prefer pure MPI; fall back to 4 threads where MPI alone is
        // infeasible (the paper's Power3/ES hybrid operating point).
        let omp = |prefer4: bool| -> Option<WorkloadProfile> {
            if prefer4 {
                w4.clone().or_else(|| w1.clone())
            } else {
                w1.clone().or_else(|| w4.clone())
            }
        };
        let cells: [Option<Cell>; 7] = [
            omp(true).map(|w| eval(&Platform::get(PlatformId::Power3), &w)),
            omp(false).map(|w| eval(&Platform::get(PlatformId::Itanium2), &w)),
            None, // no Opteron data for FVCAM
            omp(false).map(|w| eval(&Platform::get(PlatformId::X1Msp), &w)),
            omp(false).map(|w| eval(&Platform::get(PlatformId::X1e), &w)),
            omp(true).map(|w| eval(&Platform::get(PlatformId::Es), &w)),
            None, // no SX-8 data for FVCAM
        ];
        let label = if base.pz == 1 { "1D".into() } else { format!("2D Pz={}", base.pz) };
        rows.push(Row { procs: base.procs, label, cells });
    }
    rows
}

/// Table 4: GTC weak scaling (3.2 M particles per processor).
pub fn gtc_rows() -> Vec<Row> {
    use gtc::model::{measured_workload, TABLE4_CONFIGS};
    TABLE4_CONFIGS
        .iter()
        .map(|&(procs, ppc)| {
            let w = measured_workload(procs);
            let cells: [Option<Cell>; 7] = [
                Some(eval(&Platform::get(PlatformId::Power3), &w)),
                Some(eval(&Platform::get(PlatformId::Itanium2), &w)),
                Some(eval(&Platform::get(PlatformId::Opteron), &w)),
                Some(eval(&Platform::get(PlatformId::X1Msp), &w)),
                Some(eval_4ssp(&w)),
                Some(eval(&Platform::get(PlatformId::Es), &w)),
                Some(eval(&Platform::get(PlatformId::Sx8), &w)),
            ];
            Row { procs, label: format!("{ppc} p/c"), cells }
        })
        .collect()
}

/// Table 5: LBMHD3D at 256³–1024³.
pub fn lbmhd_rows() -> Vec<Row> {
    use lbmhd::model::{measured_workload, TABLE5_CONFIGS};
    TABLE5_CONFIGS
        .iter()
        .map(|&(procs, n)| {
            let w = measured_workload(n, procs);
            // The paper's X1 SSP column for LBMHD is per-SSP Gflop/s (not
            // aggregate): divide the aggregate evaluation back by 4.
            let ssp = {
                let c = eval_4ssp(&w);
                Cell { gflops: c.gflops / 4.0, ..c }
            };
            let cells: [Option<Cell>; 7] = [
                Some(eval(&Platform::get(PlatformId::Power3), &w)),
                Some(eval(&Platform::get(PlatformId::Itanium2), &w)),
                Some(eval(&Platform::get(PlatformId::Opteron), &w)),
                Some(eval(&Platform::get(PlatformId::X1Msp), &w)),
                Some(ssp),
                Some(eval(&Platform::get(PlatformId::Es), &w)),
                Some(eval(&Platform::get(PlatformId::Sx8), &w)),
            ];
            Row { procs, label: format!("{n}^3"), cells }
        })
        .collect()
}

/// Table 6: PARATEC, 488-atom CdSe dot, 3 CG steps.
pub fn paratec_rows() -> Vec<Row> {
    use paratec::model::{measured_workload, TABLE6_CONFIGS};
    TABLE6_CONFIGS
        .iter()
        .map(|&procs| {
            let w = measured_workload(procs);
            let cells: [Option<Cell>; 7] = [
                Some(eval(&Platform::get(PlatformId::Power3), &w)),
                Some(eval(&Platform::get(PlatformId::Itanium2), &w)),
                Some(eval(&Platform::get(PlatformId::Opteron), &w)),
                Some(eval(&Platform::get(PlatformId::X1Msp), &w)),
                Some(eval_4ssp(&w)),
                Some(eval(&Platform::get(PlatformId::Es), &w)),
                Some(eval(&Platform::get(PlatformId::Sx8), &w)),
            ];
            Row { procs, label: String::new(), cells }
        })
        .collect()
}

/// Figure 8 data: the 256-processor slice of all four applications —
/// (% of peak, speed relative to ES) per platform per app.
pub struct Fig8App {
    /// Application name.
    pub app: &'static str,
    /// Per-platform cells at P=256.
    pub cells: [Option<Cell>; 7],
}

/// Collects the 256-processor rows of all four applications.
pub fn fig8_apps() -> Vec<Fig8App> {
    let pick = |rows: &[Row], label_filter: Option<&str>| -> [Option<Cell>; 7] {
        rows.iter()
            .find(|r| r.procs == 256 && label_filter.map(|f| r.label.contains(f)).unwrap_or(true))
            .map(|r| r.cells.clone())
            .unwrap_or([None; 7])
    };
    vec![
        Fig8App { app: "FVCAM", cells: pick(&fvcam_rows(), Some("2D Pz=4")) },
        Fig8App { app: "GTC", cells: pick(&gtc_rows(), None) },
        Fig8App { app: "LBMHD3D", cells: pick(&lbmhd_rows(), None) },
        Fig8App { app: "PARATEC", cells: pick(&paratec_rows(), None) },
    ]
}

/// Figure 2: runs the real FVCAM mini-app on the D mesh with 64 msim
/// ranks (the paper's 64 MPI processes × 4 OpenMP threads = 256 CPUs) and
/// captures the point-to-point traffic matrix for the 1D and the
/// 2D (Pz = 4) decompositions. `scale` shrinks the mesh for quick runs
/// (1 = full D mesh).
pub fn fig2_traffic(pz: usize, scale: usize) -> (Vec<u64>, usize) {
    let nlon = 576 / scale.max(1);
    let nlat = 361 / scale.max(1);
    let nlev = 26;
    let ranks = 64;
    let params = fvcam::FvParams { nlon, nlat, nlev, pz, courant: 0.3, ..Default::default() };
    let (_, traffic) = msim::run_with_traffic(ranks, move |comm| {
        let mut sim = fvcam::FvSim::new(params, comm.rank(), comm.size());
        // Capture a clean steady-state step, as IPM captures do.
        sim.step(comm);
        // One synchronized reset: all ranks must be past step 1 before the
        // matrix is cleared, and none may start step 2 before it happens.
        comm.barrier();
        if comm.rank() == 0 {
            comm.traffic().reset();
        }
        comm.barrier();
        sim.step(comm);
    })
    .expect("fig2 capture run failed");
    (traffic.snapshot(), ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_produce_rows() {
        assert_eq!(gtc_rows().len(), 6);
        assert_eq!(lbmhd_rows().len(), 6);
        assert_eq!(paratec_rows().len(), 6);
        assert_eq!(fvcam_rows().len(), 13);
    }

    #[test]
    fn every_defined_cell_is_positive_and_below_peak() {
        for rows in [gtc_rows(), lbmhd_rows(), paratec_rows(), fvcam_rows()] {
            for r in rows {
                for c in r.cells.iter().flatten() {
                    assert!(c.gflops > 0.0);
                    assert!(c.pct_peak > 0.0 && c.pct_peak <= 100.0, "{}", c.pct_peak);
                    assert!(c.step_secs > 0.0);
                }
            }
        }
    }

    #[test]
    fn fig8_has_all_four_apps() {
        let apps = fig8_apps();
        assert_eq!(apps.len(), 4);
        for a in &apps {
            assert!(a.cells.iter().any(|c| c.is_some()), "{} missing", a.app);
        }
    }

    #[test]
    fn fig2_capture_runs_on_a_reduced_mesh() {
        let (matrix, ranks) = fig2_traffic(1, 8);
        assert_eq!(matrix.len(), ranks * ranks);
        assert!(matrix.iter().sum::<u64>() > 0);
        // 1D: traffic only between adjacent ranks (and none on the
        // diagonal).
        for src in 0..ranks {
            assert_eq!(matrix[src * ranks + src], 0, "self-traffic at {src}");
            for dst in 0..ranks {
                let d = (src as i64 - dst as i64).abs();
                if matrix[src * ranks + dst] > 0 {
                    assert!(d == 1, "1D run has traffic at distance {d}");
                }
            }
        }
    }
}
