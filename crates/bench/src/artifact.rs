//! Artifact directory I/O for the reproduction pipeline.
//!
//! `repro all` writes every artifact — `TABLE_<app>.json`,
//! `CANON_eval.json`, `PROFILE_<app>.json`, `BENCH_*.json` — through
//! one [`Writer`], which stamps each file with the same [`Meta`] block:
//! git commit, `HEC_THREADS`, platform set, a config hash, and the
//! harness/load sample parameters. The stamp is what makes a directory
//! of results comparable later (the Sumatra argument: a number without
//! its provenance cannot be trusted across commits), and `repro diff`
//! reads it back to decide whether thresholded performance comparisons
//! are even meaningful (same host fingerprint, same worker count) or
//! only the exact-deterministic fields are.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use hec_core::json::Json;
use hec_core::pool::Threads;
use hec_serve::engine::AppId;

/// Version of the artifact schema; bumped on incompatible layout
/// changes so `repro diff` refuses to compare across schemas.
pub const SCHEMA_VERSION: f64 = 1.0;

/// The stable artifact-file tag for an application (`TABLE_<tag>.json`,
/// `PROFILE_<tag>.json`): each app crate owns its tag so the naming
/// cannot drift per call site.
pub fn app_tag(app: AppId) -> &'static str {
    match app {
        AppId::Fvcam => fvcam::ARTIFACT_TAG,
        AppId::Gtc => gtc::ARTIFACT_TAG,
        AppId::Lbmhd => lbmhd::ARTIFACT_TAG,
        AppId::Paratec => paratec::ARTIFACT_TAG,
    }
}

/// The metadata block stamped into every artifact.
#[derive(Clone, Debug)]
pub struct Meta {
    /// Abbreviated `git rev-parse HEAD`, or `"unknown"` outside a repo.
    pub git_commit: String,
    /// Resolved shared-memory worker count (`HEC_THREADS` policy).
    pub hec_threads: usize,
    /// Host fingerprint (`os-arch-Ncpu`): thresholded performance
    /// comparisons are only meaningful between equal fingerprints.
    pub host: String,
    /// Platform set the tables cover (paper display labels).
    pub platforms: Vec<String>,
    /// Application artifact tags, in the paper's order.
    pub apps: Vec<String>,
    /// Hash of the deterministic run configuration (schema version,
    /// apps, platforms, canonical eval workload) — equal hashes mean
    /// the exact-deterministic fields are directly comparable.
    pub config_hash: String,
    /// Timed samples per harness case.
    pub samples: usize,
    /// Load-test duration per target, seconds.
    pub load_secs: u64,
    /// Closed-loop load clients.
    pub clients: usize,
    /// Cluster replicas behind the router leg.
    pub replicas: usize,
    /// Wall-clock creation time (unix seconds; never compared).
    pub created_unix: f64,
}

impl Meta {
    /// Collects the metadata for a run with the given sample parameters.
    pub fn collect(samples: usize, load_secs: u64, clients: usize, replicas: usize) -> Meta {
        let platforms: Vec<String> = report::paper::PLATFORMS
            .iter()
            .chain(report::paper::FVCAM_PLATFORMS.iter())
            .filter(|p| **p != "(n/a)") // table-layout hole, not a platform
            .map(|s| s.to_string())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let apps: Vec<String> = AppId::ALL.iter().map(|&a| app_tag(a).to_string()).collect();
        let mut config = format!("schema={SCHEMA_VERSION}");
        for a in &apps {
            config.push_str(&format!("|app={a}"));
        }
        for p in &platforms {
            config.push_str(&format!("|platform={p}"));
        }
        for q in crate::loadgen::eval_queries() {
            config.push_str(&format!("|eval={q}"));
        }
        let config_hash = format!("{:016x}", hec_cluster::stable_hash(config.as_bytes()));
        Meta {
            git_commit: git_commit(),
            hec_threads: Threads::from_env().workers(),
            host: host_fingerprint(),
            platforms,
            apps,
            config_hash,
            samples,
            load_secs,
            clients,
            replicas,
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs() as f64)
                .unwrap_or(0.0),
        }
    }

    /// The JSON form of the stamp.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::Num(SCHEMA_VERSION)),
            ("git_commit", Json::Str(self.git_commit.clone())),
            ("hec_threads", Json::Num(self.hec_threads as f64)),
            ("host", Json::Str(self.host.clone())),
            ("platforms", Json::Arr(self.platforms.iter().cloned().map(Json::Str).collect())),
            ("apps", Json::Arr(self.apps.iter().cloned().map(Json::Str).collect())),
            ("config_hash", Json::Str(self.config_hash.clone())),
            ("samples", Json::Num(self.samples as f64)),
            ("load_secs", Json::Num(self.load_secs as f64)),
            ("clients", Json::Num(self.clients as f64)),
            ("replicas", Json::Num(self.replicas as f64)),
            ("created_unix", Json::Num(self.created_unix)),
        ])
    }
}

/// `git rev-parse --short=12 HEAD`, or `"unknown"` when git (or the
/// repository) is unavailable — artifacts must still be writable from a
/// tarball checkout.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `os-arch-Ncpu`: the comparability key for thresholded performance
/// fields. Two directories from different fingerprints still diff their
/// exact-deterministic fields, but throughput is not compared.
pub fn host_fingerprint() -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!("{}-{}-{}cpu", std::env::consts::OS, std::env::consts::ARCH, cpus)
}

/// Writes metadata-stamped artifacts into one directory.
pub struct Writer {
    dir: PathBuf,
    meta: Json,
}

impl Writer {
    /// A writer into `dir` (created if absent) stamping `meta`.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>, meta: &Meta) -> io::Result<Writer> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Writer { dir, meta: meta.to_json() })
    }

    /// A writer into the current directory (the standalone `repro
    /// harness` / `profile` / `loadgen` commands keep their historical
    /// output location but gain the stamp).
    pub fn cwd(meta: &Meta) -> Writer {
        Writer { dir: PathBuf::from("."), meta: meta.to_json() }
    }

    /// The output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `{"meta": …, payload…}` to `<dir>/<name>` (pretty JSON)
    /// and prints the path. Returns the full path.
    ///
    /// # Errors
    /// Propagates the underlying write failure.
    pub fn write(
        &self,
        name: &str,
        payload: impl IntoIterator<Item = (&'static str, Json)>,
    ) -> io::Result<PathBuf> {
        let mut fields = vec![("meta".to_string(), self.meta.clone())];
        fields.extend(payload.into_iter().map(|(k, v)| (k.to_string(), v)));
        let path = self.dir.join(name);
        std::fs::write(&path, Json::Obj(fields).emit_pretty())?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

/// Loads every `*.json` artifact in `dir`, keyed by file name.
///
/// # Errors
/// Returns a readable message when the directory is unreadable, a file
/// fails to parse, or the directory holds no artifacts at all.
pub fn load_dir(dir: &Path) -> Result<BTreeMap<String, Json>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut out = BTreeMap::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if !path.is_file() || path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc =
            Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        out.insert(name, doc);
    }
    if out.is_empty() {
        return Err(format!("{} holds no *.json artifacts", dir.display()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hec-artifact-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writer_stamps_meta_and_loader_reads_it_back() {
        let dir = tmpdir("rt");
        let meta = Meta::collect(3, 2, 4, 3);
        let w = Writer::new(&dir, &meta).unwrap();
        w.write("TABLE_demo.json", [("rows", Json::Arr(vec![Json::Num(1.0)]))]).unwrap();
        let docs = load_dir(&dir).unwrap();
        let doc = &docs["TABLE_demo.json"];
        let m = doc.field("meta").unwrap();
        assert_eq!(m.num_field("schema_version").unwrap(), SCHEMA_VERSION);
        assert_eq!(m.str_field("config_hash").unwrap(), meta.config_hash);
        assert_eq!(m.num_field("samples").unwrap(), 3.0);
        assert!(m.num_field("hec_threads").unwrap() >= 1.0);
        assert!(!m.str_field("host").unwrap().is_empty());
        assert_eq!(doc.get("rows").unwrap().as_arr().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_hash_is_a_pure_function_of_the_configuration() {
        // Sample parameters are provenance, not configuration: two runs
        // with different sample counts still compare their exact fields.
        let a = Meta::collect(3, 2, 4, 3);
        let b = Meta::collect(11, 9, 8, 5);
        assert_eq!(a.config_hash, b.config_hash);
        assert_eq!(a.config_hash.len(), 16);
    }

    #[test]
    fn app_tags_are_the_crate_constants() {
        assert_eq!(app_tag(AppId::Fvcam), "fvcam");
        assert_eq!(app_tag(AppId::Gtc), "gtc");
        assert_eq!(app_tag(AppId::Lbmhd), "lbmhd3d");
        assert_eq!(app_tag(AppId::Paratec), "paratec");
    }

    #[test]
    fn load_dir_rejects_missing_and_empty_directories() {
        assert!(load_dir(Path::new("/nonexistent/xyzzy")).is_err());
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_dir(&dir).unwrap_err().contains("no *.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
