//! `repro loadgen` — load generator for the serve/cluster subsystems,
//! closed-loop by default, open-loop with `--rate=N`.
//!
//! **Closed loop** (default): N client threads, each issuing one
//! request at a time (think time zero, concurrency = N) round-robin
//! over a repeated-request workload: single points for all four apps
//! across several platforms, plus a sweep per app. Because the
//! workload repeats, a correctly caching server converges to a high
//! hit rate. Closed-loop latency suffers *coordinated omission*: a
//! slow response delays the client's next arrival, so the recorded
//! distribution under-represents exactly the stalls it should expose.
//!
//! **Open loop** (`--rate=N`): request arrival times are a fixed,
//! seeded schedule — exponential inter-arrivals at the offered rate,
//! computed *before* the run and independent of response times
//! ([`arrival_offsets_ns`]). Latency is measured from each request's
//! *scheduled* arrival to its completion, so time a request spends
//! waiting behind a stalled server counts against the server, not
//! against the schedule. Same seed + rate ⇒ byte-identical schedule.
//!
//! Clients use the retrying GET ([`client::get_with_retry`]): a `503 +
//! Retry-After` or a transport blip is retried with seeded backoff, and
//! a request that needed a retry but ultimately succeeded is counted as
//! `retried_ok` — *not* as an error. Only requests that stay failed
//! after the budget count against the run.
//!
//! The target's `/metrics` document decides the output shape: a
//! document with a `cluster` section means the target is a
//! `hec-cluster` router, and the run emits `BENCH_cluster.json`
//! (throughput, exact latency quantiles, failovers, availability);
//! otherwise it emits `BENCH_serve.json` with the cache breakdown, as
//! before.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hec_core::json::Json;
use hec_serve::client;
use report::latency::{cluster_table, latency_table, ClusterSummary, LatencySummary};

/// Default load duration, seconds.
pub const DEFAULT_SECS: u64 = 5;
/// Default closed-loop client count.
pub const DEFAULT_CLIENTS: usize = 4;
/// Default arrival-schedule seed for open-loop runs. Any seed is
/// valid; this one's Poisson draw lands near the nominal count at the
/// pipeline's default (rate, secs), so the offered-vs-achieved stamp
/// reads cleanly (an unlucky seed can legitimately draw a 3σ-thin
/// schedule and make a healthy server look 10% slow).
pub const DEFAULT_SEED: u64 = 36;

/// Open-loop parameters: a fixed offered rate and the seed of the
/// arrival schedule.
#[derive(Clone, Copy)]
pub struct OpenLoop {
    /// Offered request rate, requests per second.
    pub rate_rps: f64,
    /// Seed of the exponential inter-arrival schedule.
    pub seed: u64,
}

/// The deterministic open-loop arrival schedule: offsets (ns from run
/// start) of every request in a `secs`-second run at `rate_rps`,
/// Poisson arrivals via seeded exponential inter-arrival gaps. The
/// schedule depends only on `(seed, rate_rps, secs)` — never on the
/// target's behaviour — which is what makes the run open-loop.
pub fn arrival_offsets_ns(seed: u64, rate_rps: f64, secs: u64) -> Vec<u64> {
    let mut rng = hec_core::rng::Rng::new(seed);
    let mean_gap_ns = 1e9 / rate_rps.max(1e-9);
    let horizon_ns = secs.max(1) as f64 * 1e9;
    let mut t = 0.0f64;
    let mut offsets = Vec::new();
    loop {
        // Inverse-CDF exponential sample; uniform() is in [0, 1) so
        // ln(1-u) is finite.
        t += -mean_gap_ns * (1.0 - rng.uniform()).ln();
        if t >= horizon_ns {
            return offsets;
        }
        offsets.push(t as u64);
    }
}

/// One request class in the generated mix.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Eval,
    Sweep,
}

/// The canonical `/eval` query strings: every app across several
/// platforms at table-sized concurrencies. This list is part of the
/// reproducibility contract — it seeds the load mix, the
/// `CANON_eval.json` artifact (`repro all` snapshots each query's exact
/// response bytes), and the `config_hash` stamped into artifact
/// metadata, so changing it deliberately invalidates old baselines.
pub fn eval_queries() -> Vec<String> {
    let mut qs = Vec::new();
    for (app, extra) in [("gtc", ""), ("lbmhd", "&n=512"), ("paratec", ""), ("fvcam", "&pz=4")] {
        for platform in ["power3", "x1msp", "es", "sx8"] {
            qs.push(format!("app={app}&platform={platform}&procs=256{extra}"));
        }
    }
    qs.push("app=gtc&platform=4ssp&procs=512".to_string());
    qs.push("app=lbmhd&platform=opteron&procs=1024&n=1024".to_string());
    qs
}

/// The repeated-request mix: the canonical eval points plus one sweep
/// per app.
fn workload(base: &str) -> Vec<(Class, String)> {
    let mut urls: Vec<(Class, String)> =
        eval_queries().into_iter().map(|q| (Class::Eval, format!("{base}/eval?{q}"))).collect();
    for app in ["gtc", "lbmhd", "paratec", "fvcam"] {
        urls.push((Class::Sweep, format!("{base}/sweep?app={app}")));
    }
    urls
}

/// One completed request.
#[derive(Clone, Copy)]
struct Sample {
    class: Class,
    latency_us: u64,
    ok: bool,
    /// Succeeded only after at least one retry.
    retried_ok: bool,
}

struct ClientStats {
    samples: Vec<Sample>,
    /// Requests that exhausted the retry budget on transport errors.
    transport_errors: u64,
}

fn drive(base: String, stop: Arc<AtomicBool>, offset: usize) -> ClientStats {
    let urls = workload(&base);
    let policy = client::RetryPolicy::default();
    let mut stats = ClientStats { samples: Vec::new(), transport_errors: 0 };
    let mut i = offset;
    while !stop.load(Ordering::Relaxed) {
        let (class, url) = &urls[i % urls.len()];
        // Per-request jitter seed: distinct per client and per request,
        // deterministic for a given (client, index) pair.
        let seed = ((offset as u64) << 32) ^ i as u64;
        i += 1;
        let t0 = Instant::now();
        match client::get_with_retry(url, &policy, seed) {
            Ok(out) => {
                let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                let ok = out.response.status == 200;
                stats.samples.push(Sample {
                    class: *class,
                    latency_us: us,
                    ok,
                    retried_ok: ok && out.retried_ok,
                });
            }
            Err(_) => stats.transport_errors += 1,
        }
    }
    stats
}

/// Runs the fixed arrival schedule against the workload: the caller
/// thread dispatches each request at its scheduled instant (or
/// immediately, if the schedule is behind — the deficit shows up in
/// the achieved rate); `clients` sender threads pick jobs up and
/// measure latency from the *scheduled* arrival, so queueing behind a
/// slow target is charged to the target.
fn drive_open(base: &str, ol: OpenLoop, secs: u64, clients: usize) -> Vec<ClientStats> {
    let urls = Arc::new(workload(base));
    let offsets = arrival_offsets_ns(ol.seed, ol.rate_rps, secs);
    let (tx, rx) = std::sync::mpsc::channel::<(Instant, usize, u64)>();
    // std mpsc is single-consumer; senders share the receiver.
    let rx = Arc::new(std::sync::Mutex::new(rx));
    let t0 = Instant::now();
    let senders: Vec<_> = (0..clients.max(1))
        .map(|_| {
            let (rx, urls) = (Arc::clone(&rx), Arc::clone(&urls));
            std::thread::spawn(move || {
                let policy = client::RetryPolicy::default();
                let mut stats = ClientStats { samples: Vec::new(), transport_errors: 0 };
                loop {
                    let job = rx.lock().unwrap().recv();
                    let Ok((scheduled, idx, seed)) = job else { break };
                    let (class, url) = &urls[idx];
                    match client::get_with_retry(url, &policy, seed) {
                        Ok(out) => {
                            let us = scheduled.elapsed().as_micros().min(u64::MAX as u128) as u64;
                            let ok = out.response.status == 200;
                            stats.samples.push(Sample {
                                class: *class,
                                latency_us: us,
                                ok,
                                retried_ok: ok && out.retried_ok,
                            });
                        }
                        Err(_) => stats.transport_errors += 1,
                    }
                }
                stats
            })
        })
        .collect();
    let n = urls.len();
    for (i, off) in offsets.iter().enumerate() {
        let scheduled = t0 + Duration::from_nanos(*off);
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        // Per-request retry-jitter seed, deterministic in (seed, i).
        let jitter = ol.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        if tx.send((scheduled, i % n, jitter)).is_err() {
            break;
        }
    }
    drop(tx);
    senders.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Polls the target's `connections.open` gauge until it reads zero or
/// a ~2 s budget runs out; returns the last reading. The gauge
/// excludes the connection carrying the `/metrics` request itself, so
/// a fully drained target reads exactly zero.
fn connections_after_drain(metrics_url: &str) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let open =
            metrics_doc(metrics_url).map(|d| counter(&d, &["connections", "open"])).unwrap_or(0);
        if open == 0 || Instant::now() >= deadline {
            return open;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn metrics_doc(metrics_url: &str) -> Option<Json> {
    Json::parse(&client::http_get(metrics_url).ok()?.body).ok()
}

fn counter(doc: &Json, path: &[&str]) -> u64 {
    let mut node = doc;
    for key in path {
        match node.get(key) {
            Some(next) => node = next,
            None => return 0,
        }
    }
    node.as_f64().unwrap_or(0.0) as u64
}

fn summarize(class: Class, label: &str, samples: &[Sample]) -> LatencySummary {
    let mut lat: Vec<u64> =
        samples.iter().filter(|s| s.class == class).map(|s| s.latency_us).collect();
    lat.sort_unstable();
    let errors = samples.iter().filter(|s| s.class == class && !s.ok).count() as u64;
    LatencySummary {
        label: label.to_string(),
        requests: lat.len() as u64,
        errors,
        p50_us: quantile(&lat, 0.50),
        p95_us: quantile(&lat, 0.95),
        p99_us: quantile(&lat, 0.99),
    }
}

/// Runs the load test against `url` and writes the result into the
/// current directory with a fresh metadata stamp (the standalone
/// `repro loadgen` entry point).
pub fn run(url: &str, secs: u64, clients: usize, open: Option<OpenLoop>) -> u64 {
    let meta = crate::artifact::Meta::collect(0, secs, clients, 0);
    run_into(&crate::artifact::Writer::cwd(&meta), url, secs, clients, open)
}

/// Runs the load test against `url` (a `hec-serve` instance or a
/// `hec-cluster` router) and writes `BENCH_serve.json` or
/// `BENCH_cluster.json` through `w` accordingly — closed-loop when
/// `open` is `None`, open-loop at the given offered rate otherwise.
/// Returns the number of error responses (HTTP or transport, after
/// retries) so callers can fail a run that did not serve cleanly.
pub fn run_into(
    w: &crate::artifact::Writer,
    url: &str,
    secs: u64,
    clients: usize,
    open: Option<OpenLoop>,
) -> u64 {
    let base = url.trim_end_matches('/').to_string();
    let metrics_url = format!("{base}/metrics");
    let before = metrics_doc(&metrics_url);
    if before.is_none() {
        eprintln!("warning: {metrics_url} unreachable before the run");
    }
    let is_cluster = before.as_ref().is_some_and(|d| d.get("cluster").is_some());
    let what = if is_cluster { "cluster" } else { "serve" };

    let t0 = Instant::now();
    let stats: Vec<ClientStats> = match open {
        Some(ol) => {
            eprintln!(
                "loadgen: open loop at {} rps (seed {:#x}, {clients} senders) against {base} \
                 ({what}) for {secs}s...",
                ol.rate_rps, ol.seed
            );
            drive_open(&base, ol, secs, clients)
        }
        None => {
            eprintln!(
                "loadgen: {clients} closed-loop clients against {base} ({what}) for {secs}s..."
            );
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..clients.max(1))
                .map(|c| {
                    let (base, stop) = (base.clone(), Arc::clone(&stop));
                    std::thread::spawn(move || drive(base, stop, c * 3))
                })
                .collect();
            std::thread::sleep(Duration::from_secs(secs.max(1)));
            stop.store(true, Ordering::Relaxed);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        }
    };
    let elapsed = t0.elapsed().as_secs_f64();

    let samples: Vec<Sample> = stats.iter().flat_map(|s| s.samples.iter().copied()).collect();
    let transport_errors: u64 = stats.iter().map(|s| s.transport_errors).sum();
    let http_errors = samples.iter().filter(|s| !s.ok).count() as u64;
    let errors = transport_errors + http_errors;
    let retried_ok = samples.iter().filter(|s| s.retried_ok).count() as u64;
    let requests = samples.len() as u64;
    let attempted = requests + transport_errors;
    let availability =
        if attempted > 0 { (requests - http_errors) as f64 / attempted as f64 } else { 0.0 };
    let throughput = requests as f64 / elapsed;

    let mut all: Vec<u64> = samples.iter().map(|s| s.latency_us).collect();
    all.sort_unstable();
    let mean_us =
        if all.is_empty() { 0.0 } else { all.iter().sum::<u64>() as f64 / all.len() as f64 };

    let after = metrics_doc(&metrics_url);
    let delta = |path: &[&str]| match (&before, &after) {
        (Some(b), Some(a)) => counter(a, path).saturating_sub(counter(b, path)),
        _ => 0,
    };

    let eval_sum = summarize(Class::Eval, "/eval", &samples);
    let sweep_sum = summarize(Class::Sweep, "/sweep", &samples);
    let title = format!("{what} load test");
    print!(
        "{}",
        latency_table(&title, &[eval_sum.clone(), sweep_sum.clone()], throughput).render()
    );

    let class_doc = |s: &LatencySummary| {
        Json::obj([
            ("requests", Json::Num(s.requests as f64)),
            ("errors", Json::Num(s.errors as f64)),
            ("p50_us", Json::Num(s.p50_us as f64)),
            ("p95_us", Json::Num(s.p95_us as f64)),
            ("p99_us", Json::Num(s.p99_us as f64)),
        ])
    };
    let connections_open_after_drain = connections_after_drain(&metrics_url);
    let mut fields = vec![
        ("bench", Json::Str(what.to_string())),
        ("url", Json::Str(base.clone())),
        ("secs", Json::Num(secs as f64)),
        ("clients", Json::Num(clients as f64)),
        ("open_loop", Json::Bool(open.is_some())),
    ];
    if let Some(ol) = open {
        fields.push(("rate_offered_rps", Json::Num(ol.rate_rps)));
        fields.push(("rate_achieved_rps", Json::Num(throughput)));
        fields.push(("seed", Json::Num(ol.seed as f64)));
    }
    fields.extend([
        ("requests", Json::Num(requests as f64)),
        ("errors", Json::Num(errors as f64)),
        ("transport_errors", Json::Num(transport_errors as f64)),
        ("retried_ok", Json::Num(retried_ok as f64)),
        ("throughput_rps", Json::Num(throughput)),
        ("connections_open_after_drain", Json::Num(connections_open_after_drain as f64)),
        (
            "latency_us",
            Json::obj([
                ("mean", Json::Num(mean_us)),
                ("p50", Json::Num(quantile(&all, 0.50) as f64)),
                ("p95", Json::Num(quantile(&all, 0.95) as f64)),
                ("p99", Json::Num(quantile(&all, 0.99) as f64)),
                ("max", Json::Num(all.last().copied().unwrap_or(0) as f64)),
            ]),
        ),
        ("by_class", Json::obj([("eval", class_doc(&eval_sum)), ("sweep", class_doc(&sweep_sum))])),
    ]);

    if is_cluster {
        let failovers = delta(&["failovers"]);
        let hedges = delta(&["hedges"]);
        // Elasticity deltas: how much the membership changed *during
        // this run*. All four are deterministic under a seeded plan, so
        // `repro diff` can hold them bit-for-bit.
        let membership_events = delta(&["membership", "events"]);
        let keys_moved = delta(&["membership", "handoff", "keys_moved"]);
        let warm_hits = delta(&["membership", "handoff", "warm_hits"]);
        let autoscale_up = delta(&["membership", "autoscale", "up"]);
        let autoscale_down = delta(&["membership", "autoscale", "down"]);
        let summary = ClusterSummary {
            replicas: after
                .as_ref()
                .map(|d| {
                    d.get("cluster")
                        .and_then(|c| c.get("replicas"))
                        .and_then(|r| match r {
                            Json::Arr(v) => Some(v.len() as u64),
                            _ => None,
                        })
                        .unwrap_or(0)
                })
                .unwrap_or(0),
            up: after.as_ref().map(|d| counter(d, &["cluster", "up"])).unwrap_or(0),
            failovers,
            retried_ok,
            availability,
            membership_events,
            keys_moved,
            autoscale: (autoscale_up, autoscale_down),
        };
        print!("{}", cluster_table("cluster availability", &summary).render());
        eprintln!(
            "cluster: {failovers} failovers, {hedges} hedges, {retried_ok} retried-then-ok; \
             {membership_events} membership events ({keys_moved} keys moved); \
             {errors} errors; availability {:.3}%",
            availability * 100.0
        );
        fields.push((
            "cluster",
            Json::obj([
                ("replicas", Json::Num(summary.replicas as f64)),
                ("up", Json::Num(summary.up as f64)),
                ("failovers", Json::Num(failovers as f64)),
                ("hedges", Json::Num(hedges as f64)),
                ("router_retries", Json::Num(delta(&["retries"]) as f64)),
                ("availability", Json::Num(availability)),
            ]),
        ));
        fields.extend([
            ("membership_events", Json::Num(membership_events as f64)),
            ("keys_moved", Json::Num(keys_moved as f64)),
            ("warm_hits", Json::Num(warm_hits as f64)),
            (
                "autoscale_decisions",
                Json::obj([
                    ("up", Json::Num(autoscale_up as f64)),
                    ("down", Json::Num(autoscale_down as f64)),
                ]),
            ),
        ]);
    } else {
        let (hits, misses, evictions) = (
            delta(&["cache", "hits"]),
            delta(&["cache", "misses"]),
            delta(&["cache", "evictions"]),
        );
        let hit_rate = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };
        eprintln!(
            "cache: {hits} hits / {misses} misses ({:.0}% hit rate); \
             {retried_ok} retried-then-ok; {errors} errors",
            hit_rate * 100.0
        );
        fields.push((
            "cache",
            Json::obj([
                ("hits", Json::Num(hits as f64)),
                ("misses", Json::Num(misses as f64)),
                ("evictions", Json::Num(evictions as f64)),
                ("hit_rate", Json::Num(hit_rate)),
            ]),
        ));
    }

    let out_name = format!("BENCH_{what}.json");
    if let Err(e) = w.write(&out_name, fields) {
        eprintln!("could not write {out_name}: {e}");
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let v = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(quantile(&v, 0.50), 50);
        assert_eq!(quantile(&v, 0.95), 100);
        assert_eq!(quantile(&v, 0.99), 100);
        assert_eq!(quantile(&v, 1.0), 100);
        assert_eq!(quantile(&v[..1], 0.5), 10);
        assert_eq!(quantile(&[], 0.5), 0);
    }

    #[test]
    fn eval_queries_parse_to_canonical_points() {
        // The canonical workload must stay inside the request schema —
        // a typo here would turn every load-test request into a 400 and
        // break the CANON_eval.json artifact.
        for q in eval_queries() {
            hec_serve::request::Point::from_query(&q).unwrap_or_else(|e| panic!("{q}: {e:?}"));
        }
    }

    #[test]
    fn workload_mix_covers_all_apps_and_both_classes() {
        let urls = workload("http://h:1");
        assert!(urls.iter().any(|(c, _)| *c == Class::Sweep));
        for app in ["gtc", "lbmhd", "paratec", "fvcam"] {
            assert!(urls.iter().any(|(_, u)| u.contains(&format!("app={app}"))), "{app}");
        }
        // The mix must repeat points (cache-friendliness is the point).
        assert!(urls.len() < 64);
    }

    #[test]
    fn arrival_schedule_is_deterministic_in_seed_and_rate() {
        let a = arrival_offsets_ns(7, 500.0, 3);
        let b = arrival_offsets_ns(7, 500.0, 3);
        assert_eq!(a, b, "same seed + rate must give an identical schedule");
        assert_ne!(a, arrival_offsets_ns(8, 500.0, 3), "seed must move the schedule");
        assert_ne!(a, arrival_offsets_ns(7, 400.0, 3), "rate must move the schedule");
        // Poisson sanity: ~rate*secs arrivals, strictly increasing,
        // inside the horizon.
        assert!((1200..=1800).contains(&a.len()), "{} arrivals at 500 rps x 3 s", a.len());
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(*a.last().unwrap() < 3_000_000_000);
        let mean_gap = *a.last().unwrap() as f64 / a.len() as f64;
        assert!(
            (1_500_000.0..2_700_000.0).contains(&mean_gap),
            "mean gap {mean_gap} ns should sit near 2 ms"
        );
    }

    #[test]
    fn open_loop_latency_is_measured_from_the_scheduled_arrival() {
        // A single-connection mock server that injects a fixed delay
        // per request. With one sender, completions follow the
        // deterministic recurrence c_i = max(a_i, c_{i-1}) + s over the
        // (known, seeded) arrival schedule, so the expected quantiles
        // are hand-computable. A closed-loop run against the same
        // server would report ~s for every percentile — coordinated
        // omission; the open-loop numbers must show the queueing ramp.
        const DELAY: Duration = Duration::from_millis(20);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            use std::io::{Read, Write};
            for conn in listener.incoming() {
                let Ok(mut s) = conn else { break };
                let mut buf = [0u8; 4096];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {}
                    }
                    std::thread::sleep(DELAY);
                    let _ = s.write_all(
                        b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\
                          Connection: keep-alive\r\n\r\nok",
                    );
                }
            }
        });

        let ol = OpenLoop { rate_rps: 100.0, seed: 11 };
        let stats = drive_open(&format!("http://{addr}"), ol, 1, 1);
        drop(server);

        let offsets = arrival_offsets_ns(ol.seed, ol.rate_rps, 1);
        let mut expected: Vec<u64> = Vec::new();
        let mut c = 0u64;
        for &a in &offsets {
            c = c.max(a) + DELAY.as_nanos() as u64;
            expected.push((c - a) / 1_000);
        }
        expected.sort_unstable();

        let mut got: Vec<u64> =
            stats.iter().flat_map(|s| s.samples.iter()).map(|s| s.latency_us).collect();
        got.sort_unstable();
        assert_eq!(got.len(), offsets.len(), "every scheduled request must complete");
        assert_eq!(stats.iter().map(|s| s.transport_errors).sum::<u64>(), 0);

        for q in [0.50, 0.95, 0.99] {
            let (want, have) = (quantile(&expected, q) as f64, quantile(&got, q) as f64);
            assert!(
                have >= want * 0.6 && have <= want * 1.8 + 20_000.0,
                "p{:.0}: expected ~{want} us, measured {have} us",
                q * 100.0
            );
        }
        // The omission-free signal: the tail must dwarf the 20 ms
        // service time (a closed-loop run would report ~20 ms flat).
        assert!(
            quantile(&got, 0.99) > 5 * DELAY.as_micros() as u64,
            "p99 {} us should show the queueing ramp",
            quantile(&got, 0.99)
        );
    }

    #[test]
    fn counters_walk_nested_metrics_documents() {
        let doc = Json::parse(r#"{"failovers": 3, "cluster": {"up": 2}, "cache": {"hits": 10}}"#)
            .unwrap();
        assert_eq!(counter(&doc, &["failovers"]), 3);
        assert_eq!(counter(&doc, &["cluster", "up"]), 2);
        assert_eq!(counter(&doc, &["cache", "hits"]), 10);
        assert_eq!(counter(&doc, &["cache", "nope"]), 0);
        assert_eq!(counter(&doc, &["missing"]), 0);
    }
}
