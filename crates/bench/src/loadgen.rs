//! `repro loadgen` — closed-loop load generator for the serve subsystem.
//!
//! Spawns N client threads, each issuing one request at a time
//! (closed-loop: think time zero, concurrency = N) round-robin over a
//! repeated-request workload: single points for all four apps across
//! several platforms, plus a sweep per app. Because the workload
//! repeats, a correctly caching server converges to a high hit rate —
//! the emitted `BENCH_serve.json` records it alongside throughput and
//! exact (not bucketed) latency quantiles, so the serve path joins the
//! benchmark trajectory next to `BENCH_kernels.json`/`BENCH_apps.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hec_core::json::Json;
use hec_serve::client;
use report::latency::{latency_table, LatencySummary};

/// Default load duration, seconds.
pub const DEFAULT_SECS: u64 = 5;
/// Default closed-loop client count.
pub const DEFAULT_CLIENTS: usize = 4;

/// One request class in the generated mix.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Eval,
    Sweep,
}

/// The repeated-request mix: every app, several platforms, table-sized
/// concurrencies, plus one sweep per app.
fn workload(base: &str) -> Vec<(Class, String)> {
    let mut urls = Vec::new();
    for (app, extra) in [("gtc", ""), ("lbmhd", "&n=512"), ("paratec", ""), ("fvcam", "&pz=4")] {
        for platform in ["power3", "x1msp", "es", "sx8"] {
            urls.push((
                Class::Eval,
                format!("{base}/eval?app={app}&platform={platform}&procs=256{extra}"),
            ));
        }
        urls.push((Class::Sweep, format!("{base}/sweep?app={app}")));
    }
    urls.push((Class::Eval, format!("{base}/eval?app=gtc&platform=4ssp&procs=512")));
    urls.push((Class::Eval, format!("{base}/eval?app=lbmhd&platform=opteron&procs=1024&n=1024")));
    urls
}

struct ClientStats {
    /// (class, latency_us, ok) per completed request.
    samples: Vec<(Class, u64, bool)>,
    transport_errors: u64,
}

fn drive(base: String, stop: Arc<AtomicBool>, offset: usize) -> ClientStats {
    let urls = workload(&base);
    let mut stats = ClientStats { samples: Vec::new(), transport_errors: 0 };
    let mut i = offset;
    while !stop.load(Ordering::Relaxed) {
        let (class, url) = &urls[i % urls.len()];
        i += 1;
        let t0 = Instant::now();
        match client::http_get(url) {
            Ok(resp) => {
                let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                stats.samples.push((*class, us, resp.status == 200));
            }
            Err(_) => stats.transport_errors += 1,
        }
    }
    stats
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn cache_counters(metrics_url: &str) -> Option<(u64, u64)> {
    let doc = Json::parse(&client::http_get(metrics_url).ok()?.body).ok()?;
    let cache = doc.get("cache")?;
    Some((cache.get("hits")?.as_f64()? as u64, cache.get("misses")?.as_f64()? as u64))
}

fn summarize(class: Class, label: &str, samples: &[(Class, u64, bool)]) -> LatencySummary {
    let mut lat: Vec<u64> =
        samples.iter().filter(|(c, _, _)| *c == class).map(|&(_, us, _)| us).collect();
    lat.sort_unstable();
    let errors = samples.iter().filter(|(c, _, ok)| *c == class && !ok).count() as u64;
    LatencySummary {
        label: label.to_string(),
        requests: lat.len() as u64,
        errors,
        p50_us: quantile(&lat, 0.50),
        p95_us: quantile(&lat, 0.95),
        p99_us: quantile(&lat, 0.99),
    }
}

/// Runs the load test against `url` (e.g. `http://127.0.0.1:8471`) and
/// writes `BENCH_serve.json`. Returns the number of error responses
/// (HTTP or transport) so the CLI can exit nonzero on a failing run.
pub fn run(url: &str, secs: u64, clients: usize) -> u64 {
    let base = url.trim_end_matches('/').to_string();
    let metrics_url = format!("{base}/metrics");
    let before = cache_counters(&metrics_url);
    if before.is_none() {
        eprintln!("warning: {metrics_url} unreachable before the run");
    }

    eprintln!("loadgen: {clients} closed-loop clients against {base} for {secs}s...");
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients.max(1))
        .map(|c| {
            let (base, stop) = (base.clone(), Arc::clone(&stop));
            std::thread::spawn(move || drive(base, stop, c * 3))
        })
        .collect();
    std::thread::sleep(Duration::from_secs(secs.max(1)));
    stop.store(true, Ordering::Relaxed);
    let stats: Vec<ClientStats> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let elapsed = t0.elapsed().as_secs_f64();

    let samples: Vec<(Class, u64, bool)> =
        stats.iter().flat_map(|s| s.samples.iter().copied()).collect();
    let transport_errors: u64 = stats.iter().map(|s| s.transport_errors).sum();
    let http_errors = samples.iter().filter(|(_, _, ok)| !ok).count() as u64;
    let errors = transport_errors + http_errors;
    let requests = samples.len() as u64;
    let throughput = requests as f64 / elapsed;

    let mut all: Vec<u64> = samples.iter().map(|&(_, us, _)| us).collect();
    all.sort_unstable();
    let mean_us =
        if all.is_empty() { 0.0 } else { all.iter().sum::<u64>() as f64 / all.len() as f64 };

    let after = cache_counters(&metrics_url);
    let (hits, misses) = match (before, after) {
        (Some((h0, m0)), Some((h1, m1))) => (h1.saturating_sub(h0), m1.saturating_sub(m0)),
        _ => (0, 0),
    };
    let hit_rate = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };

    let eval_sum = summarize(Class::Eval, "/eval", &samples);
    let sweep_sum = summarize(Class::Sweep, "/sweep", &samples);
    print!(
        "{}",
        latency_table("serve load test", &[eval_sum.clone(), sweep_sum.clone()], throughput)
            .render()
    );
    eprintln!(
        "cache: {hits} hits / {misses} misses ({:.0}% hit rate); {errors} errors",
        hit_rate * 100.0
    );

    let class_doc = |s: &LatencySummary| {
        Json::obj([
            ("requests", Json::Num(s.requests as f64)),
            ("errors", Json::Num(s.errors as f64)),
            ("p50_us", Json::Num(s.p50_us as f64)),
            ("p95_us", Json::Num(s.p95_us as f64)),
            ("p99_us", Json::Num(s.p99_us as f64)),
        ])
    };
    let doc = Json::obj([
        ("bench", Json::Str("serve".to_string())),
        ("url", Json::Str(base.clone())),
        ("secs", Json::Num(secs as f64)),
        ("clients", Json::Num(clients as f64)),
        ("requests", Json::Num(requests as f64)),
        ("errors", Json::Num(errors as f64)),
        ("transport_errors", Json::Num(transport_errors as f64)),
        ("throughput_rps", Json::Num(throughput)),
        (
            "latency_us",
            Json::obj([
                ("mean", Json::Num(mean_us)),
                ("p50", Json::Num(quantile(&all, 0.50) as f64)),
                ("p95", Json::Num(quantile(&all, 0.95) as f64)),
                ("p99", Json::Num(quantile(&all, 0.99) as f64)),
                ("max", Json::Num(all.last().copied().unwrap_or(0) as f64)),
            ]),
        ),
        ("by_class", Json::obj([("eval", class_doc(&eval_sum)), ("sweep", class_doc(&sweep_sum))])),
        (
            "cache",
            Json::obj([
                ("hits", Json::Num(hits as f64)),
                ("misses", Json::Num(misses as f64)),
                ("hit_rate", Json::Num(hit_rate)),
            ]),
        ),
    ]);
    match std::fs::write("BENCH_serve.json", doc.emit_pretty()) {
        Ok(()) => eprintln!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let v = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(quantile(&v, 0.50), 50);
        assert_eq!(quantile(&v, 0.95), 100);
        assert_eq!(quantile(&v, 0.99), 100);
        assert_eq!(quantile(&v, 1.0), 100);
        assert_eq!(quantile(&v[..1], 0.5), 10);
        assert_eq!(quantile(&[], 0.5), 0);
    }

    #[test]
    fn workload_mix_covers_all_apps_and_both_classes() {
        let urls = workload("http://h:1");
        assert!(urls.iter().any(|(c, _)| *c == Class::Sweep));
        for app in ["gtc", "lbmhd", "paratec", "fvcam"] {
            assert!(urls.iter().any(|(_, u)| u.contains(&format!("app={app}"))), "{app}");
        }
        // The mix must repeat points (cache-friendliness is the point).
        assert!(urls.len() < 64);
    }
}
