//! Dependency-free benchmark harness (replaces the former criterion
//! benches).
//!
//! Each case runs `WARMUP` untimed calls, then auto-scales the number of
//! calls batched into one timed sample until a sample covers at least
//! [`MIN_SAMPLE_NS`] — sub-window measurements are dominated by timer
//! resolution and scheduling noise — and finally takes `samples` timed
//! samples. We report the median and minimum per-call wall time plus a
//! derived throughput; medians are robust to the occasional scheduler
//! hiccup, minima estimate the noise floor. Results are printed as a
//! table and written to `BENCH_kernels.json` / `BENCH_apps.json` (with
//! the true per-sample call count) so successive runs can be diffed.
//!
//! Invoke as `repro harness [samples]` (default 11 timed samples).

use std::time::Instant;

use hec_core::json::{Json, ToJson};
use hec_core::pool::Threads;

/// Untimed calls before measurement starts.
pub const WARMUP: usize = 3;

/// Default number of timed samples.
pub const DEFAULT_ITERS: usize = 11;

/// Minimum wall time one timed sample must cover, in nanoseconds.
/// Calls are batched (`Sample::iters` per sample) until this window is
/// reached, so nanosecond-scale kernels still produce stable statistics.
pub const MIN_SAMPLE_NS: u64 = 200_000;

/// Cap on the per-sample batch size the auto-scaler may choose.
pub const MAX_BATCH: usize = 1 << 20;

/// One benchmark measurement.
#[derive(Clone, Debug)]
pub struct Sample {
    /// `group/name` identifier, e.g. `"stream/triad_65536"`.
    pub name: String,
    /// Calls batched into each timed sample (auto-scaled so one sample
    /// covers at least [`MIN_SAMPLE_NS`]).
    pub iters: usize,
    /// Timed samples contributing to the statistics.
    pub samples: usize,
    /// Median wall time per call, in nanoseconds.
    pub median_ns: f64,
    /// Minimum wall time per call, in nanoseconds.
    pub min_ns: f64,
    /// Work items (elements, flops, bytes…) per call, for throughput.
    pub units: f64,
    /// What `units` counts, e.g. `"bytes"` or `"flops"`.
    pub unit_label: &'static str,
    /// Shared-memory workers used, for scaling cases (`None` = untracked).
    pub threads: Option<usize>,
    /// Speedup over the 1-worker run of the same case.
    pub speedup: Option<f64>,
    /// `speedup / threads`: parallel efficiency in `[0, 1]` (ideally).
    pub efficiency: Option<f64>,
}

impl Sample {
    /// Units per second at the median time.
    pub fn throughput(&self) -> f64 {
        if self.median_ns > 0.0 {
            self.units * 1e9 / self.median_ns
        } else {
            f64::INFINITY
        }
    }

    /// Measured Gflop/s at the median time — only for cases whose units
    /// are flops (flops/ns ≡ Gflop/s). The paper reports every kernel this
    /// way, so it is a first-class field rather than a reader-side derivation.
    pub fn gflops(&self) -> Option<f64> {
        (self.unit_label == "flop").then(|| {
            if self.median_ns > 0.0 {
                self.units / self.median_ns
            } else {
                f64::INFINITY
            }
        })
    }
}

impl ToJson for Sample {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::Str(self.name.clone())),
            ("iters", Json::Num(self.iters as f64)),
            ("samples", Json::Num(self.samples as f64)),
            ("median_ns", Json::Num(self.median_ns)),
            ("min_ns", Json::Num(self.min_ns)),
            ("units", Json::Num(self.units)),
            ("unit_label", Json::Str(self.unit_label.to_string())),
            ("throughput_per_sec", Json::Num(self.throughput())),
        ];
        if let Some(g) = self.gflops() {
            fields.push(("gflops", Json::Num(g)));
        }
        if let Some(t) = self.threads {
            fields.push(("threads", Json::Num(t as f64)));
        }
        if let Some(s) = self.speedup {
            fields.push(("speedup", Json::Num(s)));
        }
        if let Some(e) = self.efficiency {
            fields.push(("efficiency", Json::Num(e)));
        }
        Json::obj(fields)
    }
}

/// Warms `f` up, auto-scales the per-sample batch size to the
/// measurement window, then takes `samples` timed samples and folds the
/// per-call statistics into a [`Sample`].
pub fn measure<F: FnMut()>(
    name: &str,
    samples: usize,
    units: f64,
    unit_label: &'static str,
    mut f: F,
) -> Sample {
    for _ in 0..WARMUP {
        f();
    }
    // Auto-scale: grow the batch until one sample covers the minimum
    // window. The growth factor aims directly at the window from the
    // last measurement, so calibration costs at most a few batches.
    let mut batch: usize = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        let ns = t0.elapsed().as_nanos() as u64;
        if ns >= MIN_SAMPLE_NS || batch >= MAX_BATCH {
            break;
        }
        let grow = (MIN_SAMPLE_NS as f64 / ns.max(1) as f64).ceil() as usize;
        batch = batch.saturating_mul(grow.max(2)).min(MAX_BATCH);
    }
    let samples = samples.max(1);
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        times.push(t0.elapsed().as_nanos() as f64 / batch as f64);
    }
    times.sort_by(f64::total_cmp);
    let median = if times.len() % 2 == 1 {
        times[times.len() / 2]
    } else {
        (times[times.len() / 2 - 1] + times[times.len() / 2]) / 2.0
    };
    Sample {
        name: name.to_string(),
        iters: batch,
        samples,
        median_ns: median,
        min_ns: times[0],
        units,
        unit_label,
        threads: None,
        speedup: None,
        efficiency: None,
    }
}

/// Worker count for the threaded leg of a scaling pair: the environment's
/// resolution (`HEC_THREADS` or available parallelism), but never 1 — on a
/// single-core box we still exercise the parallel code path with 2 workers
/// so the `threads`/`speedup` fields are always populated.
pub fn scaling_workers() -> usize {
    Threads::from_env().workers().max(2)
}

/// Measures `f` once with a forced-serial [`Threads`] handle and once with
/// [`scaling_workers`] workers, returning the `name/t1` and `name/tN` pair
/// with `threads`, `speedup`, and `efficiency` filled in.
pub fn measure_scaling<F: FnMut(&Threads)>(
    name: &str,
    samples: usize,
    units: f64,
    unit_label: &'static str,
    mut f: F,
) -> Vec<Sample> {
    let serial = Threads::serial();
    let nw = scaling_workers();
    let par = Threads::new(nw);
    let mut s1 = measure(&format!("{name}/t1"), samples, units, unit_label, || f(&serial));
    s1.threads = Some(1);
    s1.speedup = Some(1.0);
    s1.efficiency = Some(1.0);
    let mut sn = measure(&format!("{name}/t{nw}"), samples, units, unit_label, || f(&par));
    sn.threads = Some(nw);
    let speedup = if sn.median_ns > 0.0 { s1.median_ns / sn.median_ns } else { f64::INFINITY };
    sn.speedup = Some(speedup);
    sn.efficiency = Some(speedup / nw as f64);
    vec![s1, sn]
}

fn humanize_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn humanize_rate(per_sec: f64, label: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{label}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{label}/s", per_sec / 1e6)
    } else {
        format!("{:.2} k{label}/s", per_sec / 1e3)
    }
}

fn print_samples(title: &str, samples: &[Sample]) {
    println!("== {title} ==");
    let width = samples.iter().map(|s| s.name.len()).max().unwrap_or(0).max(4);
    for s in samples {
        let scaling = match (s.speedup, s.efficiency) {
            (Some(sp), Some(eff)) => format!("  speedup {sp:>5.2}x  eff {:>3.0}%", eff * 100.0),
            _ => String::new(),
        };
        println!(
            "  {:<width$}  median {:>10}  min {:>10}  {}{scaling}",
            s.name,
            humanize_time(s.median_ns),
            humanize_time(s.min_ns),
            humanize_rate(s.throughput(), s.unit_label),
        );
    }
}

fn write_json(w: &crate::artifact::Writer, name: &str, samples: &[Sample]) {
    let payload = [
        ("harness", Json::Str("repro harness".into())),
        ("warmup", Json::Num(WARMUP as f64)),
        ("min_sample_ns", Json::Num(MIN_SAMPLE_NS as f64)),
        ("samples", Json::Arr(samples.iter().map(|s| s.to_json()).collect())),
    ];
    if let Err(e) = w.write(name, payload) {
        eprintln!("warning: could not write {name}: {e}");
    }
}

/// Microkernel cases (STREAM triad, FFT, GEMM) — the former
/// `kernels_bench`.
pub fn kernel_samples(iters: usize) -> Vec<Sample> {
    use kernels::blas::{par_dgemm, par_zgemm, Trans};
    use kernels::fft::{Direction, FftPlan};
    use kernels::stream::triad_with;
    use kernels::Complex64;

    let mut out = Vec::new();

    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let b = vec![1.0f64; n];
        let c = vec![2.0f64; n];
        let mut a = vec![0.0f64; n];
        out.extend(measure_scaling(
            &format!("stream/triad_{n}"),
            iters,
            (n * 24) as f64,
            "B",
            |t| triad_with(t, std::hint::black_box(&mut a), &b, &c, 3.0),
        ));
    }

    // Power of two (radix-2) and the FVCAM longitude length (Bluestein).
    // Single lines stay serial (one transform has no parallel axis).
    for &n in &[256usize, 576, 1024] {
        let plan = FftPlan::new(n);
        let mut data: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64).sin(), 0.1)).collect();
        out.push(measure(&format!("fft/forward_{n}"), iters, n as f64, "elem", || {
            plan.execute(std::hint::black_box(&mut data), Direction::Forward)
        }));
    }

    // A batch of lines threads across the batch axis.
    {
        let (n, count) = (256usize, 64usize);
        let plan = FftPlan::new(n);
        let mut data: Vec<Complex64> =
            (0..n * count).map(|i| Complex64::new((i as f64).sin(), 0.1)).collect();
        out.extend(measure_scaling(
            &format!("fft/batch_{n}x{count}"),
            iters,
            (n * count) as f64,
            "elem",
            |t| {
                plan.execute_batch_with(
                    t,
                    std::hint::black_box(&mut data),
                    count,
                    Direction::Forward,
                )
            },
        ));
    }

    for &n in &[64usize, 128] {
        let a = vec![1.5f64; n * n];
        let b = vec![0.5f64; n * n];
        let mut o = vec![0.0f64; n * n];
        out.extend(measure_scaling(
            &format!("gemm/dgemm_{n}"),
            iters,
            (2 * n * n * n) as f64,
            "flop",
            |t| par_dgemm(t, n, n, n, 1.0, &a, &b, 0.0, std::hint::black_box(&mut o)),
        ));
        let az = vec![Complex64::new(1.0, 0.5); n * n];
        let bz = vec![Complex64::new(0.5, -0.25); n * n];
        let mut oz = vec![Complex64::ZERO; n * n];
        out.extend(measure_scaling(
            &format!("gemm/zgemm_{n}"),
            iters,
            (8 * n * n * n) as f64,
            "flop",
            |t| {
                par_zgemm(
                    t,
                    Trans::None,
                    n,
                    n,
                    n,
                    Complex64::ONE,
                    &az,
                    &bz,
                    Complex64::ZERO,
                    std::hint::black_box(&mut oz),
                )
            },
        ));
    }

    out
}

/// Application hot-loop cases — the former `apps_bench`.
pub fn app_samples(iters: usize) -> Vec<Sample> {
    let mut out = Vec::new();

    {
        use lbmhd::collide::{step_with, FLOPS_PER_POINT};
        use lbmhd::state::{set_equilibrium, Block, Moments};
        let n = 24;
        let mut src = Block::zeros(n, n, n);
        set_equilibrium(&mut src, |i, j, k| Moments {
            rho: 1.0 + 0.01 * ((i + j + k) as f64).sin(),
            mom: [0.01, -0.005, 0.002],
            b: [0.02, 0.01, -0.01],
        });
        let mut dst = Block::zeros(n, n, n);
        out.extend(measure_scaling(
            "lbmhd/collide_stream_24cubed",
            iters,
            (n * n * n) as f64 * FLOPS_PER_POINT,
            "flop",
            |t| {
                step_with(t, std::hint::black_box(&src), &mut dst, 1.6, 1.2);
            },
        ));
    }

    {
        use gtc::deposit::deposit_threaded;
        use gtc::geometry::PoloidalGrid;
        use gtc::particles::load_uniform;
        use gtc::push::{gather_threaded, push_threaded};
        let grid = PoloidalGrid { mpsi: 32, mtheta: 64, r_inner: 0.1, r_outer: 0.9 };
        let parts = load_uniform(50_000, 0.15, 0.85, 0.0, 1.0, 7);
        let mut charge: Vec<Vec<f64>> = (0..=2).map(|_| vec![0.0; grid.len()]).collect();
        let e: Vec<Vec<f64>> = (0..=2).map(|_| vec![0.1; grid.len()]).collect();
        out.extend(measure_scaling(
            "gtc/deposit_50k",
            iters,
            parts.len() as f64,
            "particle",
            |t| {
                for plane in charge.iter_mut() {
                    plane.iter_mut().for_each(|v| *v = 0.0);
                }
                deposit_threaded(&grid, std::hint::black_box(&parts), &mut charge, 0.0, 0.5, t);
            },
        ));
        let mut p = parts.clone();
        out.extend(measure_scaling(
            "gtc/gather_push_50k",
            iters,
            parts.len() as f64,
            "particle",
            |t| {
                let f = gather_threaded(&grid, &p, &e, &e, 0.0, 0.5, t);
                push_threaded(&grid, std::hint::black_box(&mut p), &f, 1e-4, t);
            },
        ));
    }

    {
        use fvcam::advect::{advect_level_with, FLOPS_PER_CELL};
        use fvcam::grid::{LevelBlock, SphereGrid};
        use fvcam::polar::PolarFilter;
        let grid = SphereGrid::new(144, 91, 1);
        let mut q = LevelBlock::zeros(144, 91, 2);
        let mut cx = LevelBlock::zeros(144, 91, 2);
        let cy = LevelBlock::zeros(144, 91, 2);
        for j in 0..91 {
            for i in 0..144 {
                *q.get_mut(j as isize, i) = ((i + j) as f64 * 0.1).sin();
                *cx.get_mut(j as isize, i) = 0.3;
            }
        }
        out.extend(measure_scaling(
            "fvcam/advect_level_144x91",
            iters,
            144.0 * 91.0 * FLOPS_PER_CELL,
            "flop",
            |t| {
                advect_level_with(t, &grid, std::hint::black_box(&mut q), &cx, &cy, 0);
            },
        ));
        let mut filter = PolarFilter::new(144);
        out.push(measure("fvcam/polar_filter_144x91", iters, 144.0 * 91.0, "cell", || {
            filter.apply(&grid, std::hint::black_box(&mut q), 0);
        }));
    }

    {
        use kernels::fft::Direction;
        use kernels::fft3d::{Fft3Plan, Grid3};
        use kernels::Complex64;
        let mut grid = Grid3::zeros(32, 32, 32);
        for (i, v) in grid.data.iter_mut().enumerate() {
            *v = Complex64::new((i as f64 * 0.01).sin(), 0.0);
        }
        let plan = Fft3Plan::new(32, 32, 32);
        out.extend(measure_scaling(
            "paratec/fft3_32cubed",
            iters,
            (32 * 32 * 32) as f64,
            "elem",
            |t| plan.execute_with(t, std::hint::black_box(&mut grid), Direction::Forward),
        ));
    }

    out
}

/// Full table-regeneration timings — the former `tables_bench`. These are
/// slow (entire pipelines), so they run fewer iterations.
pub fn table_samples(iters: usize) -> Vec<Sample> {
    use crate::experiments;
    let iters = iters.min(5);
    let mut out = vec![
        measure("tables/table3_fvcam", iters, 1.0, "table", || {
            std::hint::black_box(experiments::fvcam_rows());
        }),
        measure("tables/table4_gtc", iters, 1.0, "table", || {
            std::hint::black_box(experiments::gtc_rows());
        }),
        measure("tables/table5_lbmhd", iters, 1.0, "table", || {
            std::hint::black_box(experiments::lbmhd_rows());
        }),
        measure("tables/table6_paratec", iters, 1.0, "table", || {
            std::hint::black_box(experiments::paratec_rows());
        }),
        measure("tables/fig8_summary", iters, 1.0, "table", || {
            std::hint::black_box(experiments::fig8_apps());
        }),
    ];
    // Reduced mesh: the full D-mesh capture is exercised by `repro fig2`.
    out.push(measure("fig2/fvcam_traffic_capture_1d", iters, 1.0, "capture", || {
        std::hint::black_box(experiments::fig2_traffic(1, 16));
    }));
    out.push(measure("fig2/fvcam_traffic_capture_2d", iters, 1.0, "capture", || {
        std::hint::black_box(experiments::fig2_traffic(4, 16));
    }));
    out
}

/// Runs the whole suite and writes `BENCH_kernels.json` / `BENCH_apps.json`
/// in the current directory with a fresh metadata stamp (the standalone
/// `repro harness` entry point).
pub fn run(iters: usize) {
    let meta = crate::artifact::Meta::collect(iters, 0, 0, 0);
    run_into(&crate::artifact::Writer::cwd(&meta), iters);
}

/// Runs the whole suite and writes `BENCH_kernels.json` / `BENCH_apps.json`
/// through `w`.
pub fn run_into(w: &crate::artifact::Writer, iters: usize) {
    println!(
        "harness: {WARMUP} warmup calls + {iters} timed samples per case \
         (>= {} µs per sample, calls auto-batched)\n",
        MIN_SAMPLE_NS / 1000
    );

    let kernels = kernel_samples(iters);
    print_samples("microkernels", &kernels);
    println!();

    let mut apps = app_samples(iters);
    print_samples("application kernels", &apps);
    println!();

    let tables = table_samples(iters);
    print_samples("table regeneration", &tables);
    println!();

    // Paper-style Gflop/s summary of every flop-counted case.
    let gflops_rows: Vec<report::latency::GflopsRow> = kernels
        .iter()
        .chain(apps.iter())
        .filter_map(|s| {
            s.gflops().map(|g| report::latency::GflopsRow {
                label: s.name.clone(),
                threads: s.threads.map(|t| t as u64),
                gflops: g,
                speedup: s.speedup,
                efficiency: s.efficiency,
            })
        })
        .collect();
    if !gflops_rows.is_empty() {
        println!(
            "{}",
            report::latency::gflops_table("measured Gflop/s (median)", &gflops_rows).render()
        );
        println!();
    }

    write_json(w, "BENCH_kernels.json", &kernels);
    apps.extend(tables);
    write_json(w, "BENCH_apps.json", &apps);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_ordered_statistics() {
        let mut x = 0u64;
        let s = measure("t", 7, 10.0, "op", || {
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
        });
        std::hint::black_box(x);
        assert_eq!(s.samples, 7);
        assert!(s.iters >= 1);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.min_ns > 0.0);
        assert!(s.throughput() > 0.0);
    }

    #[test]
    fn fast_calls_are_batched_to_the_measurement_window() {
        // A ~microsecond body must be batched so each timed sample covers
        // at least MIN_SAMPLE_NS of wall time.
        let mut x = 1u64;
        let s = measure("t/fast", 3, 1.0, "op", || {
            for _ in 0..100 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(x);
        });
        assert!(s.iters > 1, "fast call must be batched, got {} calls/sample", s.iters);
        let sample_ns = s.median_ns * s.iters as f64;
        assert!(
            sample_ns >= MIN_SAMPLE_NS as f64 * 0.5,
            "median sample spans {sample_ns} ns < window"
        );
    }

    #[test]
    fn slow_calls_are_not_batched() {
        let s = measure("t/slow", 3, 1.0, "op", || {
            std::thread::sleep(std::time::Duration::from_micros(300));
        });
        assert_eq!(s.iters, 1, "a call beyond the window needs no batching");
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn sample_json_has_all_fields() {
        let s = Sample {
            name: "g/case".into(),
            iters: 64,
            samples: 5,
            median_ns: 200.0,
            min_ns: 100.0,
            units: 10.0,
            unit_label: "elem",
            threads: Some(4),
            speedup: Some(3.2),
            efficiency: Some(0.8),
        };
        let j = s.to_json();
        assert_eq!(j.str_field("name").unwrap(), "g/case");
        assert_eq!(j.num_field("iters").unwrap(), 64.0);
        assert_eq!(j.num_field("samples").unwrap(), 5.0);
        assert_eq!(j.num_field("median_ns").unwrap(), 200.0);
        assert_eq!(j.num_field("throughput_per_sec").unwrap(), 10.0 * 1e9 / 200.0);
        assert_eq!(j.num_field("threads").unwrap(), 4.0);
        assert_eq!(j.num_field("speedup").unwrap(), 3.2);
        assert_eq!(j.num_field("efficiency").unwrap(), 0.8);
        // Non-flop cases carry no gflops field.
        assert!(j.num_field("gflops").is_err());
    }

    #[test]
    fn flop_cases_report_gflops_first_class() {
        let s = Sample {
            name: "gemm/dgemm_64".into(),
            iters: 8,
            samples: 3,
            median_ns: 1000.0,
            min_ns: 900.0,
            units: 2048.0,
            unit_label: "flop",
            threads: None,
            speedup: None,
            efficiency: None,
        };
        // 2048 flops in 1000 ns = 2.048 Gflop/s.
        assert_eq!(s.gflops(), Some(2.048));
        assert_eq!(s.to_json().num_field("gflops").unwrap(), 2.048);
    }

    #[test]
    fn kernel_suite_runs_quickly_with_one_iteration() {
        // 3 triad scaling pairs + 3 serial fft lines + 1 fft batch pair +
        // 2 dgemm pairs + 2 zgemm pairs = 6 + 3 + 2 + 8 = 19 samples.
        let samples = kernel_samples(1);
        assert_eq!(samples.len(), 19);
        for s in &samples {
            assert!(s.median_ns >= 0.0, "{}", s.name);
        }
        let scaled: Vec<_> = samples.iter().filter(|s| s.threads.is_some()).collect();
        assert_eq!(scaled.len(), 16);
        for s in scaled {
            assert!(s.speedup.unwrap() > 0.0, "{}", s.name);
            assert!(s.efficiency.unwrap() > 0.0, "{}", s.name);
        }
    }

    #[test]
    fn measure_scaling_emits_a_serial_and_parallel_pair() {
        let mut acc = vec![0.0f64; 4096];
        let pair = measure_scaling("t/case", 3, 1.0, "op", |t| {
            let res = t.par_map(&(0..acc.len()).collect::<Vec<_>>(), |&i| (i as f64).sqrt());
            for (a, r) in acc.iter_mut().zip(res) {
                *a += r;
            }
        });
        std::hint::black_box(&acc);
        assert_eq!(pair.len(), 2);
        assert_eq!(pair[0].threads, Some(1));
        assert!(pair[0].name.ends_with("/t1"));
        let nw = pair[1].threads.unwrap();
        assert!(nw >= 2, "parallel leg must use at least 2 workers");
        assert!(pair[1].name.ends_with(&format!("/t{nw}")));
        assert_eq!(pair[1].efficiency.unwrap(), pair[1].speedup.unwrap() / nw as f64);
    }
}
