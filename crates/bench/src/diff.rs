//! `repro diff` — the cross-commit regression gate.
//!
//! Compares two artifact directories written by `repro all` and fails
//! with a readable report when they disagree. Fields fall into three
//! classes:
//!
//! * **exact** — phase counters, table cell values, canonical response
//!   bytes, the artifact schema itself. These are bitwise-deterministic
//!   by the suite's contracts (thread-invariant counters, one shared
//!   evaluation core), so *any* drift is a finding.
//! * **thresholded** — throughput, cache hit rate, latency quantiles.
//!   A regression beyond [`DEFAULT_THRESHOLD`] (relative) is a finding;
//!   noise inside the threshold is not. These comparisons only run when
//!   both directories' metadata agree on host fingerprint and worker
//!   count — numbers from different machines are not comparable.
//! * **ignored** — wall-clock spans, sample counts, ephemeral ports,
//!   creation times: expected nondeterminism.
//!
//! Exit codes (pinned by the golden-fixture tests): `0` clean, `1` any
//! finding (drift, regression, missing or extra artifact/field), `2`
//! usage or unreadable directory.

use std::collections::BTreeMap;
use std::path::Path;

use hec_core::json::Json;
use report::diff::{findings_table, summary_line, Finding, FindingKind};

use crate::artifact;

/// Default relative regression tolerance for thresholded fields.
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// Exit code: directories agree.
pub const EXIT_OK: i32 = 0;
/// Exit code: at least one finding.
pub const EXIT_FINDINGS: i32 = 1;
/// Exit code: usage error or unreadable input.
pub const EXIT_USAGE: i32 = 2;

/// Diff tuning.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Relative regression tolerance for thresholded fields (0.15 =
    /// fail beyond 15%).
    pub threshold: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { threshold: DEFAULT_THRESHOLD }
    }
}

/// Outcome of a directory comparison.
#[derive(Debug)]
pub struct DiffReport {
    /// Every disagreement, unordered (rendering sorts).
    pub findings: Vec<Finding>,
    /// Artifacts present in both directories.
    pub files_compared: usize,
    /// False when performance fields were skipped (metadata declared
    /// the directories perf-incomparable).
    pub perf_checked: bool,
    /// Why performance fields were skipped, when they were.
    pub perf_note: Option<String>,
}

/// How one field path is compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Exact,
    /// Thresholded; lower new value is a regression (throughput).
    PerfLowerBad,
    /// Thresholded; higher new value is a regression (latency).
    PerfHigherBad,
    Ignore,
}

/// The field-class table: one place that says what is contract and what
/// is noise, per artifact family.
fn classify(file: &str, path: &[String]) -> Class {
    let named_leaf =
        path.iter().rev().find(|s| !s.starts_with('[')).map(String::as_str).unwrap_or("");
    if path.first().is_some_and(|s| s == "meta") {
        // The stamp: the schema and configuration must match for the
        // comparison to mean anything; commit, host, thread count, and
        // sample parameters legitimately differ between runs.
        return match named_leaf {
            "schema_version" | "config_hash" | "apps" | "platforms" => Class::Exact,
            _ => Class::Ignore,
        };
    }
    if file.starts_with("TABLE_") || file.starts_with("CANON_") {
        return Class::Exact;
    }
    if file.starts_with("PROFILE_") {
        // Span wall-times are explicitly outside the deterministic
        // contract (hec_core::probe); every counter and derived
        // workload number is inside it.
        return if path.iter().any(|s| s == "timing") { Class::Ignore } else { Class::Exact };
    }
    if file == "BENCH_kernels.json" || file == "BENCH_apps.json" {
        return match named_leaf {
            "harness" | "warmup" | "min_sample_ns" | "name" | "units" | "unit_label" => {
                Class::Exact
            }
            // Gflop/s is the paper's reporting unit: regressions in it
            // gate directly, not only via the generic throughput field.
            "throughput_per_sec" | "gflops" => Class::PerfLowerBad,
            // median/min/iters/samples/threads/speedup/efficiency:
            // provenance and derived noise, all folded into throughput.
            _ => Class::Ignore,
        };
    }
    if file == "BENCH_serve.json" || file == "BENCH_cluster.json" {
        if path.iter().any(|s| s == "by_class") {
            return if named_leaf == "errors" { Class::Exact } else { Class::Ignore };
        }
        // Autoscaler decisions are a pure function of the seeded run
        // (admitted-request ticks, deterministic thresholds): both the
        // up and down counts must reproduce bit-for-bit.
        if path.iter().any(|s| s == "autoscale_decisions") {
            return Class::Exact;
        }
        return match named_leaf {
            // Elasticity: the seeded churn plan fixes how many
            // membership events fire and exactly which tracked keys
            // change owners; cache warming is best-effort, so fewer
            // successful warms gates like a perf regression.
            "membership_events" | "keys_moved" => Class::Exact,
            "warm_hits" => Class::PerfLowerBad,
            "bench" | "secs" | "clients" | "errors" | "transport_errors" | "replicas" | "up" => {
                Class::Exact
            }
            // Open-loop provenance must match bit-for-bit (a baseline
            // recorded at a different offered rate or seed is not
            // comparable), and a drained target must report zero open
            // connections — a leak here is a reactor bug, not noise.
            "open_loop" | "seed" | "rate_offered_rps" | "connections_open_after_drain" => {
                Class::Exact
            }
            "throughput_rps" | "hit_rate" | "availability" => Class::PerfLowerBad,
            // Falling short of the offered rate means the target (or
            // the machine) got slower: gate it like a throughput drop.
            "rate_achieved_rps" => Class::PerfLowerBad,
            "p50" | "p95" | "p99" => Class::PerfHigherBad,
            // url (ephemeral port), requests (duration-dependent),
            // retried_ok, failovers, hedges, cache traffic counts, mean/max.
            _ => Class::Ignore,
        };
    }
    // Unknown artifact families are held to the strictest standard.
    Class::Exact
}

fn render_path(path: &[String]) -> String {
    let mut out = String::new();
    for seg in path {
        if seg.starts_with('[') || out.is_empty() {
            out.push_str(seg);
        } else {
            out.push('.');
            out.push_str(seg);
        }
    }
    out
}

fn leaf_repr(v: &Json) -> String {
    match v {
        Json::Str(s) if s.len() > 40 => format!("\"{}…\" ({} bytes)", &s[..20], s.len()),
        other => other.emit(),
    }
}

/// True when `samples`-style keyed matching applies: both arrays hold
/// objects carrying a unique string `name`.
fn keyed_by_name(items: &[Json]) -> Option<Vec<(&str, &Json)>> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let name = item.get("name")?.as_str()?;
        if !seen.insert(name) {
            return None;
        }
        out.push((name, item));
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

struct Differ<'a> {
    file: &'a str,
    opts: DiffOptions,
    perf: bool,
    findings: &'a mut Vec<Finding>,
}

impl Differ<'_> {
    fn push(&mut self, path: &[String], kind: FindingKind, detail: String) {
        self.findings.push(Finding {
            file: self.file.to_string(),
            path: render_path(path),
            kind,
            detail,
        });
    }

    /// Reports every non-ignored leaf of a subtree that exists on only
    /// one side, so the report names concrete fields, not just a prefix.
    fn one_sided(&mut self, v: &Json, path: &mut Vec<String>, kind: FindingKind) {
        match v {
            Json::Obj(fields) => {
                for (k, v) in fields {
                    path.push(k.clone());
                    self.one_sided(v, path, kind);
                    path.pop();
                }
            }
            Json::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    path.push(format!("[{i}]"));
                    self.one_sided(v, path, kind);
                    path.pop();
                }
            }
            leaf => {
                if classify(self.file, path) != Class::Ignore {
                    let side = if kind == FindingKind::Missing { "old" } else { "new" };
                    self.push(path, kind, format!("only in {side}: {}", leaf_repr(leaf)));
                }
            }
        }
    }

    fn walk(&mut self, old: &Json, new: &Json, path: &mut Vec<String>) {
        match (old, new) {
            (Json::Obj(of), Json::Obj(nf)) => {
                for (k, ov) in of {
                    path.push(k.clone());
                    match nf.iter().find(|(nk, _)| nk == k) {
                        Some((_, nv)) => self.walk(ov, nv, path),
                        None => self.one_sided(ov, path, FindingKind::Missing),
                    }
                    path.pop();
                }
                for (k, nv) in nf {
                    if !of.iter().any(|(ok, _)| ok == k) {
                        path.push(k.clone());
                        self.one_sided(nv, path, FindingKind::Extra);
                        path.pop();
                    }
                }
            }
            (Json::Arr(oi), Json::Arr(ni)) => {
                match (keyed_by_name(oi), keyed_by_name(ni)) {
                    (Some(om), Some(nm)) => {
                        // A whole named entry (a bench sample, a capture
                        // phase) appearing or vanishing is one finding,
                        // not one per leaf.
                        for (name, ov) in &om {
                            path.push(format!("[{name}]"));
                            match nm.iter().find(|(n, _)| n == name) {
                                Some((_, nv)) => self.walk(ov, nv, path),
                                None => self.push(
                                    path,
                                    FindingKind::Missing,
                                    "named entry missing from new".to_string(),
                                ),
                            }
                            path.pop();
                        }
                        for (name, _) in &nm {
                            if !om.iter().any(|(n, _)| n == name) {
                                path.push(format!("[{name}]"));
                                self.push(
                                    path,
                                    FindingKind::Extra,
                                    "named entry absent from old".to_string(),
                                );
                                path.pop();
                            }
                        }
                    }
                    _ => {
                        for (i, (ov, nv)) in oi.iter().zip(ni).enumerate() {
                            path.push(format!("[{i}]"));
                            self.walk(ov, nv, path);
                            path.pop();
                        }
                        for (i, ov) in oi.iter().enumerate().skip(ni.len()) {
                            path.push(format!("[{i}]"));
                            self.one_sided(ov, path, FindingKind::Missing);
                            path.pop();
                        }
                        for (i, nv) in ni.iter().enumerate().skip(oi.len()) {
                            path.push(format!("[{i}]"));
                            self.one_sided(nv, path, FindingKind::Extra);
                            path.pop();
                        }
                    }
                }
            }
            (ov, nv) => self.leaves(ov, nv, path),
        }
    }

    fn leaves(&mut self, old: &Json, new: &Json, path: &mut Vec<String>) {
        match classify(self.file, path) {
            Class::Ignore => {}
            Class::Exact => {
                if old != new {
                    self.push(
                        path,
                        FindingKind::Drift,
                        format!("{} -> {}", leaf_repr(old), leaf_repr(new)),
                    );
                }
            }
            perf @ (Class::PerfLowerBad | Class::PerfHigherBad) => {
                if !self.perf {
                    return;
                }
                let (Some(o), Some(n)) = (old.as_f64(), new.as_f64()) else {
                    self.push(
                        path,
                        FindingKind::Drift,
                        format!("non-numeric: {} -> {}", leaf_repr(old), leaf_repr(new)),
                    );
                    return;
                };
                if o <= 0.0 {
                    return; // nothing to regress from
                }
                let rel = (n - o) / o;
                let bad = match perf {
                    Class::PerfLowerBad => rel < -self.opts.threshold,
                    _ => rel > self.opts.threshold,
                };
                if bad {
                    self.push(
                        path,
                        FindingKind::Regression,
                        format!(
                            "{o:.4} -> {n:.4} ({:+.1}% vs {:.0}% tolerance)",
                            rel * 100.0,
                            self.opts.threshold * 100.0
                        ),
                    );
                }
            }
        }
    }
}

/// Whether thresholded comparisons are meaningful: both directories
/// must declare the same host fingerprint and worker count. Returns the
/// skip reason otherwise.
fn perf_comparability(
    old: &BTreeMap<String, Json>,
    new: &BTreeMap<String, Json>,
) -> Result<(), String> {
    let stamp = |docs: &BTreeMap<String, Json>| -> Option<(String, f64)> {
        let meta = docs.values().next()?.get("meta")?;
        Some((meta.str_field("host").ok()?.to_string(), meta.num_field("hec_threads").ok()?))
    };
    match (stamp(old), stamp(new)) {
        (Some((oh, ot)), Some((nh, nt))) if oh == nh && ot == nt => Ok(()),
        (Some((oh, ot)), Some((nh, nt))) => {
            Err(format!("perf skipped: {oh}/{ot} workers vs {nh}/{nt} workers are not comparable"))
        }
        _ => Err("perf skipped: missing metadata stamp".to_string()),
    }
}

/// Compares two loaded artifact directories.
pub fn diff_dirs(
    old: &BTreeMap<String, Json>,
    new: &BTreeMap<String, Json>,
    opts: DiffOptions,
) -> DiffReport {
    let mut findings = Vec::new();
    let (perf_checked, perf_note) = match perf_comparability(old, new) {
        Ok(()) => (true, None),
        Err(note) => (false, Some(note)),
    };
    let mut files_compared = 0;
    for (name, odoc) in old {
        match new.get(name) {
            Some(ndoc) => {
                files_compared += 1;
                let mut d =
                    Differ { file: name, opts, perf: perf_checked, findings: &mut findings };
                d.walk(odoc, ndoc, &mut Vec::new());
            }
            None => findings.push(Finding {
                file: name.clone(),
                path: String::new(),
                kind: FindingKind::Missing,
                detail: "artifact missing from the new directory".to_string(),
            }),
        }
    }
    for name in new.keys() {
        if !old.contains_key(name) {
            findings.push(Finding {
                file: name.clone(),
                path: String::new(),
                kind: FindingKind::Extra,
                detail: "artifact absent from the old directory".to_string(),
            });
        }
    }
    DiffReport { findings, files_compared, perf_checked, perf_note }
}

/// The `repro diff <old> [new] [--threshold=F]` entry point: loads both
/// directories, diffs, prints the report, and returns the exit code.
/// `HEC_DIFF_THRESHOLD` overrides the default tolerance; an explicit
/// `--threshold=` flag overrides both.
pub fn run_cli(args: &[String]) -> i32 {
    let mut dirs: Vec<&str> = Vec::new();
    let mut threshold = std::env::var("HEC_DIFF_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_THRESHOLD);
    for a in args {
        if let Some(v) = a.strip_prefix("--threshold=") {
            match v.parse::<f64>() {
                Ok(t) if t > 0.0 => threshold = t,
                _ => {
                    eprintln!("bad --threshold value '{v}' (want a positive fraction, e.g. 0.15)");
                    return EXIT_USAGE;
                }
            }
        } else {
            dirs.push(a);
        }
    }
    let (old_dir, new_dir) = match dirs.as_slice() {
        [old] => (*old, crate::pipeline::DEFAULT_DIR),
        [old, new] => (*old, *new),
        _ => {
            eprintln!("usage: repro diff <old-dir> [new-dir] [--threshold=F]");
            return EXIT_USAGE;
        }
    };
    let load = |d: &str| artifact::load_dir(Path::new(d));
    let (old, new) = match (load(old_dir), load(new_dir)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("repro diff: {e}");
            return EXIT_USAGE;
        }
    };
    let report = diff_dirs(&old, &new, DiffOptions { threshold });
    if !report.findings.is_empty() {
        let title = format!("Artifact diff: {old_dir} -> {new_dir}");
        print!("{}", findings_table(&title, &report.findings).render());
    }
    println!(
        "{}",
        summary_line(&report.findings, report.files_compared, report.perf_note.as_deref())
    );
    if report.findings.is_empty() {
        EXIT_OK
    } else {
        EXIT_FINDINGS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(meta_host: &str, fields: &[(&str, Json)]) -> Json {
        let mut all = vec![(
            "meta".to_string(),
            Json::obj([
                ("schema_version", Json::Num(artifact::SCHEMA_VERSION)),
                ("host", Json::Str(meta_host.to_string())),
                ("hec_threads", Json::Num(2.0)),
                ("config_hash", Json::Str("abc".into())),
            ]),
        )];
        all.extend(fields.iter().map(|(k, v)| (k.to_string(), v.clone())));
        Json::Obj(all)
    }

    fn dir_of(files: &[(&str, Json)]) -> BTreeMap<String, Json> {
        files.iter().map(|(n, d)| (n.to_string(), d.clone())).collect()
    }

    #[test]
    fn identical_directories_are_clean() {
        let d = dir_of(&[("TABLE_gtc.json", doc("h", &[("rows", Json::Num(5.0))]))]);
        let r = diff_dirs(&d, &d, DiffOptions::default());
        assert!(r.findings.is_empty());
        assert_eq!(r.files_compared, 1);
        assert!(r.perf_checked);
    }

    #[test]
    fn exact_drift_is_a_finding_with_the_field_path() {
        let old = dir_of(&[(
            "PROFILE_gtc.json",
            doc("h", &[("profile", Json::obj([("flops", Json::Num(100.0))]))]),
        )]);
        let new = dir_of(&[(
            "PROFILE_gtc.json",
            doc("h", &[("profile", Json::obj([("flops", Json::Num(101.0))]))]),
        )]);
        let r = diff_dirs(&old, &new, DiffOptions::default());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, FindingKind::Drift);
        assert_eq!(r.findings[0].file, "PROFILE_gtc.json");
        assert_eq!(r.findings[0].path, "profile.flops");
    }

    #[test]
    fn profile_timing_spans_are_tolerated() {
        let mk = |ns: f64| {
            dir_of(&[(
                "PROFILE_gtc.json",
                doc("h", &[("timing", Json::obj([("total_ns", Json::Num(ns))]))]),
            )])
        };
        let r = diff_dirs(&mk(1.0), &mk(9e9), DiffOptions::default());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn throughput_regression_beyond_threshold_fails() {
        let mk = |rps: f64| {
            dir_of(&[("BENCH_serve.json", doc("h", &[("throughput_rps", Json::Num(rps))]))])
        };
        let r = diff_dirs(&mk(1000.0), &mk(800.0), DiffOptions::default());
        assert_eq!(r.findings.len(), 1, "20% drop beats the 15% default");
        assert_eq!(r.findings[0].kind, FindingKind::Regression);
        assert_eq!(r.findings[0].path, "throughput_rps");
        // Inside the tolerance, or with a looser threshold: clean.
        assert!(diff_dirs(&mk(1000.0), &mk(900.0), DiffOptions::default()).findings.is_empty());
        assert!(diff_dirs(&mk(1000.0), &mk(800.0), DiffOptions { threshold: 0.3 })
            .findings
            .is_empty());
        // Improvements never fail.
        assert!(diff_dirs(&mk(1000.0), &mk(5000.0), DiffOptions::default()).findings.is_empty());
    }

    #[test]
    fn latency_regressions_point_the_other_way() {
        let mk = |p99: f64| {
            dir_of(&[(
                "BENCH_serve.json",
                doc("h", &[("latency_us", Json::obj([("p99", Json::Num(p99))]))]),
            )])
        };
        assert_eq!(diff_dirs(&mk(100.0), &mk(200.0), DiffOptions::default()).findings.len(), 1);
        assert!(diff_dirs(&mk(200.0), &mk(100.0), DiffOptions::default()).findings.is_empty());
    }

    #[test]
    fn open_loop_provenance_fields_gate_exactly() {
        // A baseline recorded open-loop must be compared open-loop, at
        // the same offered rate and seed — any drift is a finding even
        // between different hosts (they are Exact, not Perf).
        let mk = |open: bool, rate: f64, seed: f64, leak: f64| {
            dir_of(&[(
                "BENCH_serve.json",
                doc(
                    "h",
                    &[
                        ("open_loop", Json::Bool(open)),
                        ("rate_offered_rps", Json::Num(rate)),
                        ("seed", Json::Num(seed)),
                        ("connections_open_after_drain", Json::Num(leak)),
                    ],
                ),
            )])
        };
        let base = mk(true, 400.0, 5.0, 0.0);
        assert!(diff_dirs(&base, &base, DiffOptions::default()).findings.is_empty());
        for (label, other) in [
            ("methodology flip", mk(false, 400.0, 5.0, 0.0)),
            ("offered rate", mk(true, 300.0, 5.0, 0.0)),
            ("schedule seed", mk(true, 400.0, 6.0, 0.0)),
            ("connection leak", mk(true, 400.0, 5.0, 2.0)),
        ] {
            let r = diff_dirs(&base, &other, DiffOptions::default());
            assert_eq!(r.findings.len(), 1, "{label} must be a finding");
            assert_eq!(r.findings[0].kind, FindingKind::Drift, "{label}");
        }
    }

    #[test]
    fn achieved_rate_shortfall_gates_like_a_throughput_drop() {
        let mk = |rps: f64| {
            dir_of(&[("BENCH_serve.json", doc("h", &[("rate_achieved_rps", Json::Num(rps))]))])
        };
        let r = diff_dirs(&mk(400.0), &mk(300.0), DiffOptions::default());
        assert_eq!(r.findings.len(), 1, "25% shortfall beats the 15% default");
        assert_eq!(r.findings[0].kind, FindingKind::Regression);
        assert_eq!(r.findings[0].path, "rate_achieved_rps");
        assert!(diff_dirs(&mk(400.0), &mk(390.0), DiffOptions::default()).findings.is_empty());
        assert!(diff_dirs(&mk(400.0), &mk(500.0), DiffOptions::default()).findings.is_empty());
    }

    #[test]
    fn perf_fields_are_skipped_between_different_hosts() {
        let old =
            dir_of(&[("BENCH_serve.json", doc("hostA", &[("throughput_rps", Json::Num(1000.0))]))]);
        let new =
            dir_of(&[("BENCH_serve.json", doc("hostB", &[("throughput_rps", Json::Num(1.0))]))]);
        let r = diff_dirs(&old, &new, DiffOptions::default());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(!r.perf_checked);
        assert!(r.perf_note.unwrap().contains("not comparable"));
    }

    #[test]
    fn exact_fields_still_gate_between_different_hosts() {
        let old = dir_of(&[("TABLE_gtc.json", doc("hostA", &[("rows", Json::Num(1.0))]))]);
        let new = dir_of(&[("TABLE_gtc.json", doc("hostB", &[("rows", Json::Num(2.0))]))]);
        assert_eq!(diff_dirs(&old, &new, DiffOptions::default()).findings.len(), 1);
    }

    #[test]
    fn missing_and_extra_artifacts_are_findings() {
        let both =
            dir_of(&[("TABLE_gtc.json", doc("h", &[])), ("TABLE_fvcam.json", doc("h", &[]))]);
        let only_one = dir_of(&[("TABLE_gtc.json", doc("h", &[]))]);
        let r = diff_dirs(&both, &only_one, DiffOptions::default());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, FindingKind::Missing);
        assert_eq!(r.findings[0].file, "TABLE_fvcam.json");
        let r = diff_dirs(&only_one, &both, DiffOptions::default());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, FindingKind::Extra);
    }

    #[test]
    fn bench_samples_match_by_name_not_position() {
        let s = |name: &str, tput: f64| {
            Json::obj([
                ("name", Json::Str(name.to_string())),
                ("throughput_per_sec", Json::Num(tput)),
            ])
        };
        let old = dir_of(&[(
            "BENCH_kernels.json",
            doc("h", &[("samples", Json::Arr(vec![s("a", 10.0), s("b", 20.0)]))]),
        )]);
        // Reordered but equal: clean.
        let new = dir_of(&[(
            "BENCH_kernels.json",
            doc("h", &[("samples", Json::Arr(vec![s("b", 20.0), s("a", 10.0)]))]),
        )]);
        assert!(diff_dirs(&old, &new, DiffOptions::default()).findings.is_empty());
        // A sample disappearing is a named finding.
        let dropped = dir_of(&[(
            "BENCH_kernels.json",
            doc("h", &[("samples", Json::Arr(vec![s("b", 20.0)]))]),
        )]);
        let r = diff_dirs(&old, &dropped, DiffOptions::default());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, FindingKind::Missing);
        assert!(r.findings[0].path.contains("[a]"), "{}", r.findings[0].path);
    }

    #[test]
    fn gflops_regressions_gate_like_throughput() {
        let mk = |g: f64| {
            dir_of(&[(
                "BENCH_kernels.json",
                doc(
                    "h",
                    &[(
                        "samples",
                        Json::Arr(vec![Json::obj([
                            ("name", Json::Str("gemm/dgemm_128/t1".into())),
                            ("gflops", Json::Num(g)),
                        ])]),
                    )],
                ),
            )])
        };
        let r = diff_dirs(&mk(14.0), &mk(10.0), DiffOptions::default());
        assert_eq!(r.findings.len(), 1, "29% Gflop/s drop beats the 15% default");
        assert_eq!(r.findings[0].kind, FindingKind::Regression);
        assert!(r.findings[0].path.contains("gflops"), "{}", r.findings[0].path);
        // Noise inside the tolerance and improvements stay clean.
        assert!(diff_dirs(&mk(14.0), &mk(13.0), DiffOptions::default()).findings.is_empty());
        assert!(diff_dirs(&mk(14.0), &mk(20.0), DiffOptions::default()).findings.is_empty());
    }

    #[test]
    fn config_hash_mismatch_is_drift() {
        let mut old = doc("h", &[]);
        let new = old.clone();
        if let Json::Obj(fields) = &mut old {
            if let Json::Obj(meta) = &mut fields[0].1 {
                meta.iter_mut().find(|(k, _)| k == "config_hash").unwrap().1 =
                    Json::Str("different".into());
            }
        }
        let r = diff_dirs(
            &dir_of(&[("TABLE_gtc.json", old)]),
            &dir_of(&[("TABLE_gtc.json", new)]),
            DiffOptions::default(),
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].path, "meta.config_hash");
    }
}
