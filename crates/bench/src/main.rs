//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//! `repro [table1|table2|fig2|table3|fig3|fig4|table4|table5|table6|fig8|validate|harness|profile|all]`
//!
//! `fig2` accepts an optional mesh divisor (default 4; 1 = the full D
//! mesh, slower). `harness` accepts an optional timed-sample count
//! (default 11) and writes `BENCH_kernels.json` / `BENCH_apps.json`.
//! `profile` runs every app's instrumented calibration capture and
//! writes `PROFILE_<app>.json` per-phase counter profiles. `all` prints
//! everything except `validate`, `harness`, and `profile`.

use bench::{experiments, render, validate};
use report::paper;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    match what {
        "table1" => print!("{}", render::table1().render()),
        "table2" => table2(),
        "fig2" => {
            let scale: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
            fig2(scale);
        }
        "table3" => table3(),
        "fig3" => {
            print!("{}", render::fig3(&experiments::fvcam_rows(), &paper::FVCAM_PLATFORMS))
        }
        "fig4" => print!(
            "{}",
            render::fig4(
                &experiments::fvcam_rows(),
                &paper::FVCAM_PLATFORMS,
                fvcam::model::D_MESH_STEPS_PER_DAY
            )
        ),
        "table4" => print!(
            "{}",
            render::perf_table(
                "Table 4: GTC performance (weak scaling, 3.2M particles/processor)",
                &paper::PLATFORMS,
                &experiments::gtc_rows()
            )
            .render()
        ),
        "table5" => print!(
            "{}",
            render::perf_table(
                "Table 5: LBMHD3D performance",
                &paper::PLATFORMS,
                &experiments::lbmhd_rows()
            )
            .render()
        ),
        "table6" => print!(
            "{}",
            render::perf_table(
                "Table 6: PARATEC performance (488-atom CdSe quantum dot)",
                &paper::PLATFORMS,
                &experiments::paratec_rows()
            )
            .render()
        ),
        "fig8" => {
            print!("{}", render::fig8(&experiments::fig8_apps(), &paper::PLATFORMS))
        }
        "validate" => validate_all(),
        "harness" => {
            let iters: usize =
                args.get(1).and_then(|s| s.parse().ok()).unwrap_or(bench::harness::DEFAULT_ITERS);
            bench::harness::run(iters.max(1));
        }
        "profile" => bench::profile::run(),
        "all" => {
            print!("{}", render::table1().render());
            println!();
            table2();
            println!();
            table3();
            println!();
            print!("{}", render::fig3(&experiments::fvcam_rows(), &paper::FVCAM_PLATFORMS));
            println!();
            print!(
                "{}",
                render::fig4(
                    &experiments::fvcam_rows(),
                    &paper::FVCAM_PLATFORMS,
                    fvcam::model::D_MESH_STEPS_PER_DAY
                )
            );
            println!();
            for (title, rows) in [
                ("Table 4: GTC performance", experiments::gtc_rows()),
                ("Table 5: LBMHD3D performance", experiments::lbmhd_rows()),
                ("Table 6: PARATEC performance", experiments::paratec_rows()),
            ] {
                print!("{}", render::perf_table(title, &paper::PLATFORMS, &rows).render());
                println!();
            }
            print!("{}", render::fig8(&experiments::fig8_apps(), &paper::PLATFORMS));
            println!();
            fig2(8);
        }
        other => {
            eprintln!(
                "unknown target '{other}'; expected table1|table2|fig2|table3|fig3|fig4|table4|table5|table6|fig8|validate|harness|profile|all"
            );
            std::process::exit(2);
        }
    }
}

fn table2() {
    // Count this repository's lines per application crate.
    let loc = |dir: &str| -> usize {
        fn walk(p: &std::path::Path, acc: &mut usize) {
            if let Ok(entries) = std::fs::read_dir(p) {
                for e in entries.flatten() {
                    let path = e.path();
                    if path.is_dir() {
                        walk(&path, acc);
                    } else if path.extension().is_some_and(|x| x == "rs") {
                        if let Ok(s) = std::fs::read_to_string(&path) {
                            *acc += s.lines().count();
                        }
                    }
                }
            }
        }
        let mut acc = 0;
        walk(std::path::Path::new(dir), &mut acc);
        acc
    };
    let ours = [
        ("FVCAM", loc("crates/fvcam")),
        ("LBMHD3D", loc("crates/lbmhd")),
        ("PARATEC", loc("crates/paratec")),
        ("GTC", loc("crates/gtc")),
    ];
    print!("{}", render::table2(&ours).render());
}

fn table3() {
    print!(
        "{}",
        render::perf_table(
            "Table 3: FVCAM performance on the D mesh (0.5 x 0.625 deg)",
            &paper::FVCAM_PLATFORMS,
            &experiments::fvcam_rows()
        )
        .render()
    );
}

fn fig2(scale: usize) {
    eprintln!("capturing FVCAM traffic on a 1/{scale} D mesh (64 MPI ranks)...");
    let (m1, ranks) = experiments::fig2_traffic(1, scale);
    let (m2, _) = experiments::fig2_traffic(4, scale);
    print!("{}", render::fig2(&m1, &m2, ranks));
}

fn validate_all() {
    let cases = [
        ("Table 3 (FVCAM)", experiments::fvcam_rows(), paper::table3()),
        ("Table 4 (GTC)", experiments::gtc_rows(), paper::table4()),
        ("Table 5 (LBMHD3D)", experiments::lbmhd_rows(), paper::table5()),
        ("Table 6 (PARATEC)", experiments::paratec_rows(), paper::table6()),
    ];
    for (name, ours, published) in cases {
        let shape = validate::compare(&ours, &published);
        println!(
            "{name}: ordering agreement {:.0}%, typical factor {:.2}x over {} rows",
            shape.ordering * 100.0,
            shape.factor,
            shape.rows
        );
        print!("{}", validate::diff_table(name, &ours, &published));
        println!();
    }
}
