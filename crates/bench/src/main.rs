//! `repro` — regenerates every table and figure of the paper, and runs
//! the serve/loadgen benchmark pair.
//!
//! Run `repro help` for the full subcommand list; it is derived from the
//! same table that drives dispatch and the unknown-subcommand error, so
//! the three can never drift apart.

use bench::{experiments, render, validate};
use hec_serve::engine::AppId;
use report::paper;

/// One `repro` subcommand: its name, argument hint, one-line help, and
/// handler. Usage text, dispatch, and the unknown-subcommand error are
/// all derived from [`COMMANDS`].
struct Cmd {
    name: &'static str,
    args: &'static str,
    help: &'static str,
    run: fn(&[String]),
}

const COMMANDS: &[Cmd] = &[
    Cmd {
        name: "table1",
        args: "",
        help: "architectural highlights of the eight platforms",
        run: |_| print!("{}", render::table1().render()),
    },
    Cmd {
        name: "table2",
        args: "",
        help: "application overview with this repo's lines of code",
        run: |_| table2(),
    },
    Cmd {
        name: "fig2",
        args: "[mesh-divisor]",
        help: "FVCAM point-to-point traffic matrices (default divisor 4; 1 = full D mesh)",
        run: |args| {
            let scale: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
            fig2(scale);
        },
    },
    Cmd {
        name: "table3",
        args: "",
        help: "FVCAM performance on the D mesh",
        run: |_| print!("{}", render::app_table(AppId::Fvcam).render()),
    },
    Cmd {
        name: "fig3",
        args: "",
        help: "FVCAM Gflop/P scaling curves",
        run: |_| print!("{}", render::fig3(&experiments::fvcam_rows(), &paper::FVCAM_PLATFORMS)),
    },
    Cmd {
        name: "fig4",
        args: "",
        help: "FVCAM simulated-years-per-day scaling",
        run: |_| {
            print!(
                "{}",
                render::fig4(
                    &experiments::fvcam_rows(),
                    &paper::FVCAM_PLATFORMS,
                    fvcam::model::D_MESH_STEPS_PER_DAY
                )
            )
        },
    },
    Cmd {
        name: "table4",
        args: "",
        help: "GTC weak-scaling performance",
        run: |_| print!("{}", render::app_table(AppId::Gtc).render()),
    },
    Cmd {
        name: "table5",
        args: "",
        help: "LBMHD3D performance",
        run: |_| print!("{}", render::app_table(AppId::Lbmhd).render()),
    },
    Cmd {
        name: "table6",
        args: "",
        help: "PARATEC performance",
        run: |_| print!("{}", render::app_table(AppId::Paratec).render()),
    },
    Cmd {
        name: "fig8",
        args: "",
        help: "summary of all four applications at P=256",
        run: |_| print!("{}", render::fig8(&experiments::fig8_apps(), &paper::PLATFORMS)),
    },
    Cmd {
        name: "validate",
        args: "",
        help: "shape comparison against the paper's published numbers",
        run: |_| validate_all(),
    },
    Cmd {
        name: "harness",
        args: "[samples]",
        help: "timed micro/app benchmarks; writes BENCH_kernels.json / BENCH_apps.json",
        run: |args| {
            let iters: usize =
                args.first().and_then(|s| s.parse().ok()).unwrap_or(bench::harness::DEFAULT_ITERS);
            bench::harness::run(iters.max(1));
        },
    },
    Cmd {
        name: "profile",
        args: "",
        help: "calibration captures; writes PROFILE_<app>.json",
        run: |_| bench::profile::run(),
    },
    Cmd {
        name: "serve",
        args: "[port]",
        help: "prediction service on 127.0.0.1 (default: ephemeral port; HEC_SERVE_* tune it)",
        run: |args| serve(args),
    },
    Cmd {
        name: "cluster",
        args: "<replicas> [port]",
        help: "sharded serving cluster: router + N replicas (HEC_CLUSTER_* tune it)",
        run: |args| cluster(args),
    },
    Cmd {
        name: "loadgen",
        args: "<url> [secs] [clients] [--rate=RPS] [--seed=N]",
        help: "load test (closed-loop; --rate=RPS switches to seeded open-loop arrivals); \
               writes BENCH_serve.json (or BENCH_cluster.json for a router)",
        run: |args| loadgen(args),
    },
    Cmd {
        name: "kill",
        args: "<url> <replica>",
        help: "kill one replica through a router's /admin/kill endpoint",
        run: |args| kill(args),
    },
    Cmd {
        name: "scale",
        args: "<url> <up|down>",
        help: "scale a router up one replica, or drain its highest member",
        run: |args| scale(args),
    },
    Cmd {
        name: "stop",
        args: "<url>",
        help: "gracefully stop a serve or cluster instance (drains in-flight requests)",
        run: |args| stop(args),
    },
    Cmd {
        name: "report",
        args: "",
        help: "print every table and figure (no artifacts written)",
        run: |_| report_all(),
    },
    Cmd {
        name: "all",
        args: "[dir]",
        help: "regenerate every artifact (tables, canon, profiles, bench) into one stamped dir",
        run: |args| {
            let dir = args.first().map(String::as_str).unwrap_or(bench::pipeline::DEFAULT_DIR);
            if let Err(e) = bench::pipeline::run_all(dir) {
                eprintln!("repro all: {e}");
                std::process::exit(1);
            }
        },
    },
    Cmd {
        name: "diff",
        args: "<old-dir> [new-dir] [--threshold=F]",
        help: "compare two artifact dirs; exit 1 on drift or regression beyond threshold",
        run: |args| std::process::exit(bench::diff::run_cli(args)),
    },
    Cmd {
        name: "gate",
        args: "[dir]",
        help: "assert threaded lbmhd/dgemm harness legs beat serial (skips on 1-core boxes)",
        run: |args| std::process::exit(bench::gate::run_cli(args)),
    },
    Cmd { name: "help", args: "", help: "this list", run: |_| print!("{}", usage()) },
];

fn usage() -> String {
    let names: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
    let width = COMMANDS.iter().map(|c| c.name.len() + 1 + c.args.len()).max().unwrap_or(0);
    let mut out = format!("usage: repro [{}]\n\nsubcommands:\n", names.join("|"));
    for c in COMMANDS {
        let left =
            if c.args.is_empty() { c.name.to_string() } else { format!("{} {}", c.name, c.args) };
        out.push_str(&format!("  {left:width$}  {}\n", c.help));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    match COMMANDS.iter().find(|c| c.name == what) {
        Some(cmd) => (cmd.run)(&args[1..]),
        None => {
            let names: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
            eprintln!("unknown target '{what}'; expected {}", names.join("|"));
            std::process::exit(2);
        }
    }
}

fn serve(args: &[String]) {
    let port: u16 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0);
    let cfg = hec_serve::server::ServeConfig::from_env(port);
    let server = match hec_serve::server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("could not bind 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        }
    };
    // The log line the CI smoke (and humans) parse for the bound port.
    println!("listening on {}", server.addr());
    println!("workers={} queue={} cache={}", cfg.workers, cfg.queue, cfg.cache_capacity);
    server.join();
    println!("serve: drained and stopped");
}

fn cluster(args: &[String]) {
    let replicas: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(3);
    let port: u16 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let cfg = hec_cluster::ClusterConfig::from_env(replicas, port);
    let (replication, vnodes) = (cfg.replication, cfg.vnodes);
    let cluster = match hec_cluster::start(cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("could not start the cluster on 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        }
    };
    // Same log line the serve smoke parses for the bound port.
    println!("listening on {}", cluster.addr());
    for i in 0..cluster.replica_count() {
        match cluster.replica_addr(i) {
            Some(addr) => println!("replica {i} on {addr}"),
            None => println!("replica {i} down"),
        }
    }
    println!("replicas={} replication={replication} vnodes={vnodes}", cluster.replica_count());
    cluster.join();
    println!("cluster: drained and stopped");
}

fn kill(args: &[String]) {
    let (Some(url), Some(replica)) = (args.first(), args.get(1)) else {
        eprintln!("usage: repro kill <url> <replica>");
        std::process::exit(2);
    };
    let url = format!("{}/admin/kill?replica={replica}", url.trim_end_matches('/'));
    match hec_serve::client::http_post(&url, "") {
        Ok(r) if r.status == 200 => println!("killed replica {replica}"),
        Ok(r) => {
            eprintln!("unexpected status {} from {url}: {}", r.status, r.body.trim());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("could not reach {url}: {e}");
            std::process::exit(1);
        }
    }
}

fn scale(args: &[String]) {
    let (Some(url), Some(dir)) = (args.first(), args.get(1)) else {
        eprintln!("usage: repro scale <url> <up|down>");
        std::process::exit(2);
    };
    let base = url.trim_end_matches('/').to_string();
    match dir.as_str() {
        "up" => match hec_serve::client::http_post(&format!("{base}/admin/scale-up"), "") {
            Ok(r) if r.status == 200 => print!("{}", r.body),
            Ok(r) => {
                eprintln!("scale-up failed with status {}: {}", r.status, r.body.trim());
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("could not reach {base}: {e}");
                std::process::exit(1);
            }
        },
        "down" => {
            // Drain the highest current member — the mirror of what
            // the autoscaler's down decision picks.
            let metrics = match hec_serve::client::http_get(&format!("{base}/metrics")) {
                Ok(r) if r.status == 200 => r.body,
                Ok(r) => {
                    eprintln!("metrics fetch failed with status {}", r.status);
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("could not reach {base}: {e}");
                    std::process::exit(1);
                }
            };
            let doc = match hec_core::json::Json::parse(&metrics) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("bad metrics document: {e}");
                    std::process::exit(1);
                }
            };
            let victim = doc
                .get("cluster")
                .and_then(|c| c.get("replicas"))
                .and_then(|r| r.as_arr())
                .into_iter()
                .flatten()
                .filter_map(|r| r.get("index").and_then(|i| i.as_f64()))
                .fold(None::<f64>, |acc, i| Some(acc.map_or(i, |a: f64| a.max(i))));
            let Some(victim) = victim else {
                eprintln!("no cluster.replicas in {base}/metrics — not a router?");
                std::process::exit(1);
            };
            let drain = format!("{base}/admin/drain/{}", victim as usize);
            match hec_serve::client::http_post(&drain, "") {
                Ok(r) if r.status == 200 => print!("{}", r.body),
                Ok(r) => {
                    eprintln!("drain failed with status {}: {}", r.status, r.body.trim());
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("could not reach {drain}: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("scale wants 'up' or 'down', got {other:?}");
            std::process::exit(2);
        }
    }
}

fn loadgen(args: &[String]) {
    let mut rate: Option<f64> = None;
    let mut seed: u64 = bench::loadgen::DEFAULT_SEED;
    let mut positional: Vec<&String> = Vec::new();
    for a in args {
        if let Some(v) = a.strip_prefix("--rate=") {
            match v.parse::<f64>() {
                Ok(r) if r > 0.0 => rate = Some(r),
                _ => {
                    eprintln!("loadgen: --rate wants a positive number, got {v:?}");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = a.strip_prefix("--seed=") {
            match v.parse() {
                Ok(s) => seed = s,
                Err(_) => {
                    eprintln!("loadgen: --seed wants an integer, got {v:?}");
                    std::process::exit(2);
                }
            }
        } else {
            positional.push(a);
        }
    }
    let Some(url) = positional.first() else {
        eprintln!("usage: repro loadgen <url> [secs] [clients] [--rate=RPS] [--seed=N]");
        std::process::exit(2);
    };
    let secs: u64 =
        positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(bench::loadgen::DEFAULT_SECS);
    let clients: usize =
        positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(bench::loadgen::DEFAULT_CLIENTS);
    let open = rate.map(|rate_rps| bench::loadgen::OpenLoop { rate_rps, seed });
    let errors = bench::loadgen::run(url, secs, clients, open);
    if errors > 0 {
        eprintln!("loadgen: {errors} error responses");
        std::process::exit(1);
    }
}

fn stop(args: &[String]) {
    let Some(url) = args.first() else {
        eprintln!("usage: repro stop <url>");
        std::process::exit(2);
    };
    let url = format!("{}/shutdown", url.trim_end_matches('/'));
    match hec_serve::client::http_post(&url, "") {
        Ok(r) if r.status == 200 => println!("stopping"),
        Ok(r) => {
            eprintln!("unexpected status {} from {url}", r.status);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("could not reach {url}: {e}");
            std::process::exit(1);
        }
    }
}

fn report_all() {
    print!("{}", render::table1().render());
    println!();
    table2();
    println!();
    print!("{}", render::app_table(AppId::Fvcam).render());
    println!();
    print!("{}", render::fig3(&experiments::fvcam_rows(), &paper::FVCAM_PLATFORMS));
    println!();
    print!(
        "{}",
        render::fig4(
            &experiments::fvcam_rows(),
            &paper::FVCAM_PLATFORMS,
            fvcam::model::D_MESH_STEPS_PER_DAY
        )
    );
    println!();
    for app in [AppId::Gtc, AppId::Lbmhd, AppId::Paratec] {
        print!("{}", render::app_table(app).render());
        println!();
    }
    print!("{}", render::fig8(&experiments::fig8_apps(), &paper::PLATFORMS));
    println!();
    fig2(8);
}

fn table2() {
    // Count this repository's lines per application crate.
    let loc = |dir: &str| -> usize {
        fn walk(p: &std::path::Path, acc: &mut usize) {
            if let Ok(entries) = std::fs::read_dir(p) {
                for e in entries.flatten() {
                    let path = e.path();
                    if path.is_dir() {
                        walk(&path, acc);
                    } else if path.extension().is_some_and(|x| x == "rs") {
                        if let Ok(s) = std::fs::read_to_string(&path) {
                            *acc += s.lines().count();
                        }
                    }
                }
            }
        }
        let mut acc = 0;
        walk(std::path::Path::new(dir), &mut acc);
        acc
    };
    let ours = [
        ("FVCAM", loc("crates/fvcam")),
        ("LBMHD3D", loc("crates/lbmhd")),
        ("PARATEC", loc("crates/paratec")),
        ("GTC", loc("crates/gtc")),
    ];
    print!("{}", render::table2(&ours).render());
}

fn fig2(scale: usize) {
    eprintln!("capturing FVCAM traffic on a 1/{scale} D mesh (64 MPI ranks)...");
    let (m1, ranks) = experiments::fig2_traffic(1, scale);
    let (m2, _) = experiments::fig2_traffic(4, scale);
    print!("{}", render::fig2(&m1, &m2, ranks));
}

fn validate_all() {
    let cases = [
        ("Table 3 (FVCAM)", experiments::fvcam_rows(), paper::table3()),
        ("Table 4 (GTC)", experiments::gtc_rows(), paper::table4()),
        ("Table 5 (LBMHD3D)", experiments::lbmhd_rows(), paper::table5()),
        ("Table 6 (PARATEC)", experiments::paratec_rows(), paper::table6()),
    ];
    for (name, ours, published) in cases {
        let shape = validate::compare(&ours, &published);
        println!(
            "{name}: ordering agreement {:.0}%, typical factor {:.2}x over {} rows",
            shape.ordering * 100.0,
            shape.factor,
            shape.rows
        );
        print!("{}", validate::diff_table(name, &ours, &published));
        println!();
    }
}
