//! Renders reproduced results in the paper's table/figure layouts.

use hec_arch::Platform;
use report::plot::{bar_chart, xy_chart, Series};
use report::Table;

use crate::experiments::{Cell, Fig8App, Row};

/// Paper Table 1: architectural highlights (straight from the platform
/// descriptors, which carry the measured values).
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: Architectural highlights of the evaluated platforms",
        &[
            "Platform",
            "CPU/Node",
            "Clock (MHz)",
            "Peak (GF/s)",
            "Stream BW (GB/s)",
            "Bytes/Flop",
            "MPI Lat (usec)",
            "MPI BW (GB/s)",
            "Network",
        ],
    );
    for p in Platform::all() {
        // SSP mode shares the X1 row in the paper; keep it for completeness.
        t.push_row(vec![
            p.id.label().into(),
            p.cpus_per_node.to_string(),
            format!("{:.0}", p.clock_mhz),
            format!("{:.1}", p.peak_gflops),
            format!("{:.1}", p.stream_bw_gbps),
            format!("{:.2}", p.bytes_per_flop()),
            format!("{:.1}", p.net.latency_us),
            format!("{:.2}", p.net.bw_gbps),
            p.net.topology.label().into(),
        ]);
    }
    t
}

/// Paper Table 2: application overview, with this reproduction's line
/// counts alongside the originals'.
pub fn table2(our_loc: &[(&str, usize)]) -> Table {
    let mut t = Table::new(
        "Table 2: Overview of the scientific applications",
        &["Name", "Paper LoC", "Our LoC", "Discipline", "Methods", "Structure"],
    );
    let rows = [
        ("FVCAM", "200,000+", "Climate Modeling", "Finite Volume, Navier-Stokes, FFT", "Grid"),
        ("LBMHD3D", "1,500", "Plasma Physics", "MHD, Lattice Boltzmann", "Lattice/Grid"),
        ("PARATEC", "50,000", "Material Science", "DFT, Kohn-Sham, FFT", "Fourier/Grid"),
        ("GTC", "5,000", "Magnetic Fusion", "PIC, gyro-averaged Vlasov-Poisson", "Particle/Grid"),
    ];
    for (name, paper_loc, disc, meth, strct) in rows {
        let ours = our_loc
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, l)| l.to_string())
            .unwrap_or_else(|| "?".into());
        t.push_row(vec![
            name.into(),
            paper_loc.into(),
            ours,
            disc.into(),
            meth.into(),
            strct.into(),
        ]);
    }
    t
}

/// Renders one of Tables 3–6: rows of (decomp/label, P) × platform pairs
/// of `Gflop/P` and `%pk`.
pub fn perf_table(title: &str, platforms: &[&str; 7], rows: &[Row]) -> Table {
    let mut headers: Vec<String> = vec!["Config".into(), "P".into()];
    for p in platforms.iter() {
        if *p == "(n/a)" {
            continue;
        }
        headers.push(format!("{p} GF/P"));
        headers.push(format!("{p} %pk"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &hdr_refs);
    for r in rows {
        let mut cells = vec![r.label.clone(), r.procs.to_string()];
        for (ci, name) in platforms.iter().enumerate() {
            if *name == "(n/a)" {
                continue;
            }
            let (g, p) = match r.cells[ci] {
                Some(c) => (format!("{:.2}", c.gflops), format!("{:.1}", c.pct_peak)),
                None => ("—".into(), "—".into()),
            };
            cells.push(g);
            cells.push(p);
        }
        t.push_row(cells);
    }
    t
}

/// Renders the paper table for one application — the single source of
/// each table's title, platform set, and rows, shared by the `repro
/// table3`–`table6` subcommands.
pub fn app_table(app: hec_serve::engine::AppId) -> Table {
    use hec_serve::engine::AppId;
    let (title, platforms, rows) = match app {
        AppId::Fvcam => (
            "Table 3: FVCAM performance on the D mesh (0.5 x 0.625 deg)",
            &report::paper::FVCAM_PLATFORMS,
            crate::experiments::fvcam_rows(),
        ),
        AppId::Gtc => (
            "Table 4: GTC performance (weak scaling, 3.2M particles/processor)",
            &report::paper::PLATFORMS,
            crate::experiments::gtc_rows(),
        ),
        AppId::Lbmhd => (
            "Table 5: LBMHD3D performance",
            &report::paper::PLATFORMS,
            crate::experiments::lbmhd_rows(),
        ),
        AppId::Paratec => (
            "Table 6: PARATEC performance (488-atom CdSe quantum dot)",
            &report::paper::PLATFORMS,
            crate::experiments::paratec_rows(),
        ),
    };
    perf_table(title, platforms, &rows)
}

/// Figure 3: percentage of peak vs processor count (selected FVCAM
/// configurations), one marker per platform.
pub fn fig3(rows: &[Row], platforms: &[&str; 7]) -> String {
    let selected: Vec<&Row> = rows
        .iter()
        .filter(|r| {
            (r.procs == 32 && r.label == "1D")
                || (r.procs == 256 && r.label.contains("Pz=4"))
                || (r.procs == 336 && r.label.contains("Pz=7"))
                || (r.procs == 672 && r.label.contains("Pz=7"))
        })
        .collect();
    let markers = ['p', 'i', 'o', 'x', 'e', 'E', 's'];
    let series: Vec<Series> = platforms
        .iter()
        .enumerate()
        .filter(|(_, n)| **n != "(n/a)")
        .map(|(ci, name)| Series {
            label: name.to_string(),
            points: selected
                .iter()
                .map(|r| (r.procs as f64, r.cells[ci].map(|c| c.pct_peak)))
                .collect(),
            marker: markers[ci],
        })
        .collect();
    xy_chart("Figure 3: FVCAM percentage of peak vs processors (D mesh)", &series, 64, 18, false)
}

/// Figure 4: simulated days per wall-clock day vs processor count.
pub fn fig4(rows: &[Row], platforms: &[&str; 7], steps_per_day: f64) -> String {
    let markers = ['p', 'i', 'o', 'x', 'e', 'E', 's'];
    let series: Vec<Series> = platforms
        .iter()
        .enumerate()
        .filter(|(_, n)| **n != "(n/a)")
        .map(|(ci, name)| Series {
            label: name.to_string(),
            points: rows
                .iter()
                .map(|r| {
                    (
                        r.procs as f64,
                        r.cells[ci].map(|c| {
                            fvcam::model::simulated_days_per_day(c.step_secs, steps_per_day)
                        }),
                    )
                })
                .collect(),
            marker: markers[ci],
        })
        .collect();
    xy_chart("Figure 4: FVCAM simulated days per wall-clock day (D mesh)", &series, 64, 18, true)
}

/// Figure 8: 256-processor summary — % of peak and speed relative to ES,
/// per application per platform.
pub fn fig8(apps: &[Fig8App], platforms: &[&str; 7]) -> String {
    let mut out = String::new();
    for metric in ["percent of peak", "speed relative to ES"] {
        for app in apps {
            let es = app.cells[5];
            let bars: Vec<(String, f64)> = platforms
                .iter()
                .enumerate()
                .filter_map(|(ci, name)| {
                    let c: Cell = app.cells[ci]?;
                    let v = if metric == "percent of peak" {
                        c.pct_peak
                    } else {
                        c.gflops / es?.gflops
                    };
                    Some((name.to_string(), v))
                })
                .collect();
            out.push_str(&bar_chart(
                &format!("Figure 8 ({metric}): {} @ 256 processors", app.app),
                &bars,
                40,
            ));
            out.push('\n');
        }
    }
    out
}

/// Figure 2: ASCII heat maps of the captured communication matrices.
pub fn fig2(matrix_1d: &[u64], matrix_2d: &[u64], ranks: usize) -> String {
    let render = |m: &[u64], title: &str| -> String {
        let max = m.iter().copied().max().unwrap_or(1).max(1) as f64;
        let mut s = format!("{title}\n");
        for src in 0..ranks {
            for dst in 0..ranks {
                let v = m[src * ranks + dst] as f64;
                s.push(if v == 0.0 {
                    '.'
                } else {
                    let t = 1.0 + 8.0 * (1.0 + (v / max).log10() / 4.0).clamp(0.0, 1.0);
                    char::from_digit(t as u32, 10).unwrap_or('9')
                });
            }
            s.push('\n');
        }
        let total: u64 = m.iter().sum();
        s.push_str(&format!("total volume: {:.1} MB per step\n", total as f64 / 1e6));
        s
    };
    format!(
        "{}\n{}",
        render(matrix_1d, "Figure 2(a): FVCAM 1D decomposition, 64 MPI processes"),
        render(matrix_2d, "Figure 2(b): FVCAM 2D (Pz=4) decomposition, 64 MPI processes"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn table1_lists_all_platforms() {
        let t = table1();
        assert_eq!(t.rows.len(), 8);
        let s = t.render();
        assert!(s.contains("Crossbar") && s.contains("SX-8"));
    }

    #[test]
    fn table2_includes_our_loc() {
        let t = table2(&[("GTC", 2500), ("LBMHD3D", 2200)]);
        let s = t.render();
        assert!(s.contains("2500"));
        assert!(s.contains("200,000+"));
    }

    #[test]
    fn perf_table_renders_gtc() {
        let rows = experiments::gtc_rows();
        let t = perf_table("Table 4: GTC", &report::paper::PLATFORMS, &rows);
        let s = t.render();
        assert!(s.contains("100 p/c"));
        assert!(s.contains("2048"));
    }

    #[test]
    fn fig3_and_fig4_render() {
        let rows = experiments::fvcam_rows();
        let f3 = fig3(&rows, &report::paper::FVCAM_PLATFORMS);
        assert!(f3.contains("Figure 3"));
        let f4 = fig4(&rows, &report::paper::FVCAM_PLATFORMS, 480.0);
        assert!(f4.contains("Figure 4"));
    }

    #[test]
    fn fig8_renders_bars() {
        let apps = experiments::fig8_apps();
        let s = fig8(&apps, &report::paper::PLATFORMS);
        assert!(s.contains("LBMHD3D"));
        assert!(s.contains("#"));
    }
}
