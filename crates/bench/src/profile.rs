//! `repro profile` — structured per-phase profiles from measured captures.
//!
//! Runs every application's calibration capture (the same captures the
//! measured Table 3–6 path consumes), derives a representative measured
//! workload profile from each, and writes one `PROFILE_<app>.json` per
//! application next to the `BENCH_*.json` artifacts. Each file carries
//! the raw capture — per-phase hardware-style counters plus span
//! timings — and the derived per-processor workload, so profile changes
//! can be diffed across commits the same way bench results are.

use hec_arch::WorkloadProfile;
use hec_core::json::{Json, ToJson};
use hec_core::probe::Capture;

/// One application's profile artifact.
pub struct AppProfile {
    /// Application name as the tables spell it.
    pub app: &'static str,
    /// The owning crate's stable artifact tag (`PROFILE_<tag>.json`).
    pub tag: &'static str,
    /// The production configuration the workload was rescaled to.
    pub config: String,
    /// Named calibration captures (PARATEC has two; the rest one).
    pub captures: Vec<(&'static str, Capture)>,
    /// The measured per-processor workload derived from the captures.
    pub workload: WorkloadProfile,
}

impl ToJson for AppProfile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", Json::Str(self.app.to_string())),
            ("config", Json::Str(self.config.clone())),
            (
                "captures",
                Json::Arr(
                    self.captures
                        .iter()
                        .map(|(name, cap)| {
                            Json::obj([
                                ("name", Json::Str(name.to_string())),
                                ("capture", cap.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("workload", self.workload.to_json()),
        ])
    }
}

/// Collects all four applications' profiles at a representative Table
/// 3–6 operating point (P = 256 everywhere it is feasible).
pub fn collect() -> Vec<AppProfile> {
    let mut out = Vec::new();

    out.push(AppProfile {
        app: "GTC",
        tag: gtc::ARTIFACT_TAG,
        config: "P=256, 100 particles/cell".into(),
        captures: vec![("calibration", gtc::model::calibration_capture().clone())],
        workload: gtc::model::measured_workload(256),
    });

    out.push(AppProfile {
        app: "LBMHD3D",
        tag: lbmhd::ARTIFACT_TAG,
        config: "P=256, 512^3 grid".into(),
        captures: vec![("calibration", lbmhd::model::calibration_capture().clone())],
        workload: lbmhd::model::measured_workload(512, 256),
    });

    {
        use fvcam::model::FvConfig;
        let base = FvConfig { procs: 256, pz: 4, threads: 1 };
        let workload = fvcam::model::measured_workload(base)
            .or_else(|| fvcam::model::measured_workload(FvConfig { threads: 4, ..base }))
            .expect("FVCAM P=256 Pz=4 must be feasible with 1 or 4 threads");
        out.push(AppProfile {
            app: "FVCAM",
            tag: fvcam::ARTIFACT_TAG,
            config: "P=256, 2D Pz=4, D mesh".into(),
            captures: vec![("calibration", fvcam::model::calibration_capture().clone())],
            workload,
        });
    }

    {
        let cal = paratec::model::calibration();
        out.push(AppProfile {
            app: "PARATEC",
            tag: paratec::ARTIFACT_TAG,
            config: "P=256, 488-atom CdSe".into(),
            captures: vec![("fft", cal.fft.clone()), ("gemm", cal.gemm.clone())],
            workload: paratec::model::measured_workload(256),
        });
    }

    out
}

/// The artifact file name for one profile, keyed by the owning crate's
/// stable tag.
pub fn file_name(p: &AppProfile) -> String {
    format!("PROFILE_{}.json", p.tag)
}

/// Runs the captures and writes the profiles into the current directory
/// with a fresh metadata stamp (the standalone `repro profile` entry
/// point).
pub fn run() {
    let meta = crate::artifact::Meta::collect(0, 0, 0, 0);
    run_into(&crate::artifact::Writer::cwd(&meta));
}

/// Runs the captures, prints a per-phase summary, and writes one
/// `PROFILE_<tag>.json` per application through `w`.
pub fn run_into(w: &crate::artifact::Writer) {
    for p in collect() {
        println!("== {} ({}) ==", p.app, p.config);
        for (name, cap) in &p.captures {
            for (phase, c) in cap.deterministic() {
                let t = cap
                    .timings
                    .get(phase)
                    .map(|s| format!("  {:.3} ms over {} spans", s.total_ns as f64 / 1e6, s.calls))
                    .unwrap_or_default();
                println!(
                    "  {name:<12} {phase:<28} {:>14} flops  {:>14} B unit-stride{t}",
                    c.flops,
                    c.unit_stride_bytes + c.gather_scatter_bytes,
                );
            }
        }
        println!("  derived workload ({} phases):", p.workload.phases.len());
        for ph in &p.workload.phases {
            println!("    {:<28} {:>14.3e} flops/proc/step", ph.name, ph.flops);
        }
        let name = file_name(&p);
        let payload = [("source", Json::Str("repro profile".into())), ("profile", p.to_json())];
        if let Err(e) = w.write(&name, payload) {
            eprintln!("warning: could not write {name}: {e}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hec_core::json::FromJson;

    #[test]
    fn every_app_profile_round_trips_through_json() {
        for p in collect() {
            let text = p.to_json().emit_pretty();
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed.field("app").unwrap().as_str().unwrap(), p.app);
            // The embedded captures parse back to identical counter maps.
            let Json::Arr(caps) = parsed.field("captures").unwrap() else { panic!() };
            assert_eq!(caps.len(), p.captures.len());
            for (j, (_, cap)) in caps.iter().zip(&p.captures) {
                let back = Capture::from_json(j.field("capture").unwrap()).unwrap();
                assert_eq!(back.deterministic(), cap.deterministic());
            }
            // The workload is non-trivial: every phase carries real work.
            assert!(!p.workload.phases.is_empty());
            for ph in &p.workload.phases {
                assert!(ph.flops > 0.0, "{}: {}", p.app, ph.name);
            }
        }
    }
}
