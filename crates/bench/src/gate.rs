//! `repro gate` — loose parallel-speedup gate over harness artifacts.
//!
//! CI runs the harness with `HEC_THREADS=2` and then asserts that the
//! threaded leg of the gated kernels actually beat their serial leg
//! (`speedup > 1.0` — deliberately loose; `repro diff` owns the tight
//! regression thresholds). A threaded leg that is *slower* than serial
//! means the parallel path re-materializes state per call or serializes
//! on a lock — exactly the pathology this PR's LBMHD rework removed —
//! and should fail the build even when absolute throughput looks fine.
//!
//! On a box without two hardware threads the comparison is meaningless
//! (two workers time-share one core), so the gate skips with a note
//! instead of failing. Exit codes follow `repro diff`: 0 clean/skip,
//! 1 findings, 2 usage.

use std::collections::BTreeMap;
use std::path::Path;

use hec_core::json::Json;

use crate::artifact;
use crate::diff::{EXIT_FINDINGS, EXIT_OK, EXIT_USAGE};

/// Case-name prefixes whose threaded legs must show `speedup > 1.0`.
/// `gemm/dgemm` lives in `BENCH_kernels.json`, `lbmhd/` in
/// `BENCH_apps.json`; the gate scans both artifacts uniformly.
pub const GATED_PREFIXES: &[&str] = &["gemm/dgemm", "lbmhd/"];

/// Result of gating one artifact directory.
#[derive(Debug)]
pub struct GateReport {
    /// `(case name, speedup)` for every gated threaded leg found.
    pub checked: Vec<(String, f64)>,
    /// Human-readable failures (no speedup, or speedup ≤ 1).
    pub failures: Vec<String>,
    /// Why the gate did not run, when it did not.
    pub skipped: Option<String>,
}

impl GateReport {
    /// True when the gate ran and every gated case passed.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Applies the speedup gate to loaded artifact documents. `parallelism`
/// is the machine's hardware thread count: below 2 the gate is
/// vacuous and skips.
pub fn gate_docs(docs: &BTreeMap<String, Json>, parallelism: usize) -> GateReport {
    if parallelism < 2 {
        return GateReport {
            checked: Vec::new(),
            failures: Vec::new(),
            skipped: Some(format!(
                "gate skipped: {parallelism} hardware thread(s) — a 2-worker speedup \
                 cannot exceed 1.0 on this machine"
            )),
        };
    }
    let mut checked = Vec::new();
    let mut failures = Vec::new();
    for doc in docs.values() {
        let Some(samples) = doc.get("samples").and_then(Json::as_arr) else {
            continue;
        };
        for s in samples {
            let Some(name) = s.get("name").and_then(Json::as_str) else {
                continue;
            };
            if !GATED_PREFIXES.iter().any(|p| name.starts_with(p)) {
                continue;
            }
            // Only the threaded legs carry a meaningful speedup; the t1
            // leg's is 1.0 by construction.
            let threads = s.get("threads").and_then(Json::as_f64).unwrap_or(1.0);
            if threads < 2.0 {
                continue;
            }
            match s.get("speedup").and_then(Json::as_f64) {
                Some(sp) => {
                    checked.push((name.to_string(), sp));
                    if sp <= 1.0 {
                        failures.push(format!(
                            "{name}: {sp:.3}x with {threads:.0} workers — threaded leg \
                             no faster than serial"
                        ));
                    }
                }
                None => failures.push(format!("{name}: threaded leg has no speedup field")),
            }
        }
    }
    if checked.is_empty() {
        failures.push(format!(
            "no gated samples found (want threaded legs named {GATED_PREFIXES:?}) — \
             harness artifacts missing or renamed"
        ));
    }
    GateReport { checked, failures, skipped: None }
}

/// The `repro gate [dir]` entry point: loads the directory, gates, prints
/// the verdict, and returns the exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let dir = match args {
        [] => crate::pipeline::DEFAULT_DIR,
        [d] => d.as_str(),
        _ => {
            eprintln!("usage: repro gate [dir]");
            return EXIT_USAGE;
        }
    };
    let docs = match artifact::load_dir(Path::new(dir)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("repro gate: {e}");
            return EXIT_USAGE;
        }
    };
    let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let report = gate_docs(&docs, parallelism);
    if let Some(note) = &report.skipped {
        println!("{note}");
        return EXIT_OK;
    }
    for (name, sp) in &report.checked {
        println!("gate: {name} speedup {sp:.3}x");
    }
    if report.clean() {
        println!("gate: {} gated case(s) all beat serial", report.checked.len());
        EXIT_OK
    } else {
        for f in &report.failures {
            eprintln!("gate FAIL: {f}");
        }
        EXIT_FINDINGS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, threads: f64, speedup: Option<f64>) -> Json {
        let mut fields =
            vec![("name", Json::Str(name.to_string())), ("threads", Json::Num(threads))];
        if let Some(s) = speedup {
            fields.push(("speedup", Json::Num(s)));
        }
        Json::obj(fields)
    }

    fn docs(samples: Vec<Json>) -> BTreeMap<String, Json> {
        let doc = Json::obj([("samples", Json::Arr(samples))]);
        [("BENCH_kernels.json".to_string(), doc)].into()
    }

    #[test]
    fn passing_speedups_are_clean() {
        let d = docs(vec![
            sample("gemm/dgemm_128/t1", 1.0, Some(1.0)),
            sample("gemm/dgemm_128/t2", 2.0, Some(1.6)),
            sample("lbmhd/collide_stream_24cubed/t2", 2.0, Some(1.8)),
            sample("stream/triad_4096/t2", 2.0, Some(0.4)), // not gated
        ]);
        let r = gate_docs(&d, 4);
        assert!(r.clean(), "{:?}", r.failures);
        assert_eq!(r.checked.len(), 2);
    }

    #[test]
    fn slow_threaded_leg_fails() {
        let d = docs(vec![sample("lbmhd/collide_stream_24cubed/t2", 2.0, Some(0.97))]);
        let r = gate_docs(&d, 4);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("0.970x"), "{}", r.failures[0]);
    }

    #[test]
    fn missing_gated_samples_fail_rather_than_silently_pass() {
        let d = docs(vec![sample("stream/triad_4096/t2", 2.0, Some(1.5))]);
        let r = gate_docs(&d, 4);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("no gated samples"), "{}", r.failures[0]);
    }

    #[test]
    fn single_core_machines_skip_with_a_note() {
        let d = docs(vec![sample("gemm/dgemm_128/t2", 2.0, Some(0.5))]);
        let r = gate_docs(&d, 1);
        assert!(r.skipped.is_some());
        assert!(r.clean());
        assert!(r.checked.is_empty());
    }

    #[test]
    fn serial_legs_are_not_gated() {
        // A t1 leg with speedup 1.0 must not trip the "≤ 1.0" rule.
        let d = docs(vec![
            sample("gemm/dgemm_64/t1", 1.0, Some(1.0)),
            sample("gemm/dgemm_64/t2", 2.0, Some(1.2)),
        ]);
        let r = gate_docs(&d, 2);
        assert!(r.clean(), "{:?}", r.failures);
        assert_eq!(r.checked.len(), 1);
    }
}
