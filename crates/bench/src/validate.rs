//! Shape validation against the paper's published values.
//!
//! We do not chase absolute numbers (the substrate is a model); the
//! validation criteria, recorded per table in EXPERIMENTS.md, are:
//!
//! 1. **Ordering** — does our model rank the platforms the way the paper's
//!    measurements do? (pairwise ordering agreement);
//! 2. **Factor** — is the typical multiplicative error bounded?
//! 3. **Trend** — do the paper's qualitative scaling statements hold
//!    (e.g. %peak falls with P for the fixed-size problems)?

use report::paper::{ordering_agreement, typical_ratio, PaperRow};

use crate::experiments::Row;

/// Shape scores for one table.
#[derive(Clone, Copy, Debug)]
pub struct Shape {
    /// Mean pairwise platform-ordering agreement over rows (0–1).
    pub ordering: f64,
    /// Geometric-mean multiplicative error vs the paper.
    pub factor: f64,
    /// Rows compared.
    pub rows: usize,
}

/// Matches reproduced rows against published rows by (procs, label-ish)
/// and computes the shape scores.
pub fn compare(ours: &[Row], paper: &[PaperRow]) -> Shape {
    let mut ord_sum = 0.0;
    let mut ratio_sum = 0.0;
    let mut n = 0usize;
    for p in paper {
        // Match on processor count and label when the paper row has one.
        let m = ours.iter().find(|r| {
            r.procs == p.procs
                && (p.label.is_empty() || r.label.contains(&p.label) || p.label.contains(&r.label))
        });
        let Some(m) = m else { continue };
        let our_g: Vec<Option<f64>> = m.cells.iter().map(|c| c.map(|c| c.gflops)).collect();
        ord_sum += ordering_agreement(&our_g, &p.gflops);
        ratio_sum += typical_ratio(&our_g, &p.gflops).ln();
        n += 1;
    }
    if n == 0 {
        return Shape { ordering: 0.0, factor: f64::INFINITY, rows: 0 };
    }
    Shape { ordering: ord_sum / n as f64, factor: (ratio_sum / n as f64).exp(), rows: n }
}

/// Renders a side-by-side `ours vs paper` diff for calibration work.
pub fn diff_table(title: &str, ours: &[Row], paper: &[PaperRow]) -> String {
    let mut out = format!("{title}: reproduced vs published Gflop/P (ratio)\n");
    out.push_str(&format!(
        "{:<12} {:>6}  {}\n",
        "config",
        "P",
        report::paper::PLATFORMS.iter().map(|p| format!("{p:>18}")).collect::<String>()
    ));
    for p in paper {
        let m = ours.iter().find(|r| {
            r.procs == p.procs
                && (p.label.is_empty() || r.label.contains(&p.label) || p.label.contains(&r.label))
        });
        let Some(m) = m else { continue };
        out.push_str(&format!("{:<12} {:>6}  ", p.label, p.procs));
        for (c, pub_g) in m.cells.iter().zip(&p.gflops) {
            let cell = match (c, pub_g) {
                (Some(c), Some(g)) => {
                    format!("{:>6.2}/{:<5.2}x{:<4.1}", c.gflops, g, c.gflops / g)
                }
                (Some(c), None) => format!("{:>6.2}/  —       ", c.gflops),
                (None, Some(g)) => format!("     —/{g:<5.2}     "),
                (None, None) => "        —         ".into(),
            };
            out.push_str(&format!("{cell:>18}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn gtc_shape_is_comparable() {
        let shape = compare(&experiments::gtc_rows(), &report::paper::table4());
        assert_eq!(shape.rows, 6);
        assert!(shape.ordering > 0.0);
        assert!(shape.factor.is_finite());
    }

    #[test]
    fn diff_table_renders() {
        let s = diff_table("T4", &experiments::gtc_rows(), &report::paper::table4());
        assert!(s.contains("T4"));
        assert!(s.contains('x'));
    }

    #[test]
    fn empty_comparison_is_flagged() {
        let shape = compare(&[], &report::paper::table4());
        assert_eq!(shape.rows, 0);
        assert!(shape.factor.is_infinite());
    }
}
