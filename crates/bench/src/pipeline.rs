//! `repro all [dir]` — the one-command artifact pipeline.
//!
//! Regenerates every artifact the suite produces into a single output
//! directory, each stamped with the same [`crate::artifact::Meta`]
//! block, so one invocation yields a directory `repro diff` can compare
//! against any other run:
//!
//! * `TABLE_<tag>.json` — Tables 3–6 as the serve engine's sweep
//!   documents (cell values derived from measured counters; exact).
//! * `CANON_eval.json` — the canonical response bytes for every eval
//!   query in the load workload (the serving determinism contract,
//!   byte for byte; exact).
//! * `PROFILE_<tag>.json` — per-phase calibration captures and derived
//!   workloads (counters exact, span timings ignored).
//! * `BENCH_kernels.json` / `BENCH_apps.json` — harness timings
//!   (names exact, throughput thresholded).
//! * `BENCH_serve.json` / `BENCH_cluster.json` — load tests against an
//!   in-process server and cluster (error counts exact, throughput and
//!   latency thresholded).
//!
//! Sample sizes are tuned for a CI smoke by default and overridable via
//! `HEC_REPRO_SAMPLES` / `HEC_REPRO_SECS` / `HEC_REPRO_CLIENTS` /
//! `HEC_REPRO_REPLICAS` — they are provenance, not configuration, so
//! runs with different sampling still share a `config_hash`.

use hec_core::json::Json;
use hec_serve::engine::{self, AppId};
use hec_serve::request::Point;
use hec_serve::server;

use crate::artifact::{app_tag, Meta, Writer};

/// Default output directory for `repro all`.
pub const DEFAULT_DIR: &str = "artifacts";
/// Default timed samples per harness case (a smoke, not a deep run).
pub const DEFAULT_SAMPLES: usize = 3;
/// Default load-test duration per target, seconds.
pub const DEFAULT_SECS: u64 = 2;
/// Default closed-loop load clients.
pub const DEFAULT_CLIENTS: usize = 4;
/// Default cluster replicas.
pub const DEFAULT_REPLICAS: usize = 3;
/// Default open-loop offered rate for the pipeline load tests, rps.
pub const DEFAULT_RATE: usize = 400;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

/// Runs the full pipeline into `dir`.
///
/// # Errors
/// Returns a message naming the stage that failed: directory creation,
/// an infeasible evaluation point, a server that would not start, or a
/// load test that produced error responses.
pub fn run_all(dir: &str) -> Result<(), String> {
    let samples = env_usize("HEC_REPRO_SAMPLES", DEFAULT_SAMPLES);
    let secs = env_usize("HEC_REPRO_SECS", DEFAULT_SECS as usize) as u64;
    let clients = env_usize("HEC_REPRO_CLIENTS", DEFAULT_CLIENTS);
    let replicas = env_usize("HEC_REPRO_REPLICAS", DEFAULT_REPLICAS);
    // Pipeline load tests run open-loop at a fixed seeded rate so the
    // latency artifacts are free of coordinated omission and the
    // arrival schedule is identical run to run.
    let open = Some(crate::loadgen::OpenLoop {
        rate_rps: env_usize("HEC_REPRO_RATE", DEFAULT_RATE) as f64,
        seed: crate::loadgen::DEFAULT_SEED,
    });

    let meta = Meta::collect(samples, secs, clients, replicas);
    let w = Writer::new(dir, &meta).map_err(|e| format!("cannot create {dir}: {e}"))?;
    println!(
        "repro all -> {dir} (commit {}, {} workers, config {})",
        meta.git_commit, meta.hec_threads, meta.config_hash
    );

    println!("\n== tables (sweep documents, exact) ==");
    let eval = |p: &Point| engine::eval_cell(p.app, p.sel, &p.spec);
    for app in AppId::ALL {
        let doc = server::sweep_doc(app, eval);
        w.write(&format!("TABLE_{}.json", app_tag(app)), [("table", doc)])
            .map_err(|e| format!("cannot write TABLE_{}: {e}", app_tag(app)))?;
    }

    println!("\n== canonical eval responses (byte-exact) ==");
    let responses: Vec<Json> = crate::loadgen::eval_queries()
        .into_iter()
        .map(|q| {
            let point = Point::from_query(&q)
                .map_err(|e| format!("canonical query '{q}' is invalid: {e:?}"))?;
            let body = server::point_response_body(
                &point,
                engine::eval_cell(point.app, point.sel, &point.spec),
            );
            Ok(Json::obj([("query", Json::Str(q)), ("body", Json::Str(body))]))
        })
        .collect::<Result<_, String>>()?;
    w.write("CANON_eval.json", [("responses", Json::Arr(responses))])
        .map_err(|e| format!("cannot write CANON_eval.json: {e}"))?;

    println!("\n== profiles (counters exact, timings ignored) ==");
    crate::profile::run_into(&w);

    println!("== harness ({samples} samples; throughput thresholded) ==");
    crate::harness::run_into(&w, samples);

    println!("\n== serve load test ({secs}s x {clients} clients) ==");
    let cfg = server::ServeConfig::from_env(0);
    let srv = server::start(cfg).map_err(|e| format!("cannot start hec-serve: {e}"))?;
    let errors =
        crate::loadgen::run_into(&w, &format!("http://{}", srv.addr()), secs, clients, open);
    srv.shutdown();
    srv.join();
    if errors > 0 {
        return Err(format!("serve load test saw {errors} error responses"));
    }

    println!("\n== cluster load test ({replicas} replicas, {secs}s x {clients} clients) ==");
    let mut cfg = hec_cluster::ClusterConfig::from_env(replicas, 0);
    // The cluster phase exercises elasticity deterministically: two
    // seeded stall bursts push the inter-tick p99 over the autoscaler's
    // threshold (one scale-up), the calm remainder of the run drains it
    // back (one scale-down), and min/max pin the decisions to exactly
    // +1/−1 so `repro diff` can gate them bit-for-bit. Router workers
    // are pinned to 2 — not `HEC_CLUSTER_WORKERS` — because the queue
    // and latency signals the autoscaler samples must not depend on
    // the host's core count.
    cfg.workers = 2;
    cfg.autoscale = Some(hec_cluster::AutoscaleConfig::bounded(replicas, replicas + 1));
    cfg.faults = hec_cluster::FaultPlan::with(
        [40u64, 41, 52, 53]
            .into_iter()
            .map(|at| hec_cluster::FaultEvent {
                at_request: at,
                replica: 0,
                kind: hec_cluster::FaultKind::StallMs(250),
            })
            .collect(),
    );
    let cluster = hec_cluster::start(cfg).map_err(|e| format!("cannot start hec-cluster: {e}"))?;
    let errors =
        crate::loadgen::run_into(&w, &format!("http://{}", cluster.addr()), secs, clients, open);
    cluster.shutdown();
    cluster.join();
    if errors > 0 {
        return Err(format!("cluster load test saw {errors} error responses"));
    }

    println!("\nrepro all: artifacts complete in {dir}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_query_evaluates_to_a_feasible_point() {
        // run_all snapshots these bodies as the byte-exact contract;
        // every query must resolve to a real cell, not a null body.
        for q in crate::loadgen::eval_queries() {
            let p = Point::from_query(&q).unwrap();
            assert!(
                engine::eval_cell(p.app, p.sel, &p.spec).is_some(),
                "canonical query '{q}' is infeasible"
            );
        }
    }

    #[test]
    fn table_artifacts_cover_all_four_apps() {
        let tags: Vec<&str> = AppId::ALL.iter().map(|&a| app_tag(a)).collect();
        assert_eq!(tags, ["fvcam", "gtc", "lbmhd3d", "paratec"]);
    }

    #[test]
    fn env_knobs_reject_zero_and_garbage() {
        assert_eq!(env_usize("HEC_REPRO_NO_SUCH_VAR", 7), 7);
    }
}
