//! The reproduction harness: drivers that regenerate every table and
//! figure of the paper from the four applications' workload models and the
//! architectural performance models.
//!
//! * [`experiments`] — per-table result generation (predictions for every
//!   platform × configuration the paper reports).
//! * [`render`] — turns results into the paper's table/figure layouts.
//! * [`validate`] — side-by-side shape comparison against the published
//!   numbers (`report::paper`), used both by `repro validate` and the
//!   integration tests.
//! * [`harness`] — dependency-free micro/app benchmark timing
//!   (`repro harness`).
//! * [`loadgen`] — closed-loop load generator for the serve subsystem
//!   (`repro loadgen`, writes `BENCH_serve.json`).
//! * [`artifact`] — the metadata-stamped artifact writer/loader shared
//!   by every JSON-producing subcommand.
//! * [`pipeline`] — `repro all`: every artifact into one directory.
//! * [`diff`] — `repro diff`: the cross-commit regression gate.

pub mod artifact;
pub mod diff;
pub mod experiments;
pub mod gate;
pub mod harness;
pub mod loadgen;
pub mod pipeline;
pub mod profile;
pub mod render;
pub mod validate;
