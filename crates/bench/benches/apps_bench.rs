//! Application-kernel benchmarks: the hot loops of the four mini-apps,
//! measured on the host. These are the kernels whose *counts* feed the
//! architectural model; their host rates are reported for reference.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_lbmhd_collide(c: &mut Criterion) {
    use lbmhd::collide::{step, FLOPS_PER_POINT};
    use lbmhd::state::{set_equilibrium, Block, Moments};
    let n = 24;
    let mut src = Block::zeros(n, n, n);
    set_equilibrium(&mut src, |i, j, k| Moments {
        rho: 1.0 + 0.01 * ((i + j + k) as f64).sin(),
        mom: [0.01, -0.005, 0.002],
        b: [0.02, 0.01, -0.01],
    });
    let mut dst = Block::zeros(n, n, n);
    let mut g = c.benchmark_group("lbmhd");
    g.throughput(Throughput::Elements(((n * n * n) as f64 * FLOPS_PER_POINT) as u64));
    g.bench_function("collide_stream_24cubed", |bench| {
        bench.iter(|| step(std::hint::black_box(&src), &mut dst, 1.6, 1.2));
    });
    g.finish();
}

fn bench_gtc_particles(c: &mut Criterion) {
    use gtc::deposit::deposit;
    use gtc::geometry::PoloidalGrid;
    use gtc::particles::load_uniform;
    use gtc::push::{gather, push};
    let grid = PoloidalGrid { mpsi: 32, mtheta: 64, r_inner: 0.1, r_outer: 0.9 };
    let parts = load_uniform(50_000, 0.15, 0.85, 0.0, 1.0, 7);
    let mut charge: Vec<Vec<f64>> = (0..=2).map(|_| vec![0.0; grid.len()]).collect();
    let e: Vec<Vec<f64>> = (0..=2).map(|_| vec![0.1; grid.len()]).collect();

    let mut g = c.benchmark_group("gtc");
    g.throughput(Throughput::Elements(parts.len() as u64));
    g.bench_function("deposit_50k", |bench| {
        bench.iter(|| {
            for plane in charge.iter_mut() {
                plane.iter_mut().for_each(|v| *v = 0.0);
            }
            deposit(&grid, std::hint::black_box(&parts), &mut charge, 0.0, 0.5)
        });
    });
    g.bench_function("gather_push_50k", |bench| {
        let mut p = parts.clone();
        bench.iter(|| {
            let f = gather(&grid, &p, &e, &e, 0.0, 0.5);
            push(&grid, std::hint::black_box(&mut p), &f, 1e-4)
        });
    });
    g.finish();
}

fn bench_fvcam_advect(c: &mut Criterion) {
    use fvcam::advect::{advect_level, FLOPS_PER_CELL};
    use fvcam::grid::{LevelBlock, SphereGrid};
    let grid = SphereGrid::new(144, 91, 1);
    let mut q = LevelBlock::zeros(144, 91, 2);
    let mut cx = LevelBlock::zeros(144, 91, 2);
    let cy = LevelBlock::zeros(144, 91, 2);
    for j in 0..91 {
        for i in 0..144 {
            *q.get_mut(j as isize, i) = ((i + j) as f64 * 0.1).sin();
            *cx.get_mut(j as isize, i) = 0.3;
        }
    }
    let mut g = c.benchmark_group("fvcam");
    g.throughput(Throughput::Elements((144.0 * 91.0 * FLOPS_PER_CELL) as u64));
    g.bench_function("advect_level_144x91", |bench| {
        bench.iter(|| advect_level(&grid, std::hint::black_box(&mut q), &cx, &cy, 0));
    });

    use fvcam::polar::PolarFilter;
    let mut filter = PolarFilter::new(144);
    g.bench_function("polar_filter_144x91", |bench| {
        bench.iter(|| filter.apply(&grid, std::hint::black_box(&mut q), 0));
    });
    g.finish();
}

fn bench_paratec_fft(c: &mut Criterion) {
    use kernels::fft3d::{fft3, Grid3};
    use kernels::Complex64;
    let mut grid = Grid3::zeros(32, 32, 32);
    for (i, v) in grid.data.iter_mut().enumerate() {
        *v = Complex64::new((i as f64 * 0.01).sin(), 0.0);
    }
    let mut g = c.benchmark_group("paratec");
    g.throughput(Throughput::Elements((32 * 32 * 32) as u64));
    g.bench_function("fft3_32cubed", |bench| {
        bench.iter(|| fft3(std::hint::black_box(&mut grid)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lbmhd_collide,
    bench_gtc_particles,
    bench_fvcam_advect,
    bench_paratec_fft
);
criterion_main!(benches);
