//! Table-regeneration benchmarks: one benchmark per paper artifact,
//! timing the full pipeline (workload models × platform evaluation) that
//! produces each table and figure. `cargo bench -p bench tables` therefore
//! regenerates every table of the paper and reports how long each takes.

use bench::experiments;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table3_fvcam", |b| {
        b.iter(|| std::hint::black_box(experiments::fvcam_rows()))
    });
    g.bench_function("table4_gtc", |b| {
        b.iter(|| std::hint::black_box(experiments::gtc_rows()))
    });
    g.bench_function("table5_lbmhd", |b| {
        b.iter(|| std::hint::black_box(experiments::lbmhd_rows()))
    });
    g.bench_function("table6_paratec", |b| {
        b.iter(|| std::hint::black_box(experiments::paratec_rows()))
    });
    g.bench_function("fig8_summary", |b| {
        b.iter(|| std::hint::black_box(experiments::fig8_apps()))
    });
    g.finish();
}

fn bench_fig2_capture(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    // Reduced mesh: the full D-mesh capture is exercised by `repro fig2`.
    g.bench_function("fvcam_traffic_capture_1d", |b| {
        b.iter(|| std::hint::black_box(experiments::fig2_traffic(1, 16)))
    });
    g.bench_function("fvcam_traffic_capture_2d", |b| {
        b.iter(|| std::hint::black_box(experiments::fig2_traffic(4, 16)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_fig2_capture);
criterion_main!(benches);
