//! Microkernel benchmarks: the building blocks whose host-machine rates
//! anchor the suite (STREAM triad for Table 1's memory column, FFT and
//! GEMM for PARATEC's dominant phases).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kernels::blas::{dgemm, zgemm, Trans};
use kernels::fft::{Direction, FftPlan};
use kernels::stream::triad;
use kernels::Complex64;

fn bench_stream_triad(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream");
    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let b = vec![1.0f64; n];
        let cc = vec![2.0f64; n];
        let mut a = vec![0.0f64; n];
        g.throughput(Throughput::Bytes((n * 24) as u64));
        g.bench_with_input(BenchmarkId::new("triad", n), &n, |bench, _| {
            bench.iter(|| triad(std::hint::black_box(&mut a), &b, &cc, 3.0));
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    // Power of two (radix-2) and the FVCAM longitude length (Bluestein).
    for &n in &[256usize, 576, 1024] {
        let plan = FftPlan::new(n);
        let mut data: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64).sin(), 0.1)).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |bench, _| {
            bench.iter(|| plan.execute(std::hint::black_box(&mut data), Direction::Forward));
        });
    }
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[64usize, 128] {
        let a = vec![1.5f64; n * n];
        let b = vec![0.5f64; n * n];
        let mut out = vec![0.0f64; n * n];
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("dgemm", n), &n, |bench, _| {
            bench.iter(|| {
                dgemm(n, n, n, 1.0, &a, &b, 0.0, std::hint::black_box(&mut out))
            });
        });
        let az = vec![Complex64::new(1.0, 0.5); n * n];
        let bz = vec![Complex64::new(0.5, -0.25); n * n];
        let mut oz = vec![Complex64::ZERO; n * n];
        g.throughput(Throughput::Elements((8 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("zgemm", n), &n, |bench, _| {
            bench.iter(|| {
                zgemm(
                    Trans::None,
                    n,
                    n,
                    n,
                    Complex64::ONE,
                    &az,
                    &bz,
                    Complex64::ZERO,
                    std::hint::black_box(&mut oz),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stream_triad, bench_fft, bench_gemm);
criterion_main!(benches);
