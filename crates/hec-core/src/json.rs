//! A minimal JSON value type with emit and parse.
//!
//! Replaces `serde`/`serde_json` for the suite's needs: experiment and
//! bench results out, platform/profile descriptions round-tripped in
//! tests. Objects preserve insertion order so emitted files are stable
//! across runs (important for diffing `BENCH_*.json` artifacts).
//!
//! Types opt in by implementing [`ToJson`] / [`FromJson`] by hand — the
//! workspace policy (DESIGN.md §6) is explicit field mapping rather than
//! derive magic.

use std::fmt;

/// Maximum container nesting depth [`Json::parse`] accepts. The parser
/// recurses per nesting level, so adversarial input (the serve path
/// parses request bodies off the wire) must hit a parse error long
/// before it can exhaust the stack.
pub const MAX_PARSE_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] or [`FromJson`] conversions.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Human-readable description, with byte offset where applicable.
    pub msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Emit `self` as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Build `Self` back from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parses `Self` out of `v`.
    ///
    /// # Errors
    /// Returns [`JsonError`] when `v` has the wrong shape.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, as an error otherwise.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::new(format!("missing field '{key}'")))
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool inside, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Required numeric field of an object.
    pub fn num_field(&self, key: &str) -> Result<f64, JsonError> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| JsonError::new(format!("field '{key}' is not a number")))
    }

    /// Required string field of an object.
    pub fn str_field(&self, key: &str) -> Result<&str, JsonError> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| JsonError::new(format!("field '{key}' is not a string")))
    }

    /// Required boolean field of an object.
    pub fn bool_field(&self, key: &str) -> Result<bool, JsonError> {
        self.field(key)?
            .as_bool()
            .ok_or_else(|| JsonError::new(format!("field '{key}' is not a bool")))
    }

    /// Compact single-line emission.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty emission with two-space indentation and a trailing newline.
    pub fn emit_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    ///
    /// # Errors
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest round-trip formatting; integral values print
        // without a fraction, like serde_json's integer path.
        out.push_str(&format!("{x}"));
    } else {
        // JSON has no Inf/NaN; emit null, as serde_json does by default.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    /// Bumps the container nesting depth; errors (instead of recursing
    /// toward a stack overflow) past [`MAX_PARSE_DEPTH`].
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_PARSE_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: must be followed by \uDC00..DFFF.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            // hex4 leaves pos one past the last digit; the
                            // trailing pos += 1 below is for the simple
                            // escapes, so compensate.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = text.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits starting at `pos`; leaves `pos` one
    /// past the last digit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad hex in \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let x = text.parse::<f64>().map_err(|_| self.err("malformed number"))?;
        // `str::parse` rounds overflowing literals like `1e999` to ±Inf;
        // JSON has no non-finite numbers, and accepting them would let
        // wire input smuggle Inf/NaN into the models.
        if !x.is_finite() {
            return Err(self.err("number literal overflows to a non-finite value"));
        }
        Ok(Json::Num(x))
    }
}

// Blanket-ish impls for the primitives the suite serializes.

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::new("expected a number"))
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let x = v.as_f64().ok_or_else(|| JsonError::new("expected a number"))?;
        if x < 0.0 || x.fract() != 0.0 {
            return Err(JsonError::new(format!("{x} is not a usize")));
        }
        Ok(x as usize)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::new("expected a bool"))
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| JsonError::new("expected a string"))
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::new("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1.5", "3.25e2", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.emit()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = Json::obj([
            ("app", Json::Str("LBMHD3D".into())),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([
                        ("procs", Json::Num(64.0)),
                        ("gflops", Json::Arr(vec![Json::Num(0.14), Json::Null])),
                    ]),
                    Json::obj([("procs", Json::Num(256.0)), ("empty", Json::Obj(vec![]))]),
                ]),
            ),
            ("ok", Json::Bool(true)),
        ]);
        let compact = Json::parse(&v.emit()).unwrap();
        let pretty = Json::parse(&v.emit_pretty()).unwrap();
        assert_eq!(v, compact);
        assert_eq!(v, pretty);
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote\" backslash\\ newline\n tab\t unicode→ control\u{01} slash/";
        let v = Json::Str(s.to_string());
        let emitted = v.emit();
        assert!(emitted.contains("\\\""));
        assert!(emitted.contains("\\\\"));
        assert!(emitted.contains("\\n"));
        assert!(emitted.contains("\\u0001"));
        assert_eq!(Json::parse(&emitted).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""\u00e9\u2192""#).unwrap(), Json::Str("é→".to_string()));
        // Surrogate pair for U+1D11E (musical G clef).
        assert_eq!(Json::parse(r#""\ud834\udd1e""#).unwrap(), Json::Str("\u{1d11e}".to_string()));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let Json::Obj(fields) = &v else { panic!() };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(v.emit(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "[1 2]",
            "01x",
            "nul",
            "{\"a\":}",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud834\"",
            "[]extra",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn nesting_depth_is_limited() {
        // A document just inside the limit parses…
        let ok = "[".repeat(MAX_PARSE_DEPTH) + &"]".repeat(MAX_PARSE_DEPTH);
        assert!(Json::parse(&ok).is_ok());
        // …one level deeper is a parse error, not a stack overflow.
        let deep = "[".repeat(MAX_PARSE_DEPTH + 1) + &"]".repeat(MAX_PARSE_DEPTH + 1);
        assert!(Json::parse(&deep).is_err());
        // Adversarially deep input (far beyond the limit, unterminated)
        // must come back as an error while the stack is still shallow.
        let hostile = "[".repeat(1 << 20);
        assert!(Json::parse(&hostile).is_err());
        let hostile_objs = r#"{"a":"#.repeat(1 << 18);
        assert!(Json::parse(&hostile_objs).is_err());
        // Mixed nesting counts both container kinds.
        let mixed = r#"[{"k":"#.repeat(MAX_PARSE_DEPTH) + "0";
        assert!(Json::parse(&mixed).is_err());
        // Sibling (non-nested) containers do not accumulate depth.
        let wide = format!("[{}]", vec!["[]"; 10_000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn non_finite_number_literals_are_rejected() {
        for text in ["1e999", "-1e999", "1e308888", "[1,2,1e400]", r#"{"x":-2.5e310}"#] {
            assert!(Json::parse(text).is_err(), "{text:?} must not parse");
        }
        // Large but finite literals still parse.
        assert_eq!(Json::parse("1e308").unwrap(), Json::Num(1e308));
        assert_eq!(Json::parse("-1.7976931348623157e308").unwrap(), Json::Num(f64::MIN));
        // Underflow to zero is finite and fine.
        assert_eq!(Json::parse("1e-999").unwrap(), Json::Num(0.0));
    }

    #[test]
    fn numbers_emit_shortest_form() {
        assert_eq!(Json::Num(1.0).emit(), "1");
        assert_eq!(Json::Num(0.14).emit(), "0.14");
        assert_eq!(Json::Num(-2.5e-3).emit(), "-0.0025");
        assert_eq!(Json::Num(f64::NAN).emit(), "null");
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse(r#"{"name":"gtc","flops":12.5,"deep":{"x":[1,2]}}"#).unwrap();
        assert_eq!(v.str_field("name").unwrap(), "gtc");
        assert_eq!(v.num_field("flops").unwrap(), 12.5);
        assert_eq!(v.get("deep").unwrap().get("x").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.field("absent").is_err());
        assert!(v.num_field("name").is_err());
    }

    #[test]
    fn primitive_tojson_fromjson_round_trip() {
        let xs = vec![1.5f64, -2.0, 0.0];
        let j = xs.to_json();
        assert_eq!(Vec::<f64>::from_json(&j).unwrap(), xs);
        assert_eq!(usize::from_json(&Json::Num(7.0)).unwrap(), 7);
        assert!(usize::from_json(&Json::Num(7.5)).is_err());
        assert!(usize::from_json(&Json::Num(-1.0)).is_err());
        assert_eq!(String::from_json(&Json::Str("x".into())).unwrap(), "x");
    }
}
