//! Poison-tolerant `Mutex`/`Condvar`, replacing `parking_lot`.
//!
//! msim's runtime deliberately lets rank threads unwind through held
//! mailbox locks (a panicking rank poisons the *world*, not the lock, and
//! sibling ranks must still be able to inspect their queues to observe the
//! poisoning). `std`'s lock poisoning would turn that into a cascade of
//! `PoisonError` panics, so these wrappers recover the guard
//! unconditionally — exactly the semantics `parking_lot` provided.

use std::sync::{self, PoisonError};

/// Re-exported guard type; identical to [`std::sync::MutexGuard`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutex whose `lock` never fails: a poisoned lock is recovered.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`]; `wait` recovers from
/// poisoning like [`Mutex::lock`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases `guard` and blocks until notified; reacquires
    /// the lock (poison-tolerant) before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_after_a_panicking_holder() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the data stays reachable.
        let mut g = m.lock();
        *g += 1;
        assert_eq!(*g, 42);
    }

    #[test]
    fn condvar_handoff_works() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
            true
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
