//! Deterministic pseudo-random numbers.
//!
//! xoshiro256++ (Blackman & Vigna) seeded through splitmix64, the standard
//! pairing: splitmix64 decorrelates arbitrary user seeds (including 0 and
//! small integers) into the 256-bit state. The stream depends on nothing
//! but the seed — same seed, same sequence, on every platform and build —
//! which is what the particle-load golden tests and the seeded property
//! loops require.

/// The splitmix64 step, also used by `msim` for communicator ids.
#[inline]
pub fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Marsaglia polar transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s, spare_normal: None }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53 — the conventional conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is empty");
        // Multiply-shift rejection (Lemire): unbiased for all n < 2^64.
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Standard normal deviate (mean 0, variance 1), Marsaglia polar method.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * k);
                return u * k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(12345);
        let mut b = Rng::new(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        // splitmix64 expansion must keep the all-zero state unreachable.
        let mut r = Rng::new(0);
        let outputs: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
        assert!(outputs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn uniform_is_in_unit_interval_with_correct_moments() {
        let mut r = Rng::new(7);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.003, "variance {var}");
    }

    #[test]
    fn normal_has_unit_variance_and_zero_mean() {
        let mut r = Rng::new(99);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn below_is_unbiased_across_buckets() {
        let mut r = Rng::new(3);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[r.below(7)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = n / 7;
            assert!((c as i64 - expect as i64).abs() < (expect / 10) as i64, "bucket {i}: {c}");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let x = r.range(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&x));
        }
    }

    #[test]
    fn golden_first_outputs_are_stable() {
        // Pin the exact stream: any change to seeding or the generator is a
        // breaking change for every seeded experiment in the suite.
        let mut r = Rng::new(42);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut sm = 42u64;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        // First output is derivable by hand from the seeded state.
        let want0 = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        assert_eq!(got[0], want0);
        // And the stream must be reproducible wholesale.
        let mut r2 = Rng::new(42);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(got, again);
    }
}
