//! Scoped-thread parallel-for, replacing `rayon` for the OpenMP-style
//! loops of the mini-apps.
//!
//! The suite's parallel loops are coarse (z-slabs of a lattice block,
//! latitude bands of a sphere, particle chunks): a handful of contiguous
//! chunks handed to scoped threads is all the machinery they need. Work
//! is split into contiguous chunks — one per worker — so results
//! concatenate back in input order.
//!
//! Determinism contract: every decomposition here depends only on the
//! *input size*, never on the worker count, and reductions the callers
//! build on top (e.g. GTC's replicated-grid deposit) combine partial
//! results in chunk order. Disjoint-output loops (`par_chunks_mut`,
//! `par_map`) are bit-identical to their sequential forms for any worker
//! count; chunk-reduction loops are bit-identical across worker counts.

use std::num::NonZeroUsize;

/// Below this many items `par_map` runs inline on the caller: the
/// per-thread spawn cost (~10 µs) dwarfs any conceivable win on a
/// handful of cheap elements, and the small-problem bench cases must not
/// regress just because a threaded path exists. Callers with *few but
/// heavy* tasks should use [`Threads::par_tasks`], which has no cutoff.
pub const SERIAL_CUTOFF: usize = 32;

/// An explicit handle on the shared-memory worker count.
///
/// Apps resolve one of these at model-config time (`0` = auto) and pass
/// it down to their kernels, so a whole simulation runs at a coherent,
/// reproducible thread count instead of each loop re-reading the
/// environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Threads {
    workers: usize,
}

impl Threads {
    /// A handle running exactly `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Threads { workers: workers.max(1) }
    }

    /// Forced-serial mode: every parallel call runs inline on the
    /// caller. Useful for debugging and as the baseline in scaling
    /// measurements.
    pub fn serial() -> Self {
        Threads { workers: 1 }
    }

    /// Worker count from the environment: `HEC_THREADS` if set to a
    /// positive integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var("HEC_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Threads { workers: n };
                }
            }
        }
        let hw = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        Threads { workers: hw }
    }

    /// Worker count from an app config field: `0` means "auto"
    /// (delegate to [`Threads::from_env`]), anything else is explicit.
    pub fn from_config(workers: usize) -> Self {
        if workers == 0 {
            Threads::from_env()
        } else {
            Threads::new(workers)
        }
    }

    /// Number of worker threads parallel calls will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True when parallel calls run inline on the caller.
    pub fn is_serial(&self) -> bool {
        self.workers <= 1
    }

    /// A handle clamped so every worker gets at least
    /// `min_units_per_worker` of the `units` of work — the serial-cutoff
    /// rule for cheap element-wise loops, where spawn cost (~10 µs per
    /// thread) swamps the per-element work. With fewer than
    /// `2 × min_units_per_worker` units the result is serial; the worker
    /// count never exceeds `self.workers()`.
    ///
    /// `min_units_per_worker == 0` is treated as 1 (no clamping beyond
    /// the existing worker count).
    pub fn clamp_for(&self, units: usize, min_units_per_worker: usize) -> Threads {
        let per = min_units_per_worker.max(1);
        Threads { workers: self.workers.min(units / per).max(1) }
    }

    /// Applies `f` to every element of `items`, returning the results in
    /// input order. Equivalent to `items.iter().map(f).collect()` —
    /// including panic propagation: if any invocation panics, the panic
    /// resurfaces on the caller after all workers have stopped.
    ///
    /// Runs inline when only one worker is configured or `items` is
    /// shorter than [`SERIAL_CUTOFF`].
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 || items.len() < SERIAL_CUTOFF {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(workers);
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|c| scope.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                match h.join() {
                    Ok(v) => parts.push(v),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        parts.into_iter().flatten().collect()
    }

    /// Splits `data` into chunks of at most `chunk_len` elements and
    /// runs `f(chunk_index, chunk)` on the workers. The chunking is
    /// identical to `data.chunks_mut(chunk_len)`, so `chunk_index *
    /// chunk_len` recovers each chunk's offset. Chunks are disjoint, so
    /// the result is bit-identical to the sequential loop for any worker
    /// count.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`; worker panics resurface on the caller.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let mut chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
        let workers = self.workers.min(chunks.len());
        if workers <= 1 {
            for (i, c) in chunks {
                f(i, c);
            }
            return;
        }
        let per = chunks.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            while !chunks.is_empty() {
                let take = per.min(chunks.len());
                let group: Vec<(usize, &mut [T])> = chunks.drain(..take).collect();
                let f = &f;
                handles.push(scope.spawn(move || {
                    for (i, c) in group {
                        f(i, c);
                    }
                }));
            }
            for h in handles {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        });
    }

    /// Runs a small set of heavyweight, independent closures and returns
    /// their results in input order. Unlike [`Threads::par_map`] there
    /// is no item-count cutoff: each task is assumed to be worth a
    /// thread (e.g. one private charge-grid scatter, one Poisson
    /// plane). Tasks are grouped contiguously onto at most `workers`
    /// threads; worker panics resurface on the caller.
    pub fn par_tasks<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let workers = self.workers.min(tasks.len());
        if workers <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        let per = tasks.len().div_ceil(workers);
        let mut tasks = tasks;
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            while !tasks.is_empty() {
                let take = per.min(tasks.len());
                let group: Vec<F> = tasks.drain(..take).collect();
                handles.push(scope.spawn(move || group.into_iter().map(|t| t()).collect()));
            }
            for h in handles {
                match h.join() {
                    Ok(v) => parts.push(v),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        parts.into_iter().flatten().collect()
    }
}

/// Error returned by [`WorkerPool::try_submit`] when the admission queue
/// is full (or the pool is shutting down): the caller must shed the work
/// — explicit backpressure instead of unbounded queue growth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool admission queue is full")
    }
}

impl std::error::Error for QueueFull {}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: crate::sync::Mutex<std::collections::VecDeque<Job>>,
    jobs_cv: crate::sync::Condvar,
    capacity: usize,
    shutting_down: std::sync::atomic::AtomicBool,
}

/// A persistent bounded worker pool: long-lived service loops (the serve
/// subsystem) need workers that outlive any one call, unlike the scoped
/// fork-join loops [`Threads`] covers.
///
/// The admission queue is bounded at construction; [`WorkerPool::try_submit`]
/// refuses work with [`QueueFull`] instead of queueing without limit, so
/// memory stays bounded and callers can surface backpressure (HTTP 503).
/// [`WorkerPool::shutdown`] is graceful: already-admitted jobs are drained
/// before the workers exit. A panicking job is contained to that job — the
/// worker survives and keeps serving the queue.
pub struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads.workers()` workers sharing one admission queue of
    /// at most `queue_capacity` waiting jobs (clamped to ≥ 1).
    pub fn new(threads: Threads, queue_capacity: usize) -> WorkerPool {
        let shared = std::sync::Arc::new(PoolShared {
            queue: crate::sync::Mutex::new(std::collections::VecDeque::new()),
            jobs_cv: crate::sync::Condvar::new(),
            capacity: queue_capacity.max(1),
            shutting_down: std::sync::atomic::AtomicBool::new(false),
        });
        let workers = (0..threads.workers())
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut q = shared.queue.lock();
                        loop {
                            if let Some(j) = q.pop_front() {
                                break Some(j);
                            }
                            if shared.shutting_down.load(std::sync::atomic::Ordering::SeqCst) {
                                break None;
                            }
                            q = shared.jobs_cv.wait(q);
                        }
                    };
                    match job {
                        Some(j) => {
                            // Contain job panics to the job: the pool keeps
                            // its full worker complement either way.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(j));
                        }
                        None => return,
                    }
                })
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Admits `job` if the queue has room, waking one worker. Fails with
    /// [`QueueFull`] when `queue_capacity` jobs are already waiting or the
    /// pool is shutting down; the job is returned to the caller by value
    /// semantics (it was never run).
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), QueueFull> {
        if self.shared.shutting_down.load(std::sync::atomic::Ordering::SeqCst) {
            return Err(QueueFull);
        }
        {
            let mut q = self.shared.queue.lock();
            if q.len() >= self.shared.capacity {
                return Err(QueueFull);
            }
            q.push_back(Box::new(job));
        }
        self.shared.jobs_cv.notify_one();
        Ok(())
    }

    /// Jobs currently waiting for a worker (excludes jobs being run).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// The admission-queue bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// A cheap cloneable gauge over this pool's admission queue, for
    /// observability from threads that do not own the pool.
    pub fn queue_gauge(&self) -> QueueGauge {
        QueueGauge { shared: std::sync::Arc::clone(&self.shared) }
    }

    /// Graceful shutdown: refuses new admissions, lets the workers drain
    /// every already-admitted job, then joins them.
    pub fn shutdown(self) {
        self.shared.shutting_down.store(true, std::sync::atomic::Ordering::SeqCst);
        self.shared.jobs_cv.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Read-only view of a [`WorkerPool`]'s admission queue (see
/// [`WorkerPool::queue_gauge`]); outlives the pool harmlessly — after
/// shutdown it reads an empty queue.
#[derive(Clone)]
pub struct QueueGauge {
    shared: std::sync::Arc<PoolShared>,
}

impl QueueGauge {
    /// Jobs currently waiting for a worker.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// True when no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission-queue bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

/// Number of worker threads a parallel call will use for `n` items.
pub fn workers_for(n: usize) -> usize {
    Threads::from_env().workers().min(n).max(1)
}

/// [`Threads::par_map`] at the environment's worker count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Threads::from_env().par_map(items, f)
}

/// [`Threads::par_chunks_mut`] at the environment's worker count.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    Threads::from_env().par_chunks_mut(data, chunk_len, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<usize> = (0..1000).collect();
        let par = par_map(&items, |&x| x * x + 1);
        let seq: Vec<usize> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_preserves_order_for_uneven_splits() {
        for n in [0usize, 1, 2, 3, 7, 63, 64, 65, 1001] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(&items, |&x| x);
            assert_eq!(out, items, "n={n}");
        }
    }

    #[test]
    fn par_chunks_mut_equals_sequential_chunked_loop() {
        let mut par_data: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let mut seq_data = par_data.clone();
        let update = |idx: usize, c: &mut [f64]| {
            for v in c.iter_mut() {
                *v = *v * 2.0 + idx as f64;
            }
        };
        par_chunks_mut(&mut par_data, 16, update);
        for (i, c) in seq_data.chunks_mut(16).enumerate() {
            update(i, c);
        }
        assert_eq!(par_data, seq_data);
    }

    #[test]
    fn par_map_propagates_panics() {
        let items = vec![1, 2, 3, 4];
        let r = std::panic::catch_unwind(|| {
            Threads::new(4).par_tasks(
                items
                    .iter()
                    .map(|&x| move || if x == 3 { panic!("worker died") } else { x })
                    .collect::<Vec<_>>(),
            )
        });
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| {
            par_map(&(0..100).collect::<Vec<i32>>(), |&x| {
                if x == 63 {
                    panic!("worker died");
                }
                x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        let mut none: Vec<u8> = Vec::new();
        par_chunks_mut(&mut none, 4, |_, _| panic!("no chunks expected"));
        let no_tasks: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(Threads::new(4).par_tasks(no_tasks).is_empty());
    }

    #[test]
    fn threads_config_resolution() {
        assert_eq!(Threads::new(0).workers(), 1);
        assert!(Threads::serial().is_serial());
        assert_eq!(Threads::from_config(3).workers(), 3);
        // 0 = auto: whatever the env gives, it is at least one worker.
        assert!(Threads::from_config(0).workers() >= 1);
    }

    #[test]
    fn small_inputs_run_inline() {
        // Below the cutoff par_map must not spawn: a closure capturing a
        // !Sync-free counter via &Cell would not compile if sent across
        // threads, so instead verify results + rely on the code path.
        let items: Vec<usize> = (0..SERIAL_CUTOFF - 1).collect();
        let out = Threads::new(8).par_map(&items, |&x| x + 1);
        let seq: Vec<usize> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn clamp_for_selects_serial_below_the_cutoff() {
        let t = Threads::new(4);
        // Not enough work for even two workers: serial.
        assert!(t.clamp_for(4096, 32 * 1024).is_serial());
        assert!(t.clamp_for(0, 1024).is_serial());
        // Enough for two but not four.
        assert_eq!(t.clamp_for(80_000, 32 * 1024).workers(), 2);
        // Plenty of work: the full worker count survives.
        assert_eq!(t.clamp_for(1 << 20, 32 * 1024).workers(), 4);
        // min 0 behaves as min 1 (no division by zero).
        assert_eq!(t.clamp_for(8, 0).workers(), 4);
    }

    #[test]
    fn par_tasks_matches_sequential_order() {
        for n in [0usize, 1, 2, 3, 5, 8, 17] {
            for w in [1usize, 2, 4, 7] {
                let tasks: Vec<_> = (0..n).map(|i| move || i * 10).collect();
                let out = Threads::new(w).par_tasks(tasks);
                let seq: Vec<usize> = (0..n).map(|i| i * 10).collect();
                assert_eq!(out, seq, "n={n} w={w}");
            }
        }
    }

    #[test]
    fn worker_pool_runs_submitted_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = WorkerPool::new(Threads::new(3), 64);
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.capacity(), 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..40 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn worker_pool_enforces_queue_capacity() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        use std::sync::Barrier;
        // One worker, blocked on a barrier, so queued jobs stay queued.
        let pool = WorkerPool::new(Threads::new(1), 2);
        let gate = Arc::new(Barrier::new(2));
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&ran);
            pool.try_submit(move || {
                gate.wait();
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        // Wait until the worker has picked up the blocking job.
        while pool.queue_len() > 0 {
            std::thread::yield_now();
        }
        for _ in 0..2 {
            let ran = Arc::clone(&ran);
            pool.try_submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        // Queue is now at capacity: the next admission must be refused.
        let ran2 = Arc::clone(&ran);
        assert_eq!(
            pool.try_submit(move || {
                ran2.fetch_add(1, Ordering::SeqCst);
            }),
            Err(QueueFull)
        );
        gate.wait();
        // Shutdown drains the two admitted jobs; the rejected one never ran.
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = WorkerPool::new(Threads::new(1), 16);
        let done = Arc::new(AtomicUsize::new(0));
        pool.try_submit(|| panic!("job panic must not kill the worker")).unwrap();
        {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker must outlive a panicking job");
    }

    #[test]
    fn worker_pool_shutdown_drains_queued_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = WorkerPool::new(Threads::new(2), 128);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        // Shut down immediately: every admitted job must still run.
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }
}
