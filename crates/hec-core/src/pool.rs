//! Scoped-thread parallel-for, replacing `rayon` for the OpenMP-style
//! loops of the mini-apps.
//!
//! The suite's parallel loops are coarse (z-slabs of a lattice block,
//! latitude bands of a sphere): a handful of contiguous chunks handed to
//! scoped threads is all the machinery they need. Work is split into
//! contiguous chunks — one per worker — so results concatenate back in
//! input order and the output is bit-identical to the sequential loop.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel call will use for `n` items.
pub fn workers_for(n: usize) -> usize {
    let hw = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    hw.min(n).max(1)
}

/// Applies `f` to every element of `items`, in parallel, returning the
/// results in input order. Equivalent to
/// `items.iter().map(f).collect()` — including panic propagation: if any
/// invocation panics, the panic resurfaces on the caller after all
/// workers have stopped.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers_for(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(v) => parts.push(v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    parts.into_iter().flatten().collect()
}

/// Splits `data` into chunks of at most `chunk_len` elements and runs
/// `f(chunk_index, chunk)` on scoped worker threads. The chunking is
/// identical to `data.chunks_mut(chunk_len)`, so `chunk_index *
/// chunk_len` recovers each chunk's offset.
///
/// # Panics
/// Panics if `chunk_len == 0`; worker panics resurface on the caller.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let mut chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let workers = workers_for(chunks.len());
    if workers <= 1 {
        for (i, c) in chunks {
            f(i, c);
        }
        return;
    }
    let per = chunks.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        while !chunks.is_empty() {
            let take = per.min(chunks.len());
            let group: Vec<(usize, &mut [T])> = chunks.drain(..take).collect();
            let f = &f;
            handles.push(scope.spawn(move || {
                for (i, c) in group {
                    f(i, c);
                }
            }));
        }
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<usize> = (0..1000).collect();
        let par = par_map(&items, |&x| x * x + 1);
        let seq: Vec<usize> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_preserves_order_for_uneven_splits() {
        for n in [0usize, 1, 2, 3, 7, 63, 64, 65, 1001] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(&items, |&x| x);
            assert_eq!(out, items, "n={n}");
        }
    }

    #[test]
    fn par_chunks_mut_equals_sequential_chunked_loop() {
        let mut par_data: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let mut seq_data = par_data.clone();
        let update = |idx: usize, c: &mut [f64]| {
            for v in c.iter_mut() {
                *v = *v * 2.0 + idx as f64;
            }
        };
        par_chunks_mut(&mut par_data, 16, update);
        for (i, c) in seq_data.chunks_mut(16).enumerate() {
            update(i, c);
        }
        assert_eq!(par_data, seq_data);
    }

    #[test]
    fn par_map_propagates_panics() {
        let items = vec![1, 2, 3, 4];
        let r = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                if x == 3 {
                    panic!("worker died");
                }
                x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        let mut none: Vec<u8> = Vec::new();
        par_chunks_mut(&mut none, 4, |_, _| panic!("no chunks expected"));
    }
}
