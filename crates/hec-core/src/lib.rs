//! hec-core — the std-only support layer of the workspace.
//!
//! The offline build environment resolves no external crates, so every
//! capability the suite previously pulled from crates.io lives here,
//! implemented on `std` alone:
//!
//! * [`rng`] — a small deterministic generator (splitmix64-seeded
//!   xoshiro256++) with uniform/normal helpers, replacing `rand`;
//! * [`json`] — a minimal JSON value type with emit and parse, replacing
//!   `serde`/`serde_json` (types provide hand-written `to_json` /
//!   `from_json` via [`json::ToJson`] / [`json::FromJson`]);
//! * [`sync`] — poison-tolerant `Mutex`/`Condvar` wrappers, replacing
//!   `parking_lot` (msim ranks unwind through held locks by design);
//! * [`pool`] — scoped-thread `par_map`/`par_chunks_mut`, replacing
//!   `rayon` for the OpenMP-style loops of the mini-apps;
//! * [`probe`] — phase-scoped event counters and wall-clock spans: the
//!   capture layer the kernels and apps report measured workload
//!   characteristics through (deterministic `u64` event sums, free when
//!   disabled);
//! * [`retry`] — seeded exponential backoff with jitter, so the serve
//!   client and the cluster router retry transient failures on a delay
//!   sequence tests can replay exactly.
//!
//! Everything is deliberately small: the suite needs determinism and
//! hermeticity, not feature breadth.

pub mod json;
pub mod pool;
pub mod probe;
pub mod retry;
pub mod rng;
pub mod sync;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::Rng;
