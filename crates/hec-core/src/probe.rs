//! Lightweight in-process observability: phase counters and spans.
//!
//! The paper's methodology rests on *measured* workload characteristics —
//! flop counts, memory-traffic classes, vector lengths — feeding the
//! architectural model. This module is the capture layer: kernels and
//! apps report hardware-style event counts per named phase, and a
//! [`capture`] run snapshots them for the model (`hec-arch`) and the
//! `repro profile` command.
//!
//! Design rules, in priority order:
//!
//! 1. **Determinism.** Every counter is a `u64` event count, so the
//!    global per-phase totals are order-invariant sums: captures taken at
//!    `HEC_THREADS=1/2/4` are identical bit for bit. Call sites report
//!    quantities derived from the *work executed* (particles deposited,
//!    lattice points updated, CG iterations run), never from how the work
//!    was chunked across workers. Wall-clock spans are kept in a separate
//!    table ([`Capture::timings`]) and are explicitly outside the
//!    determinism contract.
//! 2. **Disabled ⇒ free.** Probes check one relaxed atomic load and
//!    return; no locks are touched and no state is created. Counting
//!    happens at phase/bulk granularity (once per kernel call or per
//!    fixed-size chunk), never per element, so the enabled path is cheap
//!    too.
//! 3. **Captures are exclusive.** [`capture`] serializes on a global
//!    session lock: concurrent test threads each see only their own
//!    events. Captures must not nest (the second would deadlock).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::sync::Mutex;

/// Event counts for one phase. All fields are exact integer event sums,
/// so cross-thread accumulation is order-invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Double-precision floating-point operations.
    pub flops: u64,
    /// Unit-stride (streaming) memory traffic in bytes, loads + stores.
    pub unit_stride_bytes: u64,
    /// Randomly indexed (gather/scatter) traffic in bytes.
    pub gather_scatter_bytes: u64,
    /// Individual gather/scatter element accesses.
    pub gather_scatter_ops: u64,
    /// Total innermost-loop trip count (sum over vector-loop executions).
    pub vector_iters: u64,
    /// Number of innermost vector-loop executions. Together with
    /// `vector_iters` this yields the measured average vector length.
    pub vector_loops: u64,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Point-to-point payload bytes sent.
    pub message_bytes: u64,
    /// Collective operations entered.
    pub collectives: u64,
    /// Collective payload bytes contributed by this rank.
    pub collective_bytes: u64,
}

impl Counters {
    /// Element-wise sum of two counter sets.
    pub fn merge(&mut self, other: &Counters) {
        self.flops += other.flops;
        self.unit_stride_bytes += other.unit_stride_bytes;
        self.gather_scatter_bytes += other.gather_scatter_bytes;
        self.gather_scatter_ops += other.gather_scatter_ops;
        self.vector_iters += other.vector_iters;
        self.vector_loops += other.vector_loops;
        self.messages += other.messages;
        self.message_bytes += other.message_bytes;
        self.collectives += other.collectives;
        self.collective_bytes += other.collective_bytes;
    }

    /// Measured average vector length: trip count per vector-loop
    /// execution. 0 when the phase recorded no vector loops.
    pub fn avg_vector_length(&self) -> f64 {
        if self.vector_loops == 0 {
            0.0
        } else {
            self.vector_iters as f64 / self.vector_loops as f64
        }
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == Counters::default()
    }
}

impl ToJson for Counters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("flops", Json::Num(self.flops as f64)),
            ("unit_stride_bytes", Json::Num(self.unit_stride_bytes as f64)),
            ("gather_scatter_bytes", Json::Num(self.gather_scatter_bytes as f64)),
            ("gather_scatter_ops", Json::Num(self.gather_scatter_ops as f64)),
            ("vector_iters", Json::Num(self.vector_iters as f64)),
            ("vector_loops", Json::Num(self.vector_loops as f64)),
            ("messages", Json::Num(self.messages as f64)),
            ("message_bytes", Json::Num(self.message_bytes as f64)),
            ("collectives", Json::Num(self.collectives as f64)),
            ("collective_bytes", Json::Num(self.collective_bytes as f64)),
        ])
    }
}

impl FromJson for Counters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let u = |name: &str| -> Result<u64, JsonError> { Ok(v.num_field(name)? as u64) };
        Ok(Counters {
            flops: u("flops")?,
            unit_stride_bytes: u("unit_stride_bytes")?,
            gather_scatter_bytes: u("gather_scatter_bytes")?,
            gather_scatter_ops: u("gather_scatter_ops")?,
            vector_iters: u("vector_iters")?,
            vector_loops: u("vector_loops")?,
            messages: u("messages")?,
            message_bytes: u("message_bytes")?,
            collectives: u("collectives")?,
            collective_bytes: u("collective_bytes")?,
        })
    }
}

/// Wall-clock statistics for one phase's spans. Timing is *not* part of
/// the determinism contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Total nanoseconds spent inside spans of this phase.
    pub total_ns: u64,
    /// Number of completed spans.
    pub calls: u64,
}

impl ToJson for SpanStat {
    fn to_json(&self) -> Json {
        Json::obj([
            ("total_ns", Json::Num(self.total_ns as f64)),
            ("calls", Json::Num(self.calls as f64)),
        ])
    }
}

impl FromJson for SpanStat {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SpanStat {
            total_ns: v.num_field("total_ns")? as u64,
            calls: v.num_field("calls")? as u64,
        })
    }
}

struct Registry {
    counters: Mutex<BTreeMap<String, Counters>>,
    timings: Mutex<BTreeMap<String, SpanStat>>,
    session: Mutex<()>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        timings: Mutex::new(BTreeMap::new()),
        session: Mutex::new(()),
    })
}

/// True while a [`capture`] is in flight. Instrumented code should call
/// this (or just [`count`], which checks internally) — one relaxed
/// atomic load when disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `c` to the running totals of `phase`. A no-op (no locks, no
/// allocation, no state) unless a capture is active.
#[inline]
pub fn count(phase: &str, c: Counters) {
    if !enabled() {
        return;
    }
    let mut map = registry().counters.lock();
    map.entry(phase.to_string()).or_default().merge(&c);
}

/// An RAII wall-clock span: created by [`span`], records elapsed time
/// into the phase's [`SpanStat`] on drop.
pub struct Span {
    phase: Option<(&'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((phase, start)) = self.phase.take() {
            if enabled() {
                let ns = start.elapsed().as_nanos() as u64;
                let mut map = registry().timings.lock();
                let s = map.entry(phase.to_string()).or_default();
                s.total_ns += ns;
                s.calls += 1;
            }
        }
    }
}

/// Starts a monotonic timer for `phase`; the elapsed time is recorded
/// when the returned [`Span`] drops. Free when no capture is active.
#[inline]
pub fn span(phase: &'static str) -> Span {
    if !enabled() {
        return Span { phase: None };
    }
    Span { phase: Some((phase, Instant::now())) }
}

/// A snapshot of everything counted during one [`capture`] run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Capture {
    /// Per-phase deterministic event counters.
    pub counters: BTreeMap<String, Counters>,
    /// Per-phase wall-clock span statistics (non-deterministic).
    pub timings: BTreeMap<String, SpanStat>,
}

impl Capture {
    /// Counters for `phase`, or all-zero if the phase never reported.
    pub fn get(&self, phase: &str) -> Counters {
        self.counters.get(phase).copied().unwrap_or_default()
    }

    /// True when no phase recorded any event.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(Counters::is_zero)
    }

    /// The deterministic part only — what the threading-invariance tests
    /// compare. (Timings are wall-clock and excluded by construction.)
    pub fn deterministic(&self) -> &BTreeMap<String, Counters> {
        &self.counters
    }
}

impl ToJson for Capture {
    fn to_json(&self) -> Json {
        let phases: Vec<Json> = self
            .counters
            .iter()
            .map(|(name, c)| {
                let mut fields = vec![
                    ("phase".to_string(), Json::Str(name.clone())),
                    ("counters".to_string(), c.to_json()),
                    ("avg_vector_length".to_string(), Json::Num(c.avg_vector_length())),
                ];
                if let Some(t) = self.timings.get(name) {
                    fields.push(("timing".to_string(), t.to_json()));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::obj([("phases", Json::Arr(phases))])
    }
}

impl FromJson for Capture {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut cap = Capture::default();
        let Json::Arr(phases) = v.field("phases")? else {
            return Err(JsonError::new("capture 'phases' must be an array"));
        };
        for p in phases {
            let name = p.str_field("phase")?.to_string();
            cap.counters.insert(name.clone(), Counters::from_json(p.field("counters")?)?);
            if let Ok(t) = p.field("timing") {
                cap.timings.insert(name, SpanStat::from_json(t)?);
            }
        }
        Ok(cap)
    }
}

/// Runs `f` with probes enabled and returns its result together with the
/// capture of everything counted while it ran.
///
/// Captures are serialized process-wide (concurrent callers queue on a
/// session lock), so parallel test threads never see each other's
/// events. Captures must not nest — a nested call deadlocks by design
/// rather than silently merging two scopes.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Capture) {
    let reg = registry();
    let _session = reg.session.lock();
    reg.counters.lock().clear();
    reg.timings.lock().clear();
    ENABLED.store(true, Ordering::SeqCst);
    // Disable even if `f` unwinds, so a failed capture cannot leak an
    // enabled probe state into unrelated code.
    struct DisableOnDrop;
    impl Drop for DisableOnDrop {
        fn drop(&mut self) {
            ENABLED.store(false, Ordering::SeqCst);
        }
    }
    let guard = DisableOnDrop;
    let out = f();
    drop(guard);
    let cap = Capture {
        counters: std::mem::take(&mut *reg.counters.lock()),
        timings: std::mem::take(&mut *reg.timings.lock()),
    };
    (out, cap)
}

/// An always-on cumulative counter for service observability.
///
/// Unlike the capture-scoped phase counters above — which are part of the
/// determinism contract and only record inside [`capture`] — meters record
/// unconditionally for the life of the process. They exist for `/metrics`
/// style export (request counts, cache hits, queue rejections) and are
/// explicitly *outside* the bitwise-reproducibility contract.
#[derive(Clone)]
pub struct Meter {
    cell: std::sync::Arc<AtomicU64>,
}

impl Meter {
    /// Adds `delta` to the meter.
    pub fn add(&self, delta: u64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one to the meter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current cumulative value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

fn meter_registry() -> &'static Mutex<BTreeMap<String, std::sync::Arc<AtomicU64>>> {
    static METERS: OnceLock<Mutex<BTreeMap<String, std::sync::Arc<AtomicU64>>>> = OnceLock::new();
    METERS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the process-wide meter named `name`, creating it at zero on
/// first use. Handles are cheap clones of one shared cell, so two callers
/// asking for the same name always observe the same count.
pub fn meter(name: &str) -> Meter {
    let mut reg = meter_registry().lock();
    let cell =
        reg.entry(name.to_string()).or_insert_with(|| std::sync::Arc::new(AtomicU64::new(0)));
    Meter { cell: std::sync::Arc::clone(cell) }
}

/// Snapshot of every meter, sorted by name for deterministic export.
pub fn meters() -> Vec<(String, u64)> {
    meter_registry()
        .lock()
        .iter()
        .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_accumulate_and_share_by_name() {
        let a = meter("probe.test.shared");
        let b = meter("probe.test.shared");
        let before = a.get();
        a.incr();
        b.add(4);
        assert_eq!(a.get(), before + 5, "same-name handles must share one cell");
        let snap = meters();
        let entry = snap.iter().find(|(n, _)| n == "probe.test.shared");
        assert_eq!(entry.map(|(_, v)| *v), Some(before + 5));
        let names: Vec<_> = snap.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "meter snapshot must be name-sorted");
    }

    #[test]
    fn meters_record_outside_captures() {
        assert!(!enabled());
        let m = meter("probe.test.outside");
        let before = m.get();
        m.incr();
        assert_eq!(m.get(), before + 1, "meters must count with probes disabled");
    }

    #[test]
    fn disabled_probes_record_nothing() {
        assert!(!enabled());
        count("ghost phase", Counters { flops: 1, ..Default::default() });
        drop(span("ghost span"));
        let ((), cap) = capture(|| {});
        assert!(cap.is_empty(), "events outside a capture must vanish: {cap:?}");
        assert!(cap.timings.is_empty());
    }

    #[test]
    fn capture_collects_counts_and_spans() {
        let (val, cap) = capture(|| {
            count("alpha", Counters { flops: 10, unit_stride_bytes: 80, ..Default::default() });
            count(
                "alpha",
                Counters { flops: 5, vector_iters: 64, vector_loops: 2, ..Default::default() },
            );
            count("beta", Counters { messages: 3, message_bytes: 24, ..Default::default() });
            let _s = span("alpha");
            42
        });
        assert_eq!(val, 42);
        let a = cap.get("alpha");
        assert_eq!(a.flops, 15);
        assert_eq!(a.unit_stride_bytes, 80);
        assert_eq!(a.avg_vector_length(), 32.0);
        assert_eq!(cap.get("beta").messages, 3);
        assert_eq!(cap.get("missing"), Counters::default());
        assert_eq!(cap.timings["alpha"].calls, 1);
    }

    #[test]
    fn captures_are_isolated_between_runs() {
        let ((), first) = capture(|| count("x", Counters { flops: 1, ..Default::default() }));
        let ((), second) = capture(|| {});
        assert_eq!(first.get("x").flops, 1);
        assert!(second.is_empty(), "second capture must start clean");
        assert!(!enabled(), "probes must be disabled after a capture");
    }

    #[test]
    fn cross_thread_counts_sum_exactly() {
        let ((), cap) = capture(|| {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..100 {
                            count(
                                "sum",
                                Counters {
                                    flops: 3,
                                    vector_iters: 8,
                                    vector_loops: 1,
                                    ..Default::default()
                                },
                            );
                        }
                    });
                }
            });
        });
        let c = cap.get("sum");
        assert_eq!(c.flops, 1200);
        assert_eq!(c.vector_iters, 3200);
        assert_eq!(c.vector_loops, 400);
    }

    #[test]
    fn capture_json_round_trips() {
        let ((), cap) = capture(|| {
            count(
                "k",
                Counters {
                    flops: 7,
                    gather_scatter_ops: 2,
                    collectives: 1,
                    collective_bytes: 8,
                    ..Default::default()
                },
            );
            let _s = span("k");
        });
        let text = cap.to_json().emit_pretty();
        let back = Capture::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.counters, cap.counters);
        assert_eq!(back.timings, cap.timings);
    }

    #[test]
    fn capture_disables_probes_after_a_panic() {
        let r = std::panic::catch_unwind(|| {
            capture(|| {
                count("doomed", Counters { flops: 1, ..Default::default() });
                panic!("capture body failed");
            })
        });
        assert!(r.is_err());
        assert!(!enabled(), "a panicking capture must still disable probes");
        // The session lock recovered (poison-tolerant): a new capture works.
        let ((), cap) = capture(|| count("next", Counters { flops: 2, ..Default::default() }));
        assert_eq!(cap.get("next").flops, 2);
    }
}
