//! Deterministic retry pacing: exponential backoff with seeded jitter.
//!
//! Distributed callers (the serve client, the cluster router) retry
//! transient failures — connection refused during a replica restart, a
//! `503` under load — and the delays between attempts must be jittered
//! so a fleet of retriers does not stampede in lockstep. Randomized
//! jitter usually makes such paths untestable; here the jitter stream
//! comes from [`crate::rng::Rng`], so a seed pins the exact delay
//! sequence and failover tests replay bit-for-bit.

use std::time::Duration;

use crate::rng::Rng;

/// Exponential backoff with multiplicative jitter in `[0.5, 1.5)`.
///
/// Attempt *k* (0-based) sleeps `base_ms << k` milliseconds, capped at
/// `cap_ms`, scaled by a jitter factor drawn from the seeded generator.
/// After `max_attempts` delays, [`Backoff::next_delay`] returns `None`
/// and the caller should give up.
#[derive(Clone, Debug)]
pub struct Backoff {
    rng: Rng,
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    max_attempts: u32,
}

impl Backoff {
    /// A backoff whose delay sequence is a pure function of `seed`.
    pub fn new(seed: u64, base_ms: u64, cap_ms: u64, max_attempts: u32) -> Backoff {
        Backoff {
            rng: Rng::new(seed),
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            attempt: 0,
            max_attempts,
        }
    }

    /// Attempts delayed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// True when the attempt budget is spent.
    pub fn exhausted(&self) -> bool {
        self.attempt >= self.max_attempts
    }

    /// The next delay to sleep before retrying, or `None` when the
    /// attempt budget is exhausted. Deterministic given the seed.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        let exp = self.base_ms.saturating_shl(self.attempt.min(20)).min(self.cap_ms);
        self.attempt += 1;
        let jitter = 0.5 + self.rng.uniform(); // [0.5, 1.5)
        let ms = (exp as f64 * jitter).round() as u64;
        Some(Duration::from_millis(ms.max(1)))
    }
}

/// `u64::checked_shl` that saturates instead of wrapping — backoff
/// growth must clamp, never overflow back to tiny delays.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_delay_sequence() {
        let mut a = Backoff::new(7, 10, 1000, 6);
        let mut b = Backoff::new(7, 10, 1000, 6);
        for _ in 0..6 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        assert_eq!(a.next_delay(), None);
        assert!(a.exhausted());
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        // The jitter must actually depend on the seed — identical
        // schedules across a retrier fleet is exactly the stampede the
        // jitter exists to break up.
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(seed, 10, 10_000, 8);
            std::iter::from_fn(|| b.next_delay()).collect()
        };
        let base = schedule(1);
        assert!((2..=16).any(|s| schedule(s) != base), "all seeds produced one schedule");
    }

    #[test]
    fn clone_replays_the_remaining_schedule() {
        // Cloning mid-stream snapshots the generator state: the clone
        // must continue with exactly the delays the original will take.
        let mut a = Backoff::new(99, 10, 1000, 8);
        a.next_delay();
        a.next_delay();
        let mut b = a.clone();
        assert_eq!(b.attempts(), a.attempts());
        for _ in 0..6 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        assert_eq!(a.next_delay(), None);
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn delays_grow_exponentially_within_jitter_bounds() {
        let mut b = Backoff::new(42, 10, 10_000, 8);
        for k in 0..8u32 {
            let d = b.next_delay().unwrap().as_millis() as u64;
            let nominal = 10u64 << k;
            assert!(d >= nominal / 2, "attempt {k}: {d} < {}", nominal / 2);
            assert!(d <= nominal + nominal / 2 + 1, "attempt {k}: {d} too large");
        }
    }

    #[test]
    fn cap_bounds_the_delay() {
        let mut b = Backoff::new(1, 100, 150, 20);
        for _ in 0..20 {
            let d = b.next_delay().unwrap().as_millis() as u64;
            assert!(d <= 150 + 75, "delay {d} exceeds jittered cap");
        }
    }

    #[test]
    fn zero_attempts_refuses_immediately() {
        let mut b = Backoff::new(3, 10, 100, 0);
        assert!(b.exhausted());
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn huge_shift_saturates_instead_of_wrapping() {
        let mut b = Backoff::new(5, u64::MAX / 2, u64::MAX, 25);
        let mut last = 0u64;
        for _ in 0..25 {
            let d = b.next_delay().unwrap().as_millis() as u64;
            assert!(d >= last / 2, "delay collapsed after overflow");
            last = d;
        }
    }
}
