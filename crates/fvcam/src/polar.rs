//! FFT polar filters.
//!
//! Near the poles the converging meridians make zonal grid spacing tiny;
//! FVCAM stabilizes the longer timestep by damping high zonal wavenumbers
//! along complete longitude lines poleward of a threshold latitude. As the
//! paper's §3.1 explains, vectorization is attained *across* the FFTs
//! (with respect to latitude), not within one FFT — so the effective
//! vector length is the number of filtered latitude rows per rank, which
//! shrinks as the latitude decomposition gets finer. That is the vector
//! machines' scaling limiter in Table 3, and the model reads the batch
//! size from this module's accounting.

use kernels::fft::{Direction, FftPlan};
use kernels::Complex64;

use crate::grid::{LevelBlock, SphereGrid};

/// Latitude (degrees, absolute) poleward of which rows are filtered.
pub const FILTER_LATITUDE_DEG: f64 = 60.0;

/// A reusable polar filter for one grid.
pub struct PolarFilter {
    plan: FftPlan,
    /// Damping factor per zonal wavenumber (precomputed, length nlon).
    damping: Vec<f64>,
    /// Rows filtered so far (instrumentation: the FFT batch count).
    pub rows_filtered: u64,
}

impl PolarFilter {
    /// Builds the filter for `nlon` longitudes: wavenumbers above 1/4 of
    /// the spectrum are progressively damped.
    pub fn new(nlon: usize) -> Self {
        let damping = (0..nlon)
            .map(|k| {
                // Symmetric wavenumber index.
                let kk = k.min(nlon - k) as f64;
                let kc = nlon as f64 / 8.0;
                if kk <= kc {
                    1.0
                } else {
                    // Smooth roll-off to strong damping at Nyquist.
                    let t = ((kk - kc) / (nlon as f64 / 2.0 - kc)).clamp(0.0, 1.0);
                    (1.0 - t).powi(2)
                }
            })
            .collect();
        PolarFilter { plan: FftPlan::new(nlon), damping, rows_filtered: 0 }
    }

    /// True when global latitude row `j` needs filtering.
    pub fn needs_filter(grid: &SphereGrid, j: usize) -> bool {
        grid.latitude(j).to_degrees().abs() >= FILTER_LATITUDE_DEG
    }

    /// Filters all qualifying rows of a block. Returns the number of rows
    /// transformed (2 FFTs each).
    pub fn apply(&mut self, grid: &SphereGrid, q: &mut LevelBlock, lat0: usize) -> usize {
        let mut rows = 0;
        let mut line = vec![Complex64::ZERO; q.nlon];
        for j in 0..q.nlat {
            if !Self::needs_filter(grid, lat0 + j) {
                continue;
            }
            let row = q.row_mut(j as isize);
            for (l, &v) in line.iter_mut().zip(row.iter()) {
                *l = Complex64::real(v);
            }
            self.plan.execute(&mut line, Direction::Forward);
            for (l, d) in line.iter_mut().zip(&self.damping) {
                *l = l.scale(*d);
            }
            self.plan.execute(&mut line, Direction::Inverse);
            for (v, l) in row.iter_mut().zip(&line) {
                *v = l.re;
            }
            rows += 1;
        }
        self.rows_filtered += rows as u64;
        rows
    }

    /// Flops per filtered row (two transforms plus the spectral scaling).
    pub fn flops_per_row(&self) -> f64 {
        2.0 * self.plan.flops() + 2.0 * self.plan.len() as f64
    }
}

/// Number of filtered latitude rows in the whole grid (both polar caps).
pub fn filtered_rows_global(grid: &SphereGrid) -> usize {
    (0..grid.nlat).filter(|&j| PolarFilter::needs_filter(grid, j)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_latitudes_are_polar_caps() {
        let g = SphereGrid::new(64, 181, 4);
        assert!(PolarFilter::needs_filter(&g, 0));
        assert!(PolarFilter::needs_filter(&g, 180));
        assert!(!PolarFilter::needs_filter(&g, 90)); // equator
                                                     // 60° boundary: |lat| of row 30 is 60° exactly.
        assert!(PolarFilter::needs_filter(&g, 30));
        assert!(!PolarFilter::needs_filter(&g, 31));
    }

    #[test]
    fn filter_preserves_zonal_mean() {
        // Wavenumber 0 must pass untouched: the row average is invariant.
        let g = SphereGrid::new(32, 9, 1);
        let mut q = LevelBlock::zeros(32, 9, 2);
        for j in 0..9 {
            for i in 0..32 {
                *q.get_mut(j as isize, i) = 2.0 + (i as f64 * 0.9).sin() + (j as f64) * 0.1;
            }
        }
        let means_before: Vec<f64> =
            (0..9).map(|j| q.row(j as isize).iter().sum::<f64>() / 32.0).collect();
        let mut f = PolarFilter::new(32);
        f.apply(&g, &mut q, 0);
        for j in 0..9 {
            let mean = q.row(j as isize).iter().sum::<f64>() / 32.0;
            assert!((mean - means_before[j]).abs() < 1e-12, "row {j}");
        }
    }

    #[test]
    fn filter_damps_high_wavenumbers() {
        let g = SphereGrid::new(64, 5, 1);
        let mut q = LevelBlock::zeros(64, 5, 2);
        // Pure Nyquist-adjacent signal on a polar row.
        for i in 0..64 {
            *q.get_mut(0, i) = (std::f64::consts::PI * i as f64 * 0.9).sin();
        }
        let amp_before: f64 = q.row(0).iter().map(|v| v * v).sum();
        let mut f = PolarFilter::new(64);
        let rows = f.apply(&g, &mut q, 0);
        assert!(rows > 0);
        let amp_after: f64 = q.row(0).iter().map(|v| v * v).sum();
        assert!(
            amp_after < 0.2 * amp_before,
            "high-k energy not damped: {amp_before} -> {amp_after}"
        );
    }

    #[test]
    fn smooth_fields_pass_nearly_unchanged() {
        let g = SphereGrid::new(64, 5, 1);
        let mut q = LevelBlock::zeros(64, 5, 2);
        for i in 0..64 {
            // Wavenumber 2: well inside the passband.
            *q.get_mut(0, i) = (std::f64::consts::TAU * 2.0 * i as f64 / 64.0).cos();
        }
        let before = q.row(0).to_vec();
        let mut f = PolarFilter::new(64);
        f.apply(&g, &mut q, 0);
        for (a, b) in q.row(0).iter().zip(&before) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn global_filtered_row_count_matches_caps() {
        let g = SphereGrid::d_mesh();
        let n = filtered_rows_global(&g);
        // 60..90° both caps on a 0.5° grid: 61 rows per cap (inclusive).
        assert_eq!(n, 122);
    }
}
