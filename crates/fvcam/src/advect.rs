//! Flux-form upwind advection — the Lin–Rood kernel.
//!
//! One-dimensional van-Leer-limited upwind fluxes applied dimension by
//! dimension (longitude, then latitude), in flux form so tracer mass is
//! conserved to round-off. The scheme is "fundamentally one-sided
//! (upwind)" with limiter branches in every flux computation — the paper's
//! §3.1 explanation of why vectorizing FVCAM required hoisting the
//! latitude loops inward and pre-computing branch conditions.

use crate::grid::{LevelBlock, SphereGrid};
use hec_core::pool::Threads;

/// Flops per flux evaluation, audited from `flux_1d` below: upwind select
/// (2), van Leer slope (6), limiter (3), flux assembly (4).
pub const FLOPS_PER_FLUX: f64 = 15.0;

/// Flops per cell per 2D advection step: two flux evaluations per
/// direction plus the divergence update (4).
pub const FLOPS_PER_CELL: f64 = 2.0 * FLOPS_PER_FLUX + 2.0 * FLOPS_PER_FLUX + 8.0;

/// Van-Leer (monotonized central) slope of `q` given its neighbors.
#[inline(always)]
fn vanleer_slope(qm: f64, q0: f64, qp: f64) -> f64 {
    let d1 = q0 - qm;
    let d2 = qp - q0;
    if d1 * d2 <= 0.0 {
        0.0
    } else {
        let davg = 0.5 * (d1 + d2);
        let dmin = 2.0 * d1.abs().min(d2.abs());
        davg.signum() * davg.abs().min(dmin)
    }
}

/// Upwind flux through the interface between cells `q0` (left) and `q1`
/// (right), with their outer neighbors for the slope; `c` is the signed
/// Courant number at the interface.
#[inline(always)]
fn flux_1d(qmm: f64, q0: f64, q1: f64, qpp: f64, c: f64) -> f64 {
    if c >= 0.0 {
        let s = vanleer_slope(qmm, q0, q1);
        c * (q0 + 0.5 * s * (1.0 - c))
    } else {
        let s = vanleer_slope(q0, q1, qpp);
        c * (q1 - 0.5 * s * (1.0 + c))
    }
}

/// Zonal (periodic) advection pass: updates the interior rows in place.
/// Returns the number of interior cells updated. Halo rows are untouched —
/// callers must refresh them before the meridional pass.
pub fn advect_zonal(q: &mut LevelBlock, cx: &LevelBlock) -> usize {
    advect_zonal_with(&Threads::serial(), q, cx)
}

/// [`advect_zonal`] with the latitude lines split across workers — the
/// paper's line-parallel structure: a zonal flux row depends only on its
/// own latitude line, so every row is an independent task and the result
/// is **bitwise identical** to the serial pass for any worker count.
pub fn advect_zonal_with(threads: &Threads, q: &mut LevelBlock, cx: &LevelBlock) -> usize {
    assert!(q.halo >= 2, "advection needs 2 halo rows");
    let nlon = q.nlon;
    let nlat = q.nlat;
    let halo = q.halo;
    let interior = &mut q.data[halo * nlon..(halo + nlat) * nlon];
    threads.par_chunks_mut(interior, nlon, |j, row| {
        let crow = cx.row(j as isize);
        let mut fx = vec![0.0; nlon + 1];
        for i in 0..=nlon {
            let im2 = (i + nlon - 2) % nlon;
            let im1 = (i + nlon - 1) % nlon;
            let i0 = i % nlon;
            let ip1 = (i + 1) % nlon;
            // Courant number at the west face of cell i.
            let c = 0.5 * (crow[im1] + crow[i0]);
            fx[i] = flux_1d(row[im2], row[im1], row[i0], row[ip1], c);
        }
        for i in 0..nlon {
            row[i] -= fx[i + 1] - fx[i];
        }
    });
    nlat * nlon
}

/// Meridional advection pass with cos-latitude area weighting. Requires
/// halo rows consistent with the *current* (post-zonal) interior. The
/// area weights make the update conservative on the sphere:
/// `q_new·A = q·A − Δ(flux·A_face)`; pole faces carry zero flux.
pub fn advect_meridional(
    grid: &SphereGrid,
    q: &mut LevelBlock,
    cy: &LevelBlock,
    lat0: usize,
) -> usize {
    advect_meridional_with(&Threads::serial(), grid, q, cy, lat0)
}

/// [`advect_meridional`] with the latitude lines split across workers.
/// Interface fluxes are computed first from the frozen field (each
/// interface row an independent task), then interior rows update from
/// the flux table — both phases write disjoint rows, so the result is
/// **bitwise identical** to the serial pass for any worker count.
pub fn advect_meridional_with(
    threads: &Threads,
    grid: &SphereGrid,
    q: &mut LevelBlock,
    cy: &LevelBlock,
    lat0: usize,
) -> usize {
    assert!(q.halo >= 2, "advection needs 2 halo rows");
    let nlon = q.nlon;
    let nlat = q.nlat;
    let faces: Vec<usize> = (0..=nlat).collect();
    let q_ref = &*q;
    let fy: Vec<Vec<f64>> = threads.par_map(&faces, |&j| {
        let jj = j as isize; // interface between rows j-1 and j
        let glob = lat0 + j; // global index of the row north of the face
                             // Face weight: average of adjacent row weights; poles are closed.
        let w_face = if glob == 0 || glob >= grid.nlat {
            0.0
        } else {
            0.5 * (grid.coslat[glob - 1] + grid.coslat[glob])
        };
        let mut frow = vec![0.0; nlon];
        for (i, f) in frow.iter_mut().enumerate() {
            let c = 0.5 * (cy.get(jj - 1, i) + cy.get(jj, i));
            *f = w_face
                * flux_1d(
                    q_ref.get(jj - 2, i),
                    q_ref.get(jj - 1, i),
                    q_ref.get(jj, i),
                    q_ref.get(jj + 1, i),
                    c,
                );
        }
        frow
    });
    let halo = q.halo;
    let interior = &mut q.data[halo * nlon..(halo + nlat) * nlon];
    threads.par_chunks_mut(interior, nlon, |j, row| {
        let w_cell = grid.coslat[lat0 + j];
        for (i, v) in row.iter_mut().enumerate() {
            *v -= (fy[j + 1][i] - fy[j][i]) / w_cell;
        }
    });
    nlat * nlon
}

/// Both passes back to back — valid when the caller's halo rows remain
/// consistent through the zonal pass (single all-latitude block in the
/// serial tests; the parallel driver instead exchanges halos between the
/// passes). Returns the number of interior cells updated.
pub fn advect_level(
    grid: &SphereGrid,
    q: &mut LevelBlock,
    cx: &LevelBlock,
    cy: &LevelBlock,
    lat0: usize,
) -> usize {
    advect_zonal(q, cx);
    advect_meridional(grid, q, cy, lat0)
}

/// [`advect_level`] with both passes line-parallel.
pub fn advect_level_with(
    threads: &Threads,
    grid: &SphereGrid,
    q: &mut LevelBlock,
    cx: &LevelBlock,
    cy: &LevelBlock,
    lat0: usize,
) -> usize {
    advect_zonal_with(threads, q, cx);
    advect_meridional_with(threads, grid, q, cy, lat0)
}

/// Total tracer mass (area-weighted sum) of a block's interior rows.
pub fn block_mass(grid: &SphereGrid, q: &LevelBlock, lat0: usize) -> f64 {
    let mut m = 0.0;
    for j in 0..q.nlat {
        let w = grid.area(lat0 + j);
        for i in 0..q.nlon {
            m += w * q.get(j as isize, i);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serial helper: fill halos periodically in longitude (implicit) and
    /// by mirroring across the poles in latitude (single block covering
    /// all latitudes).
    fn fill_polar_halo(q: &mut LevelBlock) {
        let nlat = q.nlat as isize;
        for h in 1..=(q.halo as isize) {
            for i in 0..q.nlon {
                // Pole mirror: the value across the pole is at the same
                // latitude, shifted half a revolution.
                let flip = (i + q.nlon / 2) % q.nlon;
                *q.get_mut(-h, i) = q.get(h - 1, flip);
                *q.get_mut(nlat - 1 + h, i) = q.get(nlat - h, flip);
            }
        }
    }

    fn setup(nlon: usize, nlat: usize) -> (SphereGrid, LevelBlock, LevelBlock, LevelBlock) {
        let grid = SphereGrid::new(nlon, nlat, 1);
        let q = LevelBlock::zeros(nlon, nlat, 2);
        let cx = LevelBlock::zeros(nlon, nlat, 2);
        let cy = LevelBlock::zeros(nlon, nlat, 2);
        (grid, q, cx, cy)
    }

    #[test]
    fn zero_wind_is_identity() {
        let (grid, mut q, cx, cy) = setup(16, 9);
        for j in 0..9 {
            for i in 0..16 {
                *q.get_mut(j as isize, i) = (i * 3 + j) as f64 * 0.1;
            }
        }
        let before = q.clone();
        fill_polar_halo(&mut q);
        advect_level(&grid, &mut q, &cx, &cy, 0);
        for j in 0..9 {
            for i in 0..16 {
                assert_eq!(q.get(j as isize, i), before.get(j as isize, i));
            }
        }
    }

    #[test]
    fn constant_field_is_preserved_under_uniform_zonal_flow() {
        // Flux-form advection preserves constants exactly when the wind is
        // non-divergent; uniform zonal flow is the divergence-free case on
        // this grid (constant meridional flow converges near the poles, as
        // it physically should).
        let (grid, mut q, mut cx, cy) = setup(24, 13);
        for j in -2..15isize {
            for i in 0..24 {
                *q.get_mut(j, i) = 7.5;
                *cx.get_mut(j, i) = 0.37;
            }
        }
        advect_level(&grid, &mut q, &cx, &cy, 0);
        for j in 0..13 {
            for i in 0..24 {
                assert!(
                    (q.get(j as isize, i) - 7.5).abs() < 1e-12,
                    "constancy broken at ({j},{i}): {}",
                    q.get(j as isize, i)
                );
            }
        }
    }

    #[test]
    fn zonal_advection_conserves_mass() {
        let (grid, mut q, mut cx, cy) = setup(32, 17);
        for j in 0..17 {
            for i in 0..32 {
                *q.get_mut(j as isize, i) =
                    (-((i as f64 - 16.0).powi(2)) / 20.0).exp() * (1.0 + j as f64 * 0.05);
            }
        }
        for j in -2..19isize {
            for i in 0..32 {
                *cx.get_mut(j, i) = 0.35;
            }
        }
        fill_polar_halo(&mut q);
        let m0 = block_mass(&grid, &q, 0);
        for _ in 0..10 {
            fill_polar_halo(&mut q);
            advect_level(&grid, &mut q, &cx, &cy, 0);
        }
        let m1 = block_mass(&grid, &q, 0);
        assert!((m0 - m1).abs() < 1e-10 * m0.abs().max(1.0), "{m0} vs {m1}");
    }

    #[test]
    fn zonal_advection_translates_a_pulse() {
        // Courant 0.5 for 8 steps moves the peak 4 cells east.
        let (grid, mut q, mut cx, cy) = setup(32, 5);
        let j_mid = 2isize;
        *q.get_mut(j_mid, 10) = 1.0;
        for j in -2..7isize {
            for i in 0..32 {
                *cx.get_mut(j, i) = 0.5;
            }
        }
        for _ in 0..8 {
            fill_polar_halo(&mut q);
            advect_level(&grid, &mut q, &cx, &cy, 0);
        }
        // Peak should now be at or next to column 14.
        let row = q.row(j_mid);
        let peak = row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert!((peak as i64 - 14).abs() <= 1, "peak at {peak}, expected near 14: {row:?}");
    }

    #[test]
    fn limiter_prevents_new_extrema() {
        // Monotone initial data must stay within [min, max] (no over/
        // undershoots — the van Leer property).
        let (grid, mut q, mut cx, cy) = setup(32, 5);
        for j in 0..5 {
            for i in 0..32 {
                *q.get_mut(j as isize, i) = if (8..16).contains(&i) { 1.0 } else { 0.0 };
            }
        }
        for j in -2..7isize {
            for i in 0..32 {
                *cx.get_mut(j, i) = 0.3;
            }
        }
        for _ in 0..20 {
            fill_polar_halo(&mut q);
            advect_level(&grid, &mut q, &cx, &cy, 0);
        }
        for j in 0..5 {
            for i in 0..32 {
                let v = q.get(j as isize, i);
                assert!(v > -1e-12 && v < 1.0 + 1e-12, "over/undershoot {v} at ({j},{i})");
            }
        }
    }

    #[test]
    fn flux_flop_constant_is_positive() {
        assert!(FLOPS_PER_CELL > 30.0 && FLOPS_PER_CELL < 100.0);
    }

    #[test]
    fn threaded_advection_is_bitwise_serial() {
        let (grid, mut q, mut cx, mut cy) = setup(48, 37);
        for j in -2..39isize {
            for i in 0..48 {
                *q.get_mut(j, i) = ((i * 7 + (j + 2) as usize * 3) % 13) as f64 * 0.21;
                *cx.get_mut(j, i) = (((i + (j + 2) as usize) % 5) as f64 - 2.0) * 0.1;
                *cy.get_mut(j, i) = (((2 * i + (j + 2) as usize) % 7) as f64 - 3.0) * 0.07;
            }
        }
        let mut serial = q.clone();
        advect_level(&grid, &mut serial, &cx, &cy, 0);
        for workers in [1usize, 2, 4] {
            let mut par = q.clone();
            advect_level_with(&Threads::new(workers), &grid, &mut par, &cx, &cy, 0);
            for (a, b) in serial.data.iter().zip(&par.data) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
            }
        }
    }
}
