//! The sphere grid and per-rank field storage.
//!
//! The D mesh of the paper is 576 longitudes × 361 latitudes × 26 levels
//! (0.5° × 0.625°). Fields are stored longitude-fastest — the innermost
//! loops of the restructured (vectorized) dycore run over longitude, or
//! over latitude after the §3.1 loop interchange; either way the x-stride
//! is unit.

/// Global grid dimensions and metric terms.
#[derive(Clone, Debug)]
pub struct SphereGrid {
    /// Longitude points (periodic).
    pub nlon: usize,
    /// Latitude points (pole to pole).
    pub nlat: usize,
    /// Vertical levels.
    pub nlev: usize,
    /// cos(latitude) of each latitude row (area weight; small near poles).
    pub coslat: Vec<f64>,
}

impl SphereGrid {
    /// Builds the grid with latitudes uniformly spaced from −90° to +90°.
    /// Pole rows get a small positive weight (cell centered ¼ row off the
    /// pole) so area weights never vanish.
    pub fn new(nlon: usize, nlat: usize, nlev: usize) -> Self {
        let coslat = (0..nlat)
            .map(|j| {
                let lat = -std::f64::consts::FRAC_PI_2
                    + std::f64::consts::PI * j as f64 / (nlat - 1) as f64;
                lat.cos().max(std::f64::consts::PI / (4.0 * (nlat - 1) as f64))
            })
            .collect();
        SphereGrid { nlon, nlat, nlev, coslat }
    }

    /// The paper's D mesh: 0.5° × 0.625°, 26 levels.
    pub fn d_mesh() -> Self {
        SphereGrid::new(576, 361, 26)
    }

    /// Latitude (radians) of row `j`.
    pub fn latitude(&self, j: usize) -> f64 {
        -std::f64::consts::FRAC_PI_2 + std::f64::consts::PI * j as f64 / (self.nlat - 1) as f64
    }

    /// Longitude (radians) of column `i`.
    pub fn longitude(&self, i: usize) -> f64 {
        std::f64::consts::TAU * i as f64 / self.nlon as f64
    }

    /// Grid spacing in longitude (radians).
    pub fn dlon(&self) -> f64 {
        std::f64::consts::TAU / self.nlon as f64
    }

    /// Grid spacing in latitude (radians).
    pub fn dlat(&self) -> f64 {
        std::f64::consts::PI / (self.nlat - 1) as f64
    }

    /// Cell area weight at row `j` (relative units).
    pub fn area(&self, j: usize) -> f64 {
        self.coslat[j] * self.dlon() * self.dlat()
    }
}

/// One rank's block of one level: `nlat_local + 2·halo` rows of `nlon`
/// points (longitude is always complete in the dynamics decomposition).
#[derive(Clone, Debug)]
pub struct LevelBlock {
    /// Longitude points (global).
    pub nlon: usize,
    /// Local latitude rows (excluding halo).
    pub nlat: usize,
    /// Halo rows on each side.
    pub halo: usize,
    /// `(nlat + 2·halo) × nlon` values, longitude fastest.
    pub data: Vec<f64>,
}

impl LevelBlock {
    /// Allocates a zero block.
    pub fn zeros(nlon: usize, nlat: usize, halo: usize) -> Self {
        LevelBlock { nlon, nlat, halo, data: vec![0.0; (nlat + 2 * halo) * nlon] }
    }

    /// Linear index of local row `j` (0 = first interior row) and
    /// longitude `i`.
    #[inline(always)]
    pub fn idx(&self, j: isize, i: usize) -> usize {
        let jj = (j + self.halo as isize) as usize;
        debug_assert!(jj < self.nlat + 2 * self.halo && i < self.nlon);
        jj * self.nlon + i
    }

    /// Value at local row `j`, longitude `i` (rows in
    /// `-halo..nlat+halo`).
    #[inline(always)]
    pub fn get(&self, j: isize, i: usize) -> f64 {
        self.data[self.idx(j, i)]
    }

    /// Mutable value at local row `j`, longitude `i`.
    #[inline(always)]
    pub fn get_mut(&mut self, j: isize, i: usize) -> &mut f64 {
        let ix = self.idx(j, i);
        &mut self.data[ix]
    }

    /// A full interior row as a slice.
    pub fn row(&self, j: isize) -> &[f64] {
        let start = self.idx(j, 0);
        &self.data[start..start + self.nlon]
    }

    /// A full interior row as a mutable slice.
    pub fn row_mut(&mut self, j: isize) -> &mut [f64] {
        let start = self.idx(j, 0);
        &mut self.data[start..start + self.nlon]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_mesh_matches_paper() {
        let g = SphereGrid::d_mesh();
        assert_eq!((g.nlon, g.nlat, g.nlev), (576, 361, 26));
        // 0.625° longitudinal spacing.
        assert!((g.dlon().to_degrees() - 0.625).abs() < 1e-12);
        // 0.5° latitudinal spacing.
        assert!((g.dlat().to_degrees() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn area_weights_are_positive_and_symmetric() {
        let g = SphereGrid::new(64, 33, 4);
        for j in 0..g.nlat {
            assert!(g.area(j) > 0.0);
            let mirror = g.nlat - 1 - j;
            assert!((g.area(j) - g.area(mirror)).abs() < 1e-12, "row {j}");
        }
        // Equator has the largest cells.
        let eq = g.nlat / 2;
        for j in 0..g.nlat {
            assert!(g.area(j) <= g.area(eq) + 1e-15);
        }
    }

    #[test]
    fn latitudes_span_pole_to_pole() {
        let g = SphereGrid::new(16, 19, 2);
        assert!((g.latitude(0) + std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((g.latitude(18) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn block_indexing_with_halo() {
        let mut b = LevelBlock::zeros(8, 4, 2);
        *b.get_mut(-2, 0) = 1.0; // north halo edge
        *b.get_mut(5, 7) = 2.0; // south halo edge
        *b.get_mut(0, 3) = 3.0;
        assert_eq!(b.get(-2, 0), 1.0);
        assert_eq!(b.get(5, 7), 2.0);
        assert_eq!(b.row(0)[3], 3.0);
        assert_eq!(b.data.len(), 8 * 8);
    }
}
