//! FVCAM — finite-volume atmospheric dynamical-core mini-app.
//!
//! A from-scratch implementation of the performance-relevant structure of
//! the Community Atmosphere Model's finite-volume dynamical core (paper
//! §3): a logically-rectangular (longitude, latitude, level) grid, a
//! flux-form (Lin–Rood) advection scheme with pervasive one-sided upwind
//! branches, FFT polar filters along complete longitude lines, a
//! Lagrangian vertical discretization periodically remapped to fixed
//! levels, and — the heart of the paper's §3.2 analysis — two domain
//! decompositions connected by data transposes:
//!
//! * the **dynamics** phase runs in a (latitude, level) decomposition
//!   (each rank holds *all* longitudes, which keeps the polar-filter FFTs
//!   local);
//! * the **remap** phase needs whole vertical columns, so it runs in a
//!   (longitude, latitude) decomposition.
//!
//! The 1D (latitude-only) decomposition needs no transposes but limits
//! concurrency to ~nlat/3 and has a worse surface-to-volume ratio — the
//! comparison plotted in Figure 2 and quantified in Table 3.
//!
//! Modules:
//! * [`grid`] — the sphere grid, metric terms, and per-rank field blocks.
//! * [`advect`] — the flux-form upwind advection kernel (van Leer limited).
//! * [`polar`] — FFT polar filters (vectorized *across* latitudes).
//! * [`vertical`] — Lagrangian surface drift and conservative remap.
//! * [`decomp`] — 1D/2D decompositions, halo exchanges, and transposes.
//! * [`sim`] — the timestep driver plus the physics-package surrogate.
//! * [`model`] — analytic workload model (Table 3, Figures 3/4).

/// Stable artifact-file tag: `TABLE_fvcam.json` / `PROFILE_fvcam.json`
/// are keyed by this name, so renaming it breaks every committed
/// baseline directory — treat it as part of the artifact schema.
pub const ARTIFACT_TAG: &str = "fvcam";

pub mod advect;
pub mod decomp;
pub mod grid;
pub mod model;
pub mod polar;
pub mod sim;
pub mod vertical;

pub use sim::{FvParams, FvSim};
